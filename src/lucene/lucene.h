/**
 * @file
 * Lucene-like CPU baseline facade (paper Sec. V-A).
 *
 * Models Apache Lucene running on the host: 8 Xeon cores at 2.7 GHz
 * reading the SCM pool across the shared interconnect. Execution is
 * functionally identical to the accelerators (same SvS intersection
 * with skip lists, exhaustive unions, heap top-k) but every
 * operation pays software per-op costs, making the baseline
 * compute-bound -- which is why the paper finds Lucene gains at most
 * ~15% from replacing SCM with DRAM (Fig. 16).
 */

#ifndef BOSS_LUCENE_LUCENE_H
#define BOSS_LUCENE_LUCENE_H

#include "model/runner.h"

namespace boss::lucene
{

/** Host CPU parameters (paper Table I). */
struct HostConfig
{
    std::uint32_t cores = 8;
    double frequencyGHz = 2.7;
    double packagePowerW = 74.8; ///< measured via Intel SoC Watch
};

/** System configuration preset for the Lucene baseline. */
inline model::SystemConfig
systemConfig(std::uint32_t cores = 8,
             mem::MemConfig mem = mem::scmConfig())
{
    model::SystemConfig config;
    config.kind = model::SystemKind::Lucene;
    config.cores = cores;
    config.mem = std::move(mem);
    return config;
}

/** Run a query workload on the Lucene baseline. */
inline model::WorkloadMetrics
run(const index::InvertedIndex &index,
    const index::MemoryLayout &layout,
    const std::vector<workload::Query> &queries,
    std::uint32_t cores = 8, mem::MemConfig mem = mem::scmConfig())
{
    return model::runWorkload(index, layout, queries,
                              systemConfig(cores, std::move(mem)));
}

} // namespace boss::lucene

#endif // BOSS_LUCENE_LUCENE_H
