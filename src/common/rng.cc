#include "common/rng.h"

#include <algorithm>

#include "common/logging.h"

namespace boss
{

ZipfSampler::ZipfSampler(std::size_t n, double s)
{
    BOSS_ASSERT(n > 0, "ZipfSampler needs a non-empty support");
    cdf_.resize(n);
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        total += 1.0 / std::pow(static_cast<double>(i + 1), s);
        cdf_[i] = total;
    }
    for (auto &v : cdf_)
        v /= total;
}

std::size_t
ZipfSampler::operator()(Rng &rng) const
{
    double u = rng.uniform();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    if (it == cdf_.end())
        return cdf_.size() - 1;
    return static_cast<std::size_t>(it - cdf_.begin());
}

double
ZipfSampler::pmf(std::size_t rank) const
{
    BOSS_ASSERT(rank < cdf_.size(), "rank out of range");
    return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

} // namespace boss
