/**
 * @file
 * Build-identity stamp: which binary produced this artifact?
 *
 * Every observability surface (stats JSON, metrics exposition,
 * serve startup log) carries the git hash and compiler baked in at
 * configure time, so a checked-in report, a scraped metric or a
 * pasted log line is attributable to an exact binary. The runtime
 * kernel tier is deliberately *not* here — it is a runtime dispatch
 * decision (BOSS_KERNELS / --kernels), so call sites append
 * kernels::activeTierName() themselves.
 */

#ifndef BOSS_COMMON_BUILDINFO_H
#define BOSS_COMMON_BUILDINFO_H

#include <string>
#include <string_view>

namespace boss::common
{

/** Short git hash at configure time; "unknown" outside a repo. */
std::string_view buildGitHash();

/** Compiler id and version the binary was built with. */
std::string_view buildCompiler();

/** One-line human stamp: "git <hash>, <compiler>". */
std::string buildStamp();

} // namespace boss::common

#endif // BOSS_COMMON_BUILDINFO_H
