/**
 * @file
 * Status/error reporting in the gem5 style.
 *
 * Severity model (mirrors gem5's logging.hh conventions):
 *  - panic():  an internal invariant was violated -- a simulator bug.
 *              Aborts so a debugger/core dump can capture state.
 *  - fatal():  the simulation cannot continue because of a user error
 *              (bad configuration, malformed input). Exits with code 1.
 *  - warn():   something is suspicious but the run can continue.
 *  - inform(): plain status output.
 */

#ifndef BOSS_COMMON_LOGGING_H
#define BOSS_COMMON_LOGGING_H

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

namespace boss
{

namespace detail
{

/** Renders "prefix: message" to stderr with source location. */
void emitLog(std::string_view prefix, std::string_view msg,
             const char *file, int line);

/** Concatenate all arguments through an ostringstream. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

[[noreturn]] void panicImpl(std::string msg, const char *file, int line);
[[noreturn]] void fatalImpl(std::string msg, const char *file, int line);
void warnImpl(std::string msg, const char *file, int line);
void informImpl(std::string msg);

/** Global verbosity switch: when false, inform() is suppressed. */
bool verboseEnabled();
void setVerbose(bool enabled);

} // namespace detail

/** Enable or disable inform() output (benchmarks silence it). */
inline void setVerbose(bool enabled) { detail::setVerbose(enabled); }

} // namespace boss

#define BOSS_PANIC(...)                                                    \
    ::boss::detail::panicImpl(::boss::detail::concat(__VA_ARGS__),         \
                              __FILE__, __LINE__)

#define BOSS_FATAL(...)                                                    \
    ::boss::detail::fatalImpl(::boss::detail::concat(__VA_ARGS__),         \
                              __FILE__, __LINE__)

#define BOSS_WARN(...)                                                     \
    ::boss::detail::warnImpl(::boss::detail::concat(__VA_ARGS__),          \
                             __FILE__, __LINE__)

#define BOSS_INFORM(...)                                                   \
    ::boss::detail::informImpl(::boss::detail::concat(__VA_ARGS__))

/** Invariant check that survives NDEBUG builds (unlike assert). */
#define BOSS_ASSERT(cond, ...)                                             \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::boss::detail::panicImpl(                                     \
                ::boss::detail::concat("assertion '", #cond,               \
                                       "' failed: ", __VA_ARGS__),         \
                __FILE__, __LINE__);                                       \
        }                                                                  \
    } while (0)

/**
 * Hot-path invariant check compiled out under NDEBUG (used on the
 * per-block decode path, where BOSS_ASSERT's always-on cost would
 * show up in profiles).
 */
#ifdef NDEBUG
#define BOSS_DEBUG_ASSERT(cond, ...) \
    do {                             \
    } while (0)
#else
#define BOSS_DEBUG_ASSERT(cond, ...) BOSS_ASSERT(cond, __VA_ARGS__)
#endif

#endif // BOSS_COMMON_LOGGING_H
