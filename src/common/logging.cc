#include "common/logging.h"

#include <atomic>

namespace boss
{
namespace detail
{

namespace
{
std::atomic<bool> g_verbose{true};
} // namespace

bool verboseEnabled() { return g_verbose.load(std::memory_order_relaxed); }

void setVerbose(bool enabled)
{
    g_verbose.store(enabled, std::memory_order_relaxed);
}

void
emitLog(std::string_view prefix, std::string_view msg,
        const char *file, int line)
{
    std::cerr << prefix << ": " << msg;
    if (file != nullptr)
        std::cerr << " [" << file << ":" << line << "]";
    std::cerr << std::endl;
}

void
panicImpl(std::string msg, const char *file, int line)
{
    emitLog("panic", msg, file, line);
    std::abort();
}

void
fatalImpl(std::string msg, const char *file, int line)
{
    emitLog("fatal", msg, file, line);
    std::exit(1);
}

void
warnImpl(std::string msg, const char *file, int line)
{
    emitLog("warn", msg, file, line);
}

void
informImpl(std::string msg)
{
    if (verboseEnabled())
        std::cout << "info: " << msg << std::endl;
}

} // namespace detail
} // namespace boss
