#include "common/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <memory>

namespace boss::common
{

namespace
{

/**
 * True while the current thread is executing pool work; nested
 * parallelFor calls from inside a job degrade to inline loops
 * instead of deadlocking on the pool's own workers.
 */
thread_local bool insidePoolJob = false;

} // namespace

ThreadPool::ThreadPool(std::size_t threads)
{
    if (threads == 0) {
        threads = std::max<std::size_t>(
            1, std::thread::hardware_concurrency());
    }
    size_ = threads;
    // The calling thread is execution slot 0; spawn the rest.
    workers_.reserve(size_ - 1);
    for (std::size_t w = 1; w < size_; ++w)
        workers_.emplace_back([this, w] { workerLoop(w); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (auto &t : workers_)
        t.join();
}

void
ThreadPool::runChunks(std::size_t workerId)
{
    for (;;) {
        std::size_t begin, end;
        const std::function<void(std::size_t, std::size_t)> *fn;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            begin = job_.nextChunk * job_.chunk;
            if (begin >= job_.n)
                return;
            ++job_.nextChunk;
            end = std::min(begin + job_.chunk, job_.n);
            fn = job_.fn;
        }
        std::exception_ptr error;
        for (std::size_t i = begin; i < end; ++i) {
            if (error == nullptr) {
                try {
                    (*fn)(i, workerId);
                } catch (...) {
                    error = std::current_exception();
                }
            }
        }
        bool finished;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (error != nullptr && job_.error == nullptr)
                job_.error = error;
            job_.pending -= end - begin;
            finished = job_.pending == 0;
        }
        if (finished)
            done_.notify_all();
    }
}

void
ThreadPool::runTasks(std::size_t workerId)
{
    for (;;) {
        std::function<void(std::size_t)> task;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (tasks_.empty())
                return;
            task = std::move(tasks_.front());
            tasks_.pop_front();
        }
        task(workerId);
    }
}

void
ThreadPool::workerLoop(std::size_t workerId)
{
    insidePoolJob = true;
    std::uint64_t seen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [&] {
                return stopping_ || generation_ != seen ||
                       !tasks_.empty();
            });
            if (stopping_)
                return;
            seen = generation_;
        }
        runTasks(workerId);
        runChunks(workerId);
    }
}

void
ThreadPool::post(std::function<void(std::size_t)> task)
{
    if (size_ == 1) {
        // No workers to hand off to: run inline. Callers see the
        // same "executed exactly once, completion signalled"
        // behavior, just without overlap.
        task(0);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        tasks_.push_back(std::move(task));
    }
    wake_.notify_one();
}

void
ThreadPool::parallelFor(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t)> &fn)
{
    if (n == 0)
        return;
    auto jobStart = std::chrono::steady_clock::now();
    if (size_ == 1 || n == 1 || insidePoolJob) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i, 0);
        sampleJob(n, jobStart);
        return;
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        job_.n = n;
        // Several chunks per worker so an expensive item does not
        // serialize its chunk-mates behind it, while chunks stay
        // large enough to amortize the claim lock.
        job_.chunk = std::max<std::size_t>(1, n / (size_ * 4));
        job_.nextChunk = 0;
        job_.pending = n;
        job_.fn = &fn;
        job_.error = nullptr;
        ++generation_;
    }
    wake_.notify_all();
    // The caller participates as slot 0 instead of idling.
    insidePoolJob = true;
    runChunks(0);
    insidePoolJob = false;

    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        done_.wait(lock, [&] { return job_.pending == 0; });
        job_.fn = nullptr;
        error = job_.error;
    }
    sampleJob(n, jobStart);
    if (error != nullptr)
        std::rethrow_exception(error);
}

void
ThreadPool::sampleJob(std::size_t n,
                      std::chrono::steady_clock::time_point start)
{
    double micros = std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    std::lock_guard<std::mutex> lock(mutex_);
    ++jobs_;
    items_ += n;
    queueDepth_.sample(static_cast<double>(n));
    jobMicros_.sample(micros);
}

void
ThreadPool::registerStats(stats::Group &group)
{
    group.addCounter("jobs", &jobs_, "parallelFor invocations");
    group.addCounter("items", &items_, "work items executed");
    group.addHistogram("queue_depth", &queueDepth_,
                       "items queued per parallelFor job");
    group.addHistogram("job_wall_us", &jobMicros_,
                       "parallelFor wall time (us)");
}

namespace
{

std::unique_ptr<ThreadPool> &
globalSlot()
{
    static std::unique_ptr<ThreadPool> pool;
    return pool;
}

std::mutex &
globalMutex()
{
    static std::mutex m;
    return m;
}

} // namespace

ThreadPool &
ThreadPool::global()
{
    std::lock_guard<std::mutex> lock(globalMutex());
    auto &slot = globalSlot();
    if (slot == nullptr)
        slot = std::make_unique<ThreadPool>();
    return *slot;
}

void
ThreadPool::setGlobalThreads(std::size_t threads)
{
    std::lock_guard<std::mutex> lock(globalMutex());
    auto &slot = globalSlot();
    if (slot != nullptr && threads != 0 && slot->size() == threads)
        return; // already the requested size
    slot = std::make_unique<ThreadPool>(threads);
}

} // namespace boss::common
