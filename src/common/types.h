/**
 * @file
 * Fundamental value types shared across the BOSS reproduction.
 *
 * Keeping these in one header makes the units used throughout the
 * codebase unambiguous: docIDs and term frequencies are 32-bit as in
 * the paper's index layout, memory addresses are 64-bit byte
 * addresses into the modeled SCM pool, and simulated time is kept in
 * integer picoseconds so that clock domains with non-integral cycle
 * times (e.g. the 2.7 GHz host CPU) stay exact enough for cycle
 * accounting.
 */

#ifndef BOSS_COMMON_TYPES_H
#define BOSS_COMMON_TYPES_H

#include <cstdint>

namespace boss
{

/** Document identifier within a shard (sorted, dense). */
using DocId = std::uint32_t;

/** Term identifier assigned by the index builder (dense). */
using TermId = std::uint32_t;

/** Within-document term frequency. */
using TermFreq = std::uint32_t;

/** Relevance score (BM25). Timing models use fixed point internally. */
using Score = float;

/** Byte address into the modeled memory pool. */
using Addr = std::uint64_t;

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** Clock cycles of some clock domain. */
using Cycles = std::uint64_t;

/** An invalid/sentinel docID (posting lists never contain it). */
inline constexpr DocId kInvalidDocId = 0xFFFFFFFFu;

/** Number of docID/tf entries per compressed block (paper Sec. IV-A). */
inline constexpr std::uint32_t kBlockSize = 128;

/** Ticks per second: 1 tick == 1 ps. */
inline constexpr Tick kTicksPerSecond = 1'000'000'000'000ULL;

} // namespace boss

#endif // BOSS_COMMON_TYPES_H
