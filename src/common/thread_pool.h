/**
 * @file
 * Fixed-size worker thread pool with a deterministic parallel-for.
 *
 * The pool is the repo's one concurrency primitive: batch query
 * execution, trace building and the benches all funnel through
 * parallelFor(). Determinism contract: the function is invoked
 * exactly once for every index i in [0, n), and callers place the
 * result of item i into slot i of a preallocated output — so the
 * assembled output is bit-identical to a serial loop regardless of
 * the worker count or the interleaving of chunks across workers.
 * Workers share nothing else; anything mutable must be per-item (or
 * per-worker via the workerId passed to the callback).
 */

#ifndef BOSS_COMMON_THREAD_POOL_H
#define BOSS_COMMON_THREAD_POOL_H

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "stats/stats.h"

namespace boss::common
{

class ThreadPool
{
  public:
    /**
     * @param threads worker count; 0 means hardware_concurrency()
     *        (at least 1). A pool of size 1 runs everything inline
     *        on the calling thread — no workers are spawned.
     */
    explicit ThreadPool(std::size_t threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of execution slots (workers, or 1 when inline). */
    std::size_t size() const { return size_; }

    /**
     * Invoke fn(i, workerId) once for every i in [0, n), spreading
     * contiguous chunks over the workers; blocks until all items
     * completed. workerId < size() identifies the executing slot so
     * callers can keep per-worker scratch (e.g. a QueryArena).
     *
     * The first exception thrown by fn is rethrown on the calling
     * thread after all workers have drained. Not reentrant: calls
     * from inside a pool job run the loop inline on that worker.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t item,
                                              std::size_t workerId)> &fn);

    /** Convenience overload without the workerId argument. */
    void
    parallelFor(std::size_t n,
                const std::function<void(std::size_t item)> &fn)
    {
        parallelFor(n, [&fn](std::size_t i, std::size_t) { fn(i); });
    }

    /**
     * Enqueue one task for asynchronous execution on a pool worker;
     * returns immediately. task(workerId) runs exactly once, with
     * workerId < size() identifying the executing slot (the same
     * per-worker-scratch contract as parallelFor). On a pool of size
     * 1 the task runs inline before post() returns. Tasks and
     * parallelFor jobs share the workers: tasks are picked up
     * between jobs and by workers that have drained their chunks.
     *
     * post() is the serving layer's pipelining primitive: it lets a
     * consumer thread keep queries' trace builds in flight while it
     * replays completed ones. The caller owns completion tracking
     * (e.g. a counter + condition variable) and must not destroy the
     * pool, or resize the global pool, with tasks outstanding; a
     * task that throws terminates (tasks have nowhere to rethrow —
     * catch in the task and report through its completion channel).
     */
    void post(std::function<void(std::size_t workerId)> task);

    /**
     * Register the pool's observability stats into @p group:
     * per-job queue depth (items per parallelFor) and job latency
     * histograms plus jobs/items counters. The pool outlives any
     * registration made through the global() accessor, so pointers
     * stay valid for the life of the process.
     */
    void registerStats(stats::Group &group);

    /**
     * The process-wide pool used by the batch search paths. Created
     * on first use with hardware_concurrency() workers.
     */
    static ThreadPool &global();

    /**
     * Resize the global pool (e.g. the --threads flag, the scaling
     * bench). Must not be called while a parallelFor is in flight.
     */
    static void setGlobalThreads(std::size_t threads);

  private:
    struct Job
    {
        std::size_t n = 0;
        std::size_t chunk = 1;
        std::size_t nextChunk = 0;   ///< next chunk index to claim
        std::size_t pending = 0;     ///< items not yet completed
        const std::function<void(std::size_t, std::size_t)> *fn =
            nullptr;
        std::exception_ptr error;
    };

    void workerLoop(std::size_t workerId);
    /** Claim and run chunks of the active job until it is drained. */
    void runChunks(std::size_t workerId);
    /** Pop and run queued post() tasks until the queue is empty. */
    void runTasks(std::size_t workerId);
    /** Record one completed parallelFor into the stats (under lock). */
    void sampleJob(std::size_t n,
                   std::chrono::steady_clock::time_point start);

    std::size_t size_ = 1;
    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable wake_;  ///< workers wait for a job
    std::condition_variable done_;  ///< caller waits for completion
    Job job_;
    std::deque<std::function<void(std::size_t)>> tasks_;
    std::uint64_t generation_ = 0; ///< bumps when a new job is posted
    bool stopping_ = false;

    // Observability (sampled once per parallelFor, under mutex_).
    stats::Counter jobs_;
    stats::Counter items_;
    stats::Histogram queueDepth_{0.0, 4096.0, 64};
    /** Log-bucketed: job wall times span 1us..10s (7 decades). */
    stats::Histogram jobMicros_{1.0, 1e7, 112, stats::Scale::Log};
};

} // namespace boss::common

#endif // BOSS_COMMON_THREAD_POOL_H
