/**
 * @file
 * Small bit-manipulation helpers used by the compression codecs and
 * the programmable decompression datapath model.
 */

#ifndef BOSS_COMMON_BITOPS_H
#define BOSS_COMMON_BITOPS_H

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

namespace boss
{

/**
 * Number of bits needed to represent @p v (0 needs 0 bits).
 */
inline constexpr std::uint32_t
bitsFor(std::uint32_t v)
{
    return v == 0 ? 0u : 32u - static_cast<std::uint32_t>(std::countl_zero(v));
}

/**
 * A mask with the low @p n bits set. @p n may be 0..32.
 */
inline constexpr std::uint32_t
maskLow(std::uint32_t n)
{
    return n >= 32 ? 0xFFFFFFFFu : ((1u << n) - 1u);
}

/**
 * Round @p v up to the next multiple of @p align (power of two or not).
 */
inline constexpr std::uint64_t
roundUp(std::uint64_t v, std::uint64_t align)
{
    return align == 0 ? v : ((v + align - 1) / align) * align;
}

/** Integer ceil division. */
inline constexpr std::uint64_t
ceilDiv(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/**
 * Bit-granular writer into a byte buffer, LSB-first within each
 * 32-bit word. Used by BitPacking and PForDelta encoders.
 */
class BitWriter
{
  public:
    explicit BitWriter(std::vector<std::uint8_t> &out)
        : out_(out), acc_(0), bits_(0)
    {}

    /** Append the low @p width bits of @p value. */
    void
    put(std::uint32_t value, std::uint32_t width)
    {
        acc_ |= static_cast<std::uint64_t>(value & maskLow(width)) << bits_;
        bits_ += width;
        while (bits_ >= 8) {
            out_.push_back(static_cast<std::uint8_t>(acc_ & 0xFF));
            acc_ >>= 8;
            bits_ -= 8;
        }
    }

    /** Flush any partial byte (zero padded). */
    void
    flush()
    {
        if (bits_ > 0) {
            out_.push_back(static_cast<std::uint8_t>(acc_ & 0xFF));
            acc_ = 0;
            bits_ = 0;
        }
    }

  private:
    std::vector<std::uint8_t> &out_;
    std::uint64_t acc_;
    std::uint32_t bits_;
};

/**
 * Bit-granular reader matching BitWriter's layout.
 */
class BitReader
{
  public:
    BitReader(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size), pos_(0), acc_(0), bits_(0)
    {}

    /** Read @p width bits (width <= 32). Returns 0 past the end. */
    std::uint32_t
    get(std::uint32_t width)
    {
        if (bits_ < width) {
            // Branchless 64-bit refill: top the accumulator up with
            // as many whole bytes as fit (4..8, since bits_ < 32) in
            // one unaligned load instead of a byte-at-a-time loop.
            // Bytes past the stream end read as zero; pos_ advances
            // past size_ exactly like the old per-byte loop did.
            std::uint32_t take = (64 - bits_) >> 3;
            std::size_t rd = pos_ < size_ ? pos_ : size_;
            std::size_t avail = size_ - rd;
            std::size_t m = take < avail ? take : avail;
            std::uint64_t chunk = 0;
            std::memcpy(&chunk, data_ + rd, m);
            acc_ |= chunk << bits_;
            pos_ += take;
            bits_ += 8 * take;
        }
        auto v = static_cast<std::uint32_t>(acc_ & maskLow(width));
        acc_ >>= width;
        bits_ -= width;
        return v;
    }

    /** Bytes consumed so far (rounded up to whole bytes). */
    std::size_t
    consumed() const
    {
        // pos_ counts bytes pulled into the accumulator; subtract the
        // whole bytes still buffered so the answer stays exactly
        // ceil(bitsRead / 8) regardless of refill batching.
        std::size_t used = pos_ - (bits_ >> 3);
        return used > size_ ? size_ : used;
    }

  private:
    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_;
    std::uint64_t acc_;
    std::uint32_t bits_;
};

} // namespace boss

#endif // BOSS_COMMON_BITOPS_H
