/**
 * @file
 * Deterministic random number generation for workload synthesis.
 *
 * All experiment workloads are generated from seeded streams so that
 * every bench/test run is reproducible bit-for-bit. The core
 * generator is xoshiro256**, seeded via SplitMix64.
 */

#ifndef BOSS_COMMON_RNG_H
#define BOSS_COMMON_RNG_H

#include <cmath>
#include <cstdint>
#include <vector>

namespace boss
{

/**
 * Derive an independent child seed from (seed, stream).
 *
 * SplitMix64 finalizer over the golden-ratio-spaced stream index:
 * child streams are statistically independent for any (seed, stream)
 * pair, unlike ad-hoc xor/multiply mixes whose streams can collide.
 * This is the one sanctioned way to fan a base seed out into
 * per-shard / per-term / per-query generators: every consumer
 * derives its own stream from the base seed and an index, never by
 * advancing a generator shared across consumers — so generation is
 * reproducible regardless of the order (or parallelism) in which the
 * consumers run.
 */
constexpr std::uint64_t
splitSeed(std::uint64_t seed, std::uint64_t stream)
{
    std::uint64_t z = seed + (stream + 1) * 0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

/**
 * xoshiro256** PRNG with convenience samplers.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x5EED5EED5EEDULL) { reseed(seed); }

    /** Re-initialize state from a 64-bit seed via SplitMix64. */
    void
    reseed(std::uint64_t seed)
    {
        for (auto &word : s_) {
            seed += 0x9E3779B97F4A7C15ULL;
            std::uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
            z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's nearly-divisionless bounded sampling.
        __uint128_t m = static_cast<__uint128_t>(next()) * bound;
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Standard normal (Box-Muller; one value per call). */
    double
    normal(double mean = 0.0, double stddev = 1.0)
    {
        double u1 = uniform();
        double u2 = uniform();
        if (u1 < 1e-300)
            u1 = 1e-300;
        double z = std::sqrt(-2.0 * std::log(u1)) *
                   std::cos(2.0 * M_PI * u2);
        return mean + stddev * z;
    }

    /** Geometric distribution on {1, 2, ...} with success prob p. */
    std::uint32_t
    geometric(double p)
    {
        double u = uniform();
        if (u >= 1.0)
            u = 0.999999999;
        auto v = static_cast<std::uint32_t>(
            std::floor(std::log1p(-u) / std::log1p(-p))) + 1u;
        return v;
    }

    /** True with probability p. */
    bool chance(double p) { return uniform() < p; }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s_[4];
};

/**
 * Zipf-distributed sampler over ranks {0, ..., n-1} with exponent s.
 *
 * Uses the precomputed-CDF + binary search method; construction is
 * O(n) and sampling O(log n). Suitable for the term-popularity and
 * synthetic-stream distributions in the paper's Figure 3 workloads.
 */
class ZipfSampler
{
  public:
    ZipfSampler(std::size_t n, double s);

    /** Draw one rank in [0, n). Rank 0 is the most popular. */
    std::size_t operator()(Rng &rng) const;

    /** Probability mass of a given rank. */
    double pmf(std::size_t rank) const;

    std::size_t size() const { return cdf_.size(); }

  private:
    std::vector<double> cdf_;
};

} // namespace boss

#endif // BOSS_COMMON_RNG_H
