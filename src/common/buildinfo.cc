#include "common/buildinfo.h"

namespace boss::common
{

namespace
{

#ifndef BOSS_GIT_HASH
#define BOSS_GIT_HASH "unknown"
#endif

#if defined(__clang__)
constexpr const char *kCompiler = "clang " __clang_version__;
#elif defined(__GNUC__)
constexpr const char *kCompiler = "gcc " __VERSION__;
#else
constexpr const char *kCompiler = "unknown-compiler";
#endif

} // namespace

std::string_view
buildGitHash()
{
    return BOSS_GIT_HASH;
}

std::string_view
buildCompiler()
{
    return kCompiler;
}

std::string
buildStamp()
{
    return "git " + std::string(buildGitHash()) + ", " +
           std::string(buildCompiler());
}

} // namespace boss::common
