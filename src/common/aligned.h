/**
 * @file
 * Cache-line-aligned vector storage for the SIMD kernel layer.
 *
 * Decode scratch buffers and compressed payloads are the hottest
 * SIMD load/store targets in the engine; allocating them on 64-byte
 * boundaries keeps every vector load inside a single cache line and
 * lets kernels use aligned stores where profitable. The allocator is
 * a thin shim over the C++17 aligned operator new, so AlignedVec<T>
 * behaves exactly like std::vector<T> (same growth, same iterators,
 * same element layout) -- only the allocation alignment changes.
 *
 * Kernels never rely on trailing slack past size(): every kernel in
 * src/kernels/ is written to stay strictly inside [data, data+size),
 * so AlignedVec payloads remain ASan-clean under container checks.
 */

#ifndef BOSS_COMMON_ALIGNED_H
#define BOSS_COMMON_ALIGNED_H

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace boss
{

/** Alignment (bytes) of every kernel-visible buffer: one cache line. */
inline constexpr std::size_t kKernelAlignment = 64;

/**
 * Minimal allocator handing out kKernelAlignment-aligned blocks.
 * Stateless: all instances compare equal, so container moves and
 * swaps are O(1) just like with std::allocator.
 */
template <typename T>
class AlignedAllocator
{
  public:
    using value_type = T;

    AlignedAllocator() noexcept = default;
    template <typename U>
    AlignedAllocator(const AlignedAllocator<U> &) noexcept
    {}

    T *
    allocate(std::size_t n)
    {
        return static_cast<T *>(::operator new(
            n * sizeof(T), std::align_val_t{kKernelAlignment}));
    }

    void
    deallocate(T *p, std::size_t) noexcept
    {
        ::operator delete(p, std::align_val_t{kKernelAlignment});
    }

    template <typename U>
    bool
    operator==(const AlignedAllocator<U> &) const noexcept
    {
        return true;
    }
};

/** std::vector with cache-line-aligned storage. */
template <typename T>
using AlignedVec = std::vector<T, AlignedAllocator<T>>;

/** True when @p p sits on a kKernelAlignment boundary. */
inline bool
isKernelAligned(const void *p)
{
    return reinterpret_cast<std::uintptr_t>(p) % kKernelAlignment == 0;
}

} // namespace boss

#endif // BOSS_COMMON_ALIGNED_H
