/**
 * @file
 * Q16.16 fixed-point arithmetic.
 *
 * The BOSS scoring module uses fixed-point dividers/multipliers/adders
 * (paper Sec. IV-C, "Scoring Module"). We model the same precision so
 * that hardware-side scores can differ slightly from the float oracle,
 * exactly as real RTL would; tests bound that error.
 */

#ifndef BOSS_COMMON_FIXED_POINT_H
#define BOSS_COMMON_FIXED_POINT_H

#include <cstdint>
#include <limits>

namespace boss
{

/**
 * Signed Q16.16 fixed-point value with saturating conversions.
 */
class Fixed
{
  public:
    static constexpr int kFracBits = 16;
    static constexpr std::int64_t kOne = std::int64_t{1} << kFracBits;

    constexpr Fixed() : raw_(0) {}

    static constexpr Fixed
    fromRaw(std::int64_t raw)
    {
        Fixed f;
        f.raw_ = saturate(raw);
        return f;
    }

    static constexpr Fixed
    fromInt(std::int32_t v)
    {
        return fromRaw(static_cast<std::int64_t>(v) << kFracBits);
    }

    static Fixed
    fromDouble(double v)
    {
        return fromRaw(static_cast<std::int64_t>(
            v * static_cast<double>(kOne)));
    }

    double
    toDouble() const
    {
        return static_cast<double>(raw_) / static_cast<double>(kOne);
    }

    std::int64_t raw() const { return raw_; }

    friend constexpr Fixed
    operator+(Fixed a, Fixed b)
    {
        return fromRaw(a.raw_ + b.raw_);
    }

    friend constexpr Fixed
    operator-(Fixed a, Fixed b)
    {
        return fromRaw(a.raw_ - b.raw_);
    }

    friend constexpr Fixed
    operator*(Fixed a, Fixed b)
    {
        // 32.32 intermediate then renormalize to Q16.16.
        __int128 p = static_cast<__int128>(a.raw_) * b.raw_;
        return fromRaw(static_cast<std::int64_t>(p >> kFracBits));
    }

    friend constexpr Fixed
    operator/(Fixed a, Fixed b)
    {
        if (b.raw_ == 0)
            return fromRaw(std::numeric_limits<std::int32_t>::max());
        __int128 n = static_cast<__int128>(a.raw_) << kFracBits;
        return fromRaw(static_cast<std::int64_t>(n / b.raw_));
    }

    friend constexpr bool
    operator<(Fixed a, Fixed b) { return a.raw_ < b.raw_; }
    friend constexpr bool
    operator<=(Fixed a, Fixed b) { return a.raw_ <= b.raw_; }
    friend constexpr bool
    operator>(Fixed a, Fixed b) { return a.raw_ > b.raw_; }
    friend constexpr bool
    operator>=(Fixed a, Fixed b) { return a.raw_ >= b.raw_; }
    friend constexpr bool
    operator==(Fixed a, Fixed b) { return a.raw_ == b.raw_; }

  private:
    static constexpr std::int64_t
    saturate(std::int64_t raw)
    {
        // Keep 32 integer bits + 16 fraction bits of headroom.
        constexpr std::int64_t kMax = (std::int64_t{1} << 47) - 1;
        constexpr std::int64_t kMin = -(std::int64_t{1} << 47);
        if (raw > kMax)
            return kMax;
        if (raw < kMin)
            return kMin;
        return raw;
    }

    std::int64_t raw_;
};

} // namespace boss

#endif // BOSS_COMMON_FIXED_POINT_H
