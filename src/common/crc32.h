/**
 * @file
 * CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
 *
 * One table-driven implementation shared by the index builder (per-
 * block payload CRCs), the serializer (header checksum + whole-file
 * CRC) and the engine's decode-time verification. The incremental
 * Crc32 class lets the serializer checksum a stream as it writes it,
 * without buffering the file.
 */

#ifndef BOSS_COMMON_CRC32_H
#define BOSS_COMMON_CRC32_H

#include <array>
#include <cstddef>
#include <cstdint>

namespace boss
{

namespace detail
{

constexpr std::array<std::uint32_t, 256>
makeCrc32Table()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int bit = 0; bit < 8; ++bit)
            c = (c >> 1) ^ ((c & 1u) ? 0xEDB88320u : 0u);
        table[i] = c;
    }
    return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table =
    makeCrc32Table();

} // namespace detail

/** Incremental CRC-32 over a byte stream. */
class Crc32
{
  public:
    void
    update(const void *data, std::size_t n)
    {
        const auto *p = static_cast<const std::uint8_t *>(data);
        for (std::size_t i = 0; i < n; ++i)
            state_ = detail::kCrc32Table[(state_ ^ p[i]) & 0xFFu] ^
                     (state_ >> 8);
    }

    /** The CRC of everything update()d so far. */
    std::uint32_t value() const { return state_ ^ 0xFFFFFFFFu; }

    void reset() { state_ = 0xFFFFFFFFu; }

  private:
    std::uint32_t state_ = 0xFFFFFFFFu;
};

/** One-shot CRC-32 of @p n bytes at @p data. */
inline std::uint32_t
crc32(const void *data, std::size_t n)
{
    Crc32 crc;
    crc.update(data, n);
    return crc.value();
}

} // namespace boss

#endif // BOSS_COMMON_CRC32_H
