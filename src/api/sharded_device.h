/**
 * @file
 * Host-side scatter/merge over N simulated BOSS devices.
 *
 * A ShardedDevice owns one accel::Device per index shard (document
 * partition, see index/sharding.h). Each query is scattered to every
 * shard, runs the full per-device hardware top-k there, and the
 * per-shard heaps are merged on the host into the global top-k after
 * rebasing local docIDs to global ones. Because every shard runs the
 * same k and stores globally-normalized scores, the merge is exact:
 * results are bit-identical to a single device holding the whole
 * corpus, tie-breaks (score desc, global docID asc) included.
 */

#ifndef BOSS_API_SHARDED_DEVICE_H
#define BOSS_API_SHARDED_DEVICE_H

#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "boss/device.h"
#include "common/logging.h"
#include "index/sharding.h"

namespace boss::api
{

/** Configuration: the shard count plus the per-shard device. */
struct ShardedDeviceConfig
{
    std::uint32_t shards = 1;
    /**
     * Template for every shard's device (cores, memory, k, kind).
     * The label is overridden per shard ("shard0", "shard1", ...)
     * so trace lanes stay distinguishable in merged timelines.
     */
    accel::DeviceConfig device;
};

/**
 * Result of one sharded search. Per-query results carry global
 * docIDs; counters aggregate over shards. The shards are modeled as
 * running concurrently (one device each), so the simulated batch
 * time is the slowest shard's makespan while traffic counters sum.
 */
struct ShardedOutcome
{
    std::vector<engine::Result> topk; ///< last query (cf. Device)
    std::vector<std::vector<engine::Result>> perQuery;
    double simSeconds = 0.0;       ///< max over shards
    std::uint64_t deviceBytes = 0; ///< sum over shards
    std::uint64_t evaluatedDocs = 0;
    std::uint64_t skippedDocs = 0;
    /** Per-shard simulated makespans (the scaling bench's input). */
    std::vector<double> shardSeconds;
    /**
     * Shards that were down and contributed nothing: every query
     * completed, but with partial corpus coverage. Empty on healthy
     * runs (results then bit-identical to pre-resilience builds).
     */
    std::vector<std::uint32_t> deadShards;
    std::uint64_t shardsDropped = 0; ///< deadShards.size(), as counter
    std::uint64_t crcRetries = 0;    ///< summed over live shards
    std::uint64_t blocksDropped = 0; ///< summed over live shards
};

class ShardedDevice
{
  public:
    explicit ShardedDevice(ShardedDeviceConfig config = {});
    ~ShardedDevice();

    /** Place prebuilt shards (and their partition) on the devices. */
    void loadShards(index::IndexShards shards);

    /** Shard a monolithic index across the configured devices. */
    void loadIndex(const index::InvertedIndex &global);

    /**
     * Shard a text index: the posting lists are partitioned while
     * every shard shares the (replicated) lexicon, so expression
     * queries resolve identically on each device.
     */
    void loadTextIndex(index::TextIndex ti);

    /** Load and shard a text-index file (see loadTextIndex). */
    void loadTextIndexFile(const std::string &path);

    std::uint32_t numShards() const
    {
        return static_cast<std::uint32_t>(devices_.size());
    }
    const index::ShardMap &map() const { return map_; }
    accel::Device &shard(std::uint32_t s) { return *devices_[s]; }

    /**
     * Tombstone-delete documents by global docID across the shard
     * group: every subsequent query filters them before its top-k.
     * Lucene-style semantics — the baked BM25 statistics (idf,
     * norms) are NOT recomputed, so surviving docs keep their
     * original scores (the live index in index/segments/ is the
     * restating path). Unknown or already-deleted ids are ignored.
     * Not thread-safe against in-flight queries: call it quiescent.
     */
    void deleteDocs(const std::vector<DocId> &globalDocs);

    /** Scatter one query to all shards and merge the top-k. */
    ShardedOutcome search(const workload::Query &query);
    ShardedOutcome search(const std::string &qExpression);

    /**
     * Scatter a batch: each shard executes the whole batch through
     * its own device (trace building fans out over the shared host
     * thread pool), then each query's per-shard top-k lists are
     * merged on the host. Shard builds are dispatched one at a time
     * — the pool is not reentrant — but a completed shard's replay
     * is posted to a pool worker, so shard s+1's trace build
     * overlaps shard s's replay (with no recorder attached; replay
     * lane registration is single-threaded, so trace-capture runs
     * fall back to the sequential build→replay loop).
     */
    ShardedOutcome
    searchBatch(const std::vector<workload::Query> &queries);
    ShardedOutcome
    searchBatch(const std::vector<std::string> &qExpressions);

    // ---- Pipelined execution (see boss/device.h) ----

    /** Plan one query (the lexicon is replicated across shards). */
    engine::QueryPlan plan(const workload::Query &query) const
    {
        return engine::planQuery(query);
    }
    engine::QueryPlan plan(const std::string &qExpression)
    {
        BOSS_ASSERT(!devices_.empty(), "plan() before loadShards()");
        return devices_[0]->plan(qExpression);
    }

    /**
     * One query built on every live shard. Dead shards hold an
     * empty slot and are dropped from the merge in finishBuilt().
     */
    struct Built
    {
        std::vector<accel::BuiltQuery> perShard;
    };

    /**
     * Stage 1 (thread-safe): build one query's traces on every live
     * shard. Concurrent calls must pass distinct arenas.
     */
    Built buildQuery(const engine::QueryPlan &plan,
                     engine::QueryArena &arena) const;

    /**
     * Stage 2 (serial): replay the per-shard builds on their device
     * models, rebase local docIDs and merge the global top-k. The
     * outcome carries exactly one perQuery entry.
     */
    ShardedOutcome finishBuilt(Built built);

    // ---- Observability (see boss/device.h) ----

    /**
     * Attach one recorder observing every shard; per-shard lanes are
     * named by the device labels ("shard0 (simulated ticks)", ...).
     */
    void setRecorder(trace::Recorder *recorder);

    /** Record per-query summaries on every shard. */
    void enableQuerySummaries(bool enabled);

    /**
     * Host-level per-query aggregates for the last batch: work
     * counters summed over shards, cycles = max over shards (the
     * devices run concurrently; a query completes when its slowest
     * shard does). Deterministic at any thread count.
     */
    std::vector<trace::QuerySummary> aggregatedSummaries() const;

    /** Per-shard summaries of the last batch (local docID space). */
    const std::vector<trace::QuerySummary> &
    shardSummaries(std::uint32_t s) const
    {
        return devices_[s]->querySummaries();
    }

    /** Capture per-shard replay stats for writeStatsJson. */
    void enableStatsCapture(bool enabled);

    /**
     * One JSON document with every shard's stats under "shard_<i>"
     * keys plus the shard count and document partition.
     */
    void writeStatsJson(std::ostream &os) const;

  private:
    template <typename Batch>
    ShardedOutcome runBatch(const Batch &batch, std::size_t nQueries);

    /** Re-apply sticky observability settings to a new device. */
    void applyObservability(accel::Device &dev);

    ShardedDeviceConfig config_;
    index::ShardMap map_;
    std::vector<std::unique_ptr<accel::Device>> devices_;
    /** Per-shard delete bitmaps (created on first deleteDocs). */
    std::vector<std::shared_ptr<index::TombstoneSet>> tombstones_;
    /** Per-worker decode scratch for the pipelined batch path. */
    std::vector<engine::QueryArena> arenas_;
    // Observability settings outlive reloads (and may be set before
    // the first load creates the per-shard devices).
    trace::Recorder *recorder_ = nullptr;
    bool summariesEnabled_ = false;
    bool statsCaptureEnabled_ = false;
};

} // namespace boss::api

#endif // BOSS_API_SHARDED_DEVICE_H
