#include "api/offload.h"

#include <fstream>
#include <map>
#include <memory>
#include <sstream>

#include "common/logging.h"
#include "compress/datapath.h"
#include "engine/plan.h"

namespace boss::api
{

namespace
{

struct ApiState
{
    std::unique_ptr<accel::Device> device;
    /** Programmed decompression datapaths, one per scheme. */
    std::map<compress::Scheme, compress::DatapathConfig> programs;
};

ApiState &
state()
{
    static ApiState s;
    return s;
}

compress::Scheme
schemeByName(const std::string &name)
{
    for (compress::Scheme s : compress::kAllSchemes) {
        if (name == schemeName(s))
            return s;
    }
    BOSS_FATAL("config file: unknown scheme '", name, "'");
}

/**
 * Parse the device configuration file: "[scheme <NAME>]" headers,
 * each followed by either the word "builtin" or an inline datapath
 * program (terminated by the next section or EOF).
 */
std::map<compress::Scheme, compress::DatapathConfig>
parseConfigFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        BOSS_FATAL("cannot open config file '", path, "'");

    std::map<compress::Scheme, compress::DatapathConfig> programs;
    std::string line;
    std::optional<compress::Scheme> current;
    std::string body;

    auto flush = [&]() {
        if (!current.has_value())
            return;
        // Trim to see if the body is just "builtin".
        std::string trimmed;
        for (char c : body) {
            if (!std::isspace(static_cast<unsigned char>(c)))
                trimmed += c;
        }
        if (trimmed.empty() || trimmed == "builtin") {
            programs[*current] = compress::parseDatapathConfig(
                compress::builtinConfigText(*current));
        } else {
            programs[*current] = compress::parseDatapathConfig(body);
        }
        body.clear();
    };

    while (std::getline(is, line)) {
        if (line.rfind("[scheme ", 0) == 0) {
            flush();
            auto close = line.find(']');
            if (close == std::string::npos)
                BOSS_FATAL("config file: malformed section '", line,
                           "'");
            current = schemeByName(line.substr(8, close - 8));
            continue;
        }
        if (current.has_value()) {
            body += line;
            body += '\n';
        }
    }
    flush();
    if (programs.empty())
        BOSS_FATAL("config file '", path,
                   "' programs no compression scheme");
    return programs;
}

} // namespace

int
init(const std::string &indexFile, const std::string &configFile)
{
    ApiState &s = state();
    s.programs = parseConfigFile(configFile);
    s.device = std::make_unique<accel::Device>();
    s.device->loadIndexFile(indexFile);

    // Validate that every scheme used by the index is programmed.
    for (const auto &list : s.device->index().lists()) {
        if (list.docCount == 0)
            continue;
        if (s.programs.find(list.scheme) == s.programs.end()) {
            BOSS_FATAL("index uses scheme ", schemeName(list.scheme),
                       " but the config file does not program it");
        }
    }
    return static_cast<int>(s.programs.size());
}

void
shutdown()
{
    state().device.reset();
    state().programs.clear();
}

bool
initialized()
{
    return state().device != nullptr;
}

accel::Device &
device()
{
    BOSS_ASSERT(initialized(), "API used before init()");
    return *state().device;
}

SearchArgs
makeArgs(const workload::Query &query, ResultRecord *resultBuffer,
         std::uint32_t resultSize)
{
    const accel::Device &dev = device();
    SearchArgs args;
    args.qExpression = query.toExpression();
    args.nTerm = query.terms.size();
    for (std::size_t i = 0; i < query.terms.size(); ++i) {
        TermId t = query.terms[i];
        args.compType[i] = dev.index().list(t).scheme;
        args.listAddr[i] = dev.layout().list(t).metaAddr;
    }
    args.resultAddr = resultBuffer;
    args.resultSize = resultSize;
    return args;
}

namespace
{

/**
 * Validate one search() argument pack against the initialized
 * device: term count, result buffer, expression terms, and the
 * caller-supplied per-term scheme/address metadata. Warns and
 * returns false on the first violation (the intrinsic's -1 path).
 */
bool
validateArgs(const SearchArgs &args)
{
    if (args.nTerm == 0 || args.nTerm > kMaxTerms) {
        BOSS_WARN("search(): nTerm out of range: ", args.nTerm);
        return false;
    }
    if (args.resultAddr == nullptr || args.resultSize == 0) {
        BOSS_WARN("search(): no result buffer");
        return false;
    }

    accel::Device &dev = device();

    // Parse the expression, resolving and validating terms.
    std::vector<TermId> seen;
    auto resolver = [&](std::string_view name) {
        TermId t = engine::defaultTermResolver(name);
        if (t >= dev.index().numTerms() ||
            dev.index().list(t).docCount == 0) {
            BOSS_FATAL("search(): unknown term '", std::string(name),
                       "'");
        }
        seen.push_back(t);
        return t;
    };
    auto expr = engine::parseExpression(args.qExpression, resolver);
    (void)expr;
    if (seen.size() != args.nTerm) {
        BOSS_WARN("search(): expression has ", seen.size(),
                  " terms but nTerm=", args.nTerm);
        return false;
    }

    // Validate the caller-supplied per-term metadata.
    for (std::size_t i = 0; i < seen.size(); ++i) {
        TermId t = seen[i];
        if (args.compType[i] != dev.index().list(t).scheme) {
            BOSS_WARN("search(): compType[", i, "] mismatch");
            return false;
        }
        if (args.listAddr[i] != dev.layout().list(t).metaAddr) {
            BOSS_WARN("search(): listAddr[", i, "] mismatch");
            return false;
        }
        // The decompression module must be programmed for it.
        if (state().programs.find(args.compType[i]) ==
            state().programs.end()) {
            BOSS_WARN("search(): scheme not programmed");
            return false;
        }
    }
    return true;
}

/** Copy a top-k list into the caller's buffer; returns the count. */
int
writeResults(const SearchArgs &args,
             const std::vector<engine::Result> &topk)
{
    std::uint32_t n = static_cast<std::uint32_t>(
        std::min<std::size_t>(topk.size(), args.resultSize));
    for (std::uint32_t i = 0; i < n; ++i)
        args.resultAddr[i] = ResultRecord{topk[i].doc, topk[i].score};
    return static_cast<int>(n);
}

} // namespace

int
search(const SearchArgs &args)
{
    if (!initialized()) {
        BOSS_WARN("search() before init()");
        return -1;
    }
    if (!validateArgs(args))
        return -1;
    auto outcome = device().search(args.qExpression);
    return writeResults(args, outcome.topk);
}

std::vector<int>
searchBatch(const std::vector<SearchArgs> &batch)
{
    std::vector<int> counts(batch.size(), -1);
    if (!initialized()) {
        BOSS_WARN("searchBatch() before init()");
        return counts;
    }

    // Validate everything up front; invalid queries drop out of the
    // submission (their count stays -1) without poisoning the batch.
    std::vector<std::size_t> submitted;
    std::vector<std::string> exprs;
    submitted.reserve(batch.size());
    exprs.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
        if (validateArgs(batch[i])) {
            submitted.push_back(i);
            exprs.push_back(batch[i].qExpression);
        }
    }
    if (exprs.empty())
        return counts;

    auto outcome = device().searchBatch(exprs);
    BOSS_ASSERT(outcome.perQuery.size() == exprs.size(),
                "batch outcome must carry one top-k per query");
    for (std::size_t j = 0; j < submitted.size(); ++j) {
        counts[submitted[j]] =
            writeResults(batch[submitted[j]], outcome.perQuery[j]);
    }
    return counts;
}

} // namespace boss::api
