#include "api/sharded_device.h"

#include <algorithm>

#include "common/logging.h"
#include "engine/topk.h"

namespace boss::api
{

ShardedDevice::ShardedDevice(ShardedDeviceConfig config)
    : config_(std::move(config))
{
    BOSS_ASSERT(config_.shards > 0, "need at least one shard");
}

ShardedDevice::~ShardedDevice() = default;

void
ShardedDevice::loadShards(index::IndexShards shards)
{
    BOSS_ASSERT(shards.map.numShards() == shards.shards.size(),
                "shard map / shard count mismatch");
    map_ = shards.map;
    devices_.clear();
    for (std::size_t s = 0; s < shards.shards.size(); ++s) {
        accel::DeviceConfig cfg = config_.device;
        cfg.label = "shard" + std::to_string(s);
        cfg.deviceId = static_cast<std::uint32_t>(s);
        devices_.push_back(std::make_unique<accel::Device>(cfg));
        applyObservability(*devices_.back());
        devices_.back()->loadIndex(std::move(shards.shards[s]));
    }
    config_.shards = static_cast<std::uint32_t>(devices_.size());
}

void
ShardedDevice::loadIndex(const index::InvertedIndex &global)
{
    loadShards(index::shardIndex(global, config_.shards));
}

void
ShardedDevice::loadTextIndex(index::TextIndex ti)
{
    index::IndexShards shards =
        index::shardIndex(ti.index, config_.shards);
    map_ = shards.map;
    devices_.clear();
    for (std::size_t s = 0; s < shards.shards.size(); ++s) {
        accel::DeviceConfig cfg = config_.device;
        cfg.label = "shard" + std::to_string(s);
        cfg.deviceId = static_cast<std::uint32_t>(s);
        devices_.push_back(std::make_unique<accel::Device>(cfg));
        applyObservability(*devices_.back());
        devices_.back()->loadTextIndex(
            {std::move(shards.shards[s]), ti.lexicon});
    }
}

void
ShardedDevice::loadTextIndexFile(const std::string &path)
{
    loadTextIndex(index::loadTextIndexFile(path));
}

template <typename Batch>
ShardedOutcome
ShardedDevice::runBatch(const Batch &batch, std::size_t nQueries)
{
    BOSS_ASSERT(!devices_.empty(), "search before loadShards()");

    ShardedOutcome out;
    out.perQuery.resize(nQueries);
    out.shardSeconds.reserve(devices_.size());

    // Per-query scatter lists: perShard[q][s] is query q's top-k on
    // shard s, already rebased to global docIDs.
    std::vector<std::vector<std::vector<engine::Result>>> perShard(
        nQueries);

    // Shards dispatch one at a time: each device's searchBatch fans
    // its trace building out over the shared host pool (which is not
    // reentrant), so the host is already saturated per shard. The
    // modeled devices still run concurrently — see the time merge.
    for (std::size_t s = 0; s < devices_.size(); ++s) {
        if (!devices_[s]->operational()) {
            // Dead shard: dropped from the merge entirely. Queries
            // still complete over the surviving shards, with the
            // partial coverage flagged in the outcome.
            out.deadShards.push_back(static_cast<std::uint32_t>(s));
            out.shardSeconds.push_back(0.0);
            continue;
        }
        accel::SearchOutcome res = devices_[s]->searchBatch(batch);
        BOSS_ASSERT(res.perQuery.size() == nQueries,
                    "shard ", s, " returned ", res.perQuery.size(),
                    " result lists for ", nQueries, " queries");
        const DocId base = map_.docBase(static_cast<std::uint32_t>(s));
        for (std::size_t q = 0; q < nQueries; ++q) {
            for (auto &r : res.perQuery[q])
                r.doc += base;
            perShard[q].push_back(std::move(res.perQuery[q]));
        }
        // Devices are independent: the batch completes when the
        // slowest shard does, while traffic and work counters sum.
        out.shardSeconds.push_back(res.simSeconds);
        out.simSeconds = std::max(out.simSeconds, res.simSeconds);
        out.deviceBytes += res.deviceBytes;
        out.evaluatedDocs += res.evaluatedDocs;
        out.skippedDocs += res.skippedDocs;
        out.crcRetries += res.crcRetries;
        out.blocksDropped += res.blocksDropped;
    }
    out.shardsDropped = out.deadShards.size();
    if (out.deadShards.size() == devices_.size())
        BOSS_FATAL("fault spec declares all ", devices_.size(),
                   " shards dead; no shard can serve queries");

    for (std::size_t q = 0; q < nQueries; ++q)
        out.perQuery[q] =
            engine::mergeTopK(perShard[q], config_.device.k);
    if (!out.perQuery.empty())
        out.topk = out.perQuery.back();
    return out;
}

ShardedOutcome
ShardedDevice::search(const workload::Query &query)
{
    return searchBatch(std::vector<workload::Query>{query});
}

ShardedOutcome
ShardedDevice::search(const std::string &qExpression)
{
    return searchBatch(std::vector<std::string>{qExpression});
}

ShardedOutcome
ShardedDevice::searchBatch(const std::vector<workload::Query> &queries)
{
    return runBatch(queries, queries.size());
}

ShardedOutcome
ShardedDevice::searchBatch(
    const std::vector<std::string> &qExpressions)
{
    return runBatch(qExpressions, qExpressions.size());
}

void
ShardedDevice::setRecorder(trace::Recorder *recorder)
{
    recorder_ = recorder;
    for (auto &dev : devices_)
        dev->setRecorder(recorder);
}

void
ShardedDevice::enableQuerySummaries(bool enabled)
{
    summariesEnabled_ = enabled;
    for (auto &dev : devices_)
        dev->enableQuerySummaries(enabled);
}

void
ShardedDevice::enableStatsCapture(bool enabled)
{
    statsCaptureEnabled_ = enabled;
    for (auto &dev : devices_)
        dev->enableStatsCapture(enabled);
}

void
ShardedDevice::applyObservability(accel::Device &dev)
{
    // Observability settings may be toggled before the shards exist
    // (the CLI configures the stack before loading an index);
    // (re)apply them to every freshly created device.
    dev.setRecorder(recorder_);
    dev.enableQuerySummaries(summariesEnabled_);
    dev.enableStatsCapture(statsCaptureEnabled_);
}

std::vector<trace::QuerySummary>
ShardedDevice::aggregatedSummaries() const
{
    std::vector<trace::QuerySummary> agg;
    if (devices_.empty())
        return agg;
    // Dead shards ran nothing and have no summaries; aggregation
    // walks the survivors and stamps the drop count on every record.
    std::uint64_t dead = 0;
    std::size_t first = devices_.size();
    for (std::size_t s = 0; s < devices_.size(); ++s) {
        if (!devices_[s]->operational()) {
            ++dead;
        } else if (first == devices_.size()) {
            first = s;
        }
    }
    if (first == devices_.size())
        return agg;
    agg = devices_[first]->querySummaries();
    for (std::size_t s = first + 1; s < devices_.size(); ++s) {
        if (!devices_[s]->operational())
            continue;
        const auto &shard = devices_[s]->querySummaries();
        BOSS_ASSERT(shard.size() == agg.size(),
                    "shard ", s, " summary count mismatch");
        for (std::size_t q = 0; q < shard.size(); ++q) {
            trace::QuerySummary &a = agg[q];
            const trace::QuerySummary &b = shard[q];
            // The devices run concurrently: the query's latency is
            // its slowest shard; all work/traffic counters add up.
            a.cycles = std::max(a.cycles, b.cycles);
            a.blocksLoaded += b.blocksLoaded;
            a.blocksSkipped += b.blocksSkipped;
            a.valuesDecoded += b.valuesDecoded;
            a.normsFetched += b.normsFetched;
            a.docsScored += b.docsScored;
            a.docsSkipped += b.docsSkipped;
            a.topkInserts += b.topkInserts;
            a.resultBytes += b.resultBytes;
            a.crcRetries += b.crcRetries;
            a.blocksDropped += b.blocksDropped;
            for (std::size_t c = 0; c < trace::kNumTrafficClasses;
                 ++c) {
                a.classBytes[c] += b.classBytes[c];
                a.classAccesses[c] += b.classAccesses[c];
            }
        }
    }
    for (auto &a : agg)
        a.shardsDropped = dead;
    return agg;
}

void
ShardedDevice::writeStatsJson(std::ostream &os) const
{
    os << "{\n\"shards\": " << devices_.size() << ",\n";
    os << "\"doc_bases\": [";
    for (std::uint32_t s = 0; s < map_.numShards(); ++s)
        os << (s ? ", " : "") << map_.docBase(s);
    os << "],\n\"dead_shards\": [";
    bool firstDead = true;
    for (std::size_t s = 0; s < devices_.size(); ++s) {
        if (devices_[s]->operational())
            continue;
        os << (firstDead ? "" : ", ") << s;
        firstDead = false;
    }
    os << "]";
    for (std::size_t s = 0; s < devices_.size(); ++s) {
        os << ",\n\"shard_" << s << "\":\n";
        devices_[s]->writeStatsJson(os);
    }
    os << "}\n";
}

} // namespace boss::api
