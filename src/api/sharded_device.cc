#include "api/sharded_device.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "engine/topk.h"

namespace boss::api
{

namespace
{

/** Plan a whole batch once (the lexicon is shard-replicated). */
std::vector<engine::QueryPlan>
batchPlans(accel::Device &dev,
           const std::vector<workload::Query> &queries)
{
    std::vector<engine::QueryPlan> plans;
    plans.reserve(queries.size());
    for (const auto &q : queries)
        plans.push_back(dev.plan(q));
    return plans;
}

std::vector<engine::QueryPlan>
batchPlans(accel::Device &dev,
           const std::vector<std::string> &qExpressions)
{
    std::vector<engine::QueryPlan> plans;
    plans.reserve(qExpressions.size());
    for (const auto &q : qExpressions)
        plans.push_back(dev.plan(q));
    return plans;
}

} // namespace

ShardedDevice::ShardedDevice(ShardedDeviceConfig config)
    : config_(std::move(config))
{
    BOSS_ASSERT(config_.shards > 0, "need at least one shard");
}

ShardedDevice::~ShardedDevice() = default;

void
ShardedDevice::loadShards(index::IndexShards shards)
{
    BOSS_ASSERT(shards.map.numShards() == shards.shards.size(),
                "shard map / shard count mismatch");
    map_ = shards.map;
    devices_.clear();
    tombstones_.clear();
    for (std::size_t s = 0; s < shards.shards.size(); ++s) {
        accel::DeviceConfig cfg = config_.device;
        cfg.label = "shard" + std::to_string(s);
        cfg.deviceId = static_cast<std::uint32_t>(s);
        devices_.push_back(std::make_unique<accel::Device>(cfg));
        applyObservability(*devices_.back());
        devices_.back()->loadIndex(std::move(shards.shards[s]));
    }
    config_.shards = static_cast<std::uint32_t>(devices_.size());
}

void
ShardedDevice::loadIndex(const index::InvertedIndex &global)
{
    loadShards(index::shardIndex(global, config_.shards));
}

void
ShardedDevice::loadTextIndex(index::TextIndex ti)
{
    index::IndexShards shards =
        index::shardIndex(ti.index, config_.shards);
    map_ = shards.map;
    devices_.clear();
    tombstones_.clear();
    for (std::size_t s = 0; s < shards.shards.size(); ++s) {
        accel::DeviceConfig cfg = config_.device;
        cfg.label = "shard" + std::to_string(s);
        cfg.deviceId = static_cast<std::uint32_t>(s);
        devices_.push_back(std::make_unique<accel::Device>(cfg));
        applyObservability(*devices_.back());
        devices_.back()->loadTextIndex(
            {std::move(shards.shards[s]), ti.lexicon});
    }
}

void
ShardedDevice::loadTextIndexFile(const std::string &path)
{
    loadTextIndex(index::loadTextIndexFile(path));
}

void
ShardedDevice::deleteDocs(const std::vector<DocId> &globalDocs)
{
    BOSS_ASSERT(!devices_.empty(), "deleteDocs() before loadShards()");
    if (tombstones_.size() != devices_.size()) {
        tombstones_.assign(devices_.size(), nullptr);
        for (std::size_t s = 0; s < devices_.size(); ++s) {
            tombstones_[s] = std::make_shared<index::TombstoneSet>(
                devices_[s]->index().numDocs());
        }
    }
    for (DocId g : globalDocs) {
        if (g >= map_.numDocs())
            continue;
        const std::uint32_t s = map_.shardOf(g);
        tombstones_[s]->markDeleted(map_.toLocal(s, g));
    }
    for (std::size_t s = 0; s < devices_.size(); ++s)
        devices_[s]->setTombstones(tombstones_[s]);
}

template <typename Batch>
ShardedOutcome
ShardedDevice::runBatch(const Batch &batch, std::size_t nQueries)
{
    BOSS_ASSERT(!devices_.empty(), "search before loadShards()");

    ShardedOutcome out;
    out.perQuery.resize(nQueries);
    out.shardSeconds.assign(devices_.size(), 0.0);

    // Shard builds dispatch one at a time: each shard's trace
    // building fans out over the shared host pool (which is not
    // reentrant), so the host is already saturated per shard. The
    // serial replay of a completed shard, however, occupies only one
    // thread — with no recorder attached it is posted to a pool
    // worker so the next shard's build overlaps it. Replay is
    // timing-only (results come from the builds) and each posted
    // task touches only its own device and outcome slot, so results
    // stay bit-identical to the sequential loop. Recorder runs keep
    // the sequential path: replay registers trace lanes, which is
    // not thread-safe.
    common::ThreadPool &pool = common::ThreadPool::global();
    const bool overlap = recorder_ == nullptr && devices_.size() > 1;

    std::vector<accel::SearchOutcome> shardOut(devices_.size());
    std::mutex doneMutex;
    std::condition_variable doneCv;
    std::size_t pendingReplays = 0;
    std::exception_ptr replayError;
    std::exception_ptr buildError;

    std::vector<engine::QueryPlan> plans;
    for (std::size_t s = 0; s < devices_.size(); ++s) {
        if (!devices_[s]->operational()) {
            // Dead shard: dropped from the merge entirely. Queries
            // still complete over the surviving shards, with the
            // partial coverage flagged in the outcome.
            out.deadShards.push_back(static_cast<std::uint32_t>(s));
            continue;
        }
        if (!overlap) {
            shardOut[s] = devices_[s]->searchBatch(batch);
            continue;
        }
        try {
            // Expressions resolve identically on every shard (the
            // lexicon is replicated), so the batch is planned once
            // on the first live shard.
            if (plans.empty())
                plans = batchPlans(*devices_[s], batch);
            std::vector<accel::BuiltQuery> runs(nQueries);
            if (arenas_.size() < pool.size())
                arenas_.resize(pool.size());
            accel::Device *dev = devices_[s].get();
            pool.parallelFor(
                nQueries, [&](std::size_t i, std::size_t worker) {
                    runs[i] =
                        dev->buildQuery(plans[i], arenas_[worker]);
                });
            auto group =
                std::make_shared<std::vector<accel::BuiltQuery>>(
                    std::move(runs));
            {
                std::lock_guard<std::mutex> lock(doneMutex);
                ++pendingReplays;
            }
            pool.post([&, dev, s, group](std::size_t) {
                try {
                    shardOut[s] = dev->replayBuilt(std::move(*group));
                } catch (...) {
                    std::lock_guard<std::mutex> lock(doneMutex);
                    if (replayError == nullptr)
                        replayError = std::current_exception();
                }
                {
                    // Notify under the lock: the pool worker
                    // outlives this frame, and doneCv lives on it.
                    // Broadcasting while holding doneMutex keeps the
                    // waiter from waking and unwinding the frame
                    // while this worker is still in the broadcast.
                    std::lock_guard<std::mutex> lock(doneMutex);
                    --pendingReplays;
                    doneCv.notify_all();
                }
            });
        } catch (...) {
            // Drain in-flight replays before propagating: they hold
            // references into this frame.
            buildError = std::current_exception();
            break;
        }
    }
    if (overlap) {
        std::unique_lock<std::mutex> lock(doneMutex);
        doneCv.wait(lock, [&] { return pendingReplays == 0; });
        if (buildError == nullptr)
            buildError = replayError;
    }
    if (buildError != nullptr)
        std::rethrow_exception(buildError);

    // Per-query scatter lists: perShard[q][s] is query q's top-k on
    // shard s, already rebased to global docIDs. Assembled in shard
    // order regardless of replay completion order, so the merge is
    // deterministic.
    std::vector<std::vector<std::vector<engine::Result>>> perShard(
        nQueries);
    for (std::size_t s = 0; s < devices_.size(); ++s) {
        if (!devices_[s]->operational())
            continue;
        accel::SearchOutcome &res = shardOut[s];
        BOSS_ASSERT(res.perQuery.size() == nQueries,
                    "shard ", s, " returned ", res.perQuery.size(),
                    " result lists for ", nQueries, " queries");
        const DocId base = map_.docBase(static_cast<std::uint32_t>(s));
        for (std::size_t q = 0; q < nQueries; ++q) {
            for (auto &r : res.perQuery[q])
                r.doc += base;
            perShard[q].push_back(std::move(res.perQuery[q]));
        }
        // Devices are independent: the batch completes when the
        // slowest shard does, while traffic and work counters sum.
        out.shardSeconds[s] = res.simSeconds;
        out.simSeconds = std::max(out.simSeconds, res.simSeconds);
        out.deviceBytes += res.deviceBytes;
        out.evaluatedDocs += res.evaluatedDocs;
        out.skippedDocs += res.skippedDocs;
        out.crcRetries += res.crcRetries;
        out.blocksDropped += res.blocksDropped;
    }
    out.shardsDropped = out.deadShards.size();
    if (out.deadShards.size() == devices_.size())
        BOSS_FATAL("fault spec declares all ", devices_.size(),
                   " shards dead; no shard can serve queries");

    for (std::size_t q = 0; q < nQueries; ++q)
        out.perQuery[q] =
            engine::mergeTopK(perShard[q], config_.device.k);
    if (!out.perQuery.empty())
        out.topk = out.perQuery.back();
    return out;
}

ShardedDevice::Built
ShardedDevice::buildQuery(const engine::QueryPlan &plan,
                          engine::QueryArena &arena) const
{
    BOSS_ASSERT(!devices_.empty(), "buildQuery before loadShards()");
    Built built;
    built.perShard.resize(devices_.size());
    for (std::size_t s = 0; s < devices_.size(); ++s) {
        if (!devices_[s]->operational())
            continue; // dead shard: empty slot, dropped at finish
        built.perShard[s] = devices_[s]->buildQuery(plan, arena);
    }
    return built;
}

ShardedOutcome
ShardedDevice::finishBuilt(Built built)
{
    BOSS_ASSERT(built.perShard.size() == devices_.size(),
                "built query spans ", built.perShard.size(),
                " shards, device has ", devices_.size());
    ShardedOutcome out;
    out.shardSeconds.assign(devices_.size(), 0.0);
    std::vector<std::vector<engine::Result>> perShard;
    for (std::size_t s = 0; s < devices_.size(); ++s) {
        if (!devices_[s]->operational()) {
            out.deadShards.push_back(static_cast<std::uint32_t>(s));
            continue;
        }
        std::vector<accel::BuiltQuery> group;
        group.push_back(std::move(built.perShard[s]));
        accel::SearchOutcome res =
            devices_[s]->replayBuilt(std::move(group));
        const DocId base = map_.docBase(static_cast<std::uint32_t>(s));
        for (auto &r : res.perQuery[0])
            r.doc += base;
        perShard.push_back(std::move(res.perQuery[0]));
        out.shardSeconds[s] = res.simSeconds;
        out.simSeconds = std::max(out.simSeconds, res.simSeconds);
        out.deviceBytes += res.deviceBytes;
        out.evaluatedDocs += res.evaluatedDocs;
        out.skippedDocs += res.skippedDocs;
        out.crcRetries += res.crcRetries;
        out.blocksDropped += res.blocksDropped;
    }
    out.shardsDropped = out.deadShards.size();
    if (out.deadShards.size() == devices_.size())
        BOSS_FATAL("fault spec declares all ", devices_.size(),
                   " shards dead; no shard can serve queries");
    out.perQuery.push_back(
        engine::mergeTopK(perShard, config_.device.k));
    out.topk = out.perQuery.back();
    return out;
}

ShardedOutcome
ShardedDevice::search(const workload::Query &query)
{
    return searchBatch(std::vector<workload::Query>{query});
}

ShardedOutcome
ShardedDevice::search(const std::string &qExpression)
{
    return searchBatch(std::vector<std::string>{qExpression});
}

ShardedOutcome
ShardedDevice::searchBatch(const std::vector<workload::Query> &queries)
{
    return runBatch(queries, queries.size());
}

ShardedOutcome
ShardedDevice::searchBatch(
    const std::vector<std::string> &qExpressions)
{
    return runBatch(qExpressions, qExpressions.size());
}

void
ShardedDevice::setRecorder(trace::Recorder *recorder)
{
    recorder_ = recorder;
    for (auto &dev : devices_)
        dev->setRecorder(recorder);
}

void
ShardedDevice::enableQuerySummaries(bool enabled)
{
    summariesEnabled_ = enabled;
    for (auto &dev : devices_)
        dev->enableQuerySummaries(enabled);
}

void
ShardedDevice::enableStatsCapture(bool enabled)
{
    statsCaptureEnabled_ = enabled;
    for (auto &dev : devices_)
        dev->enableStatsCapture(enabled);
}

void
ShardedDevice::applyObservability(accel::Device &dev)
{
    // Observability settings may be toggled before the shards exist
    // (the CLI configures the stack before loading an index);
    // (re)apply them to every freshly created device.
    dev.setRecorder(recorder_);
    dev.enableQuerySummaries(summariesEnabled_);
    dev.enableStatsCapture(statsCaptureEnabled_);
}

std::vector<trace::QuerySummary>
ShardedDevice::aggregatedSummaries() const
{
    std::vector<trace::QuerySummary> agg;
    if (devices_.empty())
        return agg;
    // Dead shards ran nothing and have no summaries; aggregation
    // walks the survivors and stamps the drop count on every record.
    std::uint64_t dead = 0;
    std::size_t first = devices_.size();
    for (std::size_t s = 0; s < devices_.size(); ++s) {
        if (!devices_[s]->operational()) {
            ++dead;
        } else if (first == devices_.size()) {
            first = s;
        }
    }
    if (first == devices_.size())
        return agg;
    agg = devices_[first]->querySummaries();
    for (std::size_t s = first + 1; s < devices_.size(); ++s) {
        if (!devices_[s]->operational())
            continue;
        const auto &shard = devices_[s]->querySummaries();
        BOSS_ASSERT(shard.size() == agg.size(),
                    "shard ", s, " summary count mismatch");
        for (std::size_t q = 0; q < shard.size(); ++q) {
            trace::QuerySummary &a = agg[q];
            const trace::QuerySummary &b = shard[q];
            // The devices run concurrently: the query's latency is
            // its slowest shard; all work/traffic counters add up.
            a.cycles = std::max(a.cycles, b.cycles);
            a.blocksLoaded += b.blocksLoaded;
            a.blocksSkipped += b.blocksSkipped;
            a.valuesDecoded += b.valuesDecoded;
            a.normsFetched += b.normsFetched;
            a.docsScored += b.docsScored;
            a.docsSkipped += b.docsSkipped;
            a.topkInserts += b.topkInserts;
            a.resultBytes += b.resultBytes;
            a.crcRetries += b.crcRetries;
            a.blocksDropped += b.blocksDropped;
            for (std::size_t c = 0; c < trace::kNumTrafficClasses;
                 ++c) {
                a.classBytes[c] += b.classBytes[c];
                a.classAccesses[c] += b.classAccesses[c];
            }
        }
    }
    for (auto &a : agg)
        a.shardsDropped = dead;
    return agg;
}

void
ShardedDevice::writeStatsJson(std::ostream &os) const
{
    os << "{\n\"shards\": " << devices_.size() << ",\n";
    os << "\"doc_bases\": [";
    for (std::uint32_t s = 0; s < map_.numShards(); ++s)
        os << (s ? ", " : "") << map_.docBase(s);
    os << "],\n\"dead_shards\": [";
    bool firstDead = true;
    for (std::size_t s = 0; s < devices_.size(); ++s) {
        if (devices_[s]->operational())
            continue;
        os << (firstDead ? "" : ", ") << s;
        firstDead = false;
    }
    os << "]";
    for (std::size_t s = 0; s < devices_.size(); ++s) {
        os << ",\n\"shard_" << s << "\":\n";
        devices_[s]->writeStatsJson(os);
    }
    os << "}\n";
}

} // namespace boss::api
