/**
 * @file
 * A mutable-index device: one simulated BOSS accelerator serving an
 * index::segments::LiveIndex while it ingests.
 *
 * Each published epoch gets a lazily-built set of per-segment
 * accel::Devices sharing that epoch's rebaked views (no index
 * copies); the set is cached until the epoch advances, and queries
 * that started on an old epoch keep their devices (and the pinned
 * Version) alive until they finish — refreshes and merges never
 * block or corrupt in-flight searches. The segments of one epoch
 * model a *single* physical device scanning its segments serially,
 * so modeled times sum over segments while the top-k merge is the
 * exact segmented merge of engine/segment_search.h.
 */

#ifndef BOSS_API_LIVE_DEVICE_H
#define BOSS_API_LIVE_DEVICE_H

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "boss/device.h"
#include "index/lexicon.h"
#include "index/segments/live_index.h"

namespace boss::api
{

struct LiveDeviceConfig
{
    /** Template for every per-segment device. */
    accel::DeviceConfig device;
    /** Live-index knobs (segment dir, bake threshold, merges...). */
    index::segments::LiveIndexConfig live;
};

/** Result of one live search (global docIDs). */
struct LiveOutcome
{
    std::vector<engine::Result> topk;
    double simSeconds = 0.0;       ///< summed over segments (serial)
    std::uint64_t deviceBytes = 0; ///< summed over segments
    std::uint64_t evaluatedDocs = 0;
    std::uint64_t skippedDocs = 0;
    /** The epoch this query executed against. */
    std::uint64_t epoch = 0;
};

class LiveDevice
{
  public:
    explicit LiveDevice(LiveDeviceConfig config);

    /** The underlying mutable index (ingest side). */
    index::segments::LiveIndex &live() { return live_; }
    const index::segments::LiveIndex &live() const { return live_; }

    /**
     * Attach a lexicon so expression queries resolve words; without
     * one the synthetic t<N> naming applies.
     */
    void setLexicon(index::Lexicon lexicon)
    {
        lexicon_.emplace(std::move(lexicon));
    }
    bool hasLexicon() const { return lexicon_.has_value(); }
    index::Lexicon *lexicon()
    {
        return lexicon_ ? &*lexicon_ : nullptr;
    }

    engine::QueryPlan plan(const std::string &qExpression) const;
    engine::QueryPlan plan(const workload::Query &query) const
    {
        return engine::planQuery(query);
    }

    // ---- Pipelined execution (see boss/device.h) ----

    /** The per-epoch device set; opaque to callers. */
    struct EpochDevices;

    /**
     * One query built against a pinned epoch. Holding it keeps that
     * epoch's devices and Version alive across publishes.
     */
    struct Built
    {
        std::shared_ptr<EpochDevices> devices;
        std::vector<accel::BuiltQuery> perSegment;
    };

    /**
     * Stage 1 (thread-safe): build the query on the current epoch's
     * per-segment devices. Concurrent calls need distinct arenas.
     */
    Built buildQuery(const engine::QueryPlan &plan,
                     engine::QueryArena &arena);

    /**
     * Stage 2 (serial): replay the per-segment builds, rebase local
     * docIDs to global ones and merge the exact top-k.
     */
    LiveOutcome finishBuilt(Built built);

    /** Build + finish in one call. */
    LiveOutcome search(const workload::Query &query);
    LiveOutcome search(const std::string &qExpression);

    const LiveDeviceConfig &config() const { return config_; }

  private:
    std::shared_ptr<EpochDevices> devicesForCurrentEpoch();

    LiveDeviceConfig config_;
    index::segments::LiveIndex live_;
    std::optional<index::Lexicon> lexicon_;
    std::mutex mu_;
    std::shared_ptr<EpochDevices> cache_;
    engine::QueryArena searchArena_;
};

} // namespace boss::api

#endif // BOSS_API_LIVE_DEVICE_H
