#include "api/live_device.h"

#include "common/logging.h"
#include "engine/topk.h"

namespace boss::api
{

/**
 * One published epoch's device set. The Snapshot pins the Version
 * for as long as any query (or the cache) references this set, so a
 * retiring epoch's views and tombstones outlive its in-flight
 * queries.
 */
struct LiveDevice::EpochDevices
{
    std::uint64_t epoch = 0;
    index::segments::Snapshot snapshot;
    std::vector<std::unique_ptr<accel::Device>> devices;
};

LiveDevice::LiveDevice(LiveDeviceConfig config)
    : config_(std::move(config)), live_(config_.live)
{
}

engine::QueryPlan
LiveDevice::plan(const std::string &qExpression) const
{
    engine::TermResolver resolver;
    if (lexicon_.has_value()) {
        resolver = [this](std::string_view name) {
            auto id = lexicon_->lookup(name);
            if (!id.has_value())
                BOSS_FATAL("unknown query term '", std::string(name),
                           "'");
            return *id;
        };
    } else {
        resolver = engine::defaultTermResolver;
    }
    return engine::planQuery(
        engine::parseExpression(qExpression, resolver));
}

std::shared_ptr<LiveDevice::EpochDevices>
LiveDevice::devicesForCurrentEpoch()
{
    // Pin the snapshot under mu_: taken outside, a thread that
    // raced with a publish could overwrite a newer cached set with
    // an older epoch's and force a needless rebuild.
    std::lock_guard<std::mutex> lock(mu_);
    index::segments::Snapshot snap = live_.snapshot();
    BOSS_ASSERT(static_cast<bool>(snap),
                "live index has no published epoch");
    if (cache_ != nullptr && cache_->epoch == snap->epoch())
        return cache_;

    auto built = std::make_shared<EpochDevices>();
    built->epoch = snap->epoch();
    const auto &readers = snap->segments();
    built->devices.reserve(readers.size());
    for (std::size_t i = 0; i < readers.size(); ++i) {
        accel::DeviceConfig dc = config_.device;
        dc.label = config_.device.label + "/seg" +
                   std::to_string(readers[i].segment->id());
        dc.deviceId = static_cast<std::uint32_t>(i);
        auto dev = std::make_unique<accel::Device>(dc);
        dev->loadSharedIndex(readers[i].view);
        dev->setTombstones(readers[i].tombstones);
        built->devices.push_back(std::move(dev));
    }
    built->snapshot = std::move(snap);
    cache_ = built;
    return built;
}

LiveDevice::Built
LiveDevice::buildQuery(const engine::QueryPlan &plan,
                       engine::QueryArena &arena)
{
    Built built;
    built.devices = devicesForCurrentEpoch();
    const auto &version = *built.devices->snapshot;
    for (TermId t : plan.allTerms) {
        BOSS_ASSERT(t < version.termBound(), "query term ", t,
                    " outside epoch term bound ",
                    version.termBound());
    }
    built.perSegment.reserve(built.devices->devices.size());
    for (auto &dev : built.devices->devices)
        built.perSegment.push_back(dev->buildQuery(plan, arena));
    return built;
}

LiveOutcome
LiveDevice::finishBuilt(Built built)
{
    const auto &version = *built.devices->snapshot;
    LiveOutcome out;
    out.epoch = version.epoch();

    std::vector<std::vector<engine::Result>> perSegment;
    perSegment.reserve(built.perSegment.size());
    for (std::size_t i = 0; i < built.perSegment.size(); ++i) {
        accel::Device &dev = *built.devices->devices[i];
        std::vector<accel::BuiltQuery> one;
        one.push_back(std::move(built.perSegment[i]));
        accel::SearchOutcome so = dev.replayBuilt(std::move(one));
        // One physical device scans its segments serially: times
        // and traffic sum (unlike the sharded max-over-devices).
        out.simSeconds += so.simSeconds;
        out.deviceBytes += so.deviceBytes;
        out.evaluatedDocs += so.evaluatedDocs;
        out.skippedDocs += so.skippedDocs;

        const auto &globals =
            version.segments()[i].segment->source().globalIds;
        for (engine::Result &r : so.topk)
            r.doc = globals[r.doc];
        perSegment.push_back(std::move(so.topk));
    }
    out.topk = engine::mergeTopK(perSegment, config_.device.k);
    return out;
}

LiveOutcome
LiveDevice::search(const workload::Query &query)
{
    searchArena_.reset();
    return finishBuilt(buildQuery(plan(query), searchArena_));
}

LiveOutcome
LiveDevice::search(const std::string &qExpression)
{
    searchArena_.reset();
    return finishBuilt(buildQuery(plan(qExpression), searchArena_));
}

} // namespace boss::api
