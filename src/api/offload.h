/**
 * @file
 * The offloading API (paper Sec. IV-D): the two intrinsics a host
 * application uses to drive BOSS.
 *
 *   void init(file indexFile, file configFile)
 *   val  search(string qExpression, val compType[16], size_t nTerm,
 *               addr listAddr[16], addr resultAddr, val resultSize)
 *
 * init() loads the inverted index file into the SCM pool, parses the
 * decompression-module configuration file and programs the device.
 * search() offloads one query: the expression uses quoted terms with
 * AND/OR and parentheses; per-term compression schemes and posting-
 * list addresses accompany it; the top-k (docID, score) pairs are
 * written to the caller's result buffer.
 */

#ifndef BOSS_API_OFFLOAD_H
#define BOSS_API_OFFLOAD_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "boss/device.h"
#include "compress/scheme.h"

namespace boss::api
{

/** Max query terms one search() call carries (paper: 16). */
inline constexpr std::size_t kMaxTerms = 16;

/** One (docID, score) result record in the result buffer. */
struct ResultRecord
{
    DocId doc;
    Score score;
};

/**
 * Arguments of the search() intrinsic, matching the paper's
 * signature field-for-field.
 */
struct SearchArgs
{
    std::string qExpression;
    std::array<compress::Scheme, kMaxTerms> compType{};
    std::size_t nTerm = 0;
    std::array<Addr, kMaxTerms> listAddr{};
    /** Caller-provided result buffer. */
    ResultRecord *resultAddr = nullptr;
    /** Capacity of the result buffer, in records. */
    std::uint32_t resultSize = 0;
};

/**
 * Initialize the device: load @p indexFile into the memory pool and
 * program the decompression module from @p configFile.
 *
 * The config file holds one datapath program per compression scheme,
 * each introduced by a "[scheme <name>]" section header; a section
 * body of "builtin" selects the shipped program. Returns the number
 * of schemes programmed.
 */
int init(const std::string &indexFile, const std::string &configFile);

/** Tear down the device (tests re-init with different indexes). */
void shutdown();

/** Is the device initialized? */
bool initialized();

/**
 * Offload one query. Returns the number of results written to
 * args.resultAddr (<= min(k, resultSize)), or -1 on validation
 * failure (unknown term, address mismatch, term count out of range).
 */
int search(const SearchArgs &args);

/**
 * Offload a batch of queries in one device submission. The device
 * executes the batch concurrently across its cores (host-side trace
 * building fans out over the thread pool); each query's top-k is
 * written to its own args.resultAddr. Returns one count per query,
 * in submission order, with the same meaning as search()'s return
 * value: queries failing validation get -1 and do not execute,
 * without affecting the rest of the batch. Results are bit-identical
 * to calling search() on each element in order.
 */
std::vector<int> searchBatch(const std::vector<SearchArgs> &batch);

/**
 * Helper: assemble SearchArgs for a workload query against the
 * initialized device (fills compType/listAddr from the index).
 */
SearchArgs makeArgs(const workload::Query &query,
                    ResultRecord *resultBuffer,
                    std::uint32_t resultSize);

/** The device behind the API (for inspection in tests/examples). */
accel::Device &device();

} // namespace boss::api

#endif // BOSS_API_OFFLOAD_H
