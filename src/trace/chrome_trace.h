/**
 * @file
 * Chrome trace_event JSON exporter for recorded timelines.
 *
 * The output is the "JSON Array Format" understood by Perfetto and
 * chrome://tracing: one object per event, `ph:"X"` for spans,
 * `ph:"i"` for instants, `ph:"C"` for counters, plus `ph:"M"`
 * metadata naming each process/thread lane. Timestamps are emitted
 * in microseconds; simulated-tick lanes are converted at 1 tick =
 * 1 ps (so 1 µs = 1e6 ticks), which keeps device time exact at
 * three decimal places.
 */

#ifndef BOSS_TRACE_CHROME_TRACE_H
#define BOSS_TRACE_CHROME_TRACE_H

#include <ostream>

#include "trace/recorder.h"

namespace boss::trace
{

/** Serialize everything @p rec captured as Chrome trace JSON. */
void writeChromeTrace(std::ostream &os, const Recorder &rec);

} // namespace boss::trace

#endif // BOSS_TRACE_CHROME_TRACE_H
