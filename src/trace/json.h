/**
 * @file
 * Minimal JSON writing helpers shared by the observability
 * exporters (Chrome trace, per-query summaries). Deliberately tiny:
 * the exporters emit flat, schema-fixed documents, so a full JSON
 * library would be dead weight.
 */

#ifndef BOSS_TRACE_JSON_H
#define BOSS_TRACE_JSON_H

#include <cstdio>
#include <ostream>
#include <string_view>

namespace boss::trace::json
{

/** Write @p s as a quoted, escaped JSON string. */
inline void
writeString(std::ostream &os, std::string_view s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

/**
 * Write a double with fixed 3-decimal precision (the Chrome trace
 * format keeps timestamps in microseconds; 3 decimals preserve the
 * underlying picosecond ticks exactly).
 */
inline void
writeFixed(std::ostream &os, double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    os << buf;
}

} // namespace boss::trace::json

#endif // BOSS_TRACE_JSON_H
