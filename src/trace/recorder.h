/**
 * @file
 * Structured per-query event recorder: the core of the
 * observability layer.
 *
 * Design goals, in order:
 *  1. Near-zero cost when disabled. Every instrumentation site holds
 *     a nullable Recorder pointer (or a null Scope); the disabled
 *     path is a single pointer test.
 *  2. Determinism. Events recorded by thread-pool workers go into
 *     per-worker buffers with no shared mutable state; merged() then
 *     orders events by (scope, sequence), where the scope key is the
 *     query's submission index. The merged stream is therefore
 *     bit-identical at any worker count (wall-clock timestamps of
 *     host-domain events excepted; the simulated-tick domain is
 *     exactly reproducible).
 *  3. One consistent timeline model. Lanes (Chrome trace "threads")
 *     belong to one of two clock domains: simulated ticks (BOSS
 *     cores, memory channels, the event-queue depth counter) or host
 *     wall microseconds (thread-pool workers building traces). The
 *     exporter keeps the domains in separate trace processes so the
 *     two time bases are never visually conflated.
 *
 * Phases: each parallel build or serial replay opens a phase via
 * beginPhase(); scope keys derived from a phase's base strictly
 * increase across phases, so consecutive searches on one Device
 * interleave correctly in the merged stream.
 */

#ifndef BOSS_TRACE_RECORDER_H
#define BOSS_TRACE_RECORDER_H

#include <array>
#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/types.h"

namespace boss::trace
{

/** Clock domain of a lane's timestamps. */
enum class Domain : std::uint8_t
{
    SimTicks,   ///< simulated picosecond ticks
    HostMicros, ///< host wall-clock microseconds since recorder epoch
};

enum class EventKind : std::uint8_t
{
    Span,    ///< [start, start+dur) duration event
    Instant, ///< point event
    Counter, ///< sampled value series
};

/** One key/value annotation. Keys must be string literals. */
struct EventArg
{
    const char *key;
    std::uint64_t value;
};

/**
 * One recorded event. POD with literal-string names so the hot path
 * never allocates. scope/seq are the deterministic merge keys.
 */
struct Event
{
    const char *name = "";
    EventKind kind = EventKind::Instant;
    std::uint16_t lane = 0;
    std::uint8_t numArgs = 0;
    double start = 0.0; ///< ticks or µs, per the lane's domain
    double dur = 0.0;   ///< spans only
    double value = 0.0; ///< counters only
    std::array<EventArg, 6> args{};
    std::uint64_t scope = 0;
    std::uint64_t seq = 0;
};

/** A timeline row: maps to one Chrome trace (process, thread). */
struct LaneInfo
{
    std::string process;
    std::string thread;
    Domain domain = Domain::SimTicks;
    int sortIndex = 0;
};

class Recorder;

/**
 * A lightweight recording handle bound to one buffer and one merge
 * scope. Null (default-constructed) scopes swallow events, so
 * instrumented code needs only `if (scope)` guards — or none at all
 * if an occasional dead store is acceptable.
 */
class Scope
{
  public:
    Scope() = default;

    explicit operator bool() const { return rec_ != nullptr; }

    void span(std::uint16_t lane, const char *name, double start,
              double dur, std::initializer_list<EventArg> args = {});
    void instant(std::uint16_t lane, const char *name, double ts,
                 std::initializer_list<EventArg> args = {});
    void counter(std::uint16_t lane, const char *name, double ts,
                 double value);

    /** Wall-clock µs since the recorder's epoch (0 when null). */
    double hostMicros() const;

  private:
    friend class Recorder;
    Scope(Recorder *rec, std::size_t buffer, std::uint64_t scope)
        : rec_(rec), buffer_(buffer), scope_(scope)
    {}

    Recorder *rec_ = nullptr;
    std::size_t buffer_ = 0;
    std::uint64_t scope_ = 0;
};

/**
 * The event recorder. Construct with the worker count of the thread
 * pool that will feed it (workers record into private buffers;
 * buffer 0 serves all single-threaded phases). All setup calls
 * (addLane, beginPhase) must happen on one thread between parallel
 * phases; event recording itself is lock- and wait-free.
 */
class Recorder
{
  public:
    /** @param workers thread-pool size this recorder will observe. */
    explicit Recorder(std::size_t workers = 0);

    /** Register a timeline row; returns its lane id. */
    std::uint16_t addLane(std::string process, std::string thread,
                          Domain domain, int sortIndex = 0);

    std::size_t workers() const { return buffers_.size() - 1; }

    /** The pre-registered host lane of pool worker @p worker. */
    std::uint16_t workerLane(std::size_t worker) const;

    /**
     * Open a new ordering phase. Returns the phase's scope base;
     * parallel recorders use base + itemIndex as their scope key.
     * Also rebinds the serial() scope to this phase.
     */
    std::uint64_t beginPhase();

    /** Recording handle for pool worker @p worker, scope @p key. */
    Scope scope(std::size_t worker, std::uint64_t key);

    /** Recording handle for single-threaded phases (replay, setup). */
    Scope serial() { return Scope(this, 0, serialScope_); }

    /** Wall-clock µs since this recorder was constructed. */
    double hostMicros() const;

    /**
     * Bound each buffer to at most @p perBufferEvents events,
     * evicting the oldest recorded event when full (ring-buffer
     * semantics; evictions count in droppedEvents()). 0 restores
     * the unbounded default. Long-running traced servers set this
     * so the recorder cannot grow without limit. Must be called
     * before any event is recorded — capacity is a structural
     * decision, not a runtime knob.
     */
    void setEventCapacity(std::size_t perBufferEvents);
    std::size_t eventCapacity() const { return capacity_; }

    /** Events evicted by the ring bound, summed over buffers. */
    std::uint64_t droppedEvents() const;

    /** All retained events, deterministically ordered by
     *  (scope, seq). With a capacity set, the oldest events of each
     *  buffer may have been evicted. */
    std::vector<Event> merged() const;

    const std::vector<LaneInfo> &lanes() const { return lanes_; }

    /** Events currently retained (diagnostics). */
    std::size_t eventCount() const;

  private:
    friend class Scope;

    /**
     * One event buffer (serial phase or pool worker). Unbounded
     * buffers append; bounded buffers overwrite in ring order at
     * head. seq is monotone over the buffer's lifetime — eviction
     * never reorders survivors, so merged() stays deterministic.
     */
    struct Buffer
    {
        std::vector<Event> events;
        std::size_t head = 0;       ///< next eviction slot (ring)
        std::uint64_t nextSeq = 0;
        std::uint64_t dropped = 0;
    };

    void push(std::size_t buffer, std::uint64_t scope, Event e);

    std::vector<Buffer> buffers_;
    std::size_t capacity_ = 0; ///< per-buffer event cap; 0 = none
    std::vector<LaneInfo> lanes_;
    std::vector<std::uint16_t> workerLanes_;
    std::uint64_t phase_ = 0;
    std::uint64_t serialScope_ = 0;
    std::chrono::steady_clock::time_point epoch_;
};

} // namespace boss::trace

#endif // BOSS_TRACE_RECORDER_H
