#include "trace/chrome_trace.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "trace/json.h"

namespace boss::trace
{

namespace
{

/** Ticks are picoseconds; Chrome timestamps are microseconds. */
constexpr double kTicksPerMicro = 1e6;

struct LaneIds
{
    int pid = 0;
    int tid = 0;
};

void
writeArgs(std::ostream &os, const Event &e)
{
    os << "\"args\":{";
    for (std::uint8_t i = 0; i < e.numArgs; ++i) {
        if (i != 0)
            os << ',';
        json::writeString(os, e.args[i].key);
        os << ':' << e.args[i].value;
    }
    os << '}';
}

void
writeCommon(std::ostream &os, const char *name, const LaneIds &ids,
            double ts)
{
    os << "{\"name\":";
    json::writeString(os, name);
    os << ",\"pid\":" << ids.pid << ",\"tid\":" << ids.tid
       << ",\"ts\":";
    json::writeFixed(os, ts);
}

} // namespace

void
writeChromeTrace(std::ostream &os, const Recorder &rec)
{
    const auto &lanes = rec.lanes();

    // One Chrome "process" per distinct process name, keeping the
    // two clock domains (device ticks vs host wall time) apart; one
    // "thread" per lane within its process.
    std::map<std::string, int> pids;
    std::vector<LaneIds> ids(lanes.size());
    for (std::size_t i = 0; i < lanes.size(); ++i) {
        auto [it, inserted] =
            pids.emplace(lanes[i].process,
                         static_cast<int>(pids.size()) + 1);
        (void)inserted;
        ids[i].pid = it->second;
        ids[i].tid = static_cast<int>(i) + 1;
    }

    os << "[\n";
    bool first = true;
    auto sep = [&] {
        if (!first)
            os << ",\n";
        first = false;
    };

    // Metadata: name every process and thread lane up front so the
    // viewer shows stable labels even for empty lanes.
    for (const auto &[process, pid] : pids) {
        sep();
        os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
           << ",\"tid\":0,\"args\":{\"name\":";
        json::writeString(os, process);
        os << "}}";
    }
    for (std::size_t i = 0; i < lanes.size(); ++i) {
        sep();
        os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":"
           << ids[i].pid << ",\"tid\":" << ids[i].tid
           << ",\"args\":{\"name\":";
        json::writeString(os, lanes[i].thread);
        os << "}}";
        sep();
        os << "{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":"
           << ids[i].pid << ",\"tid\":" << ids[i].tid
           << ",\"args\":{\"sort_index\":" << lanes[i].sortIndex
           << "}}";
    }

    for (const Event &e : rec.merged()) {
        const LaneIds &lane = ids[e.lane];
        bool sim = lanes[e.lane].domain == Domain::SimTicks;
        double ts = sim ? e.start / kTicksPerMicro : e.start;
        sep();
        switch (e.kind) {
          case EventKind::Span: {
            double dur = sim ? e.dur / kTicksPerMicro : e.dur;
            writeCommon(os, e.name, lane, ts);
            os << ",\"dur\":";
            json::writeFixed(os, dur);
            os << ",\"ph\":\"X\",";
            writeArgs(os, e);
            os << '}';
            break;
          }
          case EventKind::Instant:
            writeCommon(os, e.name, lane, ts);
            os << ",\"ph\":\"i\",\"s\":\"t\",";
            writeArgs(os, e);
            os << '}';
            break;
          case EventKind::Counter:
            writeCommon(os, e.name, lane, ts);
            os << ",\"ph\":\"C\",\"args\":{\"value\":";
            json::writeFixed(os, e.value);
            os << "}}";
            break;
        }
    }
    os << "\n]\n";
}

} // namespace boss::trace
