#include "trace/recorder.h"

#include <algorithm>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace boss::trace
{

Recorder::Recorder(std::size_t workers)
    : epoch_(std::chrono::steady_clock::now())
{
    if (workers == 0)
        workers = common::ThreadPool::global().size();
    buffers_.resize(workers + 1); // buffer 0: serial phases
    workerLanes_.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
        workerLanes_.push_back(addLane(
            "host", "pool.worker" + std::to_string(w),
            Domain::HostMicros, static_cast<int>(w)));
    }
}

std::uint16_t
Recorder::addLane(std::string process, std::string thread,
                  Domain domain, int sortIndex)
{
    BOSS_ASSERT(lanes_.size() < 0xFFFF, "lane table overflow");
    lanes_.push_back(LaneInfo{std::move(process), std::move(thread),
                              domain, sortIndex});
    return static_cast<std::uint16_t>(lanes_.size() - 1);
}

std::uint16_t
Recorder::workerLane(std::size_t worker) const
{
    BOSS_ASSERT(worker < workerLanes_.size(),
                "recorder sized for ", workerLanes_.size(),
                " workers, worker ", worker, " recorded; construct "
                "the Recorder after sizing the thread pool");
    return workerLanes_[worker];
}

std::uint64_t
Recorder::beginPhase()
{
    ++phase_;
    std::uint64_t base = phase_ << 32;
    serialScope_ = base;
    return base;
}

Scope
Recorder::scope(std::size_t worker, std::uint64_t key)
{
    BOSS_ASSERT(worker + 1 < buffers_.size(),
                "worker id out of recorder range");
    return Scope(this, worker + 1, key);
}

double
Recorder::hostMicros() const
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

void
Recorder::setEventCapacity(std::size_t perBufferEvents)
{
    BOSS_ASSERT(eventCount() == 0,
                "setEventCapacity must precede recording");
    capacity_ = perBufferEvents;
}

std::uint64_t
Recorder::droppedEvents() const
{
    std::uint64_t total = 0;
    for (const auto &buf : buffers_)
        total += buf.dropped;
    return total;
}

void
Recorder::push(std::size_t buffer, std::uint64_t scope, Event e)
{
    auto &buf = buffers_[buffer];
    e.scope = scope;
    e.seq = buf.nextSeq++;
    if (capacity_ == 0 || buf.events.size() < capacity_) {
        buf.events.push_back(e);
        return;
    }
    // Ring-full: overwrite the oldest retained event.
    buf.events[buf.head] = e;
    buf.head = (buf.head + 1) % capacity_;
    ++buf.dropped;
}

std::vector<Event>
Recorder::merged() const
{
    std::vector<Event> all;
    all.reserve(eventCount());
    for (const auto &buf : buffers_)
        all.insert(all.end(), buf.events.begin(), buf.events.end());
    std::stable_sort(all.begin(), all.end(),
                     [](const Event &a, const Event &b) {
                         if (a.scope != b.scope)
                             return a.scope < b.scope;
                         return a.seq < b.seq;
                     });
    return all;
}

std::size_t
Recorder::eventCount() const
{
    std::size_t total = 0;
    for (const auto &buf : buffers_)
        total += buf.events.size();
    return total;
}

namespace
{

void
fillArgs(Event &e, std::initializer_list<EventArg> args)
{
    for (const EventArg &a : args) {
        if (e.numArgs == e.args.size())
            break; // silently drop beyond capacity
        e.args[e.numArgs++] = a;
    }
}

} // namespace

void
Scope::span(std::uint16_t lane, const char *name, double start,
            double dur, std::initializer_list<EventArg> args)
{
    if (rec_ == nullptr)
        return;
    Event e;
    e.name = name;
    e.kind = EventKind::Span;
    e.lane = lane;
    e.start = start;
    e.dur = dur;
    fillArgs(e, args);
    rec_->push(buffer_, scope_, e);
}

void
Scope::instant(std::uint16_t lane, const char *name, double ts,
               std::initializer_list<EventArg> args)
{
    if (rec_ == nullptr)
        return;
    Event e;
    e.name = name;
    e.kind = EventKind::Instant;
    e.lane = lane;
    e.start = ts;
    fillArgs(e, args);
    rec_->push(buffer_, scope_, e);
}

void
Scope::counter(std::uint16_t lane, const char *name, double ts,
               double value)
{
    if (rec_ == nullptr)
        return;
    Event e;
    e.name = name;
    e.kind = EventKind::Counter;
    e.lane = lane;
    e.start = ts;
    e.value = value;
    rec_->push(buffer_, scope_, e);
}

double
Scope::hostMicros() const
{
    return rec_ == nullptr ? 0.0 : rec_->hostMicros();
}

} // namespace boss::trace
