#include "trace/summary.h"

#include <cctype>
#include <utility>

namespace boss::trace
{

namespace
{

/**
 * The flat schema: key order here is the serialization order, and
 * parseJsonLine requires exactly this key set (any order).
 */
std::vector<std::pair<std::string, std::uint64_t *>>
fields(QuerySummary &s)
{
    std::vector<std::pair<std::string, std::uint64_t *>> f = {
        {"query", &s.query},
        {"terms", &s.terms},
        {"cycles", &s.cycles},
        {"blocks_loaded", &s.blocksLoaded},
        {"blocks_skipped", &s.blocksSkipped},
        {"values_decoded", &s.valuesDecoded},
        {"norms_fetched", &s.normsFetched},
        {"docs_scored", &s.docsScored},
        {"docs_skipped", &s.docsSkipped},
        {"topk_inserts", &s.topkInserts},
        {"result_bytes", &s.resultBytes},
        {"crc_retries", &s.crcRetries},
        {"blocks_dropped", &s.blocksDropped},
        {"shards_dropped", &s.shardsDropped},
    };
    for (std::size_t c = 0; c < kNumTrafficClasses; ++c) {
        std::string base(kTrafficClassNames[c]);
        f.emplace_back(base + "_bytes", &s.classBytes[c]);
        f.emplace_back(base + "_accesses", &s.classAccesses[c]);
    }
    return f;
}

struct Cursor
{
    const std::string &s;
    std::size_t pos = 0;

    void skipSpace()
    {
        while (pos < s.size() &&
               std::isspace(static_cast<unsigned char>(s[pos])))
            ++pos;
    }

    bool eat(char c)
    {
        skipSpace();
        if (pos >= s.size() || s[pos] != c)
            return false;
        ++pos;
        return true;
    }

    bool key(std::string &out)
    {
        if (!eat('"'))
            return false;
        out.clear();
        while (pos < s.size() && s[pos] != '"')
            out.push_back(s[pos++]);
        return eat('"');
    }

    bool number(std::uint64_t &out)
    {
        skipSpace();
        if (pos >= s.size() ||
            !std::isdigit(static_cast<unsigned char>(s[pos])))
            return false;
        out = 0;
        while (pos < s.size() &&
               std::isdigit(static_cast<unsigned char>(s[pos])))
            out = out * 10 + static_cast<std::uint64_t>(s[pos++] - '0');
        return true;
    }
};

} // namespace

void
writeJsonLine(std::ostream &os, const QuerySummary &s)
{
    // fields() needs a mutable reference; serialization never writes
    // through the pointers.
    auto f = fields(const_cast<QuerySummary &>(s));
    os << '{';
    for (std::size_t i = 0; i < f.size(); ++i) {
        if (i != 0)
            os << ',';
        os << '"' << f[i].first << "\":" << *f[i].second;
    }
    os << '}';
}

bool
parseJsonLine(const std::string &line, QuerySummary &out)
{
    QuerySummary parsed;
    auto f = fields(parsed);
    std::vector<bool> seen(f.size(), false);

    Cursor cur{line};
    if (!cur.eat('{'))
        return false;
    bool firstPair = true;
    for (;;) {
        cur.skipSpace();
        if (cur.pos < line.size() && line[cur.pos] == '}')
            break;
        if (!firstPair && !cur.eat(','))
            return false;
        firstPair = false;

        std::string key;
        std::uint64_t value;
        if (!cur.key(key) || !cur.eat(':') || !cur.number(value))
            return false;

        bool matched = false;
        for (std::size_t i = 0; i < f.size(); ++i) {
            if (f[i].first == key) {
                if (seen[i])
                    return false; // duplicate key
                seen[i] = true;
                *f[i].second = value;
                matched = true;
                break;
            }
        }
        if (!matched)
            return false; // unknown key
    }
    if (!cur.eat('}'))
        return false;
    cur.skipSpace();
    if (cur.pos != line.size())
        return false; // trailing garbage
    for (bool s : seen) {
        if (!s)
            return false; // missing key
    }
    out = parsed;
    return true;
}

void
writeSummaries(std::ostream &os,
               const std::vector<QuerySummary> &summaries)
{
    for (const QuerySummary &s : summaries) {
        writeJsonLine(os, s);
        os << '\n';
    }
}

} // namespace boss::trace
