/**
 * @file
 * Compact per-query summary records.
 *
 * One QuerySummary captures everything the paper's per-query
 * breakdowns need: replay cycles, block skipping effectiveness,
 * decode/score/top-k work, and bytes moved per traffic class (the
 * Fig. 15 categories). The records serialize as JSON Lines — one
 * flat object per line — so downstream analysis is a one-liner in
 * any language, and round-trip exactly through parseJsonLine for
 * the determinism tests.
 *
 * This header deliberately does not depend on mem/ or model/; the
 * model layer bridges its traffic categories into the fixed class
 * list here (checked by a static_assert at the bridge).
 */

#ifndef BOSS_TRACE_SUMMARY_H
#define BOSS_TRACE_SUMMARY_H

#include <array>
#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace boss::trace
{

/** Traffic classes, mirroring mem::Category order. */
inline constexpr std::size_t kNumTrafficClasses = 5;

/** Snake-case class names used as JSON key prefixes. */
inline constexpr std::array<std::string_view, kNumTrafficClasses>
    kTrafficClassNames = {"ld_list", "ld_score", "ld_inter",
                          "st_inter", "st_result"};

/** Per-query execution summary. All fields serialize flat. */
struct QuerySummary
{
    std::uint64_t query = 0; ///< submission index within the batch
    std::uint64_t terms = 0;
    std::uint64_t cycles = 0; ///< replay latency in core cycles

    std::uint64_t blocksLoaded = 0;
    std::uint64_t blocksSkipped = 0;
    std::uint64_t valuesDecoded = 0;
    std::uint64_t normsFetched = 0;
    std::uint64_t docsScored = 0;
    std::uint64_t docsSkipped = 0;
    std::uint64_t topkInserts = 0;
    std::uint64_t resultBytes = 0;

    // Resilience events (zero on fault-free runs).
    std::uint64_t crcRetries = 0;    ///< payload re-reads after CRC miss
    std::uint64_t blocksDropped = 0; ///< payloads degraded away
    std::uint64_t shardsDropped = 0; ///< dead shards absent from merge

    std::array<std::uint64_t, kNumTrafficClasses> classBytes{};
    std::array<std::uint64_t, kNumTrafficClasses> classAccesses{};

    bool operator==(const QuerySummary &) const = default;
};

/** Write @p s as one JSON object on a single line (no newline). */
void writeJsonLine(std::ostream &os, const QuerySummary &s);

/**
 * Parse a line produced by writeJsonLine. Returns false on any
 * schema mismatch (unknown key, missing key, malformed JSON).
 */
bool parseJsonLine(const std::string &line, QuerySummary &out);

/** Write all summaries as JSON Lines (one record per line). */
void writeSummaries(std::ostream &os,
                    const std::vector<QuerySummary> &summaries);

} // namespace boss::trace

#endif // BOSS_TRACE_SUMMARY_H
