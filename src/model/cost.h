/**
 * @file
 * System cost models: map segment operation counts to per-stage
 * cycle counts under each system's microarchitecture.
 */

#ifndef BOSS_MODEL_COST_H
#define BOSS_MODEL_COST_H

#include <algorithm>
#include <array>

#include "common/bitops.h"
#include "model/trace.h"

namespace boss::model
{

using StageCycles = std::array<Cycles, kNumStages>;

/**
 * Abstract cost model.
 */
class CostModel
{
  public:
    virtual ~CostModel() = default;

    /** Core clock frequency. */
    virtual double frequencyHz() const = 0;
    /** Outstanding-memory-request window per core. */
    virtual std::uint32_t requestWindow() const { return 8; }
    /** Minimum cycles between request issues. */
    virtual Cycles issueGapCycles() const { return 1; }
    /** Pipeline drain at query end. */
    virtual Cycles drainCycles() const { return 64; }

    /**
     * Cycles each stage spends on @p work for an n-term query
     * executing on a gang of @p gangSize cores (queries with more
     * than 4 terms span multiple cores, paper Sec. IV-D).
     */
    virtual StageCycles stageCycles(const SegmentWork &work,
                                    std::uint32_t numTerms,
                                    std::uint32_t gangSize) const = 0;
};

/**
 * The BOSS core (paper Table I): 1 GHz; 1 block fetch module, 4
 * decompression modules, 1 intersection module, 1 union module, 4
 * scoring modules, 1 top-k module. Crucially, BOSS lacks intra-query
 * parallelism: a query uses only as many decompression/scoring
 * modules as it has terms (paper Sec. V-B).
 */
class BossCostModel : public CostModel
{
  public:
    double frequencyHz() const override { return 1e9; }

    StageCycles
    stageCycles(const SegmentWork &w, std::uint32_t numTerms,
                std::uint32_t gangSize) const override
    {
        std::uint32_t units = std::min<std::uint32_t>(
            4 * std::max(1u, gangSize), std::max(1u, numTerms));
        StageCycles c{};
        c[static_cast<std::size_t>(Stage::Fetch)] =
            4ull * w.fetchBlocks + w.metaReads;
        c[static_cast<std::size_t>(Stage::Decomp)] =
            ceilDiv(w.decodeVals, units) + 3ull * w.exceptions;
        // The union module's sorter/score-loader/pivot-selector
        // sequence takes ~2 cycles per scheduling step.
        c[static_cast<std::size_t>(Stage::SetOp)] =
            w.compares + 2ull * w.unionSteps;
        c[static_cast<std::size_t>(Stage::Score)] =
            ceilDiv(w.scoreTermOps, units) + w.scoreDocs;
        c[static_cast<std::size_t>(Stage::TopK)] = w.topkOps;
        return c;
    }
};

/**
 * The IIU baseline: same 1 GHz clock and per-module throughputs as
 * BOSS (the paper equalizes decompression/scoring module counts for
 * fairness), but with intra-query parallelism (all 4 units usable by
 * any query) and no hardware top-k (its cost is ignored, per the
 * paper's methodology).
 */
class IiuCostModel : public CostModel
{
  public:
    double frequencyHz() const override { return 1e9; }

    StageCycles
    stageCycles(const SegmentWork &w, std::uint32_t,
                std::uint32_t gangSize) const override
    {
        std::uint32_t units = 4 * std::max(1u, gangSize);
        StageCycles c{};
        c[static_cast<std::size_t>(Stage::Fetch)] =
            4ull * w.fetchBlocks + w.metaReads;
        c[static_cast<std::size_t>(Stage::Decomp)] =
            ceilDiv(w.decodeVals, units) + 3ull * w.exceptions;
        c[static_cast<std::size_t>(Stage::SetOp)] =
            w.compares + 2ull * w.unionSteps;
        c[static_cast<std::size_t>(Stage::Score)] =
            ceilDiv(w.scoreTermOps, units) + w.scoreDocs;
        c[static_cast<std::size_t>(Stage::TopK)] = 0; // host-side
        return c;
    }
};

/**
 * The Lucene-like software baseline on a 2.7 GHz Xeon core. All work
 * serializes on the core; per-operation cycle costs are calibrated
 * so the baseline is compute-bound (per the paper, moving Lucene
 * from SCM to DRAM gains at most ~15%).
 */
class CpuCostModel : public CostModel
{
  public:
    double frequencyHz() const override { return 2.7e9; }
    std::uint32_t requestWindow() const override { return 10; }
    Cycles drainCycles() const override { return 256; }

    StageCycles
    stageCycles(const SegmentWork &w, std::uint32_t,
                std::uint32_t) const override
    {
        // Everything executes on the one CPU core (stage 0); the
        // other stages stay empty so the pipeline model degenerates
        // to serial execution.
        Cycles total = 0;
        total += static_cast<Cycles>(w.fetchBlocks) * kBlockOverhead;
        total += static_cast<Cycles>(w.metaReads) * kMetaCost;
        total += static_cast<Cycles>(w.decodeVals) * kDecodeCost;
        total += static_cast<Cycles>(w.exceptions) * kExceptionCost;
        total += static_cast<Cycles>(w.compares) * kCompareCost;
        total += static_cast<Cycles>(w.unionSteps) * kUnionCost;
        total += static_cast<Cycles>(w.scoreDocs) * kScoreDocCost;
        total +=
            static_cast<Cycles>(w.scoreTermOps) * kScoreTermCost;
        total += static_cast<Cycles>(w.topkOps) * kTopkCost;
        StageCycles c{};
        c[0] = total;
        return c;
    }

    // Per-operation cycle costs for a JIT-compiled JVM search stack
    // (Lucene-style doc-at-a-time evaluation: virtual iterator
    // dispatch, branchy VInt decoding, float BM25, heap collector).
    static constexpr Cycles kBlockOverhead = 150;
    static constexpr Cycles kMetaCost = 8;
    static constexpr Cycles kDecodeCost = 6;
    static constexpr Cycles kExceptionCost = 15;
    static constexpr Cycles kCompareCost = 65;
    static constexpr Cycles kUnionCost = 26;
    static constexpr Cycles kScoreDocCost = 15;
    static constexpr Cycles kScoreTermCost = 30;
    static constexpr Cycles kTopkCost = 8;
};

} // namespace boss::model

#endif // BOSS_MODEL_COST_H
