#include "model/core.h"

#include "common/logging.h"

namespace boss::model
{

Core::Core(const std::string &name, sim::EventQueue &eq,
           stats::Group &parent, const CostModel &costs,
           mem::MemorySystem &memory, mem::HostLink *resultLink,
           std::uint32_t requestorId)
    : SimObject(name, eq, parent), costs_(costs), memory_(memory),
      resultLink_(resultLink), tlb_(1024, 31), // 1K entries, 2GB pages
      requestorId_(requestorId), clock_(costs.frequencyHz())
{
    statsGroup().addCounter("queries", &queries_, "queries executed");
    statsGroup().addCounter("busy_cycles", &busyCycles_,
                            "core-busy cycles");
    tlb_.registerStats(statsGroup());
}

void
Core::execute(const QueryTrace *trace, std::function<void(Tick)> done,
              std::uint32_t gangSize, std::uint64_t queryId)
{
    BOSS_ASSERT(trace_ == nullptr, name(), ": core already busy");
    trace_ = trace;
    gangSize_ = std::max(1u, gangSize);
    queryId_ = queryId;
    done_ = std::move(done);
    startTick_ = eventQueue().now();

    flat_.clear();
    pendingReqs_.assign(trace->segments.size(), 0);
    readyTick_.assign(trace->segments.size(), startTick_);
    for (std::uint32_t s = 0; s < trace->segments.size(); ++s) {
        for (const auto &req : trace->segments[s].reqs) {
            flat_.emplace_back(s, &req);
            ++pendingReqs_[s];
        }
    }
    nextIssue_ = 0;
    outstanding_ = 0;
    issuePending_ = false;
    lastIssueTick_ = 0;
    nextCompute_ = 0;
    stageFree_.fill(startTick_);
    lastComputeEnd_ = startTick_;
    lastSegSpanEnd_ = startTick_;
    finishScheduled_ = false;

    advanceCompute();
    tryIssue();
}

void
Core::tryIssue()
{
    issuePending_ = false;
    std::uint32_t window = costs_.requestWindow() * gangSize_;
    if (trace_ == nullptr || nextIssue_ >= flat_.size() ||
        outstanding_ >= window) {
        return;
    }

    Tick now = eventQueue().now();
    Tick gap = clock_.toTicks(costs_.issueGapCycles());
    Tick earliest =
        lastIssueTick_ == 0 ? now : lastIssueTick_ + gap;
    if (earliest > now) {
        issuePending_ = true;
        eventQueue().schedule(earliest, [this] { tryIssue(); });
        return;
    }

    const TraceRequest *traceReq = flat_[nextIssue_].second;
    std::size_t flatIdx = nextIssue_;
    ++nextIssue_;
    ++outstanding_;
    lastIssueTick_ = now;

    tlb_.translate(traceReq->addr);
    mem::MemRequest req;
    req.addr = traceReq->addr;
    req.bytes = traceReq->bytes;
    req.write = traceReq->write;
    req.forceRandom = traceReq->forceRandom;
    req.requestor = requestorId_;
    req.stream = traceReq->stream;
    req.category = traceReq->category;

    // DRAM block-cache tier: reads of immutable index-resident data
    // (metadata, doc/tf payloads, norm sidecar) consult the cache.
    // A hit is serviced by the DRAM model; a miss reads SCM and
    // admits the block. Intermediate scratch (write-then-read, no
    // invalidation modeled) and result writes always go to SCM. The
    // entry stays pinned until the modeled fetch completes so
    // replacement can never pull an in-flight block.
    bool cacheable =
        cache_ != nullptr && !req.write &&
        (req.stream >> 5) <=
            static_cast<std::uint8_t>(StreamClass::NormSidecar);
    bool pinned = false;
    mem::MemorySystem *target = &memory_;
    if (cacheable) {
        auto outcome = cache_->access(req.addr, req.bytes);
        pinned = outcome != mem::BlockCache::Outcome::Bypass;
        if (outcome == mem::BlockCache::Outcome::Hit)
            target = cacheMem_;
    }
    Addr addr = req.addr;
    target->access(req, [this, flatIdx, pinned, addr] {
        if (pinned)
            cache_->unpin(addr);
        onRequestComplete(flatIdx);
    });

    if (nextIssue_ < flat_.size() && outstanding_ < window) {
        issuePending_ = true;
        eventQueue().schedule(now + gap, [this] { tryIssue(); });
    }
}

void
Core::onRequestComplete(std::size_t flatIdx)
{
    BOSS_ASSERT(trace_ != nullptr, name(), ": stray completion");
    --outstanding_;
    std::uint32_t segIdx = flat_[flatIdx].first;
    BOSS_ASSERT(pendingReqs_[segIdx] > 0, "request count underflow");
    if (--pendingReqs_[segIdx] == 0)
        readyTick_[segIdx] = eventQueue().now();
    advanceCompute();
    if (!issuePending_)
        tryIssue();
    maybeFinish();
}

void
Core::advanceCompute()
{
    if (trace_ == nullptr)
        return;
    const auto &segments = trace_->segments;
    while (nextCompute_ < segments.size() &&
           pendingReqs_[nextCompute_] == 0) {
        // In-order consumption: a zero-request segment still waits
        // for its predecessors (enforced by this loop's order).
        const TraceSegment &seg = segments[nextCompute_];
        StageCycles cycles = costs_.stageCycles(
            seg.work, trace_->numTerms, gangSize_);
        Tick segStart = std::max(readyTick_[nextCompute_], startTick_);
        Tick t = segStart;
        for (std::size_t st = 0; st < kNumStages; ++st) {
            Tick start = std::max(t, stageFree_[st]);
            Tick end = start + clock_.toTicks(cycles[st]);
            stageFree_[st] = end;
            t = end;
        }
        lastComputeEnd_ = std::max(lastComputeEnd_, t);
        if (traceScope_) {
            // Stage pipelining lets segment i+1 start before segment
            // i drains; clamp to the previous span's end so slices
            // nest (commit order is in-order, so ends are monotonic).
            Tick spanStart = std::max(segStart, lastSegSpanEnd_);
            lastSegSpanEnd_ = std::max(t, spanStart);
            traceScope_.span(
                traceLane_, "segment", static_cast<double>(spanStart),
                static_cast<double>(lastSegSpanEnd_ - spanStart),
                {{"query", queryId_},
                 {"seg", nextCompute_},
                 {"decode_vals", seg.work.decodeVals},
                 {"score_docs", seg.work.scoreDocs},
                 {"topk_ops", seg.work.topkOps}});
        }
        ++nextCompute_;
    }
    maybeFinish();
}

void
Core::maybeFinish()
{
    if (trace_ == nullptr || finishScheduled_)
        return;
    if (nextCompute_ < trace_->segments.size() ||
        nextIssue_ < flat_.size() || outstanding_ > 0) {
        return;
    }
    Tick end = lastComputeEnd_ + clock_.toTicks(costs_.drainCycles());
    if (resultLink_ != nullptr && trace_->resultStoreBytes > 0)
        end = resultLink_->transfer(end, trace_->resultStoreBytes);
    finishScheduled_ = true;
    eventQueue().schedule(end, [this, end] {
        ++queries_;
        Cycles cycles = clock_.toCycles(end - startTick_);
        busyCycles_ += cycles;
        if (traceScope_) {
            traceScope_.span(
                traceLane_, "query",
                static_cast<double>(startTick_),
                static_cast<double>(end - startTick_),
                {{"query", queryId_},
                 {"terms", trace_->numTerms},
                 {"segments", trace_->segments.size()},
                 {"gang", gangSize_},
                 {"cycles", cycles}});
        }
        auto done = std::move(done_);
        trace_ = nullptr;
        done(end);
    });
}

} // namespace boss::model
