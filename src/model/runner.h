/**
 * @file
 * Workload runner: the top-level harness the benches use. Builds
 * traces for a query set under a system configuration, replays them
 * on a fresh SystemModel, and reports the combined metrics.
 */

#ifndef BOSS_MODEL_RUNNER_H
#define BOSS_MODEL_RUNNER_H

#include <vector>

#include "model/system.h"
#include "workload/queries.h"

namespace boss::model
{

/** Metrics of one workload run (RunStats + functional counters). */
struct WorkloadMetrics
{
    RunStats run;
    std::uint64_t evaluatedDocs = 0;
    std::uint64_t skippedDocs = 0;
    std::uint64_t blocksLoaded = 0;
    std::uint64_t blocksSkipped = 0;
    /** Logical per-category accesses (64B units) from the traces. */
    std::array<std::uint64_t, mem::kNumCategories> traceAccesses{};
};

/**
 * Build traces for @p queries under @p kind's algorithm flags.
 * Traces are device- and core-count-independent; build once, replay
 * under many hardware configurations. With @p recorder attached,
 * each build becomes a host-time span on its worker's lane.
 */
std::vector<QueryTrace>
buildTraces(const index::InvertedIndex &index,
            const index::MemoryLayout &layout,
            const std::vector<workload::Query> &queries,
            SystemKind kind, std::size_t k = engine::kDefaultTopK,
            trace::Recorder *recorder = nullptr);

/** Optional observers threaded through a replay. */
struct ReplayObservers
{
    /** Timeline recorder (core/channel/event-queue lanes). */
    trace::Recorder *recorder = nullptr;
    /** Filled with per-query dispatch/completion times. */
    std::vector<QueryTiming> *timings = nullptr;
    /**
     * Invoked with the live model after run() completes, before the
     * model is torn down — e.g. to export its stats tree.
     */
    std::function<void(SystemModel &)> onModel;
};

/** Replay prebuilt traces on a fresh system instance. */
WorkloadMetrics
replayTraces(const std::vector<QueryTrace> &traces,
             const SystemConfig &config,
             const ReplayObservers &observers = {});

/** Convenience: buildTraces + replayTraces. */
WorkloadMetrics
runWorkload(const index::InvertedIndex &index,
            const index::MemoryLayout &layout,
            const std::vector<workload::Query> &queries,
            const SystemConfig &config,
            std::size_t k = engine::kDefaultTopK);

} // namespace boss::model

#endif // BOSS_MODEL_RUNNER_H
