#include "model/trace.h"

#include <unordered_map>

#include "common/bitops.h"
#include "common/logging.h"

namespace boss::model
{

namespace
{

using engine::ExecHooks;
using index::BlockMeta;
using mem::Category;

/** 64 B logical access unit for the Fig. 15 counters. */
constexpr std::uint32_t kAccessUnit = 64;

class TraceBuilder : public ExecHooks
{
  public:
    TraceBuilder(const index::InvertedIndex &index,
                 const index::MemoryLayout &layout,
                 const TraceOptions &options, QueryTrace &out,
                 trace::Scope scope, std::uint16_t lane)
        : index_(index), layout_(layout), options_(options), out_(out),
          scope_(scope), lane_(lane)
    {
        out_.segments.emplace_back(); // leading segment
    }


    // ---- ExecHooks ----

    void
    onMetaRead(TermId t, std::uint32_t count) override
    {
        if (count == 0)
            return;
        seg().work.metaReads += count;
        Addr cursor = layout_.list(t).metaAddr +
                      static_cast<Addr>(metaCursor_[t]) *
                          index::kBlockMetaBytes;
        metaCursor_[t] += count;
        // Metadata is streamed in order; adjacent reads coalesce
        // into one request (the block fetch module prefetches the
        // 19 B records sequentially).
        auto &reqs = seg().reqs;
        if (!reqs.empty()) {
            TraceRequest &last = reqs.back();
            if (last.category == Category::LdList && !last.write &&
                last.addr + last.bytes == cursor) {
                last.bytes += count * index::kBlockMetaBytes;
                out_.catAccesses[static_cast<std::size_t>(
                    Category::LdList)] += 1;
                return;
            }
        }
        addRequest({cursor, count * index::kBlockMetaBytes, false,
                    false, Category::LdList, streamId(StreamClass::Meta, t), 1});
    }

    void
    onDocBlockLoad(TermId t, const BlockMeta &meta) override
    {
        newSegment();
        seg().work.fetchBlocks += 1;
        seg().work.exceptions += meta.exceptionInfo;
        ++out_.blocksLoaded;
        addRequest({layout_.list(t).docAddr + meta.docOffset,
                    meta.docBytes, false, false, Category::LdList,
                    streamId(StreamClass::DocPayload, t), 1});
    }

    void
    onProbeBlockLoad(TermId t, const BlockMeta &meta) override
    {
        newSegment();
        seg().work.fetchBlocks += 1;
        seg().work.exceptions += meta.exceptionInfo;
        ++out_.blocksLoaded;
        // Binary-search probes land anywhere in the list: random.
        addRequest({layout_.list(t).docAddr + meta.docOffset,
                    meta.docBytes, false, true, Category::LdList,
                    streamId(StreamClass::DocPayload, t), 1});
    }

    void
    onTfBlockLoad(TermId t, const BlockMeta &meta) override
    {
        seg().work.exceptions += meta.exceptionInfo;
        addRequest({layout_.list(t).tfAddr + meta.tfOffset,
                    meta.tfBytes, false, false, Category::LdScore,
                    streamId(StreamClass::TfPayload, t), 1});
        // The block's per-posting norm sidecar (4 B each) is fetched
        // with the tf payload; both are needed only when a document
        // in the block is actually scored.
        if (!options_.normsCached) {
            addRequest({layout_.list(t).normAddr +
                            static_cast<Addr>(meta.firstIndex) *
                                index::kDocNormBytes,
                        meta.numElems * index::kDocNormBytes, false,
                        false, Category::LdScore,
                        streamId(StreamClass::NormSidecar, t), 1});
        }
    }

    void
    onDecode(std::uint32_t count) override
    {
        seg().work.decodeVals += count;
    }

    void
    onNormLoad(DocId) override
    {
        // Norms arrive with the block's tf sidecar (onTfBlockLoad);
        // no per-document traffic.
        seg().work.normGranules += 1;
    }

    void
    onScore(DocId, std::uint32_t numTerms) override
    {
        seg().work.scoreDocs += 1;
        seg().work.scoreTermOps += numTerms;
        ++out_.evaluatedDocs;
    }

    void
    onCompare(std::uint64_t count) override
    {
        seg().work.compares += static_cast<std::uint32_t>(count);
    }

    void onUnionStep() override { seg().work.unionSteps += 1; }

    void
    onTopkInsert(bool) override
    {
        seg().work.topkOps += 1;
    }

    void
    onIntermediate(std::uint64_t bytesWritten,
                   std::uint64_t bytesRead) override
    {
        if (bytesWritten > 0) {
            addRequest({scratchBase(), clamp32(bytesWritten), true,
                        false, Category::StInter,
                        streamId(StreamClass::Intermediate, 0),
                        accesses(bytesWritten)});
        }
        if (bytesRead > 0) {
            addRequest({scratchBase(), clamp32(bytesRead), false,
                        false, Category::LdInter,
                        streamId(StreamClass::Intermediate, 0),
                        accesses(bytesRead)});
        }
    }

    void
    onResultStore(std::uint64_t bytes) override
    {
        out_.resultStoreBytes += bytes;
        // An accelerator without a hardware top-k module (IIU)
        // materializes the full scored list in the node's SCM
        // ("output a scored, yet unsorted, list of documents in
        // memory"), paying the device's slow write bandwidth before
        // the host reads it back for sorting. BOSS's top-k list is
        // tiny and only crosses the link at query completion.
        if (options_.flags.storeAllResults && bytes > 0) {
            addRequest({scratchBase() + (1u << 24), clamp32(bytes),
                        true, false, Category::StResult,
                        streamId(StreamClass::Result, 0),
                        accesses(bytes)});
        } else {
            out_.catAccesses[static_cast<std::size_t>(
                Category::StResult)] += accesses(bytes);
        }
    }

    void
    onBlockRetry(TermId t, const BlockMeta &meta,
                 bool tfPayload) override
    {
        ++out_.crcRetries;
        // A retry is a second fetch of the same payload -- random,
        // because the prefetch streams have moved on by the time the
        // CRC miss is known.
        if (tfPayload) {
            addRequest({layout_.list(t).tfAddr + meta.tfOffset,
                        meta.tfBytes, false, true, Category::LdScore,
                        streamId(StreamClass::TfPayload, t), 1});
        } else {
            addRequest({layout_.list(t).docAddr + meta.docOffset,
                        meta.docBytes, false, true, Category::LdList,
                        streamId(StreamClass::DocPayload, t), 1});
        }
        if (scope_) {
            scope_.instant(lane_, "crc_retry", scope_.hostMicros(),
                           {{"term", t},
                            {"tf", tfPayload ? 1 : 0}});
        }
    }

    void
    onBlockDropped(TermId t, const BlockMeta &meta) override
    {
        ++out_.blocksDropped;
        if (scope_) {
            scope_.instant(lane_, "block_dropped", scope_.hostMicros(),
                           {{"term", t},
                            {"first_doc", meta.firstDoc}});
        }
    }

    void
    onSkippedDocs(std::uint64_t count) override
    {
        out_.skippedDocs += count;
    }

    void
    onSkippedBlocks(TermId t, std::uint64_t count) override
    {
        out_.blocksSkipped += count;
        if (scope_) {
            scope_.instant(lane_, "skip_blocks", scope_.hostMicros(),
                           {{"term", t}, {"count", count}});
        }
    }

  private:
    TraceSegment &seg() { return out_.segments.back(); }

    static std::uint32_t
    clamp32(std::uint64_t v)
    {
        return static_cast<std::uint32_t>(
            std::min<std::uint64_t>(v, 0xFFFFFFFFu));
    }

    std::uint32_t
    accesses(std::uint64_t bytes) const
    {
        return static_cast<std::uint32_t>(ceilDiv(bytes, kAccessUnit));
    }

    Addr
    scratchBase() const
    {
        // Intermediate spills land in a scratch region past the
        // index image.
        return roundUp(layout_.end(), 4096);
    }

    void
    addRequest(TraceRequest req)
    {
        out_.catAccesses[static_cast<std::size_t>(req.category)] +=
            std::max(1u, accesses(req.bytes));
        seg().reqs.push_back(req);
    }

    void
    newSegment()
    {
        out_.segments.emplace_back();
    }

    const index::InvertedIndex &index_;
    const index::MemoryLayout &layout_;
    const TraceOptions &options_;
    QueryTrace &out_;
    trace::Scope scope_;
    std::uint16_t lane_;

    std::unordered_map<TermId, std::uint32_t> metaCursor_;
};

} // namespace

trace::QuerySummary
summarizeTrace(const QueryTrace &t)
{
    // The summary's traffic classes mirror the memory model's
    // categories one-to-one (and in the same order).
    static_assert(trace::kNumTrafficClasses == mem::kNumCategories);

    trace::QuerySummary s;
    s.terms = t.numTerms;
    s.blocksLoaded = t.blocksLoaded;
    s.blocksSkipped = t.blocksSkipped;
    s.docsScored = t.evaluatedDocs;
    s.docsSkipped = t.skippedDocs;
    s.resultBytes = t.resultStoreBytes;
    s.crcRetries = t.crcRetries;
    s.blocksDropped = t.blocksDropped;
    SegmentWork work = t.totalWork();
    s.valuesDecoded = work.decodeVals;
    s.normsFetched = work.normGranules;
    s.topkInserts = work.topkOps;
    for (std::size_t c = 0; c < mem::kNumCategories; ++c)
        s.classAccesses[c] = t.catAccesses[c];
    for (const auto &seg : t.segments) {
        for (const auto &req : seg.reqs)
            s.classBytes[static_cast<std::size_t>(req.category)] +=
                req.bytes;
    }
    return s;
}

SegmentWork
QueryTrace::totalWork() const
{
    SegmentWork total;
    for (const auto &seg : segments) {
        total.fetchBlocks += seg.work.fetchBlocks;
        total.metaReads += seg.work.metaReads;
        total.decodeVals += seg.work.decodeVals;
        total.exceptions += seg.work.exceptions;
        total.compares += seg.work.compares;
        total.unionSteps += seg.work.unionSteps;
        total.scoreDocs += seg.work.scoreDocs;
        total.scoreTermOps += seg.work.scoreTermOps;
        total.topkOps += seg.work.topkOps;
        total.normGranules += seg.work.normGranules;
    }
    return total;
}

QueryTrace
buildTrace(const index::InvertedIndex &index,
           const index::MemoryLayout &layout,
           const engine::QueryPlan &plan, const TraceOptions &options,
           std::vector<engine::Result> *results,
           engine::QueryArena *arena, trace::Scope scope,
           std::uint16_t lane)
{
    QueryTrace trace;
    trace.numTerms = static_cast<std::uint32_t>(plan.allTerms.size());
    TraceBuilder builder(index, layout, options, trace, scope, lane);
    auto topk =
        engine::executeQuery(index, plan, options.k, options.flags,
                             &builder, arena, options.faults,
                             options.tombstones);
    // The winning top-k list itself crosses the link to the host.
    if (!options.flags.storeAllResults)
        trace.resultStoreBytes += topk.size() * 8;
    if (results != nullptr)
        *results = std::move(topk);
    return trace;
}

} // namespace boss::model
