#include "model/runner.h"

#include "engine/plan.h"

namespace boss::model
{

std::vector<QueryTrace>
buildTraces(const index::InvertedIndex &index,
            const index::MemoryLayout &layout,
            const std::vector<workload::Query> &queries,
            SystemKind kind, std::size_t k)
{
    TraceOptions options = traceOptionsFor(kind, k);
    std::vector<QueryTrace> traces;
    traces.reserve(queries.size());
    for (const auto &q : queries) {
        engine::QueryPlan plan = engine::planQuery(q);
        traces.push_back(buildTrace(index, layout, plan, options));
    }
    return traces;
}

WorkloadMetrics
replayTraces(const std::vector<QueryTrace> &traces,
             const SystemConfig &config)
{
    SystemModel model(config);
    std::vector<const QueryTrace *> ptrs;
    ptrs.reserve(traces.size());
    for (const auto &t : traces)
        ptrs.push_back(&t);

    WorkloadMetrics metrics;
    metrics.run = model.run(ptrs);
    for (const auto &t : traces) {
        metrics.evaluatedDocs += t.evaluatedDocs;
        metrics.skippedDocs += t.skippedDocs;
        metrics.blocksLoaded += t.blocksLoaded;
        metrics.blocksSkipped += t.blocksSkipped;
        for (std::size_t c = 0; c < mem::kNumCategories; ++c)
            metrics.traceAccesses[c] += t.catAccesses[c];
    }
    return metrics;
}

WorkloadMetrics
runWorkload(const index::InvertedIndex &index,
            const index::MemoryLayout &layout,
            const std::vector<workload::Query> &queries,
            const SystemConfig &config, std::size_t k)
{
    auto traces = buildTraces(index, layout, queries, config.kind, k);
    return replayTraces(traces, config);
}

} // namespace boss::model
