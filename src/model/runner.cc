#include "model/runner.h"

#include "common/thread_pool.h"
#include "engine/plan.h"

namespace boss::model
{

std::vector<QueryTrace>
buildTraces(const index::InvertedIndex &index,
            const index::MemoryLayout &layout,
            const std::vector<workload::Query> &queries,
            SystemKind kind, std::size_t k, trace::Recorder *recorder)
{
    TraceOptions options = traceOptionsFor(kind, k);
    std::vector<QueryTrace> traces(queries.size());

    // Trace building is per-query pure over the immutable index, so
    // the batch fans out across the pool. Query i always lands in
    // traces[i] and each build is single-threaded internally, so the
    // output is bit-identical to the serial loop at any thread count.
    // Replay stays serial: it is one event-driven simulation.
    common::ThreadPool &pool = common::ThreadPool::global();
    std::vector<engine::QueryArena> arenas(pool.size());
    std::uint64_t scopeBase =
        recorder != nullptr ? recorder->beginPhase() : 0;
    pool.parallelFor(queries.size(), [&](std::size_t i,
                                         std::size_t worker) {
        engine::QueryArena &arena = arenas[worker];
        engine::QueryPlan plan = engine::planQuery(queries[i]);
        trace::Scope scope;
        std::uint16_t lane = 0;
        if (recorder != nullptr) {
            scope = recorder->scope(worker, scopeBase + i);
            lane = recorder->workerLane(worker);
        }
        double t0 = scope.hostMicros();
        traces[i] = buildTrace(index, layout, plan, options, nullptr,
                               &arena, scope, lane);
        arena.reset();
        if (scope) {
            scope.span(lane, "build", t0, scope.hostMicros() - t0,
                       {{"query", i},
                        {"terms", traces[i].numTerms},
                        {"segments", traces[i].segments.size()}});
        }
    });
    return traces;
}

WorkloadMetrics
replayTraces(const std::vector<QueryTrace> &traces,
             const SystemConfig &config,
             const ReplayObservers &observers)
{
    SystemModel model(config, observers.recorder);
    std::vector<const QueryTrace *> ptrs;
    ptrs.reserve(traces.size());
    for (const auto &t : traces)
        ptrs.push_back(&t);

    WorkloadMetrics metrics;
    metrics.run = model.run(ptrs, observers.timings);
    if (observers.onModel)
        observers.onModel(model);
    for (const auto &t : traces) {
        metrics.evaluatedDocs += t.evaluatedDocs;
        metrics.skippedDocs += t.skippedDocs;
        metrics.blocksLoaded += t.blocksLoaded;
        metrics.blocksSkipped += t.blocksSkipped;
        for (std::size_t c = 0; c < mem::kNumCategories; ++c)
            metrics.traceAccesses[c] += t.catAccesses[c];
    }
    return metrics;
}

WorkloadMetrics
runWorkload(const index::InvertedIndex &index,
            const index::MemoryLayout &layout,
            const std::vector<workload::Query> &queries,
            const SystemConfig &config, std::size_t k)
{
    auto traces = buildTraces(index, layout, queries, config.kind, k);
    return replayTraces(traces, config);
}

} // namespace boss::model
