/**
 * @file
 * Event-driven core model: replays a QueryTrace against the shared
 * memory system under a cost model.
 *
 * Two engines per core run decoupled, as in the real pipeline:
 *  - the fetch engine issues the trace's memory requests in order,
 *    limited by an outstanding-request window and a 1-per-cycle
 *    issue rate (the block fetch module + MAI);
 *  - the compute engine consumes segments in order once their
 *    requests complete, pushing each segment through the five-stage
 *    pipeline with per-stage resource serialization.
 * A query finishes when its last segment drains and the top-k list
 * has crossed the host link.
 */

#ifndef BOSS_MODEL_CORE_H
#define BOSS_MODEL_CORE_H

#include <functional>

#include "mem/block_cache.h"
#include "mem/memory_system.h"
#include "mem/tlb.h"
#include "model/cost.h"
#include "model/trace.h"
#include "sim/sim_object.h"
#include "trace/recorder.h"

namespace boss::model
{

class Core : public sim::SimObject
{
  public:
    Core(const std::string &name, sim::EventQueue &eq,
         stats::Group &parent, const CostModel &costs,
         mem::MemorySystem &memory, mem::HostLink *resultLink,
         std::uint32_t requestorId);

    /** Is the core idle (no query in flight)? */
    bool idle() const { return trace_ == nullptr; }

    /**
     * Begin executing @p trace now; @p done fires at completion with
     * the finish tick. @p gangSize > 1 models a multi-core gang
     * (queries with more than 4 terms, paper Sec. IV-D): the gang's
     * aggregate functional units and request window serve the query.
     * @p queryId labels the query's trace events (submission index).
     */
    void execute(const QueryTrace *trace,
                 std::function<void(Tick)> done,
                 std::uint32_t gangSize = 1,
                 std::uint64_t queryId = 0);

    /**
     * Attach an event recorder: each query becomes a span on @p lane
     * covering dispatch to completion, with one child span per
     * consumed trace segment. Pass a null scope to detach.
     */
    void
    setTrace(trace::Scope scope, std::uint16_t lane)
    {
        traceScope_ = scope;
        traceLane_ = lane;
    }

    /**
     * Attach the DRAM block-cache tier: cacheable reads (metadata,
     * doc payload, tf payload streams) that hit in @p cache are
     * serviced by @p cacheMem instead of the SCM device. Both must
     * outlive the core; pass nullptrs to detach.
     */
    void
    setBlockCache(mem::BlockCache *cache, mem::MemorySystem *cacheMem)
    {
        cache_ = cache;
        cacheMem_ = cacheMem;
    }

    std::uint64_t queriesExecuted() const { return queries_.value(); }
    Cycles busyCycles() const
    {
        return static_cast<Cycles>(busyCycles_.value());
    }

  private:
    void tryIssue();
    void onRequestComplete(std::size_t flatIdx);
    void advanceCompute();
    void maybeFinish();

    const CostModel &costs_;
    mem::MemorySystem &memory_;
    mem::BlockCache *cache_ = nullptr;
    mem::MemorySystem *cacheMem_ = nullptr;
    mem::HostLink *resultLink_;
    mem::Tlb tlb_;
    std::uint32_t requestorId_;
    sim::ClockDomain clock_;

    // Per-query replay state.
    const QueryTrace *trace_ = nullptr;
    std::uint32_t gangSize_ = 1;
    std::uint64_t queryId_ = 0;
    std::function<void(Tick)> done_;
    Tick startTick_ = 0;
    /** Flattened (segment, request) list. */
    std::vector<std::pair<std::uint32_t, const TraceRequest *>> flat_;
    std::size_t nextIssue_ = 0;
    std::size_t outstanding_ = 0;
    bool issuePending_ = false;
    Tick lastIssueTick_ = 0;
    /** Per-segment count of incomplete requests. */
    std::vector<std::uint32_t> pendingReqs_;
    /** Per-segment readiness tick (valid once pendingReqs == 0). */
    std::vector<Tick> readyTick_;
    std::size_t nextCompute_ = 0;
    std::array<Tick, kNumStages> stageFree_{};
    Tick lastComputeEnd_ = 0;
    Tick lastSegSpanEnd_ = 0;
    bool finishScheduled_ = false;

    stats::Counter queries_;
    stats::Counter busyCycles_;

    trace::Scope traceScope_;
    std::uint16_t traceLane_ = 0;
};

} // namespace boss::model

#endif // BOSS_MODEL_CORE_H
