/**
 * @file
 * A whole modeled system: N cores, the shared memory device, the
 * host link, and a FIFO query dispatcher (the paper's command queue
 * + query scheduler).
 */

#ifndef BOSS_MODEL_SYSTEM_H
#define BOSS_MODEL_SYSTEM_H

#include <memory>
#include <string>
#include <vector>

#include "mem/memory_system.h"
#include "model/core.h"
#include "model/cost.h"
#include "trace/recorder.h"

namespace boss::model
{

/** The systems under evaluation. */
enum class SystemKind : std::uint8_t
{
    Lucene,         ///< software baseline on host CPU cores
    Iiu,            ///< prior accelerator (no ET, spills, host top-k)
    Boss,           ///< full BOSS
    BossExhaustive, ///< BOSS without any early termination (Fig. 13)
    BossBlockOnly,  ///< BOSS with only block-level ET (Fig. 14)
};

constexpr std::string_view
systemName(SystemKind k)
{
    switch (k) {
      case SystemKind::Lucene: return "lucene";
      case SystemKind::Iiu: return "iiu";
      case SystemKind::Boss: return "boss";
      case SystemKind::BossExhaustive: return "boss-exhaustive";
      case SystemKind::BossBlockOnly: return "boss-block-only";
    }
    return "?";
}

/** Algorithm configuration for trace building under a system. */
TraceOptions traceOptionsFor(SystemKind kind,
                             std::size_t k = engine::kDefaultTopK);

/** The core microarchitecture for a system. */
std::unique_ptr<CostModel> costModelFor(SystemKind kind);

/** Does this system access pooled memory from the host side? */
constexpr bool
isHostSide(SystemKind k)
{
    return k == SystemKind::Lucene;
}

/** Query scheduling policy of the command queue. */
enum class SchedPolicy : std::uint8_t
{
    Fifo, ///< strict arrival order (the paper's command queue)
    Sjf,  ///< shortest-job-first on the trace-size estimate
};

/** Configuration of one simulated system instance. */
struct SystemConfig
{
    SystemKind kind = SystemKind::Boss;
    std::uint32_t cores = 8;
    mem::MemConfig mem = mem::scmConfig();
    mem::LinkConfig link;
    SchedPolicy sched = SchedPolicy::Fifo;
    /**
     * Trace-lane process name. Multi-device setups (ShardedDevice)
     * label each device's lanes distinctly so merged timelines keep
     * the shards apart.
     */
    std::string label = "device";
    /**
     * Optional fault model: reads of degraded media lines pay the
     * model's extra latency during replay. Must outlive the
     * SystemModel. nullptr models perfect media.
     */
    const mem::FaultModel *faults = nullptr;
    /**
     * Optional DRAM block-cache tier in front of the SCM device
     * (near-data systems only; host-side systems ignore it). The
     * cache must outlive the SystemModel -- the owning Device keeps
     * one instance so residency (warmth) carries across replay
     * batches even though each batch builds a fresh SystemModel.
     */
    mem::BlockCache *cache = nullptr;
    /** Timing of the DRAM device the cache tier is built from. */
    mem::MemConfig cacheMem = mem::dramConfig();
};

/** Aggregate outcome of one simulation run. */
struct RunStats
{
    double seconds = 0.0; ///< makespan
    std::uint64_t queries = 0;
    double qps = 0.0;
    std::uint64_t deviceBytes = 0;
    double deviceBandwidthGBs = 0.0; ///< deviceBytes / seconds
    std::array<std::uint64_t, mem::kNumCategories> catBytes{};
    std::array<std::uint64_t, mem::kNumCategories> catAccesses{};
    std::uint64_t linkBytes = 0;
    std::uint64_t seqAccesses = 0;
    std::uint64_t randAccesses = 0;

    // DRAM block-cache tier, this run only (all zero when no cache
    // is attached). deviceBytes above stays SCM-only, so the pair
    // gives the DRAM-vs-SCM bandwidth split.
    std::uint64_t dramBytes = 0; ///< bytes served by the cache tier
    std::uint64_t cacheLookups = 0;
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    std::uint64_t cacheEvictions = 0;

    // Per-query latency distribution (seconds, queueing included).
    double latencyMean = 0.0;
    double latencyP50 = 0.0;
    double latencyP95 = 0.0;
    double latencyP99 = 0.0;
};

/** Per-query replay timing, indexed by submission order. */
struct QueryTiming
{
    Tick start = 0; ///< dispatch tick (queueing ended)
    Tick end = 0;   ///< completion tick
    Cycles cycles = 0; ///< core cycles, dispatch to completion
};

/**
 * A runnable system instance. Construct, call run() once, read
 * stats. (One-shot by design: simulated time does not rewind.)
 *
 * With a recorder attached, the model registers one timeline lane
 * per core, per memory channel, and for the event-queue depth — all
 * in the simulated-tick domain — and instruments replay end to end.
 */
class SystemModel
{
  public:
    explicit SystemModel(const SystemConfig &config,
                         trace::Recorder *recorder = nullptr);

    /**
     * Execute all traces (FIFO dispatch over idle cores). When
     * @p timings is non-null it is resized to the trace count and
     * filled with per-query dispatch/completion times in submission
     * order (deterministic regardless of the scheduling policy).
     */
    RunStats run(const std::vector<const QueryTrace *> &traces,
                 std::vector<QueryTiming> *timings = nullptr);

    mem::MemorySystem &memory() { return *memory_; }
    stats::Group &statsRoot() { return statsRoot_; }

  private:
    SystemConfig config_;
    sim::EventQueue eq_;
    stats::Group statsRoot_;
    std::unique_ptr<CostModel> costs_;
    std::unique_ptr<mem::HostLink> link_;
    std::unique_ptr<mem::MemorySystem> memory_;
    /** DRAM device serving cache hits (only when config.cache set). */
    std::unique_ptr<mem::MemorySystem> cacheMemory_;
    /** Cache counters at construction: run() reports deltas, since
     *  the Device-owned cache persists across replay batches. */
    mem::BlockCache::Stats cacheStart_;
    std::vector<std::unique_ptr<Core>> cores_;
    trace::Recorder *recorder_ = nullptr;

    // Observability: per-query latency and command-queue depth,
    // sampled during run().
    /** Log-bucketed: query latencies span 1us..10s (7 decades). */
    stats::Histogram latencyUs_{1.0, 1e7, 112, stats::Scale::Log};
    stats::Histogram schedDepth_{0.0, 256.0, 64};
};

} // namespace boss::model

#endif // BOSS_MODEL_SYSTEM_H
