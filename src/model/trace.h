/**
 * @file
 * Execution traces: the bridge between functional execution and
 * timing simulation.
 *
 * Phase 1 (build): a query runs through the functional engine with
 * TraceBuilder as its instrumentation sink, producing a QueryTrace --
 * a sequence of block-granularity segments, each carrying the memory
 * requests it needs and the per-pipeline-stage operation counts it
 * performs. Phase 2 (replay): a Core replays the trace against the
 * event-driven memory system under a system-specific cost model.
 * Because traces depend only on the algorithm flags (not on core
 * count or memory device), one trace serves every hardware sweep.
 */

#ifndef BOSS_MODEL_TRACE_H
#define BOSS_MODEL_TRACE_H

#include <array>
#include <cstdint>
#include <vector>

#include "engine/execute.h"
#include "engine/hooks.h"
#include "index/memory_layout.h"
#include "mem/memory_system.h"
#include "trace/recorder.h"
#include "trace/summary.h"

namespace boss::model
{

/** Pipeline stages of an accelerator core (paper Fig. 4(b)). */
enum class Stage : std::uint8_t
{
    Fetch,  ///< block fetch module (metadata + request issue)
    Decomp, ///< decompression modules
    SetOp,  ///< intersection / union modules
    Score,  ///< scoring modules
    TopK,   ///< top-k module
};

inline constexpr std::size_t kNumStages = 5;

/** Operation counts accumulated by one trace segment. */
struct SegmentWork
{
    std::uint32_t fetchBlocks = 0; ///< payload blocks requested
    std::uint32_t metaReads = 0;   ///< metadata records inspected
    std::uint32_t decodeVals = 0;  ///< values decompressed
    std::uint32_t exceptions = 0;  ///< PFD exceptions patched
    std::uint32_t compares = 0;    ///< set-op docID comparisons
    std::uint32_t unionSteps = 0;  ///< union-module scheduling steps
    std::uint32_t scoreDocs = 0;   ///< documents scored
    std::uint32_t scoreTermOps = 0; ///< per-term scoring operations
    std::uint32_t topkOps = 0;     ///< top-k insertions offered
    std::uint32_t normGranules = 0; ///< distinct norm-table granules
};

/** Stream classes for per-class sequentiality tracking. */
enum class StreamClass : std::uint8_t
{
    Meta = 0,
    DocPayload = 1,
    TfPayload = 2,
    NormSidecar = 3,
    Intermediate = 4,
    Result = 5,
};

/**
 * Stream id: class plus a per-term salt, so the streams of different
 * posting lists accessed by the same core stay distinct (one
 * hardware prefetch stream per payload per term).
 */
inline std::uint8_t
streamId(StreamClass cls, TermId term)
{
    return static_cast<std::uint8_t>(
        (static_cast<std::uint8_t>(cls) << 5) | (term & 31));
}

/** One recorded memory request. */
struct TraceRequest
{
    Addr addr = 0;
    std::uint32_t bytes = 0;
    bool write = false;
    bool forceRandom = false;
    mem::Category category = mem::Category::LdList;
    std::uint8_t stream = 0;
    /** Logical accesses this request stands for (e.g. norm scatter). */
    std::uint32_t logicalAccesses = 1;
};

/** A block-granularity slice of a query's execution. */
struct TraceSegment
{
    SegmentWork work;
    std::vector<TraceRequest> reqs;
};

/**
 * The full trace of one query under one algorithm configuration.
 */
struct QueryTrace
{
    std::vector<TraceSegment> segments;
    std::uint64_t resultStoreBytes = 0; ///< sent over the host link
    std::uint32_t numTerms = 1;         ///< distinct query terms

    // Functional summary counters (Figs. 14/15).
    std::uint64_t evaluatedDocs = 0; ///< docs actually scored
    std::uint64_t skippedDocs = 0;   ///< docs pruned by ET
    std::uint64_t blocksLoaded = 0;
    std::uint64_t blocksSkipped = 0;
    // Resilience events under an active fault policy (else zero).
    std::uint64_t crcRetries = 0;    ///< payload re-reads issued
    std::uint64_t blocksDropped = 0; ///< payloads degraded away
    /** Logical accesses per traffic category, in 64 B units. */
    std::array<std::uint64_t, mem::kNumCategories> catAccesses{};

    /** Total operation counts across segments (one per stage user). */
    SegmentWork totalWork() const;
};

/** Options controlling how execution maps to traffic. */
struct TraceOptions
{
    engine::ExecFlags flags;
    /**
     * Host CPUs keep the per-doc norm table cache-resident; the
     * accelerators must fetch norms from SCM (LD Score traffic).
     */
    bool normsCached = false;
    std::size_t k = engine::kDefaultTopK;
    /**
     * Decode-time CRC/retry/drop policy (nullptr disables fault
     * handling; traces are then bit-identical to pre-resilience
     * builds). Retries surface in the trace as re-issued payload
     * requests, so replay charges the extra SCM traffic.
     */
    engine::FaultPolicy *faults = nullptr;
    /**
     * Live-index delete bitmap (nullptr: nothing deleted). Deleted
     * docs are filtered before the top-k heap; see executeQuery().
     */
    const index::TombstoneSet *tombstones = nullptr;
};

/**
 * Build the trace for @p plan. Also returns the functional top-k so
 * callers can cross-check results across system models.
 *
 * Trace building is pure w.r.t. the (immutable) index and layout, so
 * distinct queries may build concurrently; @p arena is optional
 * per-caller decode scratch (one arena per thread, reset between
 * queries) and never changes the produced trace or results.
 *
 * @p scope / @p lane optionally record build-side observability
 * events (block-skip instants, host-time domain) into an attached
 * recorder; a null scope (the default) records nothing.
 */
QueryTrace buildTrace(const index::InvertedIndex &index,
                      const index::MemoryLayout &layout,
                      const engine::QueryPlan &plan,
                      const TraceOptions &options,
                      std::vector<engine::Result> *results = nullptr,
                      engine::QueryArena *arena = nullptr,
                      trace::Scope scope = {}, std::uint16_t lane = 0);

/**
 * Condense a built trace into its per-query summary record (cycles
 * and the query's submission index are filled in by the replay
 * layer). Byte totals per traffic class come from the trace's
 * recorded requests, so the summary is replay-independent and
 * bit-identical at any host thread count.
 */
trace::QuerySummary summarizeTrace(const QueryTrace &trace);

} // namespace boss::model

#endif // BOSS_MODEL_TRACE_H
