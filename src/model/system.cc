#include "model/system.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"

namespace boss::model
{

TraceOptions
traceOptionsFor(SystemKind kind, std::size_t k)
{
    TraceOptions opt;
    opt.k = k;
    switch (kind) {
      case SystemKind::Lucene:
        opt.flags = {false, false, false, false};
        opt.normsCached = true; // norm table lives in the CPU caches
        break;
      case SystemKind::Iiu:
        opt.flags = {false, false, true, true};
        break;
      case SystemKind::Boss:
        opt.flags = {true, true, false, false};
        break;
      case SystemKind::BossExhaustive:
        opt.flags = {false, false, false, false};
        break;
      case SystemKind::BossBlockOnly:
        opt.flags = {true, false, false, false};
        break;
    }
    return opt;
}

std::unique_ptr<CostModel>
costModelFor(SystemKind kind)
{
    switch (kind) {
      case SystemKind::Lucene:
        return std::make_unique<CpuCostModel>();
      case SystemKind::Iiu:
        return std::make_unique<IiuCostModel>();
      case SystemKind::Boss:
      case SystemKind::BossExhaustive:
      case SystemKind::BossBlockOnly:
        return std::make_unique<BossCostModel>();
    }
    BOSS_PANIC("unknown system kind");
}

SystemModel::SystemModel(const SystemConfig &config,
                         trace::Recorder *recorder)
    : config_(config), statsRoot_("sim"),
      costs_(costModelFor(config.kind)), recorder_(recorder)
{
    link_ = std::make_unique<mem::HostLink>("link", eq_, statsRoot_,
                                            config_.link);
    // Host-side systems pull all index traffic through the link;
    // near-data systems touch the device directly and use the link
    // only for results.
    memory_ = std::make_unique<mem::MemorySystem>(
        "mem", eq_, statsRoot_, config_.mem,
        isHostSide(config_.kind) ? link_.get() : nullptr);
    if (config_.faults != nullptr)
        memory_->setFaults(config_.faults);
    if (config_.cache != nullptr && !isHostSide(config_.kind)) {
        cacheMemory_ = std::make_unique<mem::MemorySystem>(
            "dram", eq_, statsRoot_, config_.cacheMem, nullptr);
        cacheStart_ = config_.cache->stats();
    }
    for (std::uint32_t c = 0; c < config_.cores; ++c) {
        cores_.push_back(std::make_unique<Core>(
            "core" + std::to_string(c), eq_, statsRoot_, *costs_,
            *memory_,
            isHostSide(config_.kind) ? nullptr : link_.get(), c));
        if (cacheMemory_ != nullptr)
            cores_.back()->setBlockCache(config_.cache,
                                         cacheMemory_.get());
    }
    stats::Group &sched = statsRoot_.subgroup("sched");
    sched.addHistogram("query_latency_us", &latencyUs_,
                       "per-query latency incl. queueing (us)");
    sched.addHistogram("queue_depth", &schedDepth_,
                       "undispatched queries after each dispatch");

    if (recorder_ != nullptr) {
        // Replay is a fresh ordering phase; all device lanes live in
        // the simulated-tick clock domain.
        recorder_->beginPhase();
        trace::Scope scope = recorder_->serial();
        const std::string proc = config_.label + " (simulated ticks)";
        for (std::uint32_t c = 0; c < config_.cores; ++c) {
            auto lane = recorder_->addLane(
                proc, "core" + std::to_string(c),
                trace::Domain::SimTicks, static_cast<int>(c));
            cores_[c]->setTrace(scope, lane);
        }
        std::vector<std::uint16_t> chanLanes;
        for (std::uint32_t c = 0; c < config_.mem.channels; ++c) {
            chanLanes.push_back(recorder_->addLane(
                proc, "mem.ch" + std::to_string(c),
                trace::Domain::SimTicks, 100 + static_cast<int>(c)));
        }
        memory_->setTrace(scope, std::move(chanLanes));
        auto eqLane = recorder_->addLane(proc, "sim.events",
                                         trace::Domain::SimTicks, 1000);
        eq_.setTrace(scope, eqLane);
    }
}

RunStats
SystemModel::run(const std::vector<const QueryTrace *> &traces,
                 std::vector<QueryTiming> *timings)
{
    Tick lastFinish = 0;
    std::vector<double> latencies;
    latencies.reserve(traces.size());
    if (timings != nullptr) {
        timings->clear();
        timings->resize(traces.size());
    }

    // Submission index of each trace: scheduling may reorder
    // dispatch, but timings and trace events stay keyed by the
    // caller's order.
    std::unordered_map<const QueryTrace *, std::size_t> submitIdx;
    submitIdx.reserve(traces.size());
    for (std::size_t i = 0; i < traces.size(); ++i)
        submitIdx.emplace(traces[i], i);

    // Pending queue in dispatch order. Queries with more than 4
    // terms occupy a gang of ceil(terms/4) cores (paper Sec. IV-D);
    // the selected query waits until enough cores are idle (no
    // overtaking under FIFO, as in a hardware command queue).
    std::vector<const QueryTrace *> pending(traces.begin(),
                                            traces.end());
    if (config_.sched == SchedPolicy::Sjf) {
        // Shortest-job-first on a size estimate (segments ~ blocks).
        std::stable_sort(pending.begin(), pending.end(),
                         [](const QueryTrace *a, const QueryTrace *b) {
                             return a->segments.size() <
                                    b->segments.size();
                         });
    }
    std::size_t nextQuery = 0;
    std::vector<bool> busy(cores_.size(), false);
    sim::ClockDomain coreClock(costs_->frequencyHz());
    std::function<void()> dispatch = [&]() {
        while (nextQuery < pending.size()) {
            const QueryTrace *trace = pending[nextQuery];
            std::uint32_t gang = std::min<std::uint32_t>(
                static_cast<std::uint32_t>(cores_.size()),
                (trace->numTerms + 3) / 4);
            std::vector<std::size_t> members;
            for (std::size_t c = 0;
                 c < cores_.size() && members.size() < gang; ++c) {
                if (!busy[c])
                    members.push_back(c);
            }
            if (members.size() < gang)
                break; // query waits for enough idle cores
            ++nextQuery;
            for (std::size_t c : members)
                busy[c] = true;
            std::size_t qid = submitIdx.at(trace);
            Tick dispatchTick = eq_.now();
            cores_[members[0]]->execute(
                trace,
                [&, members, qid, dispatchTick, coreClock](Tick end) {
                    lastFinish = std::max(lastFinish, end);
                    // Latency includes queueing: all queries arrive
                    // at tick 0 in this closed-batch model.
                    double latency =
                        static_cast<double>(end) /
                        static_cast<double>(kTicksPerSecond);
                    latencies.push_back(latency);
                    latencyUs_.sample(latency * 1e6);
                    if (timings != nullptr) {
                        (*timings)[qid] = QueryTiming{
                            dispatchTick, end,
                            coreClock.toCycles(end - dispatchTick)};
                    }
                    for (std::size_t c : members)
                        busy[c] = false;
                    dispatch();
                },
                gang, qid);
        }
        schedDepth_.sample(
            static_cast<double>(pending.size() - nextQuery));
    };
    dispatch();
    eq_.run();

    BOSS_ASSERT(nextQuery == traces.size(),
                "queries left undispatched: ", traces.size() - nextQuery);

    RunStats stats;
    stats.queries = traces.size();
    stats.seconds = static_cast<double>(lastFinish) /
                    static_cast<double>(kTicksPerSecond);
    stats.qps = stats.seconds > 0
                    ? static_cast<double>(stats.queries) / stats.seconds
                    : 0.0;
    stats.deviceBytes = memory_->totalBytes();
    stats.deviceBandwidthGBs =
        stats.seconds > 0 ? static_cast<double>(stats.deviceBytes) /
                                stats.seconds / 1e9
                          : 0.0;
    for (std::size_t c = 0; c < mem::kNumCategories; ++c) {
        auto cat = static_cast<mem::Category>(c);
        stats.catBytes[c] = memory_->categoryBytes(cat);
        stats.catAccesses[c] = memory_->categoryAccesses(cat);
    }
    stats.linkBytes = link_->bytesTransferred();
    stats.seqAccesses = memory_->sequentialAccesses();
    stats.randAccesses = memory_->randomAccesses();
    if (cacheMemory_ != nullptr) {
        stats.dramBytes = cacheMemory_->totalBytes();
        mem::BlockCache::Stats cs = config_.cache->stats();
        stats.cacheLookups = cs.lookups - cacheStart_.lookups;
        stats.cacheHits = cs.hits - cacheStart_.hits;
        stats.cacheMisses = cs.misses - cacheStart_.misses;
        stats.cacheEvictions = cs.evictions - cacheStart_.evictions;
    }
    if (!latencies.empty()) {
        std::sort(latencies.begin(), latencies.end());
        double sum = 0.0;
        for (double l : latencies)
            sum += l;
        auto pct = [&](double p) {
            std::size_t i = static_cast<std::size_t>(
                p * static_cast<double>(latencies.size() - 1));
            return latencies[i];
        };
        stats.latencyMean = sum / static_cast<double>(latencies.size());
        stats.latencyP50 = pct(0.50);
        stats.latencyP95 = pct(0.95);
        stats.latencyP99 = pct(0.99);
    }
    return stats;
}

} // namespace boss::model
