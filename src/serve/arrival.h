/**
 * @file
 * Deterministic open-loop arrival schedules.
 *
 * An always-on search service does not see back-to-back batches: it
 * sees queries arriving on their own clock, indifferent to whether
 * the server keeps up. Open-loop load generation reproduces that —
 * the schedule is fixed up front from (process, rate, seed) and the
 * generator offers query i at its scheduled instant even when the
 * server is behind. Latency is then measured from the *scheduled*
 * arrival, so queueing delay during overload is charged to the
 * server instead of silently vanishing (the coordinated-omission
 * trap of closed-loop harnesses).
 *
 * Two processes cover the serving experiments:
 *  - Poisson: i.i.d. exponential gaps at the offered rate; the
 *    classic memoryless baseline.
 *  - Bursty (MMPP-2): a two-state Markov-modulated Poisson process
 *    alternating between a calm and a hot state whose time-weighted
 *    mean equals the offered rate. Bursts expose tail behavior a
 *    smooth Poisson stream never triggers at the same mean load.
 *
 * Schedules are pure functions of the config (seeded xoshiro
 * streams), so every run — and every latency percentile derived
 * from one — is reproducible bit-for-bit.
 */

#ifndef BOSS_SERVE_ARRIVAL_H
#define BOSS_SERVE_ARRIVAL_H

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"

namespace boss::serve
{

enum class ArrivalProcess : std::uint8_t
{
    Poisson,
    Bursty, ///< two-state MMPP, see BurstSpec
};

/** Hot-state shape of the Bursty process. */
struct BurstSpec
{
    /** Hot-state arrival rate as a multiple of the offered rate. */
    double rateMultiplier = 4.0;
    /**
     * Long-run fraction of time spent in the hot state. Must keep
     * rateMultiplier * hotFraction < 1 so the calm state retains a
     * positive rate (the time-weighted mean stays the offered QPS).
     */
    double hotFraction = 0.1;
    /** Mean dwell time per hot burst, in microseconds. */
    double hotDwellUs = 20000.0;
};

struct ArrivalConfig
{
    ArrivalProcess process = ArrivalProcess::Poisson;
    double qps = 1000.0;      ///< offered rate (mean for Bursty)
    std::size_t count = 1000; ///< queries in the schedule
    std::uint64_t seed = 0x0A221BA1;
    BurstSpec burst;
};

/**
 * Build the schedule: @p count non-decreasing arrival offsets in
 * microseconds from the epoch of the run (offset 0 is "the load
 * generator started"). Deterministic in the config alone.
 */
inline std::vector<double>
makeArrivals(const ArrivalConfig &config)
{
    BOSS_ASSERT(config.qps > 0.0, "offered rate must be positive");
    std::vector<double> at;
    at.reserve(config.count);
    // Distinct streams for gaps and state dwells so adding burst
    // modulation never perturbs the underlying gap draws.
    Rng gaps(splitSeed(config.seed, 1));
    Rng dwells(splitSeed(config.seed, 2));

    auto expo = [](Rng &rng, double ratePerUs) {
        double u = rng.uniform();
        if (u >= 1.0)
            u = 0.999999999;
        return -std::log1p(-u) / ratePerUs;
    };

    const double baseRate = config.qps / 1e6; // arrivals per us
    if (config.process == ArrivalProcess::Poisson) {
        double t = 0.0;
        for (std::size_t i = 0; i < config.count; ++i) {
            t += expo(gaps, baseRate);
            at.push_back(t);
        }
        return at;
    }

    // MMPP-2. Solve the calm rate so the time-weighted mean equals
    // the offered rate: qps = f*hot + (1-f)*calm.
    const BurstSpec &b = config.burst;
    BOSS_ASSERT(b.hotFraction > 0.0 && b.hotFraction < 1.0,
                "hotFraction must be in (0, 1)");
    BOSS_ASSERT(b.rateMultiplier * b.hotFraction < 1.0,
                "burst spec leaves the calm state a negative rate");
    const double hotRate = baseRate * b.rateMultiplier;
    const double calmRate = baseRate *
                            (1.0 - b.rateMultiplier * b.hotFraction) /
                            (1.0 - b.hotFraction);
    const double hotDwell = b.hotDwellUs;
    const double calmDwell =
        b.hotDwellUs * (1.0 - b.hotFraction) / b.hotFraction;

    double t = 0.0;
    bool hot = false;
    double stateEnd = expo(dwells, 1.0 / calmDwell);
    for (std::size_t i = 0; i < config.count; ++i) {
        for (;;) {
            double gap = expo(gaps, hot ? hotRate : calmRate);
            if (t + gap <= stateEnd) {
                t += gap;
                break;
            }
            // The state flips before the next arrival: restart the
            // (memoryless) gap draw from the transition instant.
            t = stateEnd;
            hot = !hot;
            stateEnd =
                t + expo(dwells, 1.0 / (hot ? hotDwell : calmDwell));
        }
        at.push_back(t);
    }
    return at;
}

} // namespace boss::serve

#endif // BOSS_SERVE_ARRIVAL_H
