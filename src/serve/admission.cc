#include "serve/admission.h"

#include <algorithm>

#include "common/logging.h"

namespace boss::serve
{

AdmissionQueue::AdmissionQueue(std::size_t capacity,
                               ShedPolicy policy)
    : capacity_(capacity), policy_(policy)
{
    BOSS_ASSERT(capacity_ > 0, "admission queue needs capacity");
}

Admission
AdmissionQueue::offer(ServeRequest request,
                      std::optional<ServeRequest> *evicted)
{
    std::unique_lock<std::mutex> lock(mutex_);
    ++counters_.offered;
    if (closed_) {
        ++counters_.rejectedClosed;
        return Admission::Closed;
    }

    if (queue_.size() >= capacity_) {
        switch (policy_) {
        case ShedPolicy::Block:
            notFull_.wait(lock, [&] {
                return closed_ || queue_.size() < capacity_;
            });
            if (closed_) {
                ++counters_.rejectedClosed;
                return Admission::Closed;
            }
            break;
        case ShedPolicy::DropTail:
            ++counters_.shedCapacity;
            return Admission::ShedCapacity;
        case ShedPolicy::DropDeadline: {
            // Evict the queued request with the earliest deadline if
            // the newcomer has more slack; it was the least likely
            // to finish in time anyway. Ties keep the incumbent
            // (FIFO fairness), so the decision is deterministic.
            auto victim = std::min_element(
                queue_.begin(), queue_.end(),
                [](const ServeRequest &a, const ServeRequest &b) {
                    return a.deadlineUs < b.deadlineUs;
                });
            ++counters_.shedDeadline;
            if (victim->deadlineUs < request.deadlineUs) {
                if (evicted != nullptr)
                    *evicted = std::move(*victim);
                queue_.erase(victim);
                break; // admit the newcomer below
            }
            return Admission::ShedDeadline;
        }
        }
    }

    queue_.push_back(std::move(request));
    ++counters_.admitted;
    counters_.peakDepth =
        std::max<std::uint64_t>(counters_.peakDepth, queue_.size());
    notEmpty_.notify_one();
    return Admission::Admitted;
}

std::optional<ServeRequest>
AdmissionQueue::tryPop()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty())
        return std::nullopt;
    ServeRequest req = std::move(queue_.front());
    queue_.pop_front();
    notFull_.notify_one();
    return req;
}

std::optional<ServeRequest>
AdmissionQueue::pop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    notEmpty_.wait(lock,
                   [&] { return closed_ || !queue_.empty(); });
    if (queue_.empty())
        return std::nullopt; // closed and drained
    ServeRequest req = std::move(queue_.front());
    queue_.pop_front();
    notFull_.notify_one();
    return req;
}

void
AdmissionQueue::close()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
    }
    notEmpty_.notify_all();
    notFull_.notify_all();
}

std::size_t
AdmissionQueue::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
}

AdmissionCounters
AdmissionQueue::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

} // namespace boss::serve
