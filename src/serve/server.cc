#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <thread>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace boss::serve
{

namespace
{

/** Exact interpolated percentile over a sorted sample vector. */
double
percentileSorted(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    double rank = q * static_cast<double>(sorted.size() - 1);
    auto lo = static_cast<std::size_t>(rank);
    std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

telemetry::AdmitOutcome
admitOutcome(Admission a)
{
    switch (a) {
    case Admission::Admitted:
        return telemetry::AdmitOutcome::Admitted;
    case Admission::ShedCapacity:
        return telemetry::AdmitOutcome::ShedCapacity;
    case Admission::ShedDeadline:
        return telemetry::AdmitOutcome::ShedDeadline;
    case Admission::Closed:
        break;
    }
    return telemetry::AdmitOutcome::Closed;
}

telemetry::QueryLifecycle::Outcome
lifecycleOutcome(QueryStatus status)
{
    switch (status) {
    case QueryStatus::Done:
        return telemetry::QueryLifecycle::Outcome::Done;
    case QueryStatus::Expired:
        return telemetry::QueryLifecycle::Outcome::Expired;
    case QueryStatus::Shed:
        break;
    }
    return telemetry::QueryLifecycle::Outcome::Shed;
}

} // namespace

Server::Server(Backend &backend, ServeConfig config)
    : backend_(backend), config_(config)
{
    BOSS_ASSERT(config_.maxInFlight > 0, "need in-flight budget");
}

template <typename Q>
ServeReport
Server::runImpl(const std::vector<Q> &queries)
{
    BOSS_ASSERT(!queries.empty(), "serve run needs queries");
    common::ThreadPool &pool = common::ThreadPool::global();
    if (arenas_.size() < pool.size())
        arenas_.resize(pool.size());

    // Plans are computed once up front (serial, lexicon-aware), so
    // the generator and the build stage are parse-free and every
    // repetition of a query reuses one plan.
    std::vector<engine::QueryPlan> plans;
    plans.reserve(queries.size());
    for (const auto &q : queries)
        plans.push_back(backend_.plan(q));

    // Warmup: synchronous, before the epoch, unrecorded. Warms the
    // decode arenas and code paths so the measured window starts
    // allocation-free.
    for (std::size_t w = 0; w < config_.warmup; ++w) {
        BuiltHandle h =
            backend_.build(plans[w % plans.size()], arenas_[0]);
        backend_.finish(std::move(h));
    }

    const std::vector<double> schedule =
        makeArrivals(config_.arrivals);
    const std::size_t n = schedule.size();

    ServeReport report;
    report.records.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        QueryRecord &rec = report.records[i];
        rec.id = i;
        rec.queryIndex = i % plans.size();
        rec.arrivalUs = schedule[i];
    }

    AdmissionQueue queue(config_.queueCapacity, config_.policy);

    const auto t0 = std::chrono::steady_clock::now();
    // Run-epoch offset on the recorder's host clock, so post-run
    // trace emission can translate record timestamps.
    const double recEpochUs =
        recorder_ != nullptr ? recorder_->hostMicros() : 0.0;
    // Same offset on the telemetry clock: live hooks translate
    // run-relative timestamps into the metric windows' domain.
    const double telEpochUs =
        telemetry_ != nullptr ? telemetry_->nowUs() : 0.0;
    auto nowUs = [t0] {
        return std::chrono::duration<double, std::micro>(
                   std::chrono::steady_clock::now() - t0)
            .count();
    };

    const std::uint32_t shardCount = backend_.shards();
    const bool hasDeadline = std::isfinite(config_.deadlineUs);
    // Terminal record → telemetry lifecycle, shifted into the
    // telemetry clock domain. Callers invoke it only from the one
    // thread that owns the record at its terminal transition.
    auto toLifecycle = [&, telEpochUs](const QueryRecord &rec) {
        auto shift = [telEpochUs](double t) {
            return t >= 0.0 ? telEpochUs + t : -1.0;
        };
        telemetry::QueryLifecycle q;
        q.id = rec.id;
        q.queryIndex = rec.queryIndex;
        q.outcome = lifecycleOutcome(rec.status);
        q.metDeadline = rec.metDeadline;
        q.arrivalUs = telEpochUs + rec.arrivalUs;
        q.enqueueUs = shift(rec.enqueueUs);
        q.admitUs = shift(rec.admitUs);
        q.startUs = shift(rec.startUs);
        q.buildEndUs = shift(rec.buildEndUs);
        q.finishUs = shift(rec.finishUs);
        q.deadlineUs = hasDeadline ? telEpochUs + rec.arrivalUs +
                                         config_.deadlineUs
                                   : -1.0;
        q.shards = shardCount;
        q.deviceBytes = rec.deviceBytes;
        return q;
    };

    // ---- Open-loop generator: offers on schedule, regardless of
    // server progress. (Block policy intentionally backpressures
    // the generator; see admission.h.)
    std::thread generator([&] {
        for (std::size_t i = 0; i < n; ++i) {
            std::this_thread::sleep_until(
                t0 +
                std::chrono::duration_cast<
                    std::chrono::steady_clock::duration>(
                    std::chrono::duration<double, std::micro>(
                        schedule[i])));
            QueryRecord &rec = report.records[i];
            ServeRequest req;
            req.id = i;
            req.queryIndex = rec.queryIndex;
            req.plan = &plans[rec.queryIndex];
            req.arrivalUs = schedule[i];
            req.enqueueUs = nowUs();
            req.deadlineUs = schedule[i] + config_.deadlineUs;
            rec.enqueueUs = req.enqueueUs;
            std::optional<ServeRequest> evicted;
            Admission adm = queue.offer(std::move(req), &evicted);
            if (telemetry_ != nullptr) {
                double tTel = telEpochUs + rec.enqueueUs;
                telemetry_->onOffered(tTel);
                telemetry_->onAdmission(tTel, admitOutcome(adm),
                                        queue.size());
                // A refusal is terminal right here; an admitted
                // query's terminal comes later from the pipeline.
                if (adm != Admission::Admitted)
                    telemetry_->onTerminal(tTel, toLifecycle(rec));
            }
            // Refusals keep the default Shed status. An eviction
            // victim was admitted earlier but never dispatched, so
            // this thread is its only writer.
            if (evicted.has_value()) {
                QueryRecord &victim = report.records[evicted->id];
                victim.status = QueryStatus::Shed;
                if (telemetry_ != nullptr)
                    telemetry_->onTerminal(telEpochUs + nowUs(),
                                           toLifecycle(victim));
            }
        }
        queue.close();
    });

    // ---- Pipelined machinery: builds fan out to pool workers;
    // the finisher replays completed builds in admission order, so
    // device totals accrue deterministically and the serial stage
    // of query i overlaps the builds of queries i+1..
    struct Completion
    {
        ServeRequest req;
        BuiltHandle built;
        std::exception_ptr error;
    };
    std::mutex pipeMutex;
    std::condition_variable pipeCv; // finisher <- completed builds
    std::condition_variable slotCv; // dispatcher <- freed slots
    std::map<std::uint64_t, Completion> ready;
    std::uint64_t submitted = 0;
    std::uint64_t finished = 0;
    std::size_t inFlight = 0;
    bool submitDone = false;
    std::exception_ptr pipeError;
    // Stage wall times, sampled into the histograms after the
    // threads join (the histograms are not thread-safe).
    std::vector<double> finishDurations;

    auto recordDone = [](QueryRecord &rec, const ServeRequest &req,
                         Finished fin, double finishAt) {
        rec.status = QueryStatus::Done;
        rec.finishUs = finishAt;
        rec.metDeadline = finishAt <= req.deadlineUs;
        rec.simSeconds = fin.simSeconds;
        rec.deviceBytes = fin.deviceBytes;
        rec.topk = std::move(fin.topk);
    };

    std::thread finisher;
    if (config_.mode == PipelineMode::Pipelined) {
        finisher = std::thread([&] {
            std::uint64_t next = 0;
            for (;;) {
                Completion item;
                {
                    std::unique_lock<std::mutex> lock(pipeMutex);
                    pipeCv.wait(lock, [&] {
                        return ready.count(next) != 0 ||
                               (submitDone &&
                                finished == submitted);
                    });
                    auto it = ready.find(next);
                    if (it == ready.end())
                        return; // submissions drained
                    item = std::move(it->second);
                    ready.erase(it);
                }
                QueryRecord &rec = report.records[item.req.id];
                if (item.error != nullptr) {
                    std::lock_guard<std::mutex> lock(pipeMutex);
                    if (pipeError == nullptr)
                        pipeError = item.error;
                } else {
                    double f0 = nowUs();
                    try {
                        Finished fin =
                            backend_.finish(std::move(item.built));
                        double f1 = nowUs();
                        finishDurations.push_back(f1 - f0);
                        if (telemetry_ != nullptr) {
                            telemetry_->onFinish(telEpochUs + f1,
                                                 f1 - f0);
                            for (std::size_t s = 0;
                                 s < fin.shardSeconds.size(); ++s)
                                telemetry_->onShard(
                                    s, fin.shardSeconds[s]);
                        }
                        recordDone(rec, item.req, std::move(fin),
                                   f1);
                        if (telemetry_ != nullptr)
                            telemetry_->onTerminal(
                                telEpochUs + f1, toLifecycle(rec));
                    } catch (...) {
                        std::lock_guard<std::mutex> lock(pipeMutex);
                        if (pipeError == nullptr)
                            pipeError = std::current_exception();
                    }
                }
                {
                    std::lock_guard<std::mutex> lock(pipeMutex);
                    ++finished;
                    --inFlight;
                }
                slotCv.notify_one();
                pipeCv.notify_all();
                ++next;
            }
        });
    }

    // ---- Dispatcher (this thread): pops admitted requests until
    // the queue is closed and drained.
    if (config_.mode == PipelineMode::Barrier) {
        // Ablation baseline — the old barrier-per-batch pattern:
        // drain what is queued into a batch, build every query,
        // finish every query, and only then deliver the whole
        // batch. No completion leaves before the barrier, so every
        // query in the batch is charged the batch makespan.
        BOSS_ASSERT(config_.barrierBatch > 0, "empty barrier batch");
        std::vector<ServeRequest> batch;
        std::vector<BuiltHandle> built;
        std::vector<Finished> fins;
        std::vector<std::size_t> live; // indexes into batch
        while (auto first = queue.pop()) {
            batch.clear();
            built.clear();
            fins.clear();
            live.clear();
            batch.push_back(std::move(*first));
            while (batch.size() < config_.barrierBatch) {
                auto more = queue.tryPop();
                if (!more.has_value())
                    break;
                batch.push_back(std::move(*more));
            }
            try {
                // Stage 1: build the whole batch.
                for (std::size_t b = 0; b < batch.size(); ++b) {
                    QueryRecord &rec = report.records[batch[b].id];
                    double admitAt = nowUs();
                    rec.admitUs = admitAt;
                    if (admitAt > batch[b].deadlineUs) {
                        rec.status = QueryStatus::Expired;
                        if (telemetry_ != nullptr)
                            telemetry_->onTerminal(
                                telEpochUs + admitAt,
                                toLifecycle(rec));
                        continue;
                    }
                    if (telemetry_ != nullptr)
                        telemetry_->onAdmit(
                            telEpochUs + admitAt,
                            admitAt - rec.arrivalUs);
                    rec.startUs = nowUs();
                    built.push_back(backend_.build(*batch[b].plan,
                                                   arenas_[0]));
                    rec.buildEndUs = nowUs();
                    if (telemetry_ != nullptr)
                        telemetry_->onBuild(
                            telEpochUs + rec.buildEndUs,
                            rec.buildEndUs - rec.startUs);
                    live.push_back(b);
                }
                // Stage 2: finish the whole batch.
                for (BuiltHandle &h : built) {
                    double f0 = nowUs();
                    fins.push_back(backend_.finish(std::move(h)));
                    double f1 = nowUs();
                    finishDurations.push_back(f1 - f0);
                    if (telemetry_ != nullptr) {
                        telemetry_->onFinish(telEpochUs + f1,
                                             f1 - f0);
                        const auto &ss = fins.back().shardSeconds;
                        for (std::size_t s = 0; s < ss.size(); ++s)
                            telemetry_->onShard(s, ss[s]);
                    }
                }
            } catch (...) {
                if (pipeError == nullptr)
                    pipeError = std::current_exception();
                continue;
            }
            // Barrier: everything completes at the batch boundary.
            double batchEnd = nowUs();
            for (std::size_t i = 0; i < live.size(); ++i) {
                QueryRecord &rec =
                    report.records[batch[live[i]].id];
                recordDone(rec, batch[live[i]], std::move(fins[i]),
                           batchEnd);
                if (telemetry_ != nullptr)
                    telemetry_->onTerminal(telEpochUs + batchEnd,
                                           toLifecycle(rec));
            }
        }
    }
    while (config_.mode == PipelineMode::Pipelined) {
        auto popped = queue.pop();
        if (!popped.has_value())
            break;
        ServeRequest req = std::move(*popped);
        QueryRecord &rec = report.records[req.id];
        double admitAt = nowUs();
        rec.admitUs = admitAt;
        if (admitAt > req.deadlineUs) {
            // Expired while queued: shed at dispatch, before any
            // work is spent on it.
            rec.status = QueryStatus::Expired;
            if (telemetry_ != nullptr)
                telemetry_->onTerminal(telEpochUs + admitAt,
                                       toLifecycle(rec));
            continue;
        }
        if (telemetry_ != nullptr)
            telemetry_->onAdmit(telEpochUs + admitAt,
                                admitAt - rec.arrivalUs);

        std::uint64_t seq;
        {
            std::unique_lock<std::mutex> lock(pipeMutex);
            slotCv.wait(lock, [&] {
                return inFlight < config_.maxInFlight;
            });
            ++inFlight;
            seq = submitted++;
        }
        pool.post([&, req, seq](std::size_t worker) {
            Completion item;
            QueryRecord &r = report.records[req.id];
            r.startUs = nowUs();
            try {
                item.built =
                    backend_.build(*req.plan, arenas_[worker]);
            } catch (...) {
                item.error = std::current_exception();
            }
            r.buildEndUs = nowUs();
            if (telemetry_ != nullptr)
                telemetry_->onBuild(telEpochUs + r.buildEndUs,
                                    r.buildEndUs - r.startUs);
            item.req = req;
            {
                // Notify under the lock: pool workers outlive this
                // frame, and pipeCv lives on it. Broadcasting while
                // holding pipeMutex keeps the finisher from waking,
                // draining, and letting the frame unwind while this
                // worker is still inside the broadcast.
                std::lock_guard<std::mutex> lock(pipeMutex);
                ready.emplace(seq, std::move(item));
                pipeCv.notify_all();
            }
        });
    }
    if (config_.mode == PipelineMode::Pipelined) {
        {
            std::lock_guard<std::mutex> lock(pipeMutex);
            submitDone = true;
        }
        pipeCv.notify_all();
    }

    generator.join();
    if (finisher.joinable())
        finisher.join();
    report.elapsedUs = nowUs();
    if (pipeError != nullptr)
        std::rethrow_exception(pipeError);

    // ---- Accounting. Latency is charged from the *scheduled*
    // arrival (coordinated-omission-free); queue wait likewise.
    report.offered = n;
    report.admission = queue.counters();
    std::vector<double> latencies;
    std::vector<double> waits;
    latencies.reserve(n);
    for (QueryRecord &rec : report.records) {
        switch (rec.status) {
        case QueryStatus::Done:
            ++report.completed;
            if (rec.metDeadline)
                ++report.good;
            latencies.push_back(rec.finishUs - rec.arrivalUs);
            waits.push_back(rec.admitUs - rec.arrivalUs);
            break;
        case QueryStatus::Expired:
            ++report.expired;
            break;
        case QueryStatus::Shed:
            ++report.shed;
            break;
        }
    }
    std::sort(latencies.begin(), latencies.end());
    std::sort(waits.begin(), waits.end());
    report.latencyP50Us = percentileSorted(latencies, 0.50);
    report.latencyP99Us = percentileSorted(latencies, 0.99);
    report.latencyP999Us = percentileSorted(latencies, 0.999);
    report.latencyMaxUs =
        latencies.empty() ? 0.0 : latencies.back();
    report.queueWaitP99Us = percentileSorted(waits, 0.99);
    double span = schedule.empty() ? 0.0 : schedule.back();
    report.offeredQps =
        span > 0.0 ? static_cast<double>(n) / span * 1e6 : 0.0;
    if (report.elapsedUs > 0.0) {
        report.achievedQps =
            static_cast<double>(report.completed) /
            report.elapsedUs * 1e6;
        report.goodputQps = static_cast<double>(report.good) /
                            report.elapsedUs * 1e6;
    }

    // Cumulative observability (single-threaded here, post-join).
    statOffered_ += report.offered;
    statCompleted_ += report.completed;
    statShed_ += report.shed;
    statExpired_ += report.expired;
    statGood_ += report.good;
    for (double l : latencies)
        latencyUs_.sample(l);
    for (double w : waits)
        queueWaitUs_.sample(w);
    for (const QueryRecord &rec : report.records) {
        if (rec.buildEndUs >= 0.0 && rec.startUs >= 0.0)
            buildUs_.sample(rec.buildEndUs - rec.startUs);
    }
    for (double f : finishDurations)
        finishUs_.sample(f);
    if (recorder_ != nullptr)
        recordRun(report, recEpochUs);
    return report;
}

void
Server::recordRun(const ServeReport &report, double recEpochUs)
{
    // Post-run emission from the terminal records: single-threaded,
    // so lane registration is safe, and ordered by arrival id, so
    // the merged stream is deterministic. Lanes are registered once
    // per attached recorder; repeat runs reuse them.
    if (laneOwner_ != recorder_) {
        queueLane_ = recorder_->addLane(
            "serve (host us)", "admission queue",
            trace::Domain::HostMicros, 100);
        execLane_ =
            recorder_->addLane("serve (host us)", "execution",
                               trace::Domain::HostMicros, 101);
        laneOwner_ = recorder_;
    }
    std::uint16_t qLane = queueLane_;
    std::uint16_t xLane = execLane_;
    recorder_->beginPhase();
    trace::Scope scope = recorder_->serial();
    for (const QueryRecord &rec : report.records) {
        switch (rec.status) {
        case QueryStatus::Done:
            scope.span(qLane, "queued", recEpochUs + rec.enqueueUs,
                       rec.admitUs - rec.enqueueUs,
                       {{"id", rec.id}});
            scope.span(xLane, "serve", recEpochUs + rec.startUs,
                       rec.finishUs - rec.startUs,
                       {{"id", rec.id},
                        {"met", rec.metDeadline ? 1u : 0u}});
            break;
        case QueryStatus::Expired:
            scope.span(qLane, "queued", recEpochUs + rec.enqueueUs,
                       rec.admitUs - rec.enqueueUs,
                       {{"id", rec.id}});
            scope.instant(xLane, "expired",
                          recEpochUs + rec.admitUs,
                          {{"id", rec.id}});
            break;
        case QueryStatus::Shed:
            if (rec.enqueueUs >= 0.0) {
                scope.instant(qLane, "shed",
                              recEpochUs + rec.enqueueUs,
                              {{"id", rec.id}});
            }
            break;
        }
    }
}

void
Server::setTelemetry(telemetry::ServeTelemetry *telemetry)
{
    telemetry_ = telemetry;
    if (telemetry_ != nullptr)
        telemetry_->setShardCount(backend_.shards());
}

ServeReport
Server::run(const std::vector<workload::Query> &queries)
{
    return runImpl(queries);
}

ServeReport
Server::run(const std::vector<std::string> &qExpressions)
{
    return runImpl(qExpressions);
}

void
Server::registerStats(stats::Group &group)
{
    group.addCounter("offered", &statOffered_,
                     "queries offered by the load generator");
    group.addCounter("completed", &statCompleted_,
                     "queries executed to completion");
    group.addCounter("shed", &statShed_,
                     "queries refused or evicted at admission");
    group.addCounter("expired", &statExpired_,
                     "queries whose deadline passed before dispatch");
    group.addCounter("good", &statGood_,
                     "queries completed within their deadline");
    group.addHistogram(
        "latency_us", &latencyUs_,
        "completion latency from scheduled arrival (us)");
    group.addHistogram(
        "queue_wait_us", &queueWaitUs_,
        "scheduled arrival to dispatch (us)");
    group.addHistogram("build_us", &buildUs_,
                       "host build stage wall time (us)");
    group.addHistogram("finish_us", &finishUs_,
                       "replay + merge stage wall time (us)");
}

} // namespace boss::serve
