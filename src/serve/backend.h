/**
 * @file
 * Execution backends for the serving pipeline.
 *
 * The server drives queries through two stages — a thread-safe host
 * build (functional execution + trace construction, which fully
 * determines the top-k) and a serial device-model finish (replay for
 * timing, plus the sharded merge). A Backend adapts one device
 * topology to that two-stage shape:
 *
 *  - DeviceBackend: one accel::Device.
 *  - ShardedBackend: an api::ShardedDevice; build fans the query
 *    over every live shard, finish replays each shard and merges the
 *    global top-k.
 *  - LiveBackend: an api::LiveDevice; build pins the current epoch
 *    of a mutating segment set, finish replays its segments and
 *    merges — concurrent ingest publishes never touch in-flight
 *    queries.
 *
 * Because the results are computed entirely in build(), the order in
 * which finish() calls later replay them cannot change any query's
 * top-k — the structural guarantee behind the serve-vs-batch
 * bit-identity tests.
 */

#ifndef BOSS_SERVE_BACKEND_H
#define BOSS_SERVE_BACKEND_H

#include <memory>
#include <string>
#include <vector>

#include "api/live_device.h"
#include "api/sharded_device.h"
#include "boss/device.h"

namespace boss::serve
{

/**
 * Opaque built-query handle passed from build() to finish(). Each
 * backend stores its own build type behind it; the server only moves
 * it along the pipeline.
 */
using BuiltHandle = std::shared_ptr<void>;

/** What finish() hands back to the server. */
struct Finished
{
    std::vector<engine::Result> topk;
    double simSeconds = 0.0;
    std::uint64_t deviceBytes = 0;
    /**
     * Per-shard modeled replay seconds for this query (size ==
     * shards()); the telemetry layer's per-shard breakdown. A
     * single-device backend reports one entry equal to simSeconds.
     */
    std::vector<double> shardSeconds;
};

class Backend
{
  public:
    virtual ~Backend() = default;

    /** Shard fan-out of this backend (1 for a single device). */
    virtual std::uint32_t shards() const = 0;

    /** Plan an API expression (serial; lexicon-aware). */
    virtual engine::QueryPlan plan(const std::string &expr) = 0;
    /** Plan a workload query (serial). */
    virtual engine::QueryPlan plan(const workload::Query &query) = 0;

    /**
     * Stage 1: functionally execute the plan and build its replay
     * traces. Thread-safe for concurrent calls with distinct arenas.
     */
    virtual BuiltHandle build(const engine::QueryPlan &plan,
                              engine::QueryArena &arena) = 0;

    /**
     * Stage 2: replay on the device model(s) and produce the final
     * results. Serial — the server calls it from one thread.
     */
    virtual Finished finish(BuiltHandle built) = 0;
};

/** Serve from a single device. */
class DeviceBackend final : public Backend
{
  public:
    explicit DeviceBackend(accel::Device &device) : device_(device) {}

    std::uint32_t shards() const override { return 1; }

    engine::QueryPlan plan(const std::string &expr) override
    {
        return device_.plan(expr);
    }
    engine::QueryPlan plan(const workload::Query &query) override
    {
        return device_.plan(query);
    }
    BuiltHandle build(const engine::QueryPlan &plan,
                      engine::QueryArena &arena) override
    {
        return std::make_shared<accel::BuiltQuery>(
            device_.buildQuery(plan, arena));
    }
    Finished finish(BuiltHandle built) override;

  private:
    accel::Device &device_;
};

/** Serve from a sharded device group with host-side merge. */
class ShardedBackend final : public Backend
{
  public:
    explicit ShardedBackend(api::ShardedDevice &device)
        : device_(device)
    {
    }

    std::uint32_t shards() const override
    {
        return device_.numShards();
    }

    engine::QueryPlan plan(const std::string &expr) override
    {
        return device_.plan(expr);
    }
    engine::QueryPlan plan(const workload::Query &query) override
    {
        return device_.plan(query);
    }
    BuiltHandle build(const engine::QueryPlan &plan,
                      engine::QueryArena &arena) override
    {
        return std::make_shared<api::ShardedDevice::Built>(
            device_.buildQuery(plan, arena));
    }
    Finished finish(BuiltHandle built) override;

  private:
    api::ShardedDevice &device_;
};

/**
 * Serve from a live (mutating) device. One physical device scans
 * its epoch's segments serially, so shards() is 1 regardless of the
 * segment count.
 */
class LiveBackend final : public Backend
{
  public:
    explicit LiveBackend(api::LiveDevice &device) : device_(device) {}

    std::uint32_t shards() const override { return 1; }

    engine::QueryPlan plan(const std::string &expr) override
    {
        return device_.plan(expr);
    }
    engine::QueryPlan plan(const workload::Query &query) override
    {
        return device_.plan(query);
    }
    BuiltHandle build(const engine::QueryPlan &plan,
                      engine::QueryArena &arena) override
    {
        return std::make_shared<api::LiveDevice::Built>(
            device_.buildQuery(plan, arena));
    }
    Finished finish(BuiltHandle built) override;

  private:
    api::LiveDevice &device_;
};

} // namespace boss::serve

#endif // BOSS_SERVE_BACKEND_H
