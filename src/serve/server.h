/**
 * @file
 * The always-on serving loop: open-loop generator, bounded
 * admission, pipelined execution, tail-latency accounting.
 *
 * Batch entry points (Device::searchBatch) answer "how fast can the
 * stack drain N queries"; a service cares about a different question
 * — "at an offered load of Q qps, what latency does the p99 query
 * see, and how much offered work still completes within its
 * deadline". The Server answers that one:
 *
 *   generator ──offer──▶ admission queue ──pop──▶ dispatcher
 *                                                   │ build (pool workers, concurrent)
 *                                                   ▼
 *                                               finisher ── replay + merge (serial)
 *
 *  - The generator offers queries on the schedule from arrival.h,
 *    indifferent to server progress (open loop). Latency is charged
 *    from the scheduled arrival.
 *  - The admission queue bounds memory and sheds load per policy
 *    (admission.h); every offered query gets a terminal record:
 *    Done, Expired, or Shed.
 *  - Pipelined mode posts each admitted query's host build to a
 *    pool worker and finishes completed builds in admission order
 *    on a dedicated thread, so the serial device replay + merge of
 *    query i overlaps the builds of queries i+1.. — the
 *    intra/inter-request overlap that lifts sustained throughput.
 *    Barrier mode reproduces the pre-serving batch pattern
 *    (Device::searchBatch): accumulate admitted queries into a
 *    batch, build all, finish all, and only then deliver every
 *    result — the ablation baseline, whose batch boundary is
 *    exactly the stall the pipeline removes.
 *  - Results are computed in the build stage, so serve-mode top-k
 *    is bit-identical to batch-mode top-k regardless of mode,
 *    thread count, or completion order.
 */

#ifndef BOSS_SERVE_SERVER_H
#define BOSS_SERVE_SERVER_H

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "engine/arena.h"
#include "serve/admission.h"
#include "serve/arrival.h"
#include "serve/backend.h"
#include "stats/stats.h"
#include "telemetry/serve_telemetry.h"
#include "trace/recorder.h"

namespace boss::serve
{

enum class PipelineMode : std::uint8_t
{
    Pipelined,
    /**
     * Batch-accumulating build-all-then-finish-all with results
     * delivered at the batch boundary — the Device::searchBatch
     * barrier-per-batch pattern, kept as the ablation baseline.
     */
    Barrier,
};

struct ServeConfig
{
    ArrivalConfig arrivals;
    std::size_t queueCapacity = 256;
    ShedPolicy policy = ShedPolicy::DropTail;
    PipelineMode mode = PipelineMode::Pipelined;
    /**
     * Per-query completion deadline in microseconds, measured from
     * the scheduled arrival. Infinity disables SLO accounting
     * (every completion is goodput).
     */
    double deadlineUs = std::numeric_limits<double>::infinity();
    /**
     * Queries executed synchronously before the clock starts: warms
     * the per-worker decode arenas and code paths so the measured
     * window starts allocation-free. Excluded from all accounting.
     */
    std::size_t warmup = 0;
    /** Bound on builds outstanding past the dispatcher. */
    std::size_t maxInFlight = 64;
    /**
     * Barrier mode only: max queries accumulated per batch. The
     * dispatcher drains whatever is queued up to this bound (never
     * waiting for a batch to fill), so light load degenerates to
     * batches of one and heavy load pays the full barrier stall.
     */
    std::size_t barrierBatch = 32;
};

enum class QueryStatus : std::uint8_t
{
    Shed,    ///< refused (or evicted) at admission
    Expired, ///< deadline already past at dispatch; never executed
    Done,    ///< executed; metDeadline says if it counts as goodput
};

/** Terminal record of one offered query (indexed by arrival id). */
struct QueryRecord
{
    std::uint64_t id = 0;
    std::size_t queryIndex = 0;
    QueryStatus status = QueryStatus::Shed;
    bool metDeadline = false;
    // Lifecycle timestamps, us from the run epoch; negative when the
    // query never reached that stage.
    double arrivalUs = 0.0;  ///< scheduled (open-loop) arrival
    double enqueueUs = -1.0; ///< offered to admission
    double admitUs = -1.0;    ///< popped by the dispatcher
    double startUs = -1.0;    ///< build began on a worker
    double buildEndUs = -1.0; ///< build completed on the worker
    double finishUs = -1.0;   ///< replay + merge completed
    double simSeconds = 0.0; ///< modeled device time
    std::uint64_t deviceBytes = 0;
    std::vector<engine::Result> topk;
};

struct ServeReport
{
    std::vector<QueryRecord> records; ///< one per offered query
    std::uint64_t offered = 0;
    std::uint64_t completed = 0;
    std::uint64_t shed = 0;
    std::uint64_t expired = 0;
    std::uint64_t good = 0; ///< completed within deadline
    double elapsedUs = 0.0; ///< epoch → last completion (or close)
    double offeredQps = 0.0;
    double achievedQps = 0.0; ///< completed / elapsed
    double goodputQps = 0.0;  ///< good / elapsed
    /** Exact percentiles over completed queries' latencies. */
    double latencyP50Us = 0.0;
    double latencyP99Us = 0.0;
    double latencyP999Us = 0.0;
    double latencyMaxUs = 0.0;
    double queueWaitP99Us = 0.0;
    AdmissionCounters admission;
};

class Server
{
  public:
    Server(Backend &backend, ServeConfig config);

    /** Run one serving session over the (cycled) query set. */
    ServeReport run(const std::vector<workload::Query> &queries);
    ServeReport run(const std::vector<std::string> &qExpressions);

    /**
     * Register the server's cumulative counters and latency
     * histograms (log-bucketed; p50/p99/p999 in the JSON dump)
     * under @p group. Samples accumulate across run() calls.
     */
    void registerStats(stats::Group &group);

    /**
     * Attach a recorder: each run() then emits its per-query
     * lifecycle onto two host-clock serve lanes — a "queued" span
     * (offer → dispatch) and a "serve" span (build start → finish),
     * plus shed/expired instants. Events are emitted after the run
     * from the terminal records, so recording never perturbs the
     * pipeline and the stream is deterministic in (scope, seq).
     * The recorder must outlive the runs; nullptr detaches.
     */
    void setRecorder(trace::Recorder *recorder)
    {
        recorder_ = recorder;
    }

    /**
     * Attach live telemetry: every lifecycle transition then updates
     * the registry's counters and sliding windows *during* the run —
     * from the generator, dispatcher, pool-worker and finisher
     * threads — so an attached snapshotter or /metrics scrape sees
     * the overload as it happens, not a post-mortem. Also sizes the
     * per-shard breakdown from the backend; attach before starting
     * any snapshotter (registration is not render-safe). The
     * telemetry must outlive the runs; nullptr detaches.
     */
    void setTelemetry(telemetry::ServeTelemetry *telemetry);

  private:
    template <typename Q>
    ServeReport runImpl(const std::vector<Q> &queries);

    void recordRun(const ServeReport &report, double recEpochUs);

    Backend &backend_;
    ServeConfig config_;
    telemetry::ServeTelemetry *telemetry_ = nullptr;
    trace::Recorder *recorder_ = nullptr;
    /** Serve lanes, registered once per attached recorder. */
    trace::Recorder *laneOwner_ = nullptr;
    std::uint16_t queueLane_ = 0;
    std::uint16_t execLane_ = 0;

    /**
     * Per-worker decode scratch, persistent across runs (the warmed
     * buffers are the point of --warmup).
     */
    std::vector<engine::QueryArena> arenas_;

    // Cumulative observability (see registerStats).
    stats::Counter statOffered_;
    stats::Counter statCompleted_;
    stats::Counter statShed_;
    stats::Counter statExpired_;
    stats::Counter statGood_;
    stats::Histogram latencyUs_{1.0, 1e7, 112, stats::Scale::Log};
    stats::Histogram queueWaitUs_{1.0, 1e7, 112, stats::Scale::Log};
    stats::Histogram buildUs_{1.0, 1e6, 96, stats::Scale::Log};
    stats::Histogram finishUs_{1.0, 1e6, 96, stats::Scale::Log};
};

} // namespace boss::serve

#endif // BOSS_SERVE_SERVER_H
