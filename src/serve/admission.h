/**
 * @file
 * Bounded admission control for the serving pipeline.
 *
 * The queue between the load generator and the execution pipeline is
 * where overload becomes policy: when offered load exceeds capacity
 * something must give, and the admission queue decides what. Three
 * policies cover the serving experiments:
 *
 *  - Block: the generator waits for space. Nothing is shed; queueing
 *    delay grows without bound past saturation (the latency curve's
 *    "knee" becomes a wall). The right mode for bit-identity checks
 *    against batch execution, where every query must run.
 *  - DropTail: a full queue sheds the incoming request. Bounded
 *    memory and bounded queueing delay; goodput saturates at
 *    capacity while the excess is refused at the door.
 *  - DropDeadline: deadline-aware shedding. A full queue evicts the
 *    queued request with the earliest deadline if the newcomer has
 *    more slack (the evictee was the least likely to finish in
 *    time), otherwise sheds the newcomer. Under overload this
 *    converts shed capacity into goodput: work is spent on requests
 *    that can still meet their SLO.
 *
 * The queue itself is clock-free: requests carry their own
 * timestamps and deadlines, and expiry is enforced by the dispatcher
 * (a request may also expire *after* admission, mid-pipeline — the
 * server handles that; see server.h). Clock-free admission makes the
 * policies deterministically testable: a single-threaded test drives
 * offer()/tryPop() with virtual timestamps and the outcome depends
 * only on the call sequence, never on wall time.
 *
 * Thread-safe: one generator offering, one dispatcher popping is the
 * server's shape, but any number of each is safe.
 */

#ifndef BOSS_SERVE_ADMISSION_H
#define BOSS_SERVE_ADMISSION_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <limits>
#include <mutex>
#include <optional>

#include "engine/plan.h"

namespace boss::serve
{

/** What a full (or closed) queue does with an incoming request. */
enum class ShedPolicy : std::uint8_t
{
    Block,
    DropTail,
    DropDeadline,
};

/** One in-flight query, carrying its own clock readings. */
struct ServeRequest
{
    /** Arrival index in the offered schedule (also the record id). */
    std::uint64_t id = 0;
    /** Index into the run's query set (id mod #queries). */
    std::size_t queryIndex = 0;
    /** Pre-computed plan; owned by the server for the whole run. */
    const engine::QueryPlan *plan = nullptr;
    /** Scheduled (open-loop) arrival, us from run epoch. */
    double arrivalUs = 0.0;
    /** When the generator actually offered it (>= arrivalUs). */
    double enqueueUs = 0.0;
    /** Absolute completion deadline, us from run epoch. */
    double deadlineUs = std::numeric_limits<double>::infinity();
};

/** Outcome of one offer() call. */
enum class Admission : std::uint8_t
{
    Admitted,
    ShedCapacity, ///< DropTail refusal at a full queue
    ShedDeadline, ///< DropDeadline refusal or eviction
    Closed,       ///< queue closed; request refused
};

struct AdmissionCounters
{
    std::uint64_t offered = 0;
    std::uint64_t admitted = 0;
    std::uint64_t shedCapacity = 0;
    std::uint64_t shedDeadline = 0;
    std::uint64_t rejectedClosed = 0;
    /** Peak depth observed at admission time. */
    std::uint64_t peakDepth = 0;
};

class AdmissionQueue
{
  public:
    explicit AdmissionQueue(std::size_t capacity,
                            ShedPolicy policy = ShedPolicy::DropTail);

    /**
     * Offer one request. Returns the admission decision; with the
     * DropDeadline policy an eviction surfaces through @p evicted
     * (the caller records the victim as shed). Block waits for
     * space — or for close(), which refuses the waiter.
     */
    Admission offer(ServeRequest request,
                    std::optional<ServeRequest> *evicted = nullptr);

    /** Pop the oldest admitted request without waiting. */
    std::optional<ServeRequest> tryPop();

    /**
     * Pop the oldest admitted request, waiting for one to arrive.
     * Returns nullopt only when the queue is closed and drained —
     * the dispatcher's termination signal.
     */
    std::optional<ServeRequest> pop();

    /**
     * Stop admitting: subsequent offers are refused, blocked offers
     * wake refused, and pop() drains what was admitted then returns
     * nullopt forever after.
     */
    void close();

    std::size_t capacity() const { return capacity_; }
    ShedPolicy policy() const { return policy_; }
    std::size_t size() const;
    AdmissionCounters counters() const;

  private:
    const std::size_t capacity_;
    const ShedPolicy policy_;

    mutable std::mutex mutex_;
    std::condition_variable notEmpty_;
    std::condition_variable notFull_;
    std::deque<ServeRequest> queue_;
    bool closed_ = false;
    AdmissionCounters counters_;
};

} // namespace boss::serve

#endif // BOSS_SERVE_ADMISSION_H
