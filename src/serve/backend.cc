#include "serve/backend.h"

#include "common/logging.h"

namespace boss::serve
{

Finished
DeviceBackend::finish(BuiltHandle built)
{
    auto *bq = static_cast<accel::BuiltQuery *>(built.get());
    BOSS_ASSERT(bq != nullptr, "finish() without a build");
    std::vector<accel::BuiltQuery> group;
    group.push_back(std::move(*bq));
    accel::SearchOutcome res =
        device_.replayBuilt(std::move(group));
    Finished fin;
    fin.topk = std::move(res.perQuery[0]);
    fin.simSeconds = res.simSeconds;
    fin.deviceBytes = res.deviceBytes;
    fin.shardSeconds = {res.simSeconds};
    return fin;
}

Finished
ShardedBackend::finish(BuiltHandle built)
{
    auto *bq =
        static_cast<api::ShardedDevice::Built *>(built.get());
    BOSS_ASSERT(bq != nullptr, "finish() without a build");
    api::ShardedOutcome res = device_.finishBuilt(std::move(*bq));
    Finished fin;
    fin.topk = std::move(res.perQuery[0]);
    fin.simSeconds = res.simSeconds;
    fin.deviceBytes = res.deviceBytes;
    fin.shardSeconds = std::move(res.shardSeconds);
    return fin;
}

Finished
LiveBackend::finish(BuiltHandle built)
{
    auto *bq = static_cast<api::LiveDevice::Built *>(built.get());
    BOSS_ASSERT(bq != nullptr, "finish() without a build");
    api::LiveOutcome res = device_.finishBuilt(std::move(*bq));
    Finished fin;
    fin.topk = std::move(res.topk);
    fin.simSeconds = res.simSeconds;
    fin.deviceBytes = res.deviceBytes;
    fin.shardSeconds = {res.simSeconds};
    return fin;
}

} // namespace boss::serve
