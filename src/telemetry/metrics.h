/**
 * @file
 * Lock-light live metric primitives for the always-on server.
 *
 * The stats:: layer (stats/stats.h) is a post-mortem registry: leaf
 * objects are plain (non-atomic) values sampled by one thread and
 * dumped once after the run. A serving process needs the opposite
 * shape — many threads updating on every query lifecycle transition
 * while a snapshotter thread reads concurrently, continuously, for
 * the whole process lifetime. Everything here is therefore built
 * from relaxed atomics:
 *
 *  - Counter / Gauge: single atomic words; inc/set from any thread,
 *    read from any thread, no fences beyond the atomic ops.
 *  - WindowedHistogram: a ring of time slices, each a fixed-layout
 *    log-bucket histogram with atomic bucket counts. A sample lands
 *    in the slice covering its timestamp; a snapshot merges the
 *    slices covering the last W seconds. Old slices are reclaimed
 *    lazily when their ring slot is next written, so the structure
 *    "decays" sliding-window style with zero background work.
 *  - WindowedCounter: the scalar version of the same ring, backing
 *    per-window rates (qps) and SLO burn-rate gauges.
 *
 * Time is explicit: every sample and snapshot carries a caller
 * timestamp in microseconds since an arbitrary epoch. The serve
 * path stamps real wall time; tests drive a virtual clock and get
 * fully deterministic window arithmetic.
 *
 * Consistency model: a sample that races a slice rotation exactly
 * one ring revolution later can be partially lost (bucket counts
 * are summed at snapshot time, so a snapshot is always internally
 * consistent — count == sum of buckets — but may momentarily miss
 * an in-flight sample). That is the usual sliding-window metrics
 * contract; the terminal counters, which reconcile exactly, are
 * plain Counters.
 */

#ifndef BOSS_TELEMETRY_METRICS_H
#define BOSS_TELEMETRY_METRICS_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace boss::telemetry
{

/** Monotone event counter; safe to inc from any thread. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }
    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-write-wins instantaneous value (queue depth, busy time). */
class Gauge
{
  public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }
    void add(double d)
    {
        // fetch_add on atomic<double> is C++20; a CAS loop keeps us
        // portable to toolchains that lowered it late.
        double cur = value_.load(std::memory_order_relaxed);
        while (!value_.compare_exchange_weak(
            cur, cur + d, std::memory_order_relaxed))
            ;
    }
    double value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Sliding-window log-bucket histogram.
 *
 * Layout: `ringSlices` slices of `sliceUs` microseconds each; slice
 * s covers [s*sliceUs, (s+1)*sliceUs) and lives in ring slot
 * s % ringSlices. Each slice holds `buckets` geometric buckets over
 * [lo, hi) plus an overflow bucket (values below lo land in bucket
 * 0, values at or above hi in the overflow bucket) — the same HDR
 * shape as stats::Histogram, minus min/max tracking (percentiles
 * clamp to bucket edges instead).
 *
 * snapshot(t, W) merges every slice whose epoch lies in the last W
 * slices ending at t's slice, *including* the current partial slice
 * — so a "1s" window holds between 0 and 1s of data and converges
 * as the slice fills, the standard live-dashboard behavior.
 */
class WindowedHistogram
{
  public:
    struct Config
    {
        double lo = 1.0;
        double hi = 1e7;
        std::size_t buckets = 56;
        double sliceUs = 1e6;
        /** Ring length; must cover the longest window + 1. */
        std::size_t ringSlices = 64;
    };

    explicit WindowedHistogram(Config config);

    /** Record @p v at time @p tUs (since the metric epoch). */
    void sample(double tUs, double v, std::uint64_t count = 1);

    /** Point-in-time merge of the last @p windowSlices slices. */
    struct Snapshot
    {
        double lo = 0.0;
        double hi = 0.0;
        std::uint64_t count = 0;
        double sum = 0.0;
        /** buckets + 1 trailing overflow entry. */
        std::vector<std::uint64_t> buckets;

        double mean() const
        {
            return count == 0
                       ? 0.0
                       : sum / static_cast<double>(count);
        }
        /**
         * Interpolated quantile over the merged buckets, clamped to
         * [lo, hi]; the overflow bucket reports hi. 0 if empty.
         */
        double percentile(double q) const;
    };

    Snapshot snapshot(double tUs, std::uint64_t windowSlices) const;

    const Config &config() const { return config_; }

  private:
    /**
     * One time slice. epoch is the absolute slice index this slot
     * currently holds; -1 marks a reset in progress and the initial
     * "never written" state is kEmpty. All fields are atomics so
     * sampler/snapshotter races are data-race-free; see the header
     * comment for the (benign) semantic race on rotation.
     */
    struct Slice
    {
        static constexpr std::int64_t kEmpty = -2;
        std::atomic<std::int64_t> epoch{kEmpty};
        std::atomic<double> sum{0.0};
        std::unique_ptr<std::atomic<std::uint64_t>[]> buckets;
    };

    std::size_t bucketIndex(double v) const;
    double bucketEdge(std::size_t i) const;
    /** Rotate @p slice to @p want if it holds an older epoch. */
    void claim(Slice &slice, std::int64_t want);

    Config config_;
    double logRatio_; ///< precomputed log(hi/lo)
    std::vector<Slice> ring_;
};

/**
 * Sliding-window scalar counter: the same slice ring as
 * WindowedHistogram with a single value per slice. Backs windowed
 * rates (events in the last W seconds) and burn-rate ratios.
 */
class WindowedCounter
{
  public:
    struct Config
    {
        double sliceUs = 1e6;
        std::size_t ringSlices = 64;
    };

    explicit WindowedCounter(Config config);

    void add(double tUs, std::uint64_t n = 1);

    /** Events in the last @p windowSlices slices ending at @p tUs. */
    std::uint64_t total(double tUs,
                        std::uint64_t windowSlices) const;

  private:
    struct Slice
    {
        static constexpr std::int64_t kEmpty = -2;
        std::atomic<std::int64_t> epoch{kEmpty};
        std::atomic<std::uint64_t> count{0};
    };

    void claim(Slice &slice, std::int64_t want);

    Config config_;
    std::vector<Slice> ring_;
};

/**
 * SLO burn-rate gauge over good/bad windowed counters.
 *
 * burn = (bad / (good + bad)) / errorBudget over the window: 1.0
 * means the service is consuming its error budget exactly at the
 * sustainable rate; >1 means the budget burns faster than it
 * accrues (the SRE multi-window alerting quantity). 0 with no
 * events.
 */
class BurnRate
{
  public:
    BurnRate(double errorBudget, WindowedCounter::Config config)
        : budget_(errorBudget), good_(config), bad_(config)
    {
    }

    void record(double tUs, bool good)
    {
        (good ? good_ : bad_).add(tUs);
    }

    double rate(double tUs, std::uint64_t windowSlices) const;

    std::uint64_t goodTotal(double tUs, std::uint64_t w) const
    {
        return good_.total(tUs, w);
    }
    std::uint64_t badTotal(double tUs, std::uint64_t w) const
    {
        return bad_.total(tUs, w);
    }
    double errorBudget() const { return budget_; }

  private:
    double budget_;
    WindowedCounter good_;
    WindowedCounter bad_;
};

} // namespace boss::telemetry

#endif // BOSS_TELEMETRY_METRICS_H
