#include "telemetry/http_exporter.h"

#include <cerrno>
#include <cstring>
#include <sstream>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace boss::telemetry
{

namespace
{

void
sendAll(int fd, const std::string &data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        ssize_t n = ::send(fd, data.data() + off,
                           data.size() - off, MSG_NOSIGNAL);
        if (n <= 0)
            return; // peer went away; nothing to salvage
        off += static_cast<std::size_t>(n);
    }
}

std::string
response(const char *status, const char *contentType,
         const std::string &body)
{
    std::ostringstream os;
    os << "HTTP/1.0 " << status << "\r\n"
       << "Content-Type: " << contentType << "\r\n"
       << "Content-Length: " << body.size() << "\r\n"
       << "Connection: close\r\n\r\n"
       << body;
    return os.str();
}

} // namespace

HttpExporter::HttpExporter(const Registry &registry,
                           const FlightRecorder *flight,
                           std::function<double()> clock,
                           Config config)
    : registry_(registry), flight_(flight),
      clock_(std::move(clock)), config_(config)
{
}

HttpExporter::~HttpExporter()
{
    stop();
}

bool
HttpExporter::start(std::string *error)
{
    auto fail = [&](const char *what) {
        if (error != nullptr)
            *error = std::string(what) + ": " +
                     std::strerror(errno);
        if (listenFd_ >= 0) {
            ::close(listenFd_);
            listenFd_ = -1;
        }
        return false;
    };

    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        return fail("socket");
    int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    addr.sin_port = htons(config_.port);
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0)
        return fail("bind");
    if (::listen(listenFd_, 8) != 0)
        return fail("listen");
    socklen_t len = sizeof(addr);
    if (::getsockname(listenFd_,
                      reinterpret_cast<sockaddr *>(&addr),
                      &len) != 0)
        return fail("getsockname");
    boundPort_ = ntohs(addr.sin_port);

    stop_.store(false, std::memory_order_relaxed);
    thread_ = std::thread([this] { serveLoop(); });
    return true;
}

void
HttpExporter::stop()
{
    if (!thread_.joinable())
        return;
    stop_.store(true, std::memory_order_relaxed);
    thread_.join();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
    boundPort_ = 0;
}

void
HttpExporter::serveLoop()
{
    for (;;) {
        if (stop_.load(std::memory_order_relaxed))
            return;
        pollfd pfd{};
        pfd.fd = listenFd_;
        pfd.events = POLLIN;
        int r = ::poll(&pfd, 1, 100 /* ms */);
        if (r <= 0)
            continue; // timeout (re-check stop flag) or EINTR
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        handleConnection(fd);
        ::close(fd);
    }
}

void
HttpExporter::handleConnection(int fd)
{
    // Read the request head (we only need the request line; 4 KiB
    // bounds hostile input). A short read is fine — the line comes
    // first.
    char buf[4096];
    ssize_t n = ::recv(fd, buf, sizeof(buf) - 1, 0);
    if (n <= 0)
        return;
    buf[n] = '\0';
    requests_.fetch_add(1, std::memory_order_relaxed);

    const char *lineEnd = std::strstr(buf, "\r\n");
    std::string line(buf, lineEnd != nullptr
                              ? static_cast<std::size_t>(lineEnd -
                                                         buf)
                              : static_cast<std::size_t>(n));
    std::istringstream req(line);
    std::string method;
    std::string path;
    req >> method >> path;
    if (method != "GET") {
        sendAll(fd, response("405 Method Not Allowed",
                             "text/plain", "GET only\n"));
        return;
    }
    // Strip any query string; routes carry no parameters.
    if (auto qpos = path.find('?'); qpos != std::string::npos)
        path.resize(qpos);

    if (path == "/metrics") {
        std::ostringstream body;
        registry_.renderPrometheus(body, clock_());
        sendAll(fd,
                response("200 OK",
                         "text/plain; version=0.0.4", body.str()));
    } else if (path == "/flight" && flight_ != nullptr) {
        std::ostringstream body;
        flight_->dumpChromeTrace(body);
        sendAll(fd, response("200 OK", "application/json",
                             body.str()));
    } else if (path == "/healthz") {
        sendAll(fd, response("200 OK", "text/plain", "ok\n"));
    } else {
        sendAll(fd, response("404 Not Found", "text/plain",
                             "unknown route\n"));
    }
}

} // namespace boss::telemetry
