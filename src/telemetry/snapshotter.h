/**
 * @file
 * Periodic metrics snapshotter: renders a Registry to an append-
 * only JSONL time series while the server runs.
 *
 * The JSONL file is the socket-free observability surface — tests
 * and CI validate live metrics by reading it (tools/
 * metrics_check.py), and boss_top tails it for a terminal view.
 * Each line is one self-contained snapshot; the final line is
 * emitted at stop(), after the serving loop has quiesced, so the
 * last record reconciles exactly with the run's terminal
 * accounting.
 */

#ifndef BOSS_TELEMETRY_SNAPSHOTTER_H
#define BOSS_TELEMETRY_SNAPSHOTTER_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "telemetry/registry.h"

namespace boss::telemetry
{

class Snapshotter
{
  public:
    struct Config
    {
        std::string jsonlPath; ///< appended to; created if absent
        double periodMs = 500.0;
    };

    /**
     * @param clock returns the render timestamp in µs — normally
     *              ServeTelemetry::nowUs, a virtual clock in tests.
     */
    Snapshotter(const Registry &registry,
                std::function<double()> clock, Config config);
    ~Snapshotter();

    /** Open the output and start the periodic thread. Fatal on an
     *  unwritable path. */
    void start();

    /** Stop the thread and append one final snapshot. Idempotent. */
    void stop();

    std::uint64_t snapshots() const
    {
        return snapshots_.load(std::memory_order_relaxed);
    }

  private:
    void writeSnapshot();

    const Registry &registry_;
    std::function<double()> clock_;
    Config config_;

    std::ofstream out_;
    std::mutex mutex_;
    std::condition_variable cv_;
    std::thread thread_;
    bool running_ = false;
    bool stopRequested_ = false;
    std::atomic<std::uint64_t> snapshots_{0};
};

} // namespace boss::telemetry

#endif // BOSS_TELEMETRY_SNAPSHOTTER_H
