#include "telemetry/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace boss::telemetry
{

namespace
{

/** Absolute slice index covering time @p tUs (clamped at 0). */
std::int64_t
sliceFor(double tUs, double sliceUs)
{
    if (tUs <= 0.0)
        return 0;
    return static_cast<std::int64_t>(tUs / sliceUs);
}

void
atomicAddDouble(std::atomic<double> &a, double d)
{
    double cur = a.load(std::memory_order_relaxed);
    while (!a.compare_exchange_weak(cur, cur + d,
                                    std::memory_order_relaxed))
        ;
}

} // namespace

// ---------------------------------------------------------------
// WindowedHistogram

WindowedHistogram::WindowedHistogram(Config config)
    : config_(config),
      logRatio_(std::log(config.hi / config.lo)),
      ring_(config.ringSlices)
{
    BOSS_ASSERT(config_.lo > 0.0 && config_.hi > config_.lo,
                "log histogram needs 0 < lo < hi");
    BOSS_ASSERT(config_.buckets > 0 && config_.ringSlices > 0 &&
                    config_.sliceUs > 0.0,
                "degenerate windowed histogram shape");
    for (Slice &s : ring_) {
        s.buckets = std::make_unique<std::atomic<std::uint64_t>[]>(
            config_.buckets + 1);
        for (std::size_t b = 0; b <= config_.buckets; ++b)
            s.buckets[b].store(0, std::memory_order_relaxed);
    }
}

std::size_t
WindowedHistogram::bucketIndex(double v) const
{
    if (v < config_.lo)
        return 0;
    if (v >= config_.hi)
        return config_.buckets; // overflow
    auto idx = static_cast<std::size_t>(
        std::log(v / config_.lo) / logRatio_ *
        static_cast<double>(config_.buckets));
    return std::min(idx, config_.buckets - 1);
}

double
WindowedHistogram::bucketEdge(std::size_t i) const
{
    double t = static_cast<double>(i) /
               static_cast<double>(config_.buckets);
    return config_.lo * std::pow(config_.hi / config_.lo, t);
}

void
WindowedHistogram::claim(Slice &slice, std::int64_t want)
{
    std::int64_t cur = slice.epoch.load(std::memory_order_acquire);
    for (;;) {
        if (cur >= want)
            return; // already current (or newer; caller re-checks)
        if (cur != -1 &&
            slice.epoch.compare_exchange_weak(
                cur, -1, std::memory_order_acq_rel)) {
            // We own the reset of this recycled slot.
            for (std::size_t b = 0; b <= config_.buckets; ++b)
                slice.buckets[b].store(0,
                                       std::memory_order_relaxed);
            slice.sum.store(0.0, std::memory_order_relaxed);
            slice.epoch.store(want, std::memory_order_release);
            return;
        }
        // Lost the race (or a reset is in flight): reload and spin.
        cur = slice.epoch.load(std::memory_order_acquire);
    }
}

void
WindowedHistogram::sample(double tUs, double v, std::uint64_t count)
{
    std::int64_t s = sliceFor(tUs, config_.sliceUs);
    Slice &slice = ring_[static_cast<std::size_t>(s) % ring_.size()];
    claim(slice, s);
    if (slice.epoch.load(std::memory_order_acquire) != s)
        return; // slot already rotated past us; drop the stale sample
    slice.buckets[bucketIndex(v)].fetch_add(
        count, std::memory_order_relaxed);
    atomicAddDouble(slice.sum, v * static_cast<double>(count));
}

WindowedHistogram::Snapshot
WindowedHistogram::snapshot(double tUs,
                            std::uint64_t windowSlices) const
{
    Snapshot snap;
    snap.lo = config_.lo;
    snap.hi = config_.hi;
    snap.buckets.assign(config_.buckets + 1, 0);
    std::int64_t now = sliceFor(tUs, config_.sliceUs);
    std::int64_t oldest =
        now - static_cast<std::int64_t>(windowSlices) + 1;
    for (const Slice &slice : ring_) {
        std::int64_t e = slice.epoch.load(std::memory_order_acquire);
        if (e < oldest || e > now)
            continue;
        for (std::size_t b = 0; b <= config_.buckets; ++b) {
            std::uint64_t n =
                slice.buckets[b].load(std::memory_order_relaxed);
            snap.buckets[b] += n;
            snap.count += n;
        }
        snap.sum += slice.sum.load(std::memory_order_relaxed);
    }
    return snap;
}

double
WindowedHistogram::Snapshot::percentile(double q) const
{
    if (count == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    double rank = q * static_cast<double>(count);
    std::uint64_t seen = 0;
    std::size_t nb = buckets.size() - 1;
    // Bucket edges are geometric between lo and hi (same layout the
    // histogram sampled with), so rebuild them from lo/hi here.
    auto edge = [&](std::size_t i) {
        double t =
            static_cast<double>(i) / static_cast<double>(nb);
        return lo * std::pow(hi / lo, t);
    };
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        std::uint64_t n = buckets[i];
        if (n == 0)
            continue;
        if (static_cast<double>(seen + n) >= rank) {
            if (i == nb)
                return hi; // overflow bucket has no upper edge
            double frac = (rank - static_cast<double>(seen)) /
                          static_cast<double>(n);
            return edge(i) + (edge(i + 1) - edge(i)) * frac;
        }
        seen += n;
    }
    return hi;
}

// ---------------------------------------------------------------
// WindowedCounter

WindowedCounter::WindowedCounter(Config config)
    : config_(config), ring_(config.ringSlices)
{
    BOSS_ASSERT(config_.ringSlices > 0 && config_.sliceUs > 0.0,
                "degenerate windowed counter shape");
}

void
WindowedCounter::claim(Slice &slice, std::int64_t want)
{
    std::int64_t cur = slice.epoch.load(std::memory_order_acquire);
    for (;;) {
        if (cur >= want)
            return;
        if (cur != -1 &&
            slice.epoch.compare_exchange_weak(
                cur, -1, std::memory_order_acq_rel)) {
            slice.count.store(0, std::memory_order_relaxed);
            slice.epoch.store(want, std::memory_order_release);
            return;
        }
        cur = slice.epoch.load(std::memory_order_acquire);
    }
}

void
WindowedCounter::add(double tUs, std::uint64_t n)
{
    std::int64_t s = sliceFor(tUs, config_.sliceUs);
    Slice &slice = ring_[static_cast<std::size_t>(s) % ring_.size()];
    claim(slice, s);
    if (slice.epoch.load(std::memory_order_acquire) != s)
        return;
    slice.count.fetch_add(n, std::memory_order_relaxed);
}

std::uint64_t
WindowedCounter::total(double tUs,
                       std::uint64_t windowSlices) const
{
    std::int64_t now = sliceFor(tUs, config_.sliceUs);
    std::int64_t oldest =
        now - static_cast<std::int64_t>(windowSlices) + 1;
    std::uint64_t total = 0;
    for (const Slice &slice : ring_) {
        std::int64_t e = slice.epoch.load(std::memory_order_acquire);
        if (e < oldest || e > now)
            continue;
        total += slice.count.load(std::memory_order_relaxed);
    }
    return total;
}

// ---------------------------------------------------------------
// BurnRate

double
BurnRate::rate(double tUs, std::uint64_t windowSlices) const
{
    std::uint64_t good = good_.total(tUs, windowSlices);
    std::uint64_t bad = bad_.total(tUs, windowSlices);
    std::uint64_t total = good + bad;
    if (total == 0)
        return 0.0;
    double errFrac =
        static_cast<double>(bad) / static_cast<double>(total);
    return errFrac / budget_;
}

} // namespace boss::telemetry
