#include "telemetry/snapshotter.h"

#include <chrono>

#include "common/logging.h"

namespace boss::telemetry
{

Snapshotter::Snapshotter(const Registry &registry,
                         std::function<double()> clock,
                         Config config)
    : registry_(registry), clock_(std::move(clock)),
      config_(std::move(config))
{
    BOSS_ASSERT(config_.periodMs > 0.0,
                "snapshot period must be positive");
}

Snapshotter::~Snapshotter()
{
    stop();
}

void
Snapshotter::start()
{
    BOSS_ASSERT(!running_, "snapshotter already started");
    out_.open(config_.jsonlPath, std::ios::app);
    if (!out_)
        BOSS_FATAL("cannot open metrics output '",
                   config_.jsonlPath, "' for appending");
    running_ = true;
    stopRequested_ = false;
    thread_ = std::thread([this] {
        std::unique_lock<std::mutex> lock(mutex_);
        for (;;) {
            cv_.wait_for(
                lock,
                std::chrono::duration<double, std::milli>(
                    config_.periodMs),
                [this] { return stopRequested_; });
            if (stopRequested_)
                return;
            writeSnapshot();
        }
    });
}

void
Snapshotter::stop()
{
    if (!running_)
        return;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopRequested_ = true;
    }
    cv_.notify_all();
    thread_.join();
    // Final snapshot after the loop quiesced: the last line of the
    // series carries the run's exact terminal accounting.
    {
        std::lock_guard<std::mutex> lock(mutex_);
        writeSnapshot();
    }
    out_.close();
    running_ = false;
}

void
Snapshotter::writeSnapshot()
{
    registry_.renderJsonLine(out_, clock_());
    out_ << '\n';
    out_.flush();
    snapshots_.fetch_add(1, std::memory_order_relaxed);
}

} // namespace boss::telemetry
