#include "telemetry/serve_telemetry.h"

#include <algorithm>

namespace boss::telemetry
{

namespace
{

std::uint64_t
maxWindowSlices(const std::vector<WindowSpec> &windows)
{
    std::uint64_t m = 1;
    for (const WindowSpec &w : windows)
        m = std::max(m, w.slices);
    return m;
}

WindowedHistogram::Config
histConfig(const ServeTelemetry::Config &cfg, double lo, double hi)
{
    WindowedHistogram::Config h;
    h.lo = lo;
    h.hi = hi;
    h.buckets = 56;
    h.sliceUs = cfg.sliceUs;
    // One slot per slice in the longest window plus headroom, so a
    // slice is never recycled while still inside any window.
    h.ringSlices =
        static_cast<std::size_t>(maxWindowSlices(cfg.windows)) + 2;
    return h;
}

WindowedCounter::Config
counterConfig(const ServeTelemetry::Config &cfg)
{
    WindowedCounter::Config c;
    c.sliceUs = cfg.sliceUs;
    c.ringSlices =
        static_cast<std::size_t>(maxWindowSlices(cfg.windows)) + 2;
    return c;
}

} // namespace

void
IngestMetrics::registerInto(Registry &registry)
{
    registry.addCounter("boss_ingest_docs_appended_total",
                        &docsAppended,
                        "documents appended to the live index");
    registry.addCounter("boss_ingest_docs_deleted_total",
                        &docsDeleted, "documents tombstone-deleted");
    registry.addCounter("boss_ingest_segments_baked_total",
                        &segmentsBaked,
                        "immutable segments baked from the buffer");
    registry.addCounter("boss_ingest_merges_total", &merges,
                        "background merge compactions completed");
    registry.addCounter("boss_ingest_refreshes_total", &refreshes,
                        "epoch publishes making ingest visible");
    registry.addGauge("boss_ingest_live_docs", &liveDocs,
                      "surviving (non-deleted) documents");
    registry.addGauge("boss_ingest_segments", &segments,
                      "segments in the current epoch");
    registry.addGauge("boss_ingest_epoch", &epoch,
                      "current published epoch");
    registry.addGauge("boss_ingest_buffered_docs", &bufferedDocs,
                      "appended docs not yet baked to a segment");
}

void
CacheMetrics::registerInto(Registry &registry)
{
    registry.addCounter("boss_cache_fetches_total", &fetches,
                        "block-cache lookups (cacheable reads)");
    registry.addCounter("boss_cache_hits_total", &hits,
                        "block-cache hits served at DRAM timing");
    registry.addCounter("boss_cache_misses_total", &misses,
                        "block-cache misses served by SCM");
    registry.addCounter("boss_cache_evictions_total", &evictions,
                        "blocks evicted by CLOCK replacement");
    registry.addCounter("boss_cache_dram_bytes_total", &dramBytes,
                        "bytes served by the DRAM cache tier");
    registry.addCounter("boss_cache_scm_bytes_total", &scmBytes,
                        "bytes served by the SCM device");
}

ServeTelemetry::ServeTelemetry() : ServeTelemetry(Config()) {}

ServeTelemetry::ServeTelemetry(Config config)
    : config_(std::move(config)),
      epoch_(std::chrono::steady_clock::now()),
      flight_(config_.flightSlowCapacity,
              config_.flightShedCapacity),
      latencyUs_(histConfig(config_, 1.0, 1e7)),
      queueWaitUs_(histConfig(config_, 1.0, 1e7)),
      buildUs_(histConfig(config_, 1.0, 1e6)),
      finishUs_(histConfig(config_, 1.0, 1e6)),
      sloBudget_(histConfig(config_, 1e-3, 1e3)),
      offeredW_(counterConfig(config_)),
      completedW_(counterConfig(config_)),
      burn_(config_.errorBudget, counterConfig(config_))
{
    registry_.setWindows(config_.windows);

    registry_.addCounter("boss_serve_offered_total", &offered_,
                         "queries offered by the load generator");
    registry_.addCounter("boss_serve_admitted_total", &admitted_,
                         "queries admitted past the queue");
    registry_.addCounter("boss_serve_shed_capacity_total",
                         &shedCapacity_,
                         "drop-tail refusals at a full queue");
    registry_.addCounter("boss_serve_shed_deadline_total",
                         &shedDeadline_,
                         "deadline-aware refusals and evictions");
    registry_.addCounter("boss_serve_rejected_closed_total",
                         &rejectedClosed_,
                         "offers refused by a closed queue");
    registry_.addCounter("boss_serve_completed_total", &completed_,
                         "queries executed to completion");
    registry_.addCounter("boss_serve_shed_total", &shed_,
                         "terminal shed outcomes");
    registry_.addCounter("boss_serve_expired_total", &expired_,
                         "queries expired before execution");
    registry_.addCounter("boss_serve_good_total", &good_,
                         "completions within deadline");
    registry_.addCounter("boss_serve_deadline_missed_total",
                         &deadlineMissed_,
                         "completions past their deadline");
    registry_.addCounter(
        "boss_serve_flight_recorded_total", &flightRecorded_,
        "terminal lifecycles offered to the flight recorder");
    registry_.addGauge("boss_serve_queue_depth", &queueDepth_,
                       "admission queue depth at last offer");
    registry_.addFormulaGauge(
        "boss_serve_flight_slow_entries",
        [this] {
            return static_cast<double>(flight_.slowCount());
        },
        "slow-query entries held by the flight recorder");
    registry_.addFormulaGauge(
        "boss_serve_flight_shed_entries",
        [this] {
            return static_cast<double>(flight_.shedCount());
        },
        "shed/expired entries held by the flight recorder");

    registry_.addWindowedHistogram(
        "boss_serve_latency_us", &latencyUs_,
        "completion latency from scheduled arrival (us)");
    registry_.addWindowedHistogram(
        "boss_serve_queue_wait_us", &queueWaitUs_,
        "scheduled arrival to dispatch (us)");
    registry_.addWindowedHistogram(
        "boss_serve_build_us", &buildUs_,
        "host build stage wall time (us)");
    registry_.addWindowedHistogram(
        "boss_serve_finish_us", &finishUs_,
        "replay + merge stage wall time (us)");
    registry_.addWindowedHistogram(
        "boss_serve_slo_budget", &sloBudget_,
        "fraction of the deadline budget consumed per completion");

    double sliceSeconds = config_.sliceUs / 1e6;
    registry_.addWindowedFormula(
        "boss_serve_offered_qps",
        [this, sliceSeconds](double tUs, std::uint64_t slices) {
            return static_cast<double>(
                       offeredW_.total(tUs, slices)) /
                   (sliceSeconds * static_cast<double>(slices));
        },
        "offered load over the window (queries/sec)");
    registry_.addWindowedFormula(
        "boss_serve_completed_qps",
        [this, sliceSeconds](double tUs, std::uint64_t slices) {
            return static_cast<double>(
                       completedW_.total(tUs, slices)) /
                   (sliceSeconds * static_cast<double>(slices));
        },
        "completions over the window (queries/sec)");
    registry_.addWindowedFormula(
        "boss_serve_slo_burn_rate",
        [this](double tUs, std::uint64_t slices) {
            return burn_.rate(tUs, slices);
        },
        "error-budget burn rate over the window (1.0 = budget "
        "consumed exactly at the sustainable rate)");
}

double
ServeTelemetry::nowUs() const
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

void
ServeTelemetry::onOffered(double tUs)
{
    offered_.inc();
    offeredW_.add(tUs);
}

void
ServeTelemetry::onAdmission(double tUs, AdmitOutcome outcome,
                            std::size_t queueDepth)
{
    (void)tUs;
    switch (outcome) {
    case AdmitOutcome::Admitted:
        admitted_.inc();
        break;
    case AdmitOutcome::ShedCapacity:
        shedCapacity_.inc();
        break;
    case AdmitOutcome::ShedDeadline:
        shedDeadline_.inc();
        break;
    case AdmitOutcome::Closed:
        rejectedClosed_.inc();
        break;
    }
    queueDepth_.set(static_cast<double>(queueDepth));
}

void
ServeTelemetry::onAdmit(double tUs, double waitUs)
{
    queueWaitUs_.sample(tUs, waitUs);
}

void
ServeTelemetry::onBuild(double tUs, double buildUs)
{
    buildUs_.sample(tUs, buildUs);
}

void
ServeTelemetry::onFinish(double tUs, double finishUs)
{
    finishUs_.sample(tUs, finishUs);
}

void
ServeTelemetry::onShard(std::size_t shard, double simSeconds)
{
    if (shard >= shards_.size())
        return; // setShardCount not called (or smaller topology)
    shards_[shard]->queries.inc();
    shards_[shard]->busySeconds.add(simSeconds);
}

void
ServeTelemetry::onTerminal(double tUs, const QueryLifecycle &q)
{
    flightRecorded_.inc();
    switch (q.outcome) {
    case QueryLifecycle::Outcome::Done: {
        completed_.inc();
        completedW_.add(tUs);
        double latency = q.latencyUs();
        latencyUs_.sample(tUs, latency);
        bool hasDeadline = q.deadlineUs >= 0.0;
        if (hasDeadline) {
            double budgetSpan = q.deadlineUs - q.arrivalUs;
            if (budgetSpan > 0.0)
                sloBudget_.sample(tUs, latency / budgetSpan);
        }
        if (q.metDeadline) {
            good_.inc();
        } else {
            deadlineMissed_.inc();
        }
        burn_.record(tUs, q.metDeadline);
        break;
    }
    case QueryLifecycle::Outcome::Expired:
        expired_.inc();
        burn_.record(tUs, false);
        break;
    case QueryLifecycle::Outcome::Shed:
        shed_.inc();
        burn_.record(tUs, false);
        break;
    }
    flight_.record(q);
}

void
ServeTelemetry::setShardCount(std::size_t shards)
{
    while (shards_.size() < shards) {
        auto metrics = std::make_unique<ShardMetrics>();
        std::string shardLabel =
            std::to_string(shards_.size());
        registry_.addCounter(
            "boss_serve_shard_queries_total", &metrics->queries,
            "completed query replays per shard",
            {{"shard", shardLabel}});
        registry_.addGauge(
            "boss_serve_shard_busy_seconds",
            &metrics->busySeconds,
            "cumulative simulated device time per shard",
            {{"shard", shardLabel}});
        shards_.push_back(std::move(metrics));
    }
}

void
ServeTelemetry::setBuildInfo(std::vector<Label> labels)
{
    registry_.setBuildInfo(std::move(labels));
}

} // namespace boss::telemetry
