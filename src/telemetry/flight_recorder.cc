#include "telemetry/flight_recorder.h"

#include <algorithm>

#include "trace/chrome_trace.h"
#include "trace/recorder.h"

namespace boss::telemetry
{

namespace
{

/** Min-heap order: the fastest retained query sits at the front. */
bool
slowerFirst(const QueryLifecycle &a, const QueryLifecycle &b)
{
    return a.latencyUs() > b.latencyUs();
}

} // namespace

FlightRecorder::FlightRecorder(std::size_t slowCapacity,
                               std::size_t shedCapacity)
    : slowCapacity_(slowCapacity), shedCapacity_(shedCapacity)
{
    slow_.reserve(slowCapacity_);
}

void
FlightRecorder::record(const QueryLifecycle &q)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++recorded_;
    if (q.outcome == QueryLifecycle::Outcome::Done) {
        if (slowCapacity_ == 0)
            return;
        if (slow_.size() < slowCapacity_) {
            slow_.push_back(q);
            std::push_heap(slow_.begin(), slow_.end(), slowerFirst);
        } else if (q.latencyUs() > slow_.front().latencyUs()) {
            std::pop_heap(slow_.begin(), slow_.end(), slowerFirst);
            slow_.back() = q;
            std::push_heap(slow_.begin(), slow_.end(), slowerFirst);
        }
        return;
    }
    if (shedCapacity_ == 0)
        return;
    if (shed_.size() == shedCapacity_)
        shed_.pop_front();
    shed_.push_back(q);
}

std::uint64_t
FlightRecorder::recorded() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return recorded_;
}

std::size_t
FlightRecorder::slowCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return slow_.size();
}

std::size_t
FlightRecorder::shedCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return shed_.size();
}

double
FlightRecorder::slowThresholdUs() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return slow_.empty() ? 0.0 : slow_.front().latencyUs();
}

std::vector<QueryLifecycle>
FlightRecorder::entries() const
{
    std::vector<QueryLifecycle> out;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        out = slow_;
        std::sort(out.begin(), out.end(),
                  [](const QueryLifecycle &a,
                     const QueryLifecycle &b) {
                      if (a.latencyUs() != b.latencyUs())
                          return a.latencyUs() > b.latencyUs();
                      return a.id < b.id;
                  });
        out.insert(out.end(), shed_.begin(), shed_.end());
    }
    return out;
}

void
FlightRecorder::dumpChromeTrace(std::ostream &os) const
{
    std::vector<QueryLifecycle> snap = entries();
    // A private single-use recorder: one worker buffer (unused —
    // emission is serial), two host-µs lanes mirroring the serve
    // trace layout so flight dumps and full traces line up in the
    // same Perfetto workspace.
    trace::Recorder rec(1);
    std::uint16_t qLane =
        rec.addLane("flight (host us)", "queued",
                    trace::Domain::HostMicros, 200);
    std::uint16_t xLane =
        rec.addLane("flight (host us)", "execution",
                    trace::Domain::HostMicros, 201);
    rec.beginPhase();
    trace::Scope scope = rec.serial();
    for (const QueryLifecycle &q : snap) {
        // Slack at finish (or at the terminal instant), in µs,
        // saturated at 0 — how much deadline budget was left.
        auto slack = [&](double at) -> std::uint64_t {
            if (q.deadlineUs < 0.0 || at < 0.0 ||
                at > q.deadlineUs)
                return 0;
            return static_cast<std::uint64_t>(q.deadlineUs - at);
        };
        switch (q.outcome) {
        case QueryLifecycle::Outcome::Done:
            scope.span(qLane, "queued", q.enqueueUs,
                       q.admitUs - q.enqueueUs, {{"id", q.id}});
            scope.span(xLane, "serve", q.startUs,
                       q.finishUs - q.startUs,
                       {{"id", q.id},
                        {"shards", q.shards},
                        {"met", q.metDeadline ? 1u : 0u},
                        {"latency_us",
                         static_cast<std::uint64_t>(
                             q.latencyUs())},
                        {"slack_us", slack(q.finishUs)}});
            break;
        case QueryLifecycle::Outcome::Expired:
            if (q.enqueueUs >= 0.0 && q.admitUs >= 0.0) {
                scope.span(qLane, "queued", q.enqueueUs,
                           q.admitUs - q.enqueueUs,
                           {{"id", q.id}});
            }
            scope.instant(xLane, "expired",
                          q.admitUs >= 0.0 ? q.admitUs
                                           : q.enqueueUs,
                          {{"id", q.id}});
            break;
        case QueryLifecycle::Outcome::Shed:
            scope.instant(
                qLane, "shed",
                q.enqueueUs >= 0.0 ? q.enqueueUs : q.arrivalUs,
                {{"id", q.id}});
            break;
        }
    }
    trace::writeChromeTrace(os, rec);
}

} // namespace boss::telemetry
