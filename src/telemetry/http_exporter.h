/**
 * @file
 * Minimal built-in HTTP endpoint for live metrics scraping.
 *
 * Serves three read-only routes over HTTP/1.0 (Connection: close):
 *
 *   GET /metrics  Prometheus text exposition of the Registry
 *   GET /flight   flight-recorder dump as Chrome trace JSON
 *   GET /healthz  liveness probe ("ok")
 *
 * One accept thread handles requests serially — a scrape target,
 * not a web server. Binding port 0 picks an ephemeral port
 * (reported by port()), which is what the tests use to avoid
 * fixed-port collisions. The exporter never writes to any metric;
 * it only renders, so it is safe next to any number of sampler
 * threads.
 */

#ifndef BOSS_TELEMETRY_HTTP_EXPORTER_H
#define BOSS_TELEMETRY_HTTP_EXPORTER_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "telemetry/flight_recorder.h"
#include "telemetry/registry.h"

namespace boss::telemetry
{

class HttpExporter
{
  public:
    struct Config
    {
        /** TCP port to bind on 0.0.0.0; 0 = ephemeral. */
        std::uint16_t port = 0;
    };

    /**
     * @param flight optional; /flight returns 404 when null.
     * @param clock  render timestamp source (ServeTelemetry::nowUs).
     */
    HttpExporter(const Registry &registry,
                 const FlightRecorder *flight,
                 std::function<double()> clock, Config config);
    ~HttpExporter();

    /**
     * Bind, listen and start the accept thread. Returns false with
     * @p error filled on bind/listen failure (port in use, no
     * socket support) — callers decide whether that is fatal.
     */
    bool start(std::string *error = nullptr);

    void stop();

    /** The bound port (after start); 0 if not listening. */
    std::uint16_t port() const { return boundPort_; }

    std::uint64_t requestsServed() const
    {
        return requests_.load(std::memory_order_relaxed);
    }

  private:
    void serveLoop();
    void handleConnection(int fd);

    const Registry &registry_;
    const FlightRecorder *flight_;
    std::function<double()> clock_;
    Config config_;

    int listenFd_ = -1;
    std::uint16_t boundPort_ = 0;
    std::thread thread_;
    std::atomic<bool> stop_{false};
    std::atomic<std::uint64_t> requests_{0};
};

} // namespace boss::telemetry

#endif // BOSS_TELEMETRY_HTTP_EXPORTER_H
