/**
 * @file
 * Slow-query flight recorder: bounded in-memory evidence for tail
 * forensics.
 *
 * Always-on tracing of a long-running server is unaffordable (and
 * PR 7 bounds the trace recorder for exactly that reason), but when
 * an operator asks "what did the p999 look like", the interesting
 * queries are long gone. The flight recorder keeps just enough: a
 * bounded set of the *slowest* recently completed queries plus a
 * ring of the most recent shed/expired ones, each with its full
 * lifecycle timestamps and shard fan-out. On demand (HTTP /flight,
 * or --flight-out at exit) the buffer dumps as a Chrome trace
 * through the existing trace:: exporter — p999 forensics at ring-
 * buffer cost instead of always-on-tracing cost.
 */

#ifndef BOSS_TELEMETRY_FLIGHT_RECORDER_H
#define BOSS_TELEMETRY_FLIGHT_RECORDER_H

#include <cstdint>
#include <deque>
#include <mutex>
#include <ostream>
#include <vector>

namespace boss::telemetry
{

/**
 * Terminal lifecycle of one offered query, in the telemetry clock
 * domain (µs since the ServeTelemetry epoch). Negative timestamps
 * mean the query never reached that stage — the same convention as
 * serve::QueryRecord, which this mirrors without depending on the
 * serve layer.
 */
struct QueryLifecycle
{
    enum class Outcome : std::uint8_t
    {
        Done,
        Expired,
        Shed,
    };

    std::uint64_t id = 0;
    std::uint64_t queryIndex = 0;
    Outcome outcome = Outcome::Shed;
    bool metDeadline = false;
    double arrivalUs = 0.0;
    double enqueueUs = -1.0;
    double admitUs = -1.0;
    double startUs = -1.0;
    double buildEndUs = -1.0;
    double finishUs = -1.0;
    double deadlineUs = -1.0; ///< absolute; <0 when no SLO is set
    std::uint32_t shards = 1; ///< fan-out of the executing backend
    std::uint64_t deviceBytes = 0;

    /** Completion latency from scheduled arrival; 0 if not Done. */
    double latencyUs() const
    {
        return outcome == Outcome::Done ? finishUs - arrivalUs
                                        : 0.0;
    }
};

class FlightRecorder
{
  public:
    /**
     * @param slowCapacity  completed queries retained (slowest-N)
     * @param shedCapacity  recent shed/expired queries retained
     */
    explicit FlightRecorder(std::size_t slowCapacity = 64,
                            std::size_t shedCapacity = 64);

    /** Record a terminal lifecycle. Thread-safe. */
    void record(const QueryLifecycle &q);

    /** Total lifecycles ever offered to record(). */
    std::uint64_t recorded() const;
    std::size_t slowCount() const;
    std::size_t shedCount() const;
    /** Smallest latency still retained in the slow set (µs). */
    double slowThresholdUs() const;

    /**
     * Stable copy of the buffer: slow set sorted by descending
     * latency, then shed/expired in arrival order.
     */
    std::vector<QueryLifecycle> entries() const;

    /**
     * Dump the buffer as Chrome trace JSON via the trace::
     * exporter: per-query "queued" and "serve" spans on two host-µs
     * lanes plus shed/expired instants, each annotated with id,
     * shard fan-out and deadline slack.
     */
    void dumpChromeTrace(std::ostream &os) const;

  private:
    const std::size_t slowCapacity_;
    const std::size_t shedCapacity_;

    mutable std::mutex mutex_;
    /** Min-heap by latency (front = fastest = next eviction). */
    std::vector<QueryLifecycle> slow_;
    std::deque<QueryLifecycle> shed_;
    std::uint64_t recorded_ = 0;
};

} // namespace boss::telemetry

#endif // BOSS_TELEMETRY_FLIGHT_RECORDER_H
