/**
 * @file
 * Named metric registry with two renderers: Prometheus text
 * exposition (for the built-in HTTP endpoint) and JSON Lines
 * time-series snapshots (for --metrics-out, tests, and boss_top).
 *
 * Registration is setup-time and single-threaded; rendering reads
 * only atomics (and render-time formulas), so any number of sampler
 * threads may update metrics while the snapshotter and the HTTP
 * exporter render concurrently. The registry never copies metric
 * state — it holds pointers that must outlive it, the same contract
 * as stats::Group.
 *
 * Window model: the registry owns one global window list (e.g. 1s /
 * 10s / 60s). Every windowed histogram and windowed formula is
 * rendered once per window, labeled `window="10s"` in Prometheus
 * and grouped under `"windows": {"10s": {...}}` in JSONL. One list
 * for all metrics keeps the exposition regular and lets boss_top
 * render one line per window.
 */

#ifndef BOSS_TELEMETRY_REGISTRY_H
#define BOSS_TELEMETRY_REGISTRY_H

#include <functional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/metrics.h"

namespace boss::telemetry
{

/** One Prometheus-style key/value label. */
struct Label
{
    std::string key;
    std::string value;
};

/** A named aggregation window, in slices of the metric slice size. */
struct WindowSpec
{
    std::string name; ///< e.g. "10s"; used verbatim as the label
    std::uint64_t slices = 1;
};

class Registry
{
  public:
    /** Windows every windowed metric is rendered over. */
    void setWindows(std::vector<WindowSpec> windows);
    const std::vector<WindowSpec> &windows() const
    {
        return windows_;
    }

    /**
     * Build-identity labels (git hash, compiler, kernel tier).
     * Rendered as a `boss_build_info{...} 1` gauge and as a
     * `"build"` object on every JSONL line, so each scrape and each
     * snapshot is attributable to a binary on its own.
     */
    void setBuildInfo(std::vector<Label> labels);

    void addCounter(std::string name, const Counter *c,
                    std::string help,
                    std::vector<Label> labels = {});
    void addGauge(std::string name, const Gauge *g,
                  std::string help, std::vector<Label> labels = {});
    /** A gauge computed at render time (sizes, derived ratios). */
    void addFormulaGauge(std::string name,
                         std::function<double()> fn,
                         std::string help,
                         std::vector<Label> labels = {});
    void addWindowedHistogram(std::string name,
                              const WindowedHistogram *h,
                              std::string help);
    /**
     * A per-window derived gauge; the callback receives the render
     * timestamp and the window width in slices (burn rates, rates).
     */
    void addWindowedFormula(
        std::string name,
        std::function<double(double tUs, std::uint64_t slices)> fn,
        std::string help);

    /** Prometheus text exposition format 0.0.4. */
    void renderPrometheus(std::ostream &os, double tUs) const;

    /**
     * One self-contained JSON object on a single line (no trailing
     * newline): timestamp, build info, counters, gauges, and the
     * per-window histogram digests. Append one per snapshot period
     * and the file is a JSONL time series.
     */
    void renderJsonLine(std::ostream &os, double tUs) const;

  private:
    struct CounterEntry
    {
        std::string name;
        std::vector<Label> labels;
        const Counter *counter;
        std::string help;
    };
    struct GaugeEntry
    {
        std::string name;
        std::vector<Label> labels;
        const Gauge *gauge = nullptr;
        std::function<double()> formula;
        std::string help;
    };
    struct WindowedEntry
    {
        std::string name;
        const WindowedHistogram *histogram;
        std::string help;
    };
    struct WindowedFormulaEntry
    {
        std::string name;
        std::function<double(double, std::uint64_t)> fn;
        std::string help;
    };

    std::vector<WindowSpec> windows_{{"1s", 1}};
    std::vector<Label> buildInfo_;
    std::vector<CounterEntry> counters_;
    std::vector<GaugeEntry> gauges_;
    std::vector<WindowedEntry> windowed_;
    std::vector<WindowedFormulaEntry> windowedFormulas_;
};

} // namespace boss::telemetry

#endif // BOSS_TELEMETRY_REGISTRY_H
