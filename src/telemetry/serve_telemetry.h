/**
 * @file
 * The serve path's live telemetry bundle: every metric the always-
 * on server updates per query lifecycle transition, pre-registered
 * into one Registry, plus the flight recorder.
 *
 * The serve layer calls the on*() hooks at each transition —
 * offered, admission decision, dispatch, build done, finish done,
 * terminal — with timestamps in this object's clock domain (µs
 * since construction; see nowUs()). Hooks are thread-safe and
 * lock-light: the generator, dispatcher, pool workers and finisher
 * all update concurrently while the snapshotter/HTTP exporter
 * render. Tests drive the hooks with virtual timestamps and get
 * deterministic windows.
 *
 * This header deliberately does not include anything from serve/ —
 * the dependency points the other way (serve links telemetry), so
 * the telemetry layer stays reusable for future backends.
 */

#ifndef BOSS_TELEMETRY_SERVE_TELEMETRY_H
#define BOSS_TELEMETRY_SERVE_TELEMETRY_H

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "telemetry/flight_recorder.h"
#include "telemetry/metrics.h"
#include "telemetry/registry.h"

namespace boss::telemetry
{

/** Admission decision, mirroring serve::Admission by value. */
enum class AdmitOutcome : std::uint8_t
{
    Admitted,
    ShedCapacity,
    ShedDeadline,
    Closed,
};

/**
 * Ingest-side metrics for mixed read/write serving: monotonic
 * counters mirroring index::segments::IngestCounters plus gauges of
 * the current segment topology. The ingest loop polls the live
 * index's counters and applies deltas here (the telemetry layer
 * stays free of index/ includes, matching this file's dependency
 * rule), so the /metrics surface gains an ingest section without
 * the serve hooks changing shape.
 */
class IngestMetrics
{
  public:
    /** Register every metric into @p registry (setup-time only). */
    void registerInto(Registry &registry);

    Counter docsAppended;
    Counter docsDeleted;
    Counter segmentsBaked;
    Counter merges;
    Counter refreshes;
    Gauge liveDocs;
    Gauge segments;
    Gauge epoch;
    Gauge bufferedDocs;
};

/**
 * DRAM block-cache tier metrics (the out-of-core serving path).
 * Monotonic counters; the serve layer polls the device's cache and
 * traffic counters and applies deltas here, keeping this layer free
 * of mem/ includes like IngestMetrics does for index/. Invariant at
 * quiescent points: hits + misses == fetches (metrics_check.py
 * verifies it on every scraped snapshot).
 */
class CacheMetrics
{
  public:
    /** Register every metric into @p registry (setup-time only). */
    void registerInto(Registry &registry);

    Counter fetches;
    Counter hits;
    Counter misses;
    Counter evictions;
    Counter dramBytes;
    Counter scmBytes;
};

class ServeTelemetry
{
  public:
    struct Config
    {
        /** Window slice width; windows are multiples of this. */
        double sliceUs = 1e6;
        std::vector<WindowSpec> windows = {
            {"1s", 1}, {"10s", 10}, {"60s", 60}};
        /**
         * SLO error budget: the tolerated bad-event fraction. The
         * default 0.01 encodes a 99% deadline-met objective; the
         * burn-rate gauges read 1.0 when misses+sheds consume the
         * budget exactly at the sustainable rate.
         */
        double errorBudget = 0.01;
        std::size_t flightSlowCapacity = 64;
        std::size_t flightShedCapacity = 64;
    };

    ServeTelemetry(); ///< default Config
    explicit ServeTelemetry(Config config);

    /** µs since this object was constructed (the metric epoch). */
    double nowUs() const;

    // ---- lifecycle hooks (thread-safe) ----
    void onOffered(double tUs);
    void onAdmission(double tUs, AdmitOutcome outcome,
                     std::size_t queueDepth);
    /** Admitted query reached the dispatcher after @p waitUs. */
    void onAdmit(double tUs, double waitUs);
    /** One host build stage completed (pool worker). */
    void onBuild(double tUs, double buildUs);
    /** One replay+merge stage completed (finisher). */
    void onFinish(double tUs, double finishUs);
    /** Per-shard replay accounting for one completed query. */
    void onShard(std::size_t shard, double simSeconds);
    /**
     * Terminal record for one offered query; updates the outcome
     * counters, the latency/SLO windows and the flight recorder.
     * Exactly one terminal call per offered query reconciles
     * offered == completed + shed + expired at all quiescent
     * points.
     */
    void onTerminal(double tUs, const QueryLifecycle &q);

    /**
     * Pre-size the per-shard breakdown (registers labeled
     * counters). Call before the snapshotter/HTTP exporter starts;
     * registration is not thread-safe against rendering.
     */
    void setShardCount(std::size_t shards);

    /** Stamp build-identity labels into the exposition. */
    void setBuildInfo(std::vector<Label> labels);

    Registry &registry() { return registry_; }
    const Registry &registry() const { return registry_; }
    FlightRecorder &flight() { return flight_; }
    const FlightRecorder &flight() const { return flight_; }
    const Config &config() const { return config_; }

    // Raw counters, for end-of-run reconciliation checks.
    std::uint64_t offered() const { return offered_.value(); }
    std::uint64_t completed() const { return completed_.value(); }
    std::uint64_t shed() const { return shed_.value(); }
    std::uint64_t expired() const { return expired_.value(); }
    std::uint64_t good() const { return good_.value(); }

  private:
    struct ShardMetrics
    {
        Counter queries;
        Gauge busySeconds;
    };

    Config config_;
    std::chrono::steady_clock::time_point epoch_;
    Registry registry_;
    FlightRecorder flight_;

    // Terminal accounting (exact).
    Counter offered_;
    Counter admitted_;
    Counter shedCapacity_;
    Counter shedDeadline_;
    Counter rejectedClosed_;
    Counter completed_;
    Counter shed_;
    Counter expired_;
    Counter good_;
    Counter deadlineMissed_;
    Counter flightRecorded_;
    Gauge queueDepth_;

    // Sliding windows (approximate, decaying).
    WindowedHistogram latencyUs_;
    WindowedHistogram queueWaitUs_;
    WindowedHistogram buildUs_;
    WindowedHistogram finishUs_;
    /** Fraction of the deadline budget each completion consumed. */
    WindowedHistogram sloBudget_;
    WindowedCounter offeredW_;
    WindowedCounter completedW_;
    BurnRate burn_;

    std::vector<std::unique_ptr<ShardMetrics>> shards_;
};

} // namespace boss::telemetry

#endif // BOSS_TELEMETRY_SERVE_TELEMETRY_H
