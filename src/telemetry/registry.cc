#include "telemetry/registry.h"

#include <cmath>
#include <cstdio>

#include "trace/json.h"

namespace boss::telemetry
{

namespace
{

/** %.17g like stats::dumpJson; NaN/inf become 0 (metrics, not math). */
void
writeNum(std::ostream &os, double v)
{
    if (!std::isfinite(v))
        v = 0.0;
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os << buf;
}

void
writePromLabels(std::ostream &os, const std::vector<Label> &labels,
                const char *extraKey = nullptr,
                const std::string &extraValue = {})
{
    if (labels.empty() && extraKey == nullptr)
        return;
    os << '{';
    bool first = true;
    for (const Label &l : labels) {
        if (!first)
            os << ',';
        first = false;
        os << l.key << "=\"" << l.value << '"';
    }
    if (extraKey != nullptr) {
        if (!first)
            os << ',';
        os << extraKey << "=\"" << extraValue << '"';
    }
    os << '}';
}

void
writePromHeader(std::ostream &os, const std::string &name,
                const std::string &help, const char *type)
{
    if (!help.empty())
        os << "# HELP " << name << ' ' << help << '\n';
    os << "# TYPE " << name << ' ' << type << '\n';
}

/** JSONL counter/gauge keys: name plus {k="v"} when labeled. */
std::string
labeledKey(const std::string &name,
           const std::vector<Label> &labels)
{
    if (labels.empty())
        return name;
    std::string key = name + '{';
    for (std::size_t i = 0; i < labels.size(); ++i) {
        if (i != 0)
            key += ',';
        key += labels[i].key + "=\"" + labels[i].value + '"';
    }
    key += '}';
    return key;
}

} // namespace

void
Registry::setWindows(std::vector<WindowSpec> windows)
{
    windows_ = std::move(windows);
}

void
Registry::setBuildInfo(std::vector<Label> labels)
{
    buildInfo_ = std::move(labels);
}

void
Registry::addCounter(std::string name, const Counter *c,
                     std::string help, std::vector<Label> labels)
{
    counters_.push_back(CounterEntry{std::move(name),
                                     std::move(labels), c,
                                     std::move(help)});
}

void
Registry::addGauge(std::string name, const Gauge *g,
                   std::string help, std::vector<Label> labels)
{
    GaugeEntry e;
    e.name = std::move(name);
    e.labels = std::move(labels);
    e.gauge = g;
    e.help = std::move(help);
    gauges_.push_back(std::move(e));
}

void
Registry::addFormulaGauge(std::string name,
                          std::function<double()> fn,
                          std::string help,
                          std::vector<Label> labels)
{
    GaugeEntry e;
    e.name = std::move(name);
    e.labels = std::move(labels);
    e.formula = std::move(fn);
    e.help = std::move(help);
    gauges_.push_back(std::move(e));
}

void
Registry::addWindowedHistogram(std::string name,
                               const WindowedHistogram *h,
                               std::string help)
{
    windowed_.push_back(
        WindowedEntry{std::move(name), h, std::move(help)});
}

void
Registry::addWindowedFormula(
    std::string name,
    std::function<double(double, std::uint64_t)> fn,
    std::string help)
{
    windowedFormulas_.push_back(WindowedFormulaEntry{
        std::move(name), std::move(fn), std::move(help)});
}

void
Registry::renderPrometheus(std::ostream &os, double tUs) const
{
    if (!buildInfo_.empty()) {
        writePromHeader(os, "boss_build_info",
                        "build identity of the serving binary",
                        "gauge");
        os << "boss_build_info";
        writePromLabels(os, buildInfo_);
        os << " 1\n";
    }
    // Distinct metric names share one TYPE header; consecutive
    // entries with the same name are label variants (per-shard).
    for (std::size_t i = 0; i < counters_.size(); ++i) {
        const CounterEntry &e = counters_[i];
        if (i == 0 || counters_[i - 1].name != e.name)
            writePromHeader(os, e.name, e.help, "counter");
        os << e.name;
        writePromLabels(os, e.labels);
        os << ' ' << e.counter->value() << '\n';
    }
    for (std::size_t i = 0; i < gauges_.size(); ++i) {
        const GaugeEntry &e = gauges_[i];
        if (i == 0 || gauges_[i - 1].name != e.name)
            writePromHeader(os, e.name, e.help, "gauge");
        os << e.name;
        writePromLabels(os, e.labels);
        os << ' ';
        writeNum(os, e.gauge != nullptr ? e.gauge->value()
                                        : e.formula());
        os << '\n';
    }
    static constexpr struct
    {
        double q;
        const char *name;
    } kQuantiles[] = {{0.50, "0.5"}, {0.99, "0.99"},
                      {0.999, "0.999"}};
    for (const WindowedEntry &e : windowed_) {
        writePromHeader(os, e.name, e.help, "gauge");
        for (const WindowSpec &w : windows_) {
            auto snap = e.histogram->snapshot(tUs, w.slices);
            for (const auto &[q, qname] : kQuantiles) {
                os << e.name << "{window=\"" << w.name
                   << "\",quantile=\"" << qname << "\"} ";
                writeNum(os, snap.percentile(q));
                os << '\n';
            }
            os << e.name << "_count{window=\"" << w.name << "\"} "
               << snap.count << '\n';
            os << e.name << "_mean{window=\"" << w.name << "\"} ";
            writeNum(os, snap.mean());
            os << '\n';
        }
    }
    for (const WindowedFormulaEntry &e : windowedFormulas_) {
        writePromHeader(os, e.name, e.help, "gauge");
        for (const WindowSpec &w : windows_) {
            os << e.name << "{window=\"" << w.name << "\"} ";
            writeNum(os, e.fn(tUs, w.slices));
            os << '\n';
        }
    }
}

void
Registry::renderJsonLine(std::ostream &os, double tUs) const
{
    namespace json = boss::trace::json;
    os << "{\"t_us\": ";
    writeNum(os, tUs);
    os << ", \"build\": {";
    for (std::size_t i = 0; i < buildInfo_.size(); ++i) {
        if (i != 0)
            os << ", ";
        json::writeString(os, buildInfo_[i].key);
        os << ": ";
        json::writeString(os, buildInfo_[i].value);
    }
    os << "}, \"counters\": {";
    for (std::size_t i = 0; i < counters_.size(); ++i) {
        if (i != 0)
            os << ", ";
        json::writeString(
            os, labeledKey(counters_[i].name, counters_[i].labels));
        os << ": " << counters_[i].counter->value();
    }
    os << "}, \"gauges\": {";
    for (std::size_t i = 0; i < gauges_.size(); ++i) {
        if (i != 0)
            os << ", ";
        json::writeString(
            os, labeledKey(gauges_[i].name, gauges_[i].labels));
        os << ": ";
        writeNum(os, gauges_[i].gauge != nullptr
                         ? gauges_[i].gauge->value()
                         : gauges_[i].formula());
    }
    os << "}, \"windows\": {";
    for (std::size_t wi = 0; wi < windows_.size(); ++wi) {
        const WindowSpec &w = windows_[wi];
        if (wi != 0)
            os << ", ";
        json::writeString(os, w.name);
        os << ": {";
        bool first = true;
        for (const WindowedEntry &e : windowed_) {
            if (!first)
                os << ", ";
            first = false;
            auto snap = e.histogram->snapshot(tUs, w.slices);
            json::writeString(os, e.name);
            os << ": {\"count\": " << snap.count << ", \"mean\": ";
            writeNum(os, snap.mean());
            os << ", \"p50\": ";
            writeNum(os, snap.percentile(0.50));
            os << ", \"p99\": ";
            writeNum(os, snap.percentile(0.99));
            os << ", \"p999\": ";
            writeNum(os, snap.percentile(0.999));
            os << '}';
        }
        for (const WindowedFormulaEntry &e : windowedFormulas_) {
            if (!first)
                os << ", ";
            first = false;
            json::writeString(os, e.name);
            os << ": ";
            writeNum(os, e.fn(tUs, w.slices));
        }
        os << '}';
    }
    os << "}}";
}

} // namespace boss::telemetry
