/**
 * @file
 * Okapi BM25 ranking (paper Sec. II-B).
 *
 * BOSS precomputes every sub-expression of BM25 except the term
 * frequency at indexing time (paper Sec. IV-C, "Scoring Module"):
 * per document a 4-byte "norm" k1*(1 - b + b*|D|/avgdl), and per term
 * the IDF. At query time a term score needs one division, one
 * multiplication and one addition:
 *
 *   termScore = idf * tf * (k1 + 1) / (tf + norm)
 */

#ifndef BOSS_INDEX_BM25_H
#define BOSS_INDEX_BM25_H

#include <cmath>
#include <cstdint>

#include "common/fixed_point.h"
#include "common/types.h"

namespace boss::index
{

/** BM25 free parameters (paper: k1 in [1.2, 2.0], b = 0.75). */
struct Bm25Params
{
    double k1 = 1.2;
    double b = 0.75;
};

/**
 * BM25 scoring helper bound to a document corpus's global stats.
 */
class Bm25
{
  public:
    Bm25(Bm25Params params, std::uint32_t numDocs, double avgDocLen)
        : params_(params), numDocs_(numDocs), avgDocLen_(avgDocLen)
    {}

    /** Inverse document frequency of a term appearing in @p df docs. */
    double
    idf(std::uint32_t df) const
    {
        double n = static_cast<double>(numDocs_);
        double d = static_cast<double>(df);
        return std::log((n - d + 0.5) / (d + 0.5) + 1.0);
    }

    /** Per-document precomputed norm (stored as 4B metadata). */
    float
    docNorm(std::uint32_t docLen) const
    {
        return static_cast<float>(
            params_.k1 *
            (1.0 - params_.b +
             params_.b * static_cast<double>(docLen) / avgDocLen_));
    }

    /** Exact (float) term score given precomputed idf and norm. */
    Score
    termScore(double idf, TermFreq tf, float norm) const
    {
        double f = static_cast<double>(tf);
        return static_cast<Score>(idf * f * (params_.k1 + 1.0) /
                                  (f + static_cast<double>(norm)));
    }

    /**
     * The hardware scoring module's fixed-point version: one Q16.16
     * divide after folding idf*(k1+1) into the dividend at index
     * time, mirroring the three-arithmetic-op pipeline.
     */
    Fixed
    termScoreFixed(double idf, TermFreq tf, float norm) const
    {
        Fixed num = Fixed::fromDouble(idf * static_cast<double>(tf) *
                                      (params_.k1 + 1.0));
        Fixed den = Fixed::fromDouble(static_cast<double>(tf) +
                                      static_cast<double>(norm));
        return num / den;
    }

    const Bm25Params &params() const { return params_; }
    std::uint32_t numDocs() const { return numDocs_; }
    double avgDocLen() const { return avgDocLen_; }

  private:
    Bm25Params params_;
    std::uint32_t numDocs_;
    double avgDocLen_;
};

} // namespace boss::index

#endif // BOSS_INDEX_BM25_H
