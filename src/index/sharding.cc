#include "index/sharding.h"

#include <algorithm>
#include <numeric>
#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "index/block_decoder.h"

namespace boss::index
{

ShardMap::ShardMap(std::uint32_t numDocs, std::uint32_t numShards)
{
    BOSS_ASSERT(numShards > 0, "ShardMap needs at least one shard");
    bases_.resize(numShards + 1);
    for (std::uint32_t i = 0; i <= numShards; ++i) {
        // Balanced contiguous ranges: shard sizes differ by at most
        // one document and the layout depends only on (docs, shards).
        bases_[i] = static_cast<std::uint32_t>(
            (static_cast<std::uint64_t>(numDocs) * i) / numShards);
    }
}

std::uint32_t
ShardMap::shardOf(DocId doc) const
{
    BOSS_ASSERT(doc < numDocs(), "docID ", doc, " outside corpus");
    auto it = std::upper_bound(bases_.begin(), bases_.end(), doc);
    return static_cast<std::uint32_t>(it - bases_.begin()) - 1;
}

ShardedIndexBuilder::ShardedIndexBuilder(std::uint32_t numShards,
                                         Bm25Params params)
    : numShards_(numShards), params_(params)
{
    BOSS_ASSERT(numShards_ > 0, "need at least one shard");
}

void
ShardedIndexBuilder::setDocLengths(std::vector<std::uint32_t> lengths)
{
    docLengths_ = std::move(lengths);
}

void
ShardedIndexBuilder::addTerm(TermId term, PostingList postings)
{
    BOSS_ASSERT(isValidPostingList(postings),
                "term ", term, ": postings not sorted/unique");
    pending_.emplace_back(term, std::move(postings));
}

IndexShards
ShardedIndexBuilder::build()
{
    BOSS_ASSERT(!docLengths_.empty(), "setDocLengths() before build()");
    BOSS_ASSERT(numShards_ <= docLengths_.size(),
                "more shards (", numShards_, ") than documents (",
                docLengths_.size(), ")");

    const auto numDocs = static_cast<std::uint32_t>(docLengths_.size());
    double avgLen =
        std::accumulate(docLengths_.begin(), docLengths_.end(), 0.0) /
        static_cast<double>(numDocs);

    IndexShards out;
    out.map = ShardMap(numDocs, numShards_);

    // Stage the per-shard builders serially: split every global list
    // at the partition fence posts and rebase docIDs. Every shard
    // receives every term (empty slices included) so the per-shard
    // list vectors line up by TermId across shards.
    std::vector<IndexBuilder> builders;
    builders.reserve(numShards_);
    for (std::uint32_t s = 0; s < numShards_; ++s) {
        builders.emplace_back(params_);
        IndexBuilder &b = builders.back();
        if (forced_)
            b.forceScheme(*forced_);
        b.setGlobalStats(numDocs, avgLen);
        b.setDocLengths({docLengths_.begin() + out.map.docBase(s),
                         docLengths_.begin() + out.map.docBase(s) +
                             out.map.docCount(s)});
    }

    for (auto &[term, postings] : pending_) {
        const auto globalDf =
            static_cast<std::uint32_t>(postings.size());
        auto cut = postings.begin();
        for (std::uint32_t s = 0; s < numShards_; ++s) {
            const DocId end =
                out.map.docBase(s) + out.map.docCount(s);
            auto next = std::lower_bound(
                cut, postings.end(), end,
                [](const Posting &p, DocId d) { return p.doc < d; });
            PostingList local(cut, next);
            for (Posting &p : local)
                p.doc = out.map.toLocal(s, p.doc);
            builders[s].addTerm(term, std::move(local), globalDf);
            cut = next;
        }
    }
    pending_.clear();

    // Shard builds share nothing (global stats are fixed above), so
    // fan out on the pool; slot placement keeps the output identical
    // to a serial loop regardless of worker count or schedule.
    std::vector<std::optional<InvertedIndex>> built(numShards_);
    common::ThreadPool::global().parallelFor(
        numShards_,
        [&](std::size_t s) { built[s] = builders[s].build(); });

    out.shards.reserve(numShards_);
    for (auto &idx : built)
        out.shards.push_back(std::move(*idx));
    return out;
}

IndexShards
shardIndex(const InvertedIndex &global, std::uint32_t numShards)
{
    ShardedIndexBuilder builder(numShards, global.scorer().params());

    std::vector<std::uint32_t> lengths(global.numDocs());
    for (std::uint32_t d = 0; d < global.numDocs(); ++d)
        lengths[d] = global.doc(d).length;
    builder.setDocLengths(std::move(lengths));

    for (TermId t = 0; t < global.numTerms(); ++t) {
        const CompressedPostingList &list = global.list(t);
        // A default-constructed slot (term not stamped) is an
        // unmaterialized placeholder the builder never saw; re-adding
        // it would stamp the term field and diverge from a direct
        // shard build of the same addTerm() calls.
        if (list.docCount == 0 && list.term != t)
            continue;
        builder.addTerm(t, list.docCount == 0 ? PostingList{}
                                              : decodeAll(list));
    }
    return builder.build();
}

} // namespace boss::index
