/**
 * @file
 * Term lexicon: the string <-> TermId dictionary that sits in front
 * of the inverted index. The paper's evaluation works on pre-built
 * indexes (terms are already ids); the lexicon is what a production
 * deployment needs to accept textual queries.
 */

#ifndef BOSS_INDEX_LEXICON_H
#define BOSS_INDEX_LEXICON_H

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace boss::index
{

class Lexicon
{
  public:
    Lexicon() = default;

    /** Id of @p term, inserting it if new. */
    TermId addTerm(std::string_view term);

    /** Id of @p term, or nullopt if unknown. */
    std::optional<TermId> lookup(std::string_view term) const;

    /** The string for an id (must be < size()). */
    const std::string &term(TermId id) const;

    std::uint32_t
    size() const
    {
        return static_cast<std::uint32_t>(terms_.size());
    }

    /** Binary (de)serialization (appended to index files). */
    void save(std::ostream &os) const;
    static Lexicon load(std::istream &is);

  private:
    std::vector<std::string> terms_;
    std::unordered_map<std::string, TermId> ids_;
};

} // namespace boss::index

#endif // BOSS_INDEX_LEXICON_H
