#include "index/text_builder.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "index/serialize.h"

namespace boss::index
{

namespace
{

const std::unordered_set<std::string> &
stopwords()
{
    static const std::unordered_set<std::string> words = {
        "a",    "an",   "and",  "are",  "as",   "at",   "be",
        "but",  "by",   "for",  "from", "had",  "has",  "have",
        "he",   "her",  "his",  "if",   "in",   "is",   "it",
        "its",  "not",  "of",   "on",   "or",   "she",  "that",
        "the",  "their", "then", "there", "they", "this", "to",
        "was",  "were", "which", "will", "with", "you",
    };
    return words;
}

} // namespace

std::vector<std::string>
tokenize(std::string_view text, const TokenizerConfig &config)
{
    std::vector<std::string> tokens;
    std::string current;
    auto flush = [&]() {
        if (current.size() >= config.minLength &&
            current.size() <= config.maxLength &&
            (!config.dropStopwords ||
             stopwords().count(current) == 0)) {
            tokens.push_back(current);
        }
        current.clear();
    };
    for (char c : text) {
        if (std::isalnum(static_cast<unsigned char>(c))) {
            current += static_cast<char>(
                std::tolower(static_cast<unsigned char>(c)));
        } else {
            flush();
        }
    }
    flush();
    return tokens;
}

DocId
TextIndexBuilder::addDocument(std::string_view text)
{
    DocId doc = static_cast<DocId>(docLengths_.size());
    auto tokens = tokenize(text, config_);

    std::unordered_map<TermId, TermFreq> counts;
    for (const auto &tok : tokens)
        ++counts[lexicon_.addTerm(tok)];

    docLengths_.push_back(
        std::max<std::uint32_t>(1, static_cast<std::uint32_t>(
                                       tokens.size())));
    for (const auto &[term, tf] : counts)
        postings_[term].push_back({doc, tf});
    return doc;
}

TextIndex
TextIndexBuilder::build()
{
    BOSS_ASSERT(!docLengths_.empty(),
                "build() before any addDocument()");
    IndexBuilder builder(params_);
    builder.setDocLengths(std::move(docLengths_));
    for (auto &[term, list] : postings_) {
        // Insertion order is docID order already (docs are dense and
        // ascending), so lists are valid as-is.
        builder.addTerm(term, std::move(list));
    }
    postings_.clear();
    return TextIndex{builder.build(), std::move(lexicon_)};
}

void
saveTextIndexFile(const TextIndex &ti, const std::string &path)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        BOSS_FATAL("cannot open '", path, "' for writing");
    saveIndex(ti.index, os);
    ti.lexicon.save(os);
}

TextIndex
loadTextIndexFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        BOSS_FATAL("cannot open '", path, "' for reading");
    InvertedIndex index = loadIndex(is);
    Lexicon lexicon = Lexicon::load(is);
    return TextIndex{std::move(index), std::move(lexicon)};
}

} // namespace boss::index
