#include "index/serialize.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/logging.h"

namespace boss::index
{

namespace
{

constexpr std::uint32_t kMagic = 0xB0555EED;
constexpr std::uint32_t kVersion = 1;

template <typename T>
void
writePod(std::ostream &os, const T &v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(T));
}

template <typename T>
T
readPod(std::istream &is)
{
    T v{};
    is.read(reinterpret_cast<char *>(&v), sizeof(T));
    if (!is)
        BOSS_FATAL("index file truncated");
    return v;
}

template <typename T>
void
writeVec(std::ostream &os, const std::vector<T> &v)
{
    writePod<std::uint64_t>(os, v.size());
    os.write(reinterpret_cast<const char *>(v.data()),
             static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
std::vector<T>
readVec(std::istream &is)
{
    auto n = readPod<std::uint64_t>(is);
    std::vector<T> v(n);
    is.read(reinterpret_cast<char *>(v.data()),
            static_cast<std::streamsize>(n * sizeof(T)));
    if (!is)
        BOSS_FATAL("index file truncated");
    return v;
}

} // namespace

void
saveIndex(const InvertedIndex &index, std::ostream &os)
{
    writePod(os, kMagic);
    writePod(os, kVersion);
    writePod(os, index.scorer().params().k1);
    writePod(os, index.scorer().params().b);
    writePod(os, index.avgDocLen());
    writeVec(os, index.docs());

    writePod<std::uint32_t>(os, index.numTerms());
    for (TermId t = 0; t < index.numTerms(); ++t) {
        const CompressedPostingList &list = index.list(t);
        writePod(os, list.term);
        writePod(os, static_cast<std::uint8_t>(list.scheme));
        writePod(os, list.docCount);
        writePod(os, list.idf);
        writePod(os, list.maxTermScore);
        writeVec(os, list.blocks);
        writeVec(os, list.docPayload);
        writeVec(os, list.tfPayload);
    }
}

InvertedIndex
loadIndex(std::istream &is)
{
    if (readPod<std::uint32_t>(is) != kMagic)
        BOSS_FATAL("not a BOSS index file (bad magic)");
    if (readPod<std::uint32_t>(is) != kVersion)
        BOSS_FATAL("unsupported index file version");

    Bm25Params params;
    params.k1 = readPod<double>(is);
    params.b = readPod<double>(is);
    auto avgDocLen = readPod<double>(is);
    auto docs = readVec<DocInfo>(is);

    auto numTerms = readPod<std::uint32_t>(is);
    std::vector<CompressedPostingList> lists(numTerms);
    for (std::uint32_t t = 0; t < numTerms; ++t) {
        CompressedPostingList &list = lists[t];
        list.term = readPod<TermId>(is);
        list.scheme =
            static_cast<compress::Scheme>(readPod<std::uint8_t>(is));
        list.docCount = readPod<std::uint32_t>(is);
        list.idf = readPod<float>(is);
        list.maxTermScore = readPod<float>(is);
        list.blocks = readVec<BlockMeta>(is);
        list.docPayload = readVec<std::uint8_t>(is);
        list.tfPayload = readVec<std::uint8_t>(is);
    }
    return InvertedIndex(params, std::move(docs), avgDocLen,
                         std::move(lists));
}

void
saveIndexFile(const InvertedIndex &index, const std::string &path)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        BOSS_FATAL("cannot open '", path, "' for writing");
    saveIndex(index, os);
}

InvertedIndex
loadIndexFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        BOSS_FATAL("cannot open '", path, "' for reading");
    return loadIndex(is);
}

} // namespace boss::index
