#include "index/serialize.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <utility>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/crc32.h"
#include "common/logging.h"

namespace boss::index
{

namespace
{

constexpr std::uint32_t kMagic = 0xB0555EED;
constexpr std::uint32_t kVersion = 2; // v2: header CRC + payload CRCs
                                      // in BlockMeta + trailing file CRC

/**
 * Internal control flow for the load path: helpers throw LoadError,
 * the public entry points translate it to either fatal() (loadIndex,
 * the CLI-facing API) or std::nullopt (tryLoadIndex, used by the
 * corruption test sweep, which flips thousands of bytes in-process).
 */
struct LoadError
{
    std::string message;
};

[[noreturn]] void
loadFail(std::string message)
{
    throw LoadError{std::move(message)};
}

/**
 * Output stream wrapper accumulating a CRC32 over every byte
 * written, so the file checksum streams with the data (no second
 * pass, no buffering of the whole index).
 */
class CrcWriter
{
  public:
    explicit CrcWriter(std::ostream &os) : os_(os) {}

    void
    write(const void *src, std::size_t n)
    {
        os_.write(static_cast<const char *>(src),
                  static_cast<std::streamsize>(n));
        crc_.update(src, n);
    }

    /** Emit a value outside the checksum (the checksum itself). */
    template <typename T>
    void
    writeRaw(const T &v)
    {
        os_.write(reinterpret_cast<const char *>(&v), sizeof(T));
    }

    std::uint32_t crc() const { return crc_.value(); }

  private:
    std::ostream &os_;
    Crc32 crc_;
};

/**
 * Input stream wrapper that (a) accumulates the same CRC32 the
 * writer produced, (b) enforces a byte budget so a corrupted length
 * field can never drive an allocation or read beyond the file.
 */
class CrcReader
{
  public:
    explicit CrcReader(std::istream &is) : is_(is)
    {
        // Discover how many bytes remain; unseekable streams fall
        // back to a generous cap that still stops absurd lengths.
        constexpr std::uint64_t kFallbackBudget =
            std::uint64_t{1} << 40; // 1 TiB
        remaining_ = kFallbackBudget;
        auto cur = is_.tellg();
        if (cur != std::istream::pos_type(-1)) {
            is_.seekg(0, std::ios::end);
            auto end = is_.tellg();
            is_.seekg(cur);
            if (end != std::istream::pos_type(-1) && end >= cur)
                remaining_ = static_cast<std::uint64_t>(end - cur);
        }
    }

    void
    read(void *dst, std::size_t n)
    {
        if (n > remaining_)
            loadFail("index file truncated");
        is_.read(static_cast<char *>(dst),
                 static_cast<std::streamsize>(n));
        if (!is_)
            loadFail("index file truncated");
        remaining_ -= n;
        crc_.update(dst, n);
    }

    /** Read a value without folding it into the checksum. */
    template <typename T>
    T
    readRaw()
    {
        T v{};
        if (sizeof(T) > remaining_)
            loadFail("index file truncated");
        is_.read(reinterpret_cast<char *>(&v), sizeof(T));
        if (!is_)
            loadFail("index file truncated");
        remaining_ -= sizeof(T);
        return v;
    }

    /** Bytes left before the budget is exhausted. */
    std::uint64_t remaining() const { return remaining_; }

    std::uint32_t crc() const { return crc_.value(); }

  private:
    std::istream &is_;
    Crc32 crc_;
    std::uint64_t remaining_ = 0;
};

template <typename T>
void
writePod(CrcWriter &w, const T &v)
{
    w.write(&v, sizeof(T));
}

template <typename T>
T
readPod(CrcReader &r)
{
    T v{};
    r.read(&v, sizeof(T));
    return v;
}

template <typename T, typename Alloc>
void
writeVec(CrcWriter &w, const std::vector<T, Alloc> &v)
{
    writePod<std::uint64_t>(w, v.size());
    w.write(v.data(), v.size() * sizeof(T));
}

void
writeVec(CrcWriter &w, const PayloadBytes &v)
{
    writePod<std::uint64_t>(w, v.size());
    w.write(v.data(), v.size());
}

/** One list's on-disk record (shared by saveIndex and the writer). */
void
writeListBody(CrcWriter &w, const CompressedPostingList &list)
{
    writePod(w, list.term);
    writePod(w, static_cast<std::uint8_t>(list.scheme));
    writePod(w, list.docCount);
    writePod(w, list.idf);
    writePod(w, list.maxTermScore);
    writeVec(w, list.blocks);
    writeVec(w, list.docPayload);
    writeVec(w, list.tfPayload);
}

template <typename T, typename Alloc = std::allocator<T>>
std::vector<T, Alloc>
readVec(CrcReader &r, const char *what)
{
    auto n = readPod<std::uint64_t>(r);
    // Validate before allocating: a flipped length field must fail
    // here, not inside the allocator or a wild read.
    if (n > r.remaining() / sizeof(T))
        loadFail(detail::concat("index file truncated (", what,
                                " length ", n,
                                " exceeds remaining file size)"));
    std::vector<T, Alloc> v(static_cast<std::size_t>(n));
    r.read(v.data(), v.size() * sizeof(T));
    return v;
}

/**
 * Structural validation of one decoded list: every offset/count the
 * engine will later trust must be internally consistent, so a
 * corrupted-but-CRC-bypassing file can never drive out-of-bounds
 * payload slicing.
 */
void
validateList(const CompressedPostingList &list, std::uint32_t t)
{
    auto fail = [&](auto &&...args) {
        loadFail(detail::concat("index file corrupt: list ", t, ": ",
                                std::forward<decltype(args)>(args)...));
    };
    if (static_cast<std::uint8_t>(list.scheme) >=
        compress::kNumSchemes)
        fail("unknown compression scheme ",
             static_cast<unsigned>(list.scheme));
    std::uint64_t elems = 0;
    DocId prevLast = 0;
    for (std::uint32_t b = 0; b < list.numBlocks(); ++b) {
        const BlockMeta &m = list.blocks[b];
        if (m.numElems == 0 || m.numElems > kBlockSize)
            fail("block ", b, ": bad element count ",
                 static_cast<unsigned>(m.numElems));
        if (m.firstDoc > m.lastDoc)
            fail("block ", b, ": firstDoc > lastDoc");
        if (b > 0 && m.firstDoc <= prevLast)
            fail("block ", b, ": docID range overlaps prior block");
        prevLast = m.lastDoc;
        if (m.firstIndex != elems)
            fail("block ", b, ": bad firstIndex");
        elems += m.numElems;
        if (m.docBytes > list.docPayload.size() ||
            m.docOffset > list.docPayload.size() - m.docBytes)
            fail("block ", b, ": doc payload out of bounds");
        if (m.tfBytes > list.tfPayload.size() ||
            m.tfOffset > list.tfPayload.size() - m.tfBytes)
            fail("block ", b, ": tf payload out of bounds");
    }
    if (elems != list.docCount)
        fail("block element counts do not sum to docCount");
}

InvertedIndex
loadIndexImpl(std::istream &is)
{
    CrcReader r(is);
    if (readPod<std::uint32_t>(r) != kMagic)
        loadFail("not a BOSS index file (bad magic)");
    if (readPod<std::uint32_t>(r) != kVersion)
        loadFail("unsupported index file version");

    Bm25Params params;
    Crc32 headerCrc;
    params.k1 = readPod<double>(r);
    params.b = readPod<double>(r);
    auto avgDocLen = readPod<double>(r);
    headerCrc.update(&params.k1, sizeof(params.k1));
    headerCrc.update(&params.b, sizeof(params.b));
    headerCrc.update(&avgDocLen, sizeof(avgDocLen));
    if (readPod<std::uint32_t>(r) != headerCrc.value())
        loadFail("index file corrupt: header checksum mismatch");

    auto docs = readVec<DocInfo>(r, "doc table");

    auto numTerms = readPod<std::uint32_t>(r);
    // Cheapest possible list is term + scheme + docCount + idf +
    // maxTermScore + three empty vector headers: reject a flipped
    // term count from the byte budget before sizing the vector.
    constexpr std::uint64_t kMinListBytes =
        sizeof(TermId) + sizeof(std::uint8_t) +
        sizeof(std::uint32_t) + 2 * sizeof(float) +
        3 * sizeof(std::uint64_t);
    if (numTerms > r.remaining() / kMinListBytes)
        loadFail(detail::concat(
            "index file truncated (term count ", numTerms,
            " exceeds remaining file size)"));
    std::vector<CompressedPostingList> lists(numTerms);
    for (std::uint32_t t = 0; t < numTerms; ++t) {
        CompressedPostingList &list = lists[t];
        list.term = readPod<TermId>(r);
        list.scheme =
            static_cast<compress::Scheme>(readPod<std::uint8_t>(r));
        list.docCount = readPod<std::uint32_t>(r);
        list.idf = readPod<float>(r);
        list.maxTermScore = readPod<float>(r);
        list.blocks = readVec<BlockMeta>(r, "block metadata");
        list.docPayload = PayloadBytes::owned(
            readVec<std::uint8_t, AlignedAllocator<std::uint8_t>>(
                r, "doc payload"));
        list.tfPayload = PayloadBytes::owned(
            readVec<std::uint8_t, AlignedAllocator<std::uint8_t>>(
                r, "tf payload"));
        validateList(list, t);
    }

    // Whole-body checksum, written outside its own coverage. Checked
    // last: everything above already failed fast on the specific
    // field it caught, this is the net under everything else.
    std::uint32_t expect = r.crc();
    if (r.readRaw<std::uint32_t>() != expect)
        loadFail("index file corrupt: file checksum mismatch");

    return InvertedIndex(params, std::move(docs), avgDocLen,
                         std::move(lists));
}

} // namespace

struct IndexFileWriter::Impl
{
    explicit Impl(std::ostream &os) : w(os) {}
    CrcWriter w;
};

IndexFileWriter::IndexFileWriter(std::ostream &os,
                                 const Bm25Params &params,
                                 double avgDocLen,
                                 const std::vector<DocInfo> &docs,
                                 std::uint32_t numTerms)
    : impl_(std::make_unique<Impl>(os)), declaredTerms_(numTerms)
{
    CrcWriter &w = impl_->w;
    writePod(w, kMagic);
    writePod(w, kVersion);

    Crc32 headerCrc;
    double k1 = params.k1;
    double b = params.b;
    writePod(w, k1);
    writePod(w, b);
    writePod(w, avgDocLen);
    headerCrc.update(&k1, sizeof(k1));
    headerCrc.update(&b, sizeof(b));
    headerCrc.update(&avgDocLen, sizeof(avgDocLen));
    writePod(w, headerCrc.value());

    writeVec(w, docs);
    writePod<std::uint32_t>(w, numTerms);
}

IndexFileWriter::~IndexFileWriter()
{
    BOSS_ASSERT(finished_,
                "IndexFileWriter destroyed before finish()");
}

void
IndexFileWriter::writeList(const CompressedPostingList &list)
{
    BOSS_ASSERT(!finished_, "writeList() after finish()");
    BOSS_ASSERT(writtenTerms_ < declaredTerms_,
                "more lists than the declared term count ",
                declaredTerms_);
    writeListBody(impl_->w, list);
    ++writtenTerms_;
}

void
IndexFileWriter::finish()
{
    BOSS_ASSERT(!finished_, "finish() called twice");
    BOSS_ASSERT(writtenTerms_ == declaredTerms_,
                "finish() after ", writtenTerms_, " of ",
                declaredTerms_, " declared lists");
    impl_->w.writeRaw(impl_->w.crc());
    finished_ = true;
}

void
saveIndex(const InvertedIndex &index, std::ostream &os)
{
    IndexFileWriter writer(os, index.scorer().params(),
                           index.avgDocLen(), index.docs(),
                           index.numTerms());
    for (TermId t = 0; t < index.numTerms(); ++t)
        writer.writeList(index.list(t));
    writer.finish();
}

InvertedIndex
loadIndex(std::istream &is)
{
    try {
        return loadIndexImpl(is);
    } catch (const LoadError &e) {
        BOSS_FATAL(e.message);
    }
}

std::optional<InvertedIndex>
tryLoadIndex(std::istream &is, std::string *error)
{
    try {
        return loadIndexImpl(is);
    } catch (const LoadError &e) {
        if (error != nullptr)
            *error = e.message;
        return std::nullopt;
    }
}

void
saveIndexFile(const InvertedIndex &index, const std::string &path)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        BOSS_FATAL("cannot open '", path, "' for writing");
    saveIndex(index, os);
    if (!os)
        BOSS_FATAL("error writing '", path, "'");
}

InvertedIndex
loadIndexFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        BOSS_FATAL("cannot open '", path, "' for reading");
    InvertedIndex index = loadIndex(is);
    // A standalone index file must end right after the checksum;
    // trailing bytes mean the file is not what it claims to be.
    // (Streams are not checked: text-index files legitimately
    // concatenate a lexicon after the index.)
    is.peek();
    if (!is.eof())
        BOSS_FATAL("index file '", path,
                   "' has trailing garbage after the checksum");
    return index;
}

// ---------------------------------------------------------------
// MappedIndex: parse metadata out of a mapping, leave payloads as
// views. Shares LoadError/validateList with the stream loader; the
// whole-file CRC is deliberately not scanned (see header comment).
// ---------------------------------------------------------------

namespace
{

/** Bounds-checked cursor over the mapped bytes. */
class SpanReader
{
  public:
    SpanReader(const std::uint8_t *base, std::size_t size)
        : p_(base), end_(base + size)
    {}

    void
    read(void *dst, std::size_t n)
    {
        ensure(n);
        std::memcpy(dst, p_, n);
        p_ += n;
    }

    template <typename T>
    T
    readPod()
    {
        T v{};
        read(&v, sizeof(T));
        return v;
    }

    /** Advance past @p n bytes, returning their mapped address. */
    const std::uint8_t *
    view(std::size_t n)
    {
        ensure(n);
        const std::uint8_t *v = p_;
        p_ += n;
        return v;
    }

    std::uint64_t
    remaining() const
    {
        return static_cast<std::uint64_t>(end_ - p_);
    }

    const std::uint8_t *pos() const { return p_; }

  private:
    void
    ensure(std::size_t n)
    {
        if (n > remaining())
            loadFail("index file truncated");
    }

    const std::uint8_t *p_;
    const std::uint8_t *end_;
};

template <typename T>
std::vector<T>
readVecCopy(SpanReader &r, const char *what)
{
    auto n = r.readPod<std::uint64_t>();
    if (n > r.remaining() / sizeof(T))
        loadFail(detail::concat("index file truncated (", what,
                                " length ", n,
                                " exceeds remaining file size)"));
    std::vector<T> v(static_cast<std::size_t>(n));
    r.read(v.data(), v.size() * sizeof(T));
    return v;
}

PayloadBytes
readPayloadView(SpanReader &r, const char *what)
{
    auto n = r.readPod<std::uint64_t>();
    if (n > r.remaining())
        loadFail(detail::concat("index file truncated (", what,
                                " length ", n,
                                " exceeds remaining file size)"));
    std::size_t bytes = static_cast<std::size_t>(n);
    return PayloadBytes::view(r.view(bytes), bytes);
}

/** Parse the index section; returns the offset one past its CRC. */
std::unique_ptr<InvertedIndex>
parseMapped(const std::uint8_t *base, std::size_t size,
            std::size_t &indexEnd)
{
    SpanReader r(base, size);
    if (r.readPod<std::uint32_t>() != kMagic)
        loadFail("not a BOSS index file (bad magic)");
    if (r.readPod<std::uint32_t>() != kVersion)
        loadFail("unsupported index file version");

    Bm25Params params;
    Crc32 headerCrc;
    params.k1 = r.readPod<double>();
    params.b = r.readPod<double>();
    auto avgDocLen = r.readPod<double>();
    headerCrc.update(&params.k1, sizeof(params.k1));
    headerCrc.update(&params.b, sizeof(params.b));
    headerCrc.update(&avgDocLen, sizeof(avgDocLen));
    if (r.readPod<std::uint32_t>() != headerCrc.value())
        loadFail("index file corrupt: header checksum mismatch");

    auto docs = readVecCopy<DocInfo>(r, "doc table");

    auto numTerms = r.readPod<std::uint32_t>();
    constexpr std::uint64_t kMinListBytes =
        sizeof(TermId) + sizeof(std::uint8_t) +
        sizeof(std::uint32_t) + 2 * sizeof(float) +
        3 * sizeof(std::uint64_t);
    if (numTerms > r.remaining() / kMinListBytes)
        loadFail(detail::concat(
            "index file truncated (term count ", numTerms,
            " exceeds remaining file size)"));
    std::vector<CompressedPostingList> lists(numTerms);
    for (std::uint32_t t = 0; t < numTerms; ++t) {
        CompressedPostingList &list = lists[t];
        list.term = r.readPod<TermId>();
        list.scheme =
            static_cast<compress::Scheme>(r.readPod<std::uint8_t>());
        list.docCount = r.readPod<std::uint32_t>();
        list.idf = r.readPod<float>();
        list.maxTermScore = r.readPod<float>();
        list.blocks = readVecCopy<BlockMeta>(r, "block metadata");
        list.docPayload = readPayloadView(r, "doc payload");
        list.tfPayload = readPayloadView(r, "tf payload");
        validateList(list, t);
    }

    // The trailing whole-file CRC must exist, but scanning the
    // payload bytes it covers would defeat the O(metadata) open;
    // the per-block CRCs own payload integrity on this path.
    (void)r.readPod<std::uint32_t>();
    indexEnd = static_cast<std::size_t>(r.pos() - base);

    return std::make_unique<InvertedIndex>(
        params, std::move(docs), avgDocLen, std::move(lists));
}

} // namespace

std::shared_ptr<MappedIndex>
MappedIndex::tryOpen(const std::string &path, std::string *error)
{
    auto fail = [&](std::string message) -> std::shared_ptr<MappedIndex> {
        if (error != nullptr)
            *error = std::move(message);
        return nullptr;
    };

    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return fail(detail::concat("cannot open '", path,
                                   "' for reading"));
    struct stat st{};
    if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
        ::close(fd);
        return fail(detail::concat("cannot stat '", path,
                                   "' (or file is empty)"));
    }
    auto size = static_cast<std::size_t>(st.st_size);
    void *map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    // The mapping holds its own reference to the file; the
    // descriptor is not needed past this point.
    ::close(fd);
    if (map == MAP_FAILED)
        return fail(detail::concat("cannot mmap '", path, "'"));

    std::shared_ptr<MappedIndex> mi(new MappedIndex());
    mi->base_ = static_cast<const std::uint8_t *>(map);
    mi->size_ = size;
    try {
        mi->index_ = parseMapped(mi->base_, mi->size_, mi->indexEnd_);
    } catch (const LoadError &e) {
        return fail(e.message); // dtor unmaps
    }
    return mi;
}

std::shared_ptr<MappedIndex>
MappedIndex::open(const std::string &path)
{
    std::string error;
    auto mi = tryOpen(path, &error);
    if (mi == nullptr)
        BOSS_FATAL(error);
    return mi;
}

MappedIndex::~MappedIndex()
{
    if (base_ != nullptr)
        ::munmap(const_cast<std::uint8_t *>(base_), size_);
}

bool
MappedIndex::hasLexicon() const
{
    return indexEnd_ < size_;
}

Lexicon
MappedIndex::loadLexicon() const
{
    BOSS_ASSERT(hasLexicon(), "index file carries no lexicon section");
    // The lexicon is metadata-sized; a stream copy keeps Lexicon's
    // single (istream) load path.
    std::istringstream is(std::string(
        reinterpret_cast<const char *>(base_) + indexEnd_,
        size_ - indexEnd_));
    return Lexicon::load(is);
}

} // namespace boss::index
