/**
 * @file
 * Text ingestion: tokenizer and document-at-a-time index builder.
 *
 * Turns raw document text into the (docID, tf) posting lists the
 * rest of the system consumes, producing the inverted index and its
 * lexicon together -- the "prepared offline" step the paper assumes
 * (Sec. II-B: "an inverted index is usually prepared offline before
 * a query is served").
 */

#ifndef BOSS_INDEX_TEXT_BUILDER_H
#define BOSS_INDEX_TEXT_BUILDER_H

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "index/inverted_index.h"
#include "index/lexicon.h"

namespace boss::index
{

/** Tokenizer options. */
struct TokenizerConfig
{
    /** Drop tokens shorter than this many characters. */
    std::uint32_t minLength = 2;
    /** Drop tokens longer than this (noise/binary junk). */
    std::uint32_t maxLength = 64;
    /** Drop the standard English stopword list. */
    bool dropStopwords = true;
};

/**
 * Split @p text into lowercase alphanumeric tokens.
 */
std::vector<std::string> tokenize(std::string_view text,
                                  const TokenizerConfig &config = {});

/** A fully built text index: the index plus its lexicon. */
struct TextIndex
{
    InvertedIndex index;
    Lexicon lexicon;
};

/**
 * Document-at-a-time builder: feed documents, then build().
 */
class TextIndexBuilder
{
  public:
    explicit TextIndexBuilder(TokenizerConfig config = {},
                              Bm25Params params = {})
        : config_(config), params_(params)
    {}

    /**
     * Ingest one document; returns its docID (assigned densely in
     * insertion order).
     */
    DocId addDocument(std::string_view text);

    std::uint32_t numDocs() const
    {
        return static_cast<std::uint32_t>(docLengths_.size());
    }

    /** Assemble the final index + lexicon. Consumes the builder. */
    TextIndex build();

  private:
    TokenizerConfig config_;
    Bm25Params params_;
    Lexicon lexicon_;
    std::vector<std::uint32_t> docLengths_;
    /** term -> postings under construction. */
    std::map<TermId, PostingList> postings_;
};

/**
 * Save/load a TextIndex (index file format v1 followed by the
 * lexicon block).
 */
void saveTextIndexFile(const TextIndex &ti, const std::string &path);
TextIndex loadTextIndexFile(const std::string &path);

} // namespace boss::index

#endif // BOSS_INDEX_TEXT_BUILDER_H
