#include "index/lexicon.h"

#include <istream>
#include <ostream>

#include "common/logging.h"

namespace boss::index
{

TermId
Lexicon::addTerm(std::string_view term)
{
    auto it = ids_.find(std::string(term));
    if (it != ids_.end())
        return it->second;
    TermId id = static_cast<TermId>(terms_.size());
    terms_.emplace_back(term);
    ids_.emplace(terms_.back(), id);
    return id;
}

std::optional<TermId>
Lexicon::lookup(std::string_view term) const
{
    auto it = ids_.find(std::string(term));
    if (it == ids_.end())
        return std::nullopt;
    return it->second;
}

const std::string &
Lexicon::term(TermId id) const
{
    BOSS_ASSERT(id < terms_.size(), "term id out of range: ", id);
    return terms_[id];
}

void
Lexicon::save(std::ostream &os) const
{
    std::uint32_t n = size();
    os.write(reinterpret_cast<const char *>(&n), sizeof(n));
    for (const auto &t : terms_) {
        auto len = static_cast<std::uint32_t>(t.size());
        os.write(reinterpret_cast<const char *>(&len), sizeof(len));
        os.write(t.data(), len);
    }
}

Lexicon
Lexicon::load(std::istream &is)
{
    Lexicon lex;
    std::uint32_t n = 0;
    is.read(reinterpret_cast<char *>(&n), sizeof(n));
    if (!is)
        BOSS_FATAL("lexicon truncated");
    for (std::uint32_t i = 0; i < n; ++i) {
        std::uint32_t len = 0;
        is.read(reinterpret_cast<char *>(&len), sizeof(len));
        std::string term(len, '\0');
        is.read(term.data(), len);
        if (!is)
            BOSS_FATAL("lexicon truncated");
        lex.addTerm(term);
    }
    return lex;
}

} // namespace boss::index
