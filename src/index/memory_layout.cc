#include "index/memory_layout.h"

#include "common/bitops.h"

namespace boss::index
{

MemoryLayout::MemoryLayout(const InvertedIndex &index, Addr base,
                           Addr align)
    : base_(base)
{
    Addr cursor = roundUp(base, align);
    lists_.resize(index.numTerms());
    for (TermId t = 0; t < index.numTerms(); ++t) {
        const CompressedPostingList &list = index.list(t);
        ListPlacement &p = lists_[t];
        p.metaAddr = cursor;
        cursor = roundUp(cursor + static_cast<Addr>(list.numBlocks()) *
                                      kBlockMetaBytes,
                         align);
        p.docAddr = cursor;
        cursor = roundUp(cursor + list.docPayload.size(), align);
        p.tfAddr = cursor;
        cursor = roundUp(cursor + list.tfPayload.size(), align);
        p.normAddr = cursor;
        cursor = roundUp(cursor + static_cast<Addr>(list.docCount) *
                                      kDocNormBytes,
                         align);
    }
    normTable_ = cursor;
    cursor = roundUp(cursor + static_cast<Addr>(index.numDocs()) *
                                  kDocNormBytes,
                     align);
    end_ = cursor;
}

} // namespace boss::index
