/**
 * @file
 * Compressed posting-list layout: fixed 128-entry blocks of d-gaps
 * plus term frequencies, with per-block skip metadata (paper
 * Sec. IV-A, "Index Structure and Per-block Metadata").
 */

#ifndef BOSS_INDEX_COMPRESSED_LIST_H
#define BOSS_INDEX_COMPRESSED_LIST_H

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/aligned.h"
#include "common/types.h"
#include "compress/scheme.h"
#include "index/posting_list.h"

namespace boss::index
{

/**
 * A compressed payload: either owned bytes (heap-loaded or
 * builder-produced lists) or a non-owning view into an mmap'd index
 * file (MappedIndex). The engine only ever reads payloads through
 * data()/size(), so the two representations are interchangeable on
 * the read path; append() is builder-side only and asserts the
 * payload is owned. Whoever hands out views is responsible for
 * keeping the mapping alive (MappedIndex shares itself into every
 * consumer via shared_ptr aliasing).
 *
 * Owned storage stays cache-line aligned (AlignedVec) for the SIMD
 * kernels; views inherit the file layout's arbitrary alignment,
 * which is fine -- decode kernels only require aligned *scratch*
 * buffers, payload bases are read via unaligned loads.
 */
class PayloadBytes
{
  public:
    PayloadBytes() = default;

    /** A non-owning view of @p n bytes at @p p (caller keeps alive). */
    static PayloadBytes
    view(const std::uint8_t *p, std::size_t n)
    {
        PayloadBytes b;
        b.viewData_ = p;
        b.viewSize_ = n;
        return b;
    }

    /** Adopt owned storage (the deserializer's path). */
    static PayloadBytes
    owned(AlignedVec<std::uint8_t> bytes)
    {
        PayloadBytes b;
        b.owned_ = std::move(bytes);
        return b;
    }

    const std::uint8_t *
    data() const
    {
        return viewData_ != nullptr ? viewData_ : owned_.data();
    }

    std::size_t
    size() const
    {
        return viewData_ != nullptr ? viewSize_ : owned_.size();
    }

    bool empty() const { return size() == 0; }
    bool isView() const { return viewData_ != nullptr; }

    /** Append @p n bytes (builder-side; owned payloads only). */
    void
    append(const std::uint8_t *p, std::size_t n)
    {
        owned_.insert(owned_.end(), p, p + n);
    }

    bool
    operator==(const PayloadBytes &o) const
    {
        return size() == o.size() &&
               (size() == 0 ||
                std::memcmp(data(), o.data(), size()) == 0);
    }
    bool operator!=(const PayloadBytes &o) const { return !(*this == o); }

  private:
    AlignedVec<std::uint8_t> owned_;
    const std::uint8_t *viewData_ = nullptr;
    std::size_t viewSize_ = 0;
};

/**
 * Per-block metadata record.
 *
 * The paper's record is 19 bytes: first docID (4B), last docID (4B),
 * max term-score (4B), compressed-block offset (4B), plus packed
 * element count (7b), encoded bit-width (5b) and exception info
 * (12b). We keep the fields unpacked in memory for clarity; traffic
 * accounting charges kBlockMetaBytes per record.
 */
struct BlockMeta
{
    DocId firstDoc = 0;       ///< first uncompressed docID in block
    DocId lastDoc = 0;        ///< last uncompressed docID in block
    float maxTermScore = 0.f; ///< max BM25 term score within block
    std::uint32_t docOffset = 0; ///< byte offset of doc payload
    std::uint32_t docBytes = 0;  ///< doc payload size
    std::uint32_t tfOffset = 0;  ///< byte offset of tf payload
    std::uint32_t tfBytes = 0;   ///< tf payload size
    std::uint32_t firstIndex = 0; ///< posting index of first element
    std::uint8_t numElems = 0;   ///< elements in block (1..128)
    std::uint8_t bitWidth = 0;   ///< packed width (BP/PFD)
    std::uint16_t exceptionInfo = 0; ///< exception count (PFD)
    // Builder-computed CRC32 of each compressed payload, checked at
    // decode time by the resilience layer (and usable by any reader
    // to detect at-rest corruption). Not part of the paper's 19-byte
    // record: traffic accounting still charges kBlockMetaBytes.
    std::uint32_t docCrc = 0; ///< CRC32 of the doc payload bytes
    std::uint32_t tfCrc = 0;  ///< CRC32 of the tf payload bytes
};

/** Metadata bytes charged per block when fetched (paper: 19B). */
inline constexpr std::uint32_t kBlockMetaBytes = 19;

/**
 * A fully built compressed posting list.
 *
 * Doc payloads hold d-gaps: block i's first gap is relative to
 * block i-1's lastDoc (relative to 0 for the first block), so any
 * block is decodable from its metadata alone -- the property the
 * hardware skip mechanism relies on.
 */
struct CompressedPostingList
{
    TermId term = 0;
    compress::Scheme scheme = compress::Scheme::BP;
    std::uint32_t docCount = 0;  ///< total postings
    float idf = 0.f;             ///< precomputed IDF
    float maxTermScore = 0.f;    ///< list-wide max (WAND upper bound)

    std::vector<BlockMeta> blocks;
    /**
     * Concatenated doc/tf blocks: owned bytes (builder/heap load,
     * cache-line aligned) or mmap views (MappedIndex).
     */
    PayloadBytes docPayload;
    PayloadBytes tfPayload;

    std::uint32_t numBlocks() const
    {
        return static_cast<std::uint32_t>(blocks.size());
    }

    /** Total compressed bytes (payloads + metadata). */
    std::uint64_t
    sizeBytes() const
    {
        return docPayload.size() + tfPayload.size() +
               blocks.size() * kBlockMetaBytes;
    }

    /** The docID gap base for block @p b (lastDoc of prior block). */
    DocId
    blockBase(std::uint32_t b) const
    {
        return b == 0 ? 0 : blocks[b - 1].lastDoc;
    }
};

} // namespace boss::index

#endif // BOSS_INDEX_COMPRESSED_LIST_H
