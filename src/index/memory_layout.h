/**
 * @file
 * Address assignment: places a built index into the modeled SCM
 * address space so timing models can issue byte-addressed requests.
 *
 * Layout per list: [block metadata array][doc payload][tf payload],
 * lists laid out consecutively, then the per-doc norm table. All
 * regions are aligned to the SCM access granule so sequential reads
 * of a payload hit consecutive media lines.
 */

#ifndef BOSS_INDEX_MEMORY_LAYOUT_H
#define BOSS_INDEX_MEMORY_LAYOUT_H

#include <vector>

#include "common/types.h"
#include "index/inverted_index.h"

namespace boss::index
{

/** Where one posting list's pieces live. */
struct ListPlacement
{
    Addr metaAddr = 0; ///< block metadata array (19B records)
    Addr docAddr = 0;  ///< doc-gap payload base
    Addr tfAddr = 0;   ///< tf payload base
    /**
     * Per-posting scoring metadata sidecar: the precomputed 4-byte
     * BM25 norm of each posting's document, stored alongside the tf
     * stream (paper Sec. IV-C: precomputation "will increase the per
     * document metadata by 4B"). Keeping it in posting order makes
     * scoring traffic sequential and block-skippable.
     */
    Addr normAddr = 0;
};

/**
 * The address map of one index image.
 */
class MemoryLayout
{
  public:
    /**
     * Compute the layout. @p base is the image's base address and
     * @p align the alignment granule (typically the SCM media line,
     * 256B).
     */
    MemoryLayout(const InvertedIndex &index, Addr base, Addr align);

    const ListPlacement &list(TermId t) const { return lists_[t]; }

    /** Address of document @p d's 4-byte norm record. */
    Addr
    docNormAddr(DocId d) const
    {
        return normTable_ + static_cast<Addr>(d) * kDocNormBytes;
    }

    Addr base() const { return base_; }
    /** One past the last byte used by the image. */
    Addr end() const { return end_; }
    Addr sizeBytes() const { return end_ - base_; }

  private:
    Addr base_;
    Addr end_;
    Addr normTable_;
    std::vector<ListPlacement> lists_;
};

} // namespace boss::index

#endif // BOSS_INDEX_MEMORY_LAYOUT_H
