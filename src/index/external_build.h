/**
 * @file
 * Bounded-memory external-merge text index build.
 *
 * The in-memory TextIndexBuilder holds every posting of the corpus
 * until build() — fine for corpora that fit in RAM, a hard wall for
 * the 10-100M-doc targets of the out-of-core tier. This builder
 * keeps the same ingest interface but buffers postings under a byte
 * budget: when the buffer fills, it is spilled to a sorted,
 * CRC-trailed run file, and finish() k-way-merges the runs straight
 * into the v2 index format through IndexFileWriter, one term at a
 * time.
 *
 * Output is byte-identical to TextIndexBuilder + saveTextIndexFile
 * on the same document stream at ANY budget: spills happen only at
 * document boundaries (so each term's postings are split across runs
 * in disjoint, ascending docID ranges and the merge is pure
 * concatenation), document statistics (lengths, BM25 norms, avgdl)
 * are kept in memory and computed with the identical summation
 * order, and every merged term goes through the same
 * IndexBuilder::buildList codepath the in-memory build uses. The
 * differential test in tests/test_oocore.cc enforces this across a
 * budget sweep.
 *
 * Peak memory is O(budget + docs + lexicon + largest single merged
 * list): per-doc and per-term metadata stay resident (they are what
 * "metadata uploading" keeps in DRAM in the tiering literature), and
 * the largest posting list must fit in memory once at merge time.
 *
 * Spill run format (little-endian, one file per spill):
 *   u32 magic 0xB0555C11
 *   u32 numTerms
 *   numTerms x { u32 term, u32 count, count x { u32 doc, u32 tf } }
 *   u32 crc32 of everything above
 * Terms ascend within a run; docIDs ascend within a term entry.
 */

#ifndef BOSS_INDEX_EXTERNAL_BUILD_H
#define BOSS_INDEX_EXTERNAL_BUILD_H

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "index/bm25.h"
#include "index/lexicon.h"
#include "index/posting_list.h"
#include "index/text_builder.h"

namespace boss::index
{

/** Configuration of one external build. */
struct ExternalBuildConfig
{
    /** Posting-buffer budget; a spill is cut when it fills. */
    std::uint64_t memoryBudgetBytes = 256ull << 20;
    /**
     * Directory for spill runs (created on first spill, removed by
     * finish()). Empty: defaulted at the first spill -- to
     * "<outPath>.spill" when that happens inside finish(), or to
     * "boss-external.spill" in the working directory when the budget
     * forces a spill mid-ingest (outPath is unknown then). CLIs set
     * this explicitly.
     */
    std::string spillDir;
    TokenizerConfig tokenizer;
    Bm25Params bm25;
};

/** What the build did (the CLI reports these). */
struct ExternalBuildStats
{
    std::uint32_t spillRuns = 0;       ///< run files merged
    std::uint64_t postingsSpilled = 0; ///< postings written to runs
    std::uint64_t spillBytes = 0;      ///< run-file bytes written
    std::uint32_t numDocs = 0;
    std::uint32_t numTerms = 0;
};

class ExternalTextIndexer
{
  public:
    explicit ExternalTextIndexer(ExternalBuildConfig config = {});

    /** Ingest one document (same semantics as TextIndexBuilder). */
    DocId addDocument(std::string_view text);

    std::uint32_t
    numDocs() const
    {
        return static_cast<std::uint32_t>(docLengths_.size());
    }

    /**
     * Spill the remaining buffer, merge every run, and write the
     * final text-index file (index + lexicon) to @p outPath.
     * Consumes the builder; run files are deleted on success.
     */
    ExternalBuildStats finish(const std::string &outPath);

  private:
    void spill();

    ExternalBuildConfig config_;
    Lexicon lexicon_;
    std::vector<std::uint32_t> docLengths_;
    /** term -> postings buffered since the last spill. */
    std::map<TermId, PostingList> buffer_;
    std::uint64_t bufferedBytes_ = 0;
    std::vector<std::string> runPaths_;
    ExternalBuildStats stats_;
    bool finished_ = false;
};

} // namespace boss::index

#endif // BOSS_INDEX_EXTERNAL_BUILD_H
