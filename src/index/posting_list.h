/**
 * @file
 * Uncompressed posting-list representation (the index builder's
 * input and the functional engine's oracle format).
 */

#ifndef BOSS_INDEX_POSTING_LIST_H
#define BOSS_INDEX_POSTING_LIST_H

#include <vector>

#include "common/types.h"

namespace boss::index
{

/** One (docID, term frequency) tuple, as in the paper's Fig. 1(a). */
struct Posting
{
    DocId doc;
    TermFreq tf;

    friend bool
    operator==(const Posting &a, const Posting &b)
    {
        return a.doc == b.doc && a.tf == b.tf;
    }
};

/** A term's postings, sorted by ascending docID, no duplicates. */
using PostingList = std::vector<Posting>;

/** True iff @p list is sorted by docID with no duplicates. */
inline bool
isValidPostingList(const PostingList &list)
{
    for (std::size_t i = 1; i < list.size(); ++i) {
        if (list[i].doc <= list[i - 1].doc)
            return false;
    }
    return true;
}

} // namespace boss::index

#endif // BOSS_INDEX_POSTING_LIST_H
