/**
 * @file
 * Document-partitioned index sharding across N simulated devices.
 *
 * Each shard holds a contiguous range of documents and stores its
 * posting lists with *local* docIDs (rebased to the shard's first
 * document) so the per-device engine and memory layout are unchanged.
 * Scoring statistics stay corpus-wide: every shard bakes the global
 * document count, average document length and per-term document
 * frequency into its stored idf / norm floats, so a document's score
 * is bit-identical no matter how many shards the corpus is split
 * into — and the host-side merge (engine::mergeTopK) reproduces the
 * unsharded top-k exactly, tie-breaks included.
 */

#ifndef BOSS_INDEX_SHARDING_H
#define BOSS_INDEX_SHARDING_H

#include <cstdint>
#include <vector>

#include "index/inverted_index.h"

namespace boss::index
{

/**
 * The document partition: shard i owns the contiguous global docID
 * range [docBase(i), docBase(i) + docCount(i)). Ranges are balanced
 * to within one document.
 */
class ShardMap
{
  public:
    ShardMap() = default;
    ShardMap(std::uint32_t numDocs, std::uint32_t numShards);

    std::uint32_t
    numShards() const
    {
        return bases_.empty()
                   ? 0
                   : static_cast<std::uint32_t>(bases_.size() - 1);
    }
    std::uint32_t
    numDocs() const
    {
        return bases_.empty() ? 0 : bases_.back();
    }

    /** First global docID owned by @p shard. */
    std::uint32_t docBase(std::uint32_t shard) const
    {
        return bases_[shard];
    }
    /** Number of documents owned by @p shard. */
    std::uint32_t docCount(std::uint32_t shard) const
    {
        return bases_[shard + 1] - bases_[shard];
    }

    /** The shard owning global docID @p doc. */
    std::uint32_t shardOf(DocId doc) const;

    DocId
    toLocal(std::uint32_t shard, DocId global) const
    {
        return global - bases_[shard];
    }
    DocId
    toGlobal(std::uint32_t shard, DocId local) const
    {
        return local + bases_[shard];
    }

  private:
    /** numShards+1 fence posts; bases_[i] is shard i's first doc. */
    std::vector<std::uint32_t> bases_;
};

/** A sharded index: the partition plus one InvertedIndex per shard. */
struct IndexShards
{
    ShardMap map;
    std::vector<InvertedIndex> shards;
};

/**
 * Builds an IndexShards from *global* posting lists.
 *
 * Usage mirrors IndexBuilder: setDocLengths with the full corpus,
 * addTerm with global docIDs, then build(). The builder splits each
 * list at the partition fence posts, rebases docIDs, and hands every
 * term to every shard (possibly empty — the shard engines treat an
 * empty list as an immediately-exhausted cursor) together with the
 * term's corpus-wide df, so list vectors line up across shards and
 * stored scores match the unsharded build bit-for-bit.
 *
 * Shard builds are independent (split posting slices, global stats
 * fixed up front) and run on the global ThreadPool; the output is
 * placed by shard slot, so the result is identical regardless of
 * build order or worker count.
 */
class ShardedIndexBuilder
{
  public:
    explicit ShardedIndexBuilder(std::uint32_t numShards,
                                 Bm25Params params = {});

    /** Force one scheme for every list on every shard. */
    void forceScheme(compress::Scheme s) { forced_ = s; }

    /** Global document lengths (token counts), all shards. */
    void setDocLengths(std::vector<std::uint32_t> lengths);

    /** Add one term's corpus-wide postings (global docIDs). */
    void addTerm(TermId term, PostingList postings);

    /** Assemble all shards. The builder is consumed. */
    IndexShards build();

  private:
    std::uint32_t numShards_;
    Bm25Params params_;
    std::optional<compress::Scheme> forced_;
    std::vector<std::uint32_t> docLengths_;
    std::vector<std::pair<TermId, PostingList>> pending_;
};

/**
 * Re-shard an already built index into @p numShards pieces: decode
 * every list, split at the partition, rebuild each shard against the
 * source index's global statistics. The merged results of the output
 * are bit-identical to querying @p global directly.
 */
IndexShards shardIndex(const InvertedIndex &global,
                       std::uint32_t numShards);

} // namespace boss::index

#endif // BOSS_INDEX_SHARDING_H
