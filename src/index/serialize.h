/**
 * @file
 * Binary (de)serialization of a built index. Used by the offloading
 * API's init() call, which "loads the inverted index file from disk
 * to SCM memory pool" (paper Sec. IV-D).
 */

#ifndef BOSS_INDEX_SERIALIZE_H
#define BOSS_INDEX_SERIALIZE_H

#include <iosfwd>
#include <string>

#include "index/inverted_index.h"

namespace boss::index
{

/** Write @p index to @p os in the BOSS index file format. */
void saveIndex(const InvertedIndex &index, std::ostream &os);

/** Read an index previously written by saveIndex(). */
InvertedIndex loadIndex(std::istream &is);

/** File-path convenience wrappers. */
void saveIndexFile(const InvertedIndex &index, const std::string &path);
InvertedIndex loadIndexFile(const std::string &path);

} // namespace boss::index

#endif // BOSS_INDEX_SERIALIZE_H
