/**
 * @file
 * Binary (de)serialization of a built index. Used by the offloading
 * API's init() call, which "loads the inverted index file from disk
 * to SCM memory pool" (paper Sec. IV-D).
 *
 * Two load paths share the v2 format:
 *  - loadIndex() copies everything into heap memory and verifies the
 *    whole-file CRC up front (the historical path);
 *  - MappedIndex maps the file and leaves posting payloads as views
 *    into the mapping, verifying only the header/metadata at open
 *    time -- payload integrity is covered lazily by the per-block
 *    CRCs in BlockMeta, checked on first decode by the FaultPolicy
 *    (see Device::loadMappedTextIndexFile). Startup cost is
 *    O(metadata), not O(corpus).
 *
 * IndexFileWriter streams one list at a time into the same format,
 * so a bounded-memory external-merge build (external_build.h) never
 * materializes the whole index; saveIndex() is a loop over it.
 */

#ifndef BOSS_INDEX_SERIALIZE_H
#define BOSS_INDEX_SERIALIZE_H

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>

#include "index/inverted_index.h"
#include "index/lexicon.h"

namespace boss::index
{

/**
 * Write @p index to @p os in the BOSS index file format (v2): a
 * checksummed header, raw vectors with explicit lengths, and a
 * trailing CRC32 over the whole body. Every compressed payload also
 * carries its own CRC32 inside its BlockMeta record.
 */
void saveIndex(const InvertedIndex &index, std::ostream &os);

/**
 * Read an index previously written by saveIndex(). Fatal (exit 1) on
 * any malformed input: bad magic/version, truncation, out-of-range
 * lengths or offsets, or checksum mismatch. Leaves the stream
 * positioned directly after the index (streams may carry further
 * sections, e.g. a text index's lexicon).
 */
InvertedIndex loadIndex(std::istream &is);

/**
 * Non-fatal variant of loadIndex(): returns std::nullopt on
 * malformed input (filling @p error when given). Used by corruption
 * tests that probe thousands of damaged inputs in one process.
 */
std::optional<InvertedIndex> tryLoadIndex(std::istream &is,
                                          std::string *error = nullptr);

/** File-path convenience wrappers. */
void saveIndexFile(const InvertedIndex &index, const std::string &path);
InvertedIndex loadIndexFile(const std::string &path);

/**
 * Streaming writer of the v2 index format: header and doc table up
 * front, then one writeList() per term in TermId order (exactly
 * numTerms calls), then finish() for the trailing file CRC. Produces
 * byte-identical output to saveIndex() given the same lists, so the
 * external-merge build path is differentially testable against the
 * in-memory builder. Further sections (a text index's lexicon) may
 * be appended to the stream after finish().
 */
class IndexFileWriter
{
  public:
    IndexFileWriter(std::ostream &os, const Bm25Params &params,
                    double avgDocLen, const std::vector<DocInfo> &docs,
                    std::uint32_t numTerms);
    ~IndexFileWriter();

    IndexFileWriter(const IndexFileWriter &) = delete;
    IndexFileWriter &operator=(const IndexFileWriter &) = delete;

    /** Append the next term's list (call in TermId order). */
    void writeList(const CompressedPostingList &list);

    /** Write the trailing CRC; must follow exactly numTerms lists. */
    void finish();

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
    std::uint32_t declaredTerms_ = 0;
    std::uint32_t writtenTerms_ = 0;
    bool finished_ = false;
};

/**
 * An index mapped from disk: doc table and block metadata are parsed
 * (and structurally validated) eagerly, posting payloads stay as
 * views into the mapping. The whole-file CRC is *not* scanned --
 * payload integrity is the per-block CRCs' job, verified on first
 * decode when the owning Device arms its verify-once FaultPolicy.
 *
 * The mapping must outlive every consumer of index(); share() builds
 * an aliasing shared_ptr so Device/engine code holds the mapping
 * alive through the index pointer it already keeps.
 */
class MappedIndex
{
  public:
    /** Map @p path and parse its metadata; fatal on malformed input. */
    static std::shared_ptr<MappedIndex> open(const std::string &path);

    /** Non-fatal variant: nullptr on malformed input. */
    static std::shared_ptr<MappedIndex>
    tryOpen(const std::string &path, std::string *error = nullptr);

    ~MappedIndex();
    MappedIndex(const MappedIndex &) = delete;
    MappedIndex &operator=(const MappedIndex &) = delete;

    const InvertedIndex &index() const { return *index_; }

    /** Aliasing pointer: keeps this mapping alive with the index. */
    static std::shared_ptr<const InvertedIndex>
    share(const std::shared_ptr<MappedIndex> &self)
    {
        return {self, &self->index()};
    }

    /** Does a lexicon section follow the index (text-index file)? */
    bool hasLexicon() const;
    /** Parse the trailing lexicon section (metadata-sized copy). */
    Lexicon loadLexicon() const;

    /** Mapping base/extent (tests compute payload file offsets). */
    const std::uint8_t *base() const { return base_; }
    std::size_t fileSize() const { return size_; }
    /** File offset of @p p, which must point into the mapping. */
    std::size_t
    fileOffset(const std::uint8_t *p) const
    {
        return static_cast<std::size_t>(p - base_);
    }

  private:
    MappedIndex() = default;

    const std::uint8_t *base_ = nullptr;
    std::size_t size_ = 0;
    /** Offset of the first byte past the index's trailing CRC. */
    std::size_t indexEnd_ = 0;
    std::unique_ptr<InvertedIndex> index_;
};

} // namespace boss::index

#endif // BOSS_INDEX_SERIALIZE_H
