/**
 * @file
 * Binary (de)serialization of a built index. Used by the offloading
 * API's init() call, which "loads the inverted index file from disk
 * to SCM memory pool" (paper Sec. IV-D).
 */

#ifndef BOSS_INDEX_SERIALIZE_H
#define BOSS_INDEX_SERIALIZE_H

#include <iosfwd>
#include <optional>
#include <string>

#include "index/inverted_index.h"

namespace boss::index
{

/**
 * Write @p index to @p os in the BOSS index file format (v2): a
 * checksummed header, raw vectors with explicit lengths, and a
 * trailing CRC32 over the whole body. Every compressed payload also
 * carries its own CRC32 inside its BlockMeta record.
 */
void saveIndex(const InvertedIndex &index, std::ostream &os);

/**
 * Read an index previously written by saveIndex(). Fatal (exit 1) on
 * any malformed input: bad magic/version, truncation, out-of-range
 * lengths or offsets, or checksum mismatch. Leaves the stream
 * positioned directly after the index (streams may carry further
 * sections, e.g. a text index's lexicon).
 */
InvertedIndex loadIndex(std::istream &is);

/**
 * Non-fatal variant of loadIndex(): returns std::nullopt on
 * malformed input (filling @p error when given). Used by corruption
 * tests that probe thousands of damaged inputs in one process.
 */
std::optional<InvertedIndex> tryLoadIndex(std::istream &is,
                                          std::string *error = nullptr);

/** File-path convenience wrappers. */
void saveIndexFile(const InvertedIndex &index, const std::string &path);
InvertedIndex loadIndexFile(const std::string &path);

} // namespace boss::index

#endif // BOSS_INDEX_SERIALIZE_H
