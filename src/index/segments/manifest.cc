#include "index/segments/manifest.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <istream>
#include <ostream>
#include <set>
#include <sstream>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

#include "common/crc32.h"
#include "common/logging.h"

namespace boss::index::segments
{

namespace
{

constexpr std::uint32_t kManifestMagic = 0xB0555EAF;
constexpr std::uint32_t kManifestVersion = 1;
constexpr std::size_t kMaxName = 4096;

template <typename T>
void
put(std::string &out, T v)
{
    out.append(reinterpret_cast<const char *>(&v), sizeof(T));
}

template <typename T>
bool
get(const std::string &in, std::size_t &cursor, T &v)
{
    if (in.size() - cursor < sizeof(T))
        return false;
    std::copy_n(in.data() + cursor, sizeof(T),
                reinterpret_cast<char *>(&v));
    cursor += sizeof(T);
    return true;
}

} // namespace

void
saveManifest(const Manifest &m, std::ostream &os)
{
    std::string body;
    put(body, kManifestMagic);
    put(body, kManifestVersion);
    put(body, m.epoch);
    put(body, m.nextGlobalId);
    put(body, m.nextSegmentId);
    put(body, static_cast<std::uint32_t>(m.segments.size()));
    for (const auto &seg : m.segments) {
        put(body, seg.id);
        put(body, static_cast<std::uint32_t>(seg.file.size()));
        body.append(seg.file);
        put(body,
            static_cast<std::uint32_t>(seg.deletedLocals.size()));
        for (std::uint32_t d : seg.deletedLocals)
            put(body, d);
    }
    const std::uint32_t crc = crc32(body.data(), body.size());
    os.write(body.data(), static_cast<std::streamsize>(body.size()));
    os.write(reinterpret_cast<const char *>(&crc), sizeof(crc));
}

std::optional<Manifest>
tryLoadManifest(std::istream &is, std::string *error)
{
    auto fail = [error](const std::string &msg)
        -> std::optional<Manifest> {
        if (error != nullptr)
            *error = msg;
        return std::nullopt;
    };

    std::string body;
    {
        std::ostringstream all;
        all << is.rdbuf();
        body = all.str();
    }
    if (body.size() < sizeof(std::uint32_t))
        return fail("manifest truncated");
    std::uint32_t storedCrc = 0;
    std::copy_n(body.data() + body.size() - sizeof(storedCrc),
                sizeof(storedCrc),
                reinterpret_cast<char *>(&storedCrc));
    body.resize(body.size() - sizeof(storedCrc));
    // CRC first: no length field of a torn write is ever trusted.
    if (crc32(body.data(), body.size()) != storedCrc)
        return fail("manifest CRC mismatch");

    std::size_t cursor = 0;
    std::uint32_t magic = 0;
    std::uint32_t version = 0;
    if (!get(body, cursor, magic) || magic != kManifestMagic)
        return fail("manifest bad magic");
    if (!get(body, cursor, version) || version != kManifestVersion)
        return fail("manifest bad version");

    Manifest m;
    std::uint32_t segCount = 0;
    if (!get(body, cursor, m.epoch) ||
        !get(body, cursor, m.nextGlobalId) ||
        !get(body, cursor, m.nextSegmentId) ||
        !get(body, cursor, segCount))
        return fail("manifest truncated");
    for (std::uint32_t i = 0; i < segCount; ++i) {
        ManifestSegment seg;
        std::uint32_t nameLen = 0;
        if (!get(body, cursor, seg.id) || !get(body, cursor, nameLen))
            return fail("manifest truncated");
        if (nameLen > kMaxName || body.size() - cursor < nameLen)
            return fail("manifest bad name length");
        seg.file.assign(body, cursor, nameLen);
        cursor += nameLen;
        std::uint32_t delCount = 0;
        if (!get(body, cursor, delCount))
            return fail("manifest truncated");
        if (body.size() - cursor < delCount * sizeof(std::uint32_t))
            return fail("manifest bad delete count");
        seg.deletedLocals.reserve(delCount);
        std::uint32_t prev = 0;
        for (std::uint32_t d = 0; d < delCount; ++d) {
            std::uint32_t v = 0;
            get(body, cursor, v);
            if (d > 0 && v <= prev)
                return fail("manifest deletes not ascending");
            prev = v;
            seg.deletedLocals.push_back(v);
        }
        m.segments.push_back(std::move(seg));
    }
    if (cursor != body.size())
        return fail("manifest trailing bytes");
    return m;
}

std::string
segmentFileName(std::uint64_t id)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "seg-%010llu.boss",
                  static_cast<unsigned long long>(id));
    return buf;
}

std::string
manifestFileName(std::uint64_t epoch)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "manifest-%010llu",
                  static_cast<unsigned long long>(epoch));
    return buf;
}

std::vector<std::pair<std::uint64_t, std::filesystem::path>>
listManifests(const std::filesystem::path &dir)
{
    std::vector<std::pair<std::uint64_t, std::filesystem::path>> out;
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir, ec)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("manifest-", 0) != 0)
            continue;
        const std::string digits = name.substr(9);
        if (digits.empty() ||
            digits.find_first_not_of("0123456789") != std::string::npos)
            continue;
        out.emplace_back(std::stoull(digits), entry.path());
    }
    std::sort(out.begin(), out.end(),
              [](const auto &a, const auto &b) {
                  return a.first > b.first;
              });
    return out;
}

void
syncPath(const std::filesystem::path &path)
{
#ifndef _WIN32
    const int fd = ::open(path.c_str(), O_RDONLY);
    BOSS_ASSERT(fd >= 0, "cannot open for fsync ", path.string());
    const int rc = ::fsync(fd);
    ::close(fd);
    BOSS_ASSERT(rc == 0, "fsync failed ", path.string());
#else
    (void)path;
#endif
}

void
writeManifestFile(const std::filesystem::path &dir, const Manifest &m)
{
    const std::filesystem::path path = dir / manifestFileName(m.epoch);
    {
        std::ofstream os(path, std::ios::binary | std::ios::trunc);
        BOSS_ASSERT(os.good(), "cannot write manifest ",
                    path.string());
        saveManifest(m, os);
        os.flush();
        BOSS_ASSERT(os.good(), "short manifest write ", path.string());
    }
    // Segment files were synced at write time; the epoch commits
    // only once the manifest and its directory entry are durable.
    syncPath(path);
    syncPath(dir);
}

void
collectGarbage(const std::filesystem::path &dir)
{
    auto manifests = listManifests(dir);
    std::set<std::string> referenced;
    std::size_t kept = 0;
    for (const auto &[epoch, path] : manifests) {
        if (kept < 2) {
            std::ifstream is(path, std::ios::binary);
            if (auto m = tryLoadManifest(is)) {
                for (const auto &seg : m->segments)
                    referenced.insert(seg.file);
            }
            ++kept;
            continue;
        }
        std::error_code ec;
        std::filesystem::remove(path, ec);
    }
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir, ec)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("seg-", 0) != 0)
            continue;
        if (referenced.count(name) == 0) {
            std::error_code rec;
            std::filesystem::remove(entry.path(), rec);
        }
    }
}

} // namespace boss::index::segments
