#include "index/segments/segment.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/crc32.h"
#include "common/logging.h"
#include "index/block_decoder.h"
#include "index/inverted_index.h"
#include "index/serialize.h"

namespace boss::index::segments
{

namespace
{

/** Footer magic ("BOSS SEGment"): follows the embedded v2 index. */
constexpr std::uint32_t kFooterMagic = 0xB0555E67;

template <typename T>
void
put(std::string &out, T v)
{
    out.append(reinterpret_cast<const char *>(&v), sizeof(T));
}

template <typename T>
bool
get(const std::string &in, std::size_t &cursor, T &v)
{
    if (in.size() - cursor < sizeof(T))
        return false;
    std::copy_n(in.data() + cursor, sizeof(T),
                reinterpret_cast<char *>(&v));
    cursor += sizeof(T);
    return true;
}

} // namespace

std::shared_ptr<const BakedSegment>
BakedSegment::bake(std::uint64_t id, SegmentSource source)
{
    BOSS_ASSERT(source.docLengths.size() == source.globalIds.size(),
                "segment doc-length / global-id size mismatch");
    for (std::size_t i = 1; i < source.globalIds.size(); ++i) {
        BOSS_ASSERT(source.globalIds[i] > source.globalIds[i - 1],
                    "segment global ids must be strictly ascending");
    }

    auto seg = std::shared_ptr<BakedSegment>(new BakedSegment());
    seg->id_ = id;
    seg->forward_.resize(source.docLengths.size());
    TermId bound = 0;
    TermId prevTerm = 0;
    bool firstTerm = true;
    for (const auto &[t, pl] : source.postings) {
        BOSS_ASSERT(firstTerm || t > prevTerm,
                    "segment postings must be sorted by term");
        firstTerm = false;
        prevTerm = t;
        bound = std::max(bound, t + 1);
        BOSS_ASSERT(isValidPostingList(pl), "term ", t,
                    ": segment postings not sorted/unique");
        for (const auto &p : pl) {
            BOSS_ASSERT(p.doc < source.docLengths.size(),
                        "segment posting references unknown doc");
            seg->forward_[p.doc].push_back(t);
        }
    }
    seg->termBound_ = bound;
    seg->source_ = std::move(source);
    return seg;
}

std::optional<std::uint32_t>
BakedSegment::localOf(DocId global) const
{
    const auto &ids = source_.globalIds;
    auto it = std::lower_bound(ids.begin(), ids.end(), global);
    if (it == ids.end() || *it != global)
        return std::nullopt;
    return static_cast<std::uint32_t>(it - ids.begin());
}

void
BakedSegment::save(std::ostream &os, const Bm25Params &params,
                   std::optional<compress::Scheme> forced) const
{
    BOSS_ASSERT(numDocs() > 0, "cannot save an empty segment");
    // The embedded index is baked with *local* stats purely as a
    // carrier: tryLoad() decodes the postings back out and the live
    // index rebakes views against live stats at publish time.
    IndexBuilder builder(params);
    if (forced.has_value())
        builder.forceScheme(*forced);
    builder.setDocLengths(source_.docLengths);
    for (const auto &[t, pl] : source_.postings)
        builder.addTerm(t, pl);
    InvertedIndex baked = builder.build();
    saveIndex(baked, os);

    std::string footer;
    put(footer, kFooterMagic);
    put(footer, id_);
    put(footer, static_cast<std::uint32_t>(source_.globalIds.size()));
    DocId prev = 0;
    for (DocId g : source_.globalIds) {
        put(footer, static_cast<std::uint32_t>(g - prev));
        prev = g;
    }
    const std::uint32_t crc = crc32(footer.data(), footer.size());
    os.write(footer.data(),
             static_cast<std::streamsize>(footer.size()));
    os.write(reinterpret_cast<const char *>(&crc), sizeof(crc));
}

std::shared_ptr<const BakedSegment>
BakedSegment::tryLoad(std::istream &is, std::string *error)
{
    auto fail = [error](const std::string &msg)
        -> std::shared_ptr<const BakedSegment> {
        if (error != nullptr)
            *error = msg;
        return nullptr;
    };

    std::optional<InvertedIndex> baked = tryLoadIndex(is, error);
    if (!baked.has_value())
        return nullptr;

    // Footer: everything that remains in the stream.
    std::string footer;
    {
        std::ostringstream rest;
        rest << is.rdbuf();
        footer = rest.str();
    }
    if (footer.size() < 2 * sizeof(std::uint32_t))
        return fail("segment footer truncated");
    std::uint32_t storedCrc = 0;
    std::copy_n(footer.data() + footer.size() - sizeof(storedCrc),
                sizeof(storedCrc),
                reinterpret_cast<char *>(&storedCrc));
    footer.resize(footer.size() - sizeof(storedCrc));
    if (crc32(footer.data(), footer.size()) != storedCrc)
        return fail("segment footer CRC mismatch");

    std::size_t cursor = 0;
    std::uint32_t magic = 0;
    std::uint64_t id = 0;
    std::uint32_t count = 0;
    if (!get(footer, cursor, magic) || magic != kFooterMagic)
        return fail("segment footer bad magic");
    if (!get(footer, cursor, id) || !get(footer, cursor, count))
        return fail("segment footer truncated");
    if (count != baked->numDocs())
        return fail("segment footer doc count mismatch");

    SegmentSource src;
    src.globalIds.reserve(count);
    DocId prev = 0;
    for (std::uint32_t i = 0; i < count; ++i) {
        std::uint32_t delta = 0;
        if (!get(footer, cursor, delta))
            return fail("segment footer truncated");
        if (i > 0 && delta == 0)
            return fail("segment footer ids not ascending");
        prev += delta;
        src.globalIds.push_back(prev);
    }
    if (cursor != footer.size())
        return fail("segment footer trailing bytes");

    src.docLengths.reserve(count);
    for (std::uint32_t d = 0; d < count; ++d)
        src.docLengths.push_back(baked->doc(d).length);
    for (TermId t = 0; t < baked->numTerms(); ++t) {
        const CompressedPostingList &list = baked->list(t);
        if (list.docCount == 0)
            continue;
        src.postings.emplace_back(t, decodeAll(list));
    }
    return bake(id, std::move(src));
}

} // namespace boss::index::segments
