/**
 * @file
 * The live (mutable) index: append-only ingest into immutable
 * segments, tombstone deletes, and background merges, all behind a
 * versioned epoch-refcounted SegmentMap (readers never block).
 *
 * ## Bit-identity to a clean rebuild
 *
 * Baked BM25 floats (per-list idf, per-doc norm) depend on corpus
 * statistics, so naively stacking segments baked at different times
 * would drift from an index rebuilt over the survivors. The live
 * index instead *rebakes at publish*: every refresh recomputes each
 * segment's InvertedIndex view from its raw source postings using
 * the exact survivor statistics of that epoch —
 *
 *  - live avgDocLen as the same left-fold sum IndexBuilder::build
 *    uses, iterating segments in ascending global-docID order
 *    (appends allocate contiguous ranges and merges only fuse
 *    adjacent segments, so global order == segment order);
 *  - per-term live df (maintained incrementally on append/erase via
 *    each segment's forward table) as the idf override;
 *  - the same shared IndexBuilder::buildList hybrid scheme
 *    selection.
 *
 * Per-segment search with tombstone filtering then merges per-epoch
 * top-k lists exactly (same k everywhere, globally comparable
 * scores, local order == global order within a segment), making the
 * result byte-identical to executing on an index rebuilt from
 * scratch over the surviving docs. test_segments asserts this
 * differentially; the cost is that rebake is O(index) per publish,
 * paid on the ingest/merge thread, never the query path (Lucene
 * instead accepts stats drift; we buy exactness with publish-time
 * work).
 *
 * ## Constraints
 *
 * Queries must only use term ids below the snapshot's termBound()
 * (views size their list tables to it; the engine's list lookup is
 * unchecked by design).
 */

#ifndef BOSS_INDEX_SEGMENTS_LIVE_INDEX_H
#define BOSS_INDEX_SEGMENTS_LIVE_INDEX_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "compress/scheme.h"
#include "index/bm25.h"
#include "index/segments/segment_map.h"

namespace boss::index::segments
{

struct LiveIndexConfig
{
    /**
     * Segment directory for durability (empty: in-memory only).
     * When it holds committed manifests, construction recovers the
     * highest fully-valid epoch (see manifest.h).
     */
    std::string dir;
    Bm25Params bm25;
    /** Forced codec for ablations; hybrid selection if unset. */
    std::optional<compress::Scheme> forcedScheme;
    /** Buffered docs baked into a segment when reached. */
    std::uint32_t maxBufferedDocs = 1024;
    /** Lower bound on the term-id space (grows with ingest). */
    TermId termBoundHint = 0;
    /** Background merges trigger above this many segments. */
    std::uint32_t maxSegments = 8;
    /** Adjacent segments fused per merge. */
    std::uint32_t mergeFanIn = 4;
    /** Merger thread poll period when idle. */
    std::uint32_t mergerPollMs = 5;
};

/** Monotonic ingest counters (telemetry surface). */
struct IngestCounters
{
    std::atomic<std::uint64_t> appended{0};
    std::atomic<std::uint64_t> erased{0};
    std::atomic<std::uint64_t> segmentsBaked{0};
    std::atomic<std::uint64_t> merges{0};
    std::atomic<std::uint64_t> refreshes{0};
};

class LiveIndex
{
  public:
    explicit LiveIndex(LiveIndexConfig config);
    ~LiveIndex();

    LiveIndex(const LiveIndex &) = delete;
    LiveIndex &operator=(const LiveIndex &) = delete;

    /**
     * Append one document (token sequence; repeats become tf) and
     * return its global docID. Bakes a segment when the buffer
     * fills; the new segment becomes visible at the next refresh().
     */
    DocId append(const std::vector<TermId> &tokens);

    /**
     * Tombstone one global docID. Returns false when unknown,
     * already deleted, or already merged away. Visible to queries
     * at the next refresh().
     */
    bool erase(DocId globalId);

    /**
     * Bake any buffered docs and publish a new epoch exposing all
     * appends/erases so far (writing a manifest when durable).
     * No-op when nothing changed since the last publish.
     */
    void refresh();

    /**
     * Run one merge compaction if the policy fires (more than
     * maxSegments segments): fuses the adjacent run of mergeFanIn
     * segments with the fewest live docs, dropping tombstoned
     * postings, and publishes the result. The publish bakes any
     * buffered appends first (it is a full refresh), so epoch stats
     * always match the visible survivor set. Concurrent appends,
     * erases and queries proceed throughout; deletes landing in a
     * source segment mid-merge are carried over at swap time.
     * Returns true when a merge ran.
     */
    bool mergeOnce();

    /** Start/stop the background merge thread. */
    void startMerger();
    void stopMerger();

    /** Pin the current epoch for searching. */
    Snapshot snapshot() const { return map_.acquire(); }

    SegmentMap &map() { return map_; }
    const SegmentMap &map() const { return map_; }

    const IngestCounters &counters() const { return counters_; }

    std::uint64_t epoch() const { return map_.epoch(); }
    DocId nextGlobalId() const;
    std::uint32_t liveDocs() const;
    std::uint32_t bufferedDocs() const;
    std::uint32_t segmentCount() const;
    /** One past the largest term id ever appended (or the hint). */
    TermId termBound() const;

    const LiveIndexConfig &config() const { return config_; }

  private:
    struct BufferedDoc
    {
        DocId global = 0;
        std::uint32_t length = 0;
        /** (term, tf), sorted by term, distinct. */
        std::vector<std::pair<TermId, TermFreq>> bag;
        bool dead = false;
    };

    /** One segment's mutable bookkeeping (guarded by mu_). */
    struct Entry
    {
        std::shared_ptr<const BakedSegment> segment;
        /** Working delete bitmap; frozen copies are published. */
        std::shared_ptr<TombstoneSet> tombstones;
        std::uint32_t liveDocs = 0;
    };

    void bakeBufferLocked();
    void publishLocked(std::uint64_t epoch, bool writeManifest);
    void writeSegmentFile(const BakedSegment &segment) const;
    bool recoverLocked();

    LiveIndexConfig config_;
    SegmentMap map_;
    IngestCounters counters_;

    mutable std::mutex mu_;
    std::vector<Entry> segments_;
    std::vector<BufferedDoc> buffer_;
    /** Live document frequency per term (buffer included). */
    std::vector<std::uint32_t> liveDf_;
    DocId nextGlobal_ = 0;
    std::uint64_t nextSegmentId_ = 0;
    TermId termBound_ = 0;
    bool dirty_ = false;
    bool mergeInFlight_ = false;

    std::thread merger_;
    std::mutex mergerMu_;
    std::condition_variable mergerCv_;
    bool stopMerger_ = false;
};

} // namespace boss::index::segments

#endif // BOSS_INDEX_SEGMENTS_LIVE_INDEX_H
