#include "index/segments/live_index.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>

#include "common/logging.h"
#include "index/inverted_index.h"
#include "index/segments/manifest.h"

namespace boss::index::segments
{

namespace
{

/**
 * Re-encode one segment's view against this epoch's live survivor
 * statistics. Lists are sized to the epoch's term bound (the engine
 * indexes them unchecked) and every term carries its live idf, so a
 * per-segment search scores exactly as a clean rebuild would.
 */
std::shared_ptr<const InvertedIndex>
rebakeView(const BakedSegment &seg, const Bm25Params &params,
           std::optional<compress::Scheme> forced, const Bm25 &bm25,
           const std::vector<std::uint32_t> &liveDf, TermId termBound)
{
    std::vector<DocInfo> docs(seg.numDocs());
    for (std::uint32_t d = 0; d < seg.numDocs(); ++d) {
        docs[d].length = seg.source().docLengths[d];
        docs[d].norm = bm25.docNorm(docs[d].length);
    }

    std::vector<CompressedPostingList> lists(termBound);
    for (TermId t = 0; t < termBound; ++t) {
        lists[t].term = t;
        if (liveDf[t] > 0)
            lists[t].idf = static_cast<float>(bm25.idf(liveDf[t]));
    }
    for (const auto &[t, pl] : seg.source().postings) {
        lists[t] = IndexBuilder::buildList(t, pl, forced, bm25, docs,
                                           liveDf[t]);
    }
    return std::make_shared<const InvertedIndex>(
        params, std::move(docs), bm25.avgDocLen(), std::move(lists));
}

} // namespace

LiveIndex::LiveIndex(LiveIndexConfig config) : config_(std::move(config))
{
    termBound_ = config_.termBoundHint;
    liveDf_.assign(termBound_, 0);

    std::lock_guard<std::mutex> lock(mu_);
    bool recovered = false;
    if (!config_.dir.empty()) {
        std::filesystem::create_directories(config_.dir);
        recovered = recoverLocked();
    }
    if (!recovered)
        publishLocked(1, !config_.dir.empty());
}

LiveIndex::~LiveIndex() { stopMerger(); }

DocId
LiveIndex::append(const std::vector<TermId> &tokens)
{
    std::lock_guard<std::mutex> lock(mu_);

    BufferedDoc doc;
    doc.global = nextGlobal_++;
    doc.length = static_cast<std::uint32_t>(tokens.size());
    std::vector<TermId> sorted = tokens;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < sorted.size();) {
        std::size_t j = i;
        while (j < sorted.size() && sorted[j] == sorted[i])
            ++j;
        doc.bag.emplace_back(sorted[i],
                             static_cast<TermFreq>(j - i));
        i = j;
    }

    if (!doc.bag.empty()) {
        const TermId needed = doc.bag.back().first + 1;
        if (needed > termBound_) {
            termBound_ = needed;
            liveDf_.resize(termBound_, 0);
        }
    }
    for (const auto &[t, tf] : doc.bag)
        ++liveDf_[t];

    const DocId global = doc.global;
    buffer_.push_back(std::move(doc));
    dirty_ = true;
    counters_.appended.fetch_add(1, std::memory_order_relaxed);
    if (buffer_.size() >= config_.maxBufferedDocs)
        bakeBufferLocked();
    return global;
}

bool
LiveIndex::erase(DocId globalId)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (globalId >= nextGlobal_)
        return false;

    // Buffered docs hold the highest contiguous global range.
    if (!buffer_.empty() && globalId >= buffer_.front().global) {
        const std::size_t idx = globalId - buffer_.front().global;
        BOSS_ASSERT(idx < buffer_.size(),
                    "buffer global range not contiguous");
        BufferedDoc &doc = buffer_[idx];
        if (doc.dead)
            return false;
        doc.dead = true;
        for (const auto &[t, tf] : doc.bag)
            --liveDf_[t];
        dirty_ = true;
        counters_.erased.fetch_add(1, std::memory_order_relaxed);
        return true;
    }

    for (Entry &entry : segments_) {
        if (globalId < entry.segment->firstGlobal() ||
            globalId > entry.segment->lastGlobal())
            continue;
        const auto local = entry.segment->localOf(globalId);
        if (!local.has_value())
            return false;
        if (!entry.tombstones->markDeleted(*local))
            return false;
        --entry.liveDocs;
        for (TermId t : entry.segment->docTerms(*local))
            --liveDf_[t];
        dirty_ = true;
        counters_.erased.fetch_add(1, std::memory_order_relaxed);
        return true;
    }
    // Already compacted away by a merge (it was dead) or in a
    // global-id gap: nothing to do.
    return false;
}

void
LiveIndex::bakeBufferLocked()
{
    if (buffer_.empty())
        return;

    SegmentSource src;
    src.docLengths.reserve(buffer_.size());
    src.globalIds.reserve(buffer_.size());
    std::map<TermId, PostingList> byTerm;
    std::uint32_t live = 0;
    std::vector<std::uint32_t> deadLocals;
    for (std::uint32_t local = 0; local < buffer_.size(); ++local) {
        const BufferedDoc &doc = buffer_[local];
        src.docLengths.push_back(doc.length);
        src.globalIds.push_back(doc.global);
        for (const auto &[t, tf] : doc.bag)
            byTerm[t].push_back({local, tf});
        // A doc appended and erased within one buffer window is
        // baked anyway and tombstoned immediately: one uniform
        // delete path, and the stats folds skip it like any other
        // dead doc.
        if (doc.dead)
            deadLocals.push_back(local);
        else
            ++live;
    }
    for (auto &[t, pl] : byTerm)
        src.postings.emplace_back(t, std::move(pl));

    Entry entry;
    entry.segment = BakedSegment::bake(nextSegmentId_++,
                                       std::move(src));
    entry.tombstones =
        std::make_shared<TombstoneSet>(entry.segment->numDocs());
    for (std::uint32_t d : deadLocals)
        entry.tombstones->markDeleted(d);
    entry.liveDocs = live;

    if (!config_.dir.empty())
        writeSegmentFile(*entry.segment);
    segments_.push_back(std::move(entry));
    buffer_.clear();
    counters_.segmentsBaked.fetch_add(1, std::memory_order_relaxed);
}

void
LiveIndex::refresh()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!dirty_ && buffer_.empty())
        return;
    bakeBufferLocked();
    publishLocked(map_.epoch() + 1, !config_.dir.empty());
    dirty_ = false;
    counters_.refreshes.fetch_add(1, std::memory_order_relaxed);
}

void
LiveIndex::publishLocked(std::uint64_t epoch, bool writeManifest)
{
    // Live average document length as the exact left-fold a clean
    // IndexBuilder::build over the survivors would compute: segments
    // ascend in global-docID order (appends are contiguous, merges
    // fuse adjacent runs), so this addition order matches
    // std::accumulate over the compacted survivor array.
    double lenSum = 0.0;
    std::uint64_t liveCount = 0;
    for (const Entry &entry : segments_) {
        const auto &lengths = entry.segment->source().docLengths;
        for (std::uint32_t d = 0; d < lengths.size(); ++d) {
            if (entry.tombstones->deleted(d))
                continue;
            lenSum += static_cast<double>(lengths[d]);
            ++liveCount;
        }
    }
    const double avgLen =
        liveCount > 0 ? lenSum / static_cast<double>(liveCount) : 1.0;
    const Bm25 bm25(config_.bm25,
                    static_cast<std::uint32_t>(liveCount), avgLen);

    std::vector<SegmentReader> readers;
    readers.reserve(segments_.size());
    for (const Entry &entry : segments_) {
        SegmentReader reader;
        reader.segment = entry.segment;
        if (entry.tombstones->any()) {
            // Freeze a copy: the working bitmap keeps mutating
            // under erase() while queries hold this version.
            reader.tombstones =
                std::make_shared<const TombstoneSet>(*entry.tombstones);
        }
        reader.view = rebakeView(*entry.segment, config_.bm25,
                                 config_.forcedScheme, bm25, liveDf_,
                                 termBound_);
        reader.liveDocs = entry.liveDocs;
        readers.push_back(std::move(reader));
    }

    map_.publish(std::make_shared<const Version>(
        epoch, std::move(readers),
        static_cast<std::uint32_t>(liveCount), avgLen, termBound_));

    if (writeManifest) {
        Manifest m;
        m.epoch = epoch;
        m.nextGlobalId = nextGlobal_;
        m.nextSegmentId = nextSegmentId_;
        for (const Entry &entry : segments_) {
            ManifestSegment seg;
            seg.id = entry.segment->id();
            seg.file = segmentFileName(seg.id);
            seg.deletedLocals = entry.tombstones->deletedIds();
            m.segments.push_back(std::move(seg));
        }
        writeManifestFile(config_.dir, m);
        collectGarbage(config_.dir);
    }
}

bool
LiveIndex::mergeOnce()
{
    std::unique_lock<std::mutex> lock(mu_);
    if (mergeInFlight_)
        return false;
    if (segments_.size() <= config_.maxSegments)
        return false;
    const std::size_t fanIn =
        std::min<std::size_t>(std::max<std::uint32_t>(
                                  config_.mergeFanIn, 2),
                              segments_.size());

    // Adjacent-only merge window (keeps segment order == global-id
    // order); pick the run with the fewest live docs so compaction
    // chases garbage first.
    std::size_t best = 0;
    std::uint64_t bestLive = ~std::uint64_t{0};
    for (std::size_t i = 0; i + fanIn <= segments_.size(); ++i) {
        std::uint64_t liveHere = 0;
        for (std::size_t j = i; j < i + fanIn; ++j)
            liveHere += segments_[j].liveDocs;
        if (liveHere < bestLive) {
            bestLive = liveHere;
            best = i;
        }
    }

    // Phase 1 (locked): snapshot the window's sources and delete
    // bitmaps, reserve the merged segment id.
    std::vector<std::shared_ptr<const BakedSegment>> srcs;
    std::vector<TombstoneSet> snapTombs;
    for (std::size_t j = best; j < best + fanIn; ++j) {
        srcs.push_back(segments_[j].segment);
        snapTombs.push_back(*segments_[j].tombstones);
    }
    const std::uint64_t mergedId = nextSegmentId_++;
    mergeInFlight_ = true;
    lock.unlock();

    // Phase 2 (unlocked): build the compacted segment. Queries,
    // appends and erases proceed concurrently; the window itself is
    // immutable except its tombstone bitmaps, which phase 3 diffs.
    SegmentSource merged;
    std::vector<std::vector<std::optional<std::uint32_t>>> remap(
        srcs.size());
    std::map<TermId, PostingList> byTerm;
    for (std::size_t s = 0; s < srcs.size(); ++s) {
        const SegmentSource &src = srcs[s]->source();
        remap[s].assign(src.numDocs(), std::nullopt);
        for (std::uint32_t d = 0; d < src.numDocs(); ++d) {
            if (snapTombs[s].deleted(d))
                continue;
            remap[s][d] = static_cast<std::uint32_t>(
                merged.docLengths.size());
            merged.docLengths.push_back(src.docLengths[d]);
            merged.globalIds.push_back(src.globalIds[d]);
        }
        for (const auto &[t, pl] : src.postings) {
            for (const Posting &p : pl) {
                if (remap[s][p.doc].has_value())
                    byTerm[t].push_back({*remap[s][p.doc], p.tf});
            }
        }
    }
    for (auto &[t, pl] : byTerm)
        merged.postings.emplace_back(t, std::move(pl));

    std::shared_ptr<const BakedSegment> mergedSeg;
    if (merged.numDocs() > 0)
        mergedSeg = BakedSegment::bake(mergedId, std::move(merged));

    // Phase 3 (locked): carry over deletes that landed in the window
    // during the build, splice the merged entry in, publish. Window
    // indices are stable: bakes only append at the back and merges
    // are serialized by mergeInFlight_. The merged segment file is
    // written here, under mu_, never in phase 2: a concurrent
    // refresh() runs collectGarbage under this same lock and would
    // delete an on-disk segment no manifest references yet.
    lock.lock();
    if (mergedSeg != nullptr && !config_.dir.empty())
        writeSegmentFile(*mergedSeg);
    Entry entry;
    std::uint32_t mergedLive = 0;
    if (mergedSeg != nullptr) {
        entry.segment = mergedSeg;
        entry.tombstones =
            std::make_shared<TombstoneSet>(mergedSeg->numDocs());
        mergedLive = mergedSeg->numDocs();
        for (std::size_t s = 0; s < srcs.size(); ++s) {
            const TombstoneSet &now =
                *segments_[best + s].tombstones;
            for (std::uint32_t d = 0; d < srcs[s]->numDocs(); ++d) {
                if (!now.deleted(d) || snapTombs[s].deleted(d))
                    continue;
                BOSS_ASSERT(remap[s][d].has_value(),
                            "mid-merge delete of a compacted doc");
                entry.tombstones->markDeleted(*remap[s][d]);
                --mergedLive;
            }
        }
        entry.liveDocs = mergedLive;
    }

    const auto first = segments_.begin() +
                       static_cast<std::ptrdiff_t>(best);
    segments_.erase(first,
                    first + static_cast<std::ptrdiff_t>(fanIn));
    if (mergedSeg != nullptr) {
        segments_.insert(segments_.begin() +
                             static_cast<std::ptrdiff_t>(best),
                         std::move(entry));
    }
    mergeInFlight_ = false;
    counters_.merges.fetch_add(1, std::memory_order_relaxed);
    // Bake buffered appends before publishing: liveDf_ counts them,
    // so publishing around them would bake idfs over docs the epoch
    // cannot see. A merge publish is therefore a full refresh.
    bakeBufferLocked();
    publishLocked(map_.epoch() + 1, !config_.dir.empty());
    dirty_ = false;
    return true;
}

void
LiveIndex::startMerger()
{
    if (merger_.joinable())
        return;
    {
        std::lock_guard<std::mutex> lock(mergerMu_);
        stopMerger_ = false;
    }
    merger_ = std::thread([this] {
        std::unique_lock<std::mutex> lk(mergerMu_);
        while (!stopMerger_) {
            lk.unlock();
            const bool didWork = mergeOnce();
            map_.drainRetired();
            lk.lock();
            if (!didWork && !stopMerger_) {
                mergerCv_.wait_for(
                    lk,
                    std::chrono::milliseconds(config_.mergerPollMs));
            }
        }
    });
}

void
LiveIndex::stopMerger()
{
    {
        std::lock_guard<std::mutex> lock(mergerMu_);
        stopMerger_ = true;
    }
    mergerCv_.notify_all();
    if (merger_.joinable())
        merger_.join();
}

void
LiveIndex::writeSegmentFile(const BakedSegment &segment) const
{
    const std::filesystem::path path =
        std::filesystem::path(config_.dir) /
        segmentFileName(segment.id());
    {
        std::ofstream os(path, std::ios::binary | std::ios::trunc);
        BOSS_ASSERT(os.good(), "cannot write segment ",
                    path.string());
        segment.save(os, config_.bm25, config_.forcedScheme);
        os.flush();
        BOSS_ASSERT(os.good(), "short segment write ", path.string());
    }
    // Durable before any manifest references it (commit protocol
    // step 1, manifest.h).
    syncPath(path);
}

bool
LiveIndex::recoverLocked()
{
    for (const auto &[epoch, path] : listManifests(config_.dir)) {
        std::ifstream is(path, std::ios::binary);
        if (!is.good())
            continue;
        const auto m = tryLoadManifest(is);
        if (!m.has_value())
            continue;

        std::vector<Entry> entries;
        bool ok = true;
        for (const ManifestSegment &seg : m->segments) {
            std::ifstream ss(std::filesystem::path(config_.dir) /
                                 seg.file,
                             std::ios::binary);
            auto baked =
                ss.good() ? BakedSegment::tryLoad(ss) : nullptr;
            if (baked == nullptr || baked->id() != seg.id) {
                ok = false;
                break;
            }
            Entry entry;
            entry.tombstones =
                std::make_shared<TombstoneSet>(baked->numDocs());
            for (std::uint32_t d : seg.deletedLocals) {
                if (d >= baked->numDocs()) {
                    ok = false;
                    break;
                }
                entry.tombstones->markDeleted(d);
            }
            if (!ok)
                break;
            entry.liveDocs = entry.tombstones->liveCount();
            entry.segment = std::move(baked);
            entries.push_back(std::move(entry));
        }
        if (!ok)
            continue; // torn epoch: fall back to the previous one

        segments_ = std::move(entries);
        nextGlobal_ = static_cast<DocId>(m->nextGlobalId);
        nextSegmentId_ = m->nextSegmentId;
        for (const Entry &entry : segments_) {
            termBound_ =
                std::max(termBound_, entry.segment->termBound());
        }
        liveDf_.assign(termBound_, 0);
        for (const Entry &entry : segments_) {
            for (const auto &[t, pl] :
                 entry.segment->source().postings) {
                for (const Posting &p : pl) {
                    if (!entry.tombstones->deleted(p.doc))
                        ++liveDf_[t];
                }
            }
        }
        // Re-expose the recovered epoch as-is; its manifest on disk
        // is already the committed truth, so nothing is rewritten.
        publishLocked(m->epoch, false);
        return true;
    }
    return false;
}

DocId
LiveIndex::nextGlobalId() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return nextGlobal_;
}

std::uint32_t
LiveIndex::liveDocs() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::uint32_t live = 0;
    for (const Entry &entry : segments_)
        live += entry.liveDocs;
    for (const BufferedDoc &doc : buffer_) {
        if (!doc.dead)
            ++live;
    }
    return live;
}

std::uint32_t
LiveIndex::bufferedDocs() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<std::uint32_t>(buffer_.size());
}

std::uint32_t
LiveIndex::segmentCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<std::uint32_t>(segments_.size());
}

TermId
LiveIndex::termBound() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return termBound_;
}

} // namespace boss::index::segments
