/**
 * @file
 * The versioned, epoch-refcounted segment map readers search against.
 *
 * Every publish (buffer bake, delete batch, merge) installs a new
 * immutable Version; queries pin the current Version with an RAII
 * Snapshot and keep using it for their whole lifetime, so readers
 * never block on writers and never observe a half-updated segment
 * set. A retired Version stays alive exactly as long as snapshots
 * (or per-epoch device caches) reference it; its destructor asserts
 * the pin count drained to zero — the invariant the TSan merge-race
 * test hammers.
 */

#ifndef BOSS_INDEX_SEGMENTS_SEGMENT_MAP_H
#define BOSS_INDEX_SEGMENTS_SEGMENT_MAP_H

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "common/logging.h"
#include "index/doc_filter.h"
#include "index/inverted_index.h"
#include "index/segments/segment.h"

namespace boss::index::segments
{

/**
 * One segment as a version exposes it to readers: the immutable
 * core, a frozen tombstone snapshot (nullptr: nothing deleted), and
 * the per-epoch InvertedIndex view rebaked against this version's
 * live cross-segment statistics.
 */
struct SegmentReader
{
    std::shared_ptr<const BakedSegment> segment;
    std::shared_ptr<const TombstoneSet> tombstones;
    std::shared_ptr<const InvertedIndex> view;
    std::uint32_t liveDocs = 0;
};

/** An immutable published epoch of the segment set. */
class Version
{
  public:
    Version(std::uint64_t epoch, std::vector<SegmentReader> segments,
            std::uint32_t liveDocs, double avgDocLen, TermId termBound)
        : epoch_(epoch), segments_(std::move(segments)),
          liveDocs_(liveDocs), avgDocLen_(avgDocLen),
          termBound_(termBound)
    {
    }

    ~Version()
    {
        BOSS_ASSERT(pins_.load(std::memory_order_acquire) == 0,
                    "version ", epoch_, " destroyed with ",
                    pins_.load(std::memory_order_acquire),
                    " snapshots still pinned");
    }

    Version(const Version &) = delete;
    Version &operator=(const Version &) = delete;

    std::uint64_t epoch() const { return epoch_; }
    const std::vector<SegmentReader> &segments() const
    {
        return segments_;
    }
    std::uint32_t liveDocs() const { return liveDocs_; }
    double avgDocLen() const { return avgDocLen_; }
    /** One past the largest queryable term id in this epoch. */
    TermId termBound() const { return termBound_; }

    void pin() const
    {
        pins_.fetch_add(1, std::memory_order_acq_rel);
    }
    void unpin() const
    {
        pins_.fetch_sub(1, std::memory_order_acq_rel);
    }
    std::uint64_t pins() const
    {
        return pins_.load(std::memory_order_acquire);
    }

  private:
    const std::uint64_t epoch_;
    const std::vector<SegmentReader> segments_;
    const std::uint32_t liveDocs_;
    const double avgDocLen_;
    const TermId termBound_;
    mutable std::atomic<std::uint64_t> pins_{0};
};

/** RAII pin on one Version (copy re-pins, move transfers). */
class Snapshot
{
  public:
    Snapshot() = default;
    explicit Snapshot(std::shared_ptr<const Version> v)
        : v_(std::move(v))
    {
        if (v_ != nullptr)
            v_->pin();
    }
    Snapshot(const Snapshot &o) : v_(o.v_)
    {
        if (v_ != nullptr)
            v_->pin();
    }
    Snapshot(Snapshot &&o) noexcept : v_(std::move(o.v_)) {}
    Snapshot &
    operator=(const Snapshot &o)
    {
        if (this != &o) {
            release();
            v_ = o.v_;
            if (v_ != nullptr)
                v_->pin();
        }
        return *this;
    }
    Snapshot &
    operator=(Snapshot &&o) noexcept
    {
        if (this != &o) {
            release();
            v_ = std::move(o.v_);
        }
        return *this;
    }
    ~Snapshot() { release(); }

    explicit operator bool() const { return v_ != nullptr; }
    const Version &operator*() const { return *v_; }
    const Version *operator->() const { return v_.get(); }

  private:
    void
    release()
    {
        if (v_ != nullptr) {
            v_->unpin();
            v_.reset();
        }
    }

    std::shared_ptr<const Version> v_;
};

/**
 * The mutable head pointer: publish() swaps in a new Version and
 * retires the old one (tracked weakly so tests can observe that
 * retired epochs actually drain and free).
 */
class SegmentMap
{
  public:
    /** Pin and return the current version. */
    Snapshot
    acquire() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return Snapshot(current_);
    }

    std::uint64_t
    epoch() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return current_ != nullptr ? current_->epoch() : 0;
    }

    void
    publish(std::shared_ptr<const Version> next)
    {
        BOSS_ASSERT(next != nullptr, "publish(nullptr)");
        std::lock_guard<std::mutex> lock(mu_);
        BOSS_ASSERT(current_ == nullptr ||
                        next->epoch() > current_->epoch(),
                    "epochs must advance monotonically");
        if (current_ != nullptr)
            retired_.push_back(current_);
        current_ = std::move(next);
    }

    /**
     * Drop retired versions whose last reference is gone; returns
     * how many are still alive (pinned snapshots or cached epoch
     * devices keep them).
     */
    std::size_t
    drainRetired()
    {
        std::lock_guard<std::mutex> lock(mu_);
        std::size_t alive = 0;
        std::vector<std::weak_ptr<const Version>> keep;
        for (auto &w : retired_) {
            if (!w.expired()) {
                keep.push_back(std::move(w));
                ++alive;
            }
        }
        retired_ = std::move(keep);
        return alive;
    }

    std::size_t
    retiredCount() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return retired_.size();
    }

  private:
    mutable std::mutex mu_;
    std::shared_ptr<const Version> current_;
    std::vector<std::weak_ptr<const Version>> retired_;
};

} // namespace boss::index::segments

#endif // BOSS_INDEX_SEGMENTS_SEGMENT_MAP_H
