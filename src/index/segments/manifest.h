/**
 * @file
 * The segment-directory manifest: one CRC'd file per committed
 * epoch naming every live segment file and its tombstoned docs.
 *
 * Commit protocol (crash consistency):
 *   1. every referenced segment file is fully written, closed and
 *      fsync'd *before* its manifest is written; the manifest and
 *      its directory are fsync'd before the epoch counts as
 *      committed, so the ordering holds across power loss, not
 *      just process crashes;
 *   2. the manifest body carries a trailing CRC32, so a torn write
 *      is detected as reliably as a missing file;
 *   3. recovery scans manifests highest-epoch-first and adopts the
 *      first one whose body AND referenced segment files all
 *      validate — a half-written segment or manifest simply falls
 *      back to the previous committed epoch, never a partial view;
 *   4. the two most recent manifests (and the files they reference)
 *      are retained; everything older is garbage-collected.
 */

#ifndef BOSS_INDEX_SEGMENTS_MANIFEST_H
#define BOSS_INDEX_SEGMENTS_MANIFEST_H

#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace boss::index::segments
{

/** One segment's entry in a manifest. */
struct ManifestSegment
{
    std::uint64_t id = 0;
    /** File name relative to the segment directory. */
    std::string file;
    /** Tombstoned local docIDs, ascending. */
    std::vector<std::uint32_t> deletedLocals;
};

/** A committed epoch's full segment set. */
struct Manifest
{
    std::uint64_t epoch = 0;
    std::uint64_t nextGlobalId = 0;
    std::uint64_t nextSegmentId = 0;
    /** In ascending global-docID order. */
    std::vector<ManifestSegment> segments;
};

void saveManifest(const Manifest &m, std::ostream &os);

/**
 * Parse a manifest; nullopt (filling @p error) on truncation,
 * corruption, or CRC mismatch. The CRC is verified before any
 * length field is trusted.
 */
std::optional<Manifest> tryLoadManifest(std::istream &is,
                                        std::string *error = nullptr);

/** Canonical file names inside a segment directory. */
std::string segmentFileName(std::uint64_t id);
std::string manifestFileName(std::uint64_t epoch);

/**
 * All manifest files in @p dir as (epoch, path), highest epoch
 * first (the recovery scan order).
 */
std::vector<std::pair<std::uint64_t, std::filesystem::path>>
listManifests(const std::filesystem::path &dir);

/**
 * Durability barrier: fsync @p path (a regular file or a
 * directory). The commit protocol uses it to order segment writes
 * before the manifest across power loss.
 */
void syncPath(const std::filesystem::path &path);

/**
 * Write manifest @p m to its canonical path under @p dir and fsync
 * it (plus the directory entry) before returning.
 */
void writeManifestFile(const std::filesystem::path &dir,
                       const Manifest &m);

/**
 * Drop manifests older than the newest two, and any segment file
 * referenced by none of the retained manifests.
 */
void collectGarbage(const std::filesystem::path &dir);

} // namespace boss::index::segments

#endif // BOSS_INDEX_SEGMENTS_MANIFEST_H
