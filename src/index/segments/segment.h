/**
 * @file
 * Immutable index segments: the unit of the live-index ingest path.
 *
 * A segment is a small bundle of documents baked once and never
 * modified (Lucene-style). It keeps its *source* postings in raw
 * form — the live index re-encodes ("rebakes") a per-epoch
 * InvertedIndex view against the current cross-segment survivor
 * statistics at every publish, which is what makes segmented search
 * results bit-identical to a from-scratch rebuild of the surviving
 * docs (see live_index.h for the full argument).
 *
 * On-disk format: a locally-baked v2 index file (the CRC'd format
 * from index/serialize.h, reused verbatim) followed by a CRC'd
 * footer carrying the segment id and the local→global docID map.
 * The baked local stats in the file are a carrier only; load
 * reconstructs the raw source from the decoded postings.
 */

#ifndef BOSS_INDEX_SEGMENTS_SEGMENT_H
#define BOSS_INDEX_SEGMENTS_SEGMENT_H

#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "compress/scheme.h"
#include "index/bm25.h"
#include "index/posting_list.h"

namespace boss::index::segments
{

/** Raw, re-bakeable content of one immutable segment. */
struct SegmentSource
{
    /** Local docID → token count. */
    std::vector<std::uint32_t> docLengths;
    /** Local docID → global docID; strictly ascending. */
    std::vector<DocId> globalIds;
    /** (term, postings in local docIDs), sorted by term. */
    std::vector<std::pair<TermId, PostingList>> postings;

    std::uint32_t
    numDocs() const
    {
        return static_cast<std::uint32_t>(docLengths.size());
    }
};

/**
 * One baked immutable segment. The forward view (distinct terms per
 * document) is derived at bake time so deletes can decrement live
 * document frequencies in O(|doc terms|).
 */
class BakedSegment
{
  public:
    static std::shared_ptr<const BakedSegment>
    bake(std::uint64_t id, SegmentSource source);

    std::uint64_t id() const { return id_; }
    const SegmentSource &source() const { return source_; }
    std::uint32_t numDocs() const { return source_.numDocs(); }

    /** One past the largest term id present (0 for empty). */
    TermId termBound() const { return termBound_; }

    DocId firstGlobal() const { return source_.globalIds.front(); }
    DocId lastGlobal() const { return source_.globalIds.back(); }

    /** Distinct terms of one document, ascending. */
    const std::vector<TermId> &
    docTerms(std::uint32_t local) const
    {
        return forward_[local];
    }

    /**
     * Local id of @p global, or nullopt when this segment does not
     * hold it (binary search over the ascending globalIds).
     */
    std::optional<std::uint32_t> localOf(DocId global) const;

    /**
     * Serialize: bake a local-stats v2 index over the source and
     * append the CRC'd global-id footer. The file is self-contained
     * and loadIndex()-compatible up to the footer.
     */
    void save(std::ostream &os, const Bm25Params &params,
              std::optional<compress::Scheme> forced) const;

    /**
     * Load a segment written by save(). Returns nullptr (filling
     * @p error) on any truncation, corruption, or CRC mismatch —
     * recovery then falls back to an older manifest epoch.
     */
    static std::shared_ptr<const BakedSegment>
    tryLoad(std::istream &is, std::string *error = nullptr);

  private:
    BakedSegment() = default;

    std::uint64_t id_ = 0;
    SegmentSource source_;
    std::vector<std::vector<TermId>> forward_;
    TermId termBound_ = 0;
};

} // namespace boss::index::segments

#endif // BOSS_INDEX_SEGMENTS_SEGMENT_H
