#include "index/external_build.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <unordered_map>

#include "common/crc32.h"
#include "common/logging.h"
#include "index/inverted_index.h"
#include "index/serialize.h"

namespace boss::index
{

namespace
{

namespace fs = std::filesystem;

constexpr std::uint32_t kRunMagic = 0xB0555C11;

static_assert(sizeof(Posting) == 2 * sizeof(std::uint32_t),
              "spill format writes raw Posting arrays");

/**
 * Approximate resident cost of one buffered term entry beyond its
 * postings (map node, PostingList header). Accounting only shapes
 * where spills land, never the output, so a rough constant is fine.
 */
constexpr std::uint64_t kTermOverheadBytes = 64;

/** CRC-accumulating writer for one spill run. */
class RunWriter
{
  public:
    explicit RunWriter(const std::string &path)
        : path_(path), os_(path, std::ios::binary | std::ios::trunc)
    {
        BOSS_ASSERT(os_.good(), "cannot open spill run '", path,
                    "' for writing");
    }

    void
    write(const void *src, std::size_t n)
    {
        os_.write(static_cast<const char *>(src),
                  static_cast<std::streamsize>(n));
        crc_.update(src, n);
        bytes_ += n;
    }

    template <typename T>
    void
    writePod(const T &v)
    {
        write(&v, sizeof(T));
    }

    std::uint64_t
    close()
    {
        std::uint32_t crc = crc_.value();
        os_.write(reinterpret_cast<const char *>(&crc), sizeof(crc));
        bytes_ += sizeof(crc);
        os_.flush();
        BOSS_ASSERT(os_.good(), "short write on spill run '", path_,
                    "'");
        return bytes_;
    }

  private:
    std::string path_;
    std::ofstream os_;
    Crc32 crc_;
    std::uint64_t bytes_ = 0;
};

/**
 * Sequential reader over one spill run: current() exposes the run's
 * next (term, postings) entry until exhausted. The trailing CRC is
 * checked once the last entry is consumed — a torn or corrupted
 * spill (run files live on scratch storage) fails the build rather
 * than silently merging garbage.
 */
class RunReader
{
  public:
    explicit RunReader(const std::string &path)
        : path_(path), is_(path, std::ios::binary)
    {
        BOSS_ASSERT(is_.good(), "cannot open spill run '", path, "'");
        BOSS_ASSERT(readPod<std::uint32_t>() == kRunMagic,
                    "'", path, "' is not a spill run (bad magic)");
        numTerms_ = readPod<std::uint32_t>();
        advance();
    }

    bool exhausted() const { return exhausted_; }
    TermId term() const { return term_; }
    PostingList &postings() { return postings_; }

    void
    advance()
    {
        if (termsRead_ == numTerms_) {
            // Past the last entry: verify the run's CRC (readPod of
            // the stored value must not fold into the accumulator).
            std::uint32_t expect = crc_.value();
            std::uint32_t stored = 0;
            is_.read(reinterpret_cast<char *>(&stored),
                     sizeof(stored));
            BOSS_ASSERT(is_.good(), "spill run '", path_,
                        "' truncated");
            BOSS_ASSERT(stored == expect, "spill run '", path_,
                        "' corrupt (checksum mismatch)");
            exhausted_ = true;
            return;
        }
        term_ = readPod<TermId>();
        auto count = readPod<std::uint32_t>();
        postings_.resize(count);
        read(postings_.data(), count * sizeof(Posting));
        ++termsRead_;
    }

  private:
    void
    read(void *dst, std::size_t n)
    {
        is_.read(static_cast<char *>(dst),
                 static_cast<std::streamsize>(n));
        BOSS_ASSERT(is_.good(), "spill run '", path_, "' truncated");
        crc_.update(dst, n);
    }

    template <typename T>
    T
    readPod()
    {
        T v{};
        read(&v, sizeof(T));
        return v;
    }

    std::string path_;
    std::ifstream is_;
    Crc32 crc_;
    std::uint32_t numTerms_ = 0;
    std::uint32_t termsRead_ = 0;
    TermId term_ = 0;
    PostingList postings_;
    bool exhausted_ = false;
};

} // namespace

ExternalTextIndexer::ExternalTextIndexer(ExternalBuildConfig config)
    : config_(std::move(config))
{
    BOSS_ASSERT(config_.memoryBudgetBytes > 0,
                "memory budget must be positive");
}

DocId
ExternalTextIndexer::addDocument(std::string_view text)
{
    BOSS_ASSERT(!finished_, "addDocument() after finish()");
    // Mirrors TextIndexBuilder::addDocument exactly: same tokenizer,
    // same lexicon id assignment (token order), same max(1, len)
    // document length, postings appended in dense docID order.
    DocId doc = static_cast<DocId>(docLengths_.size());
    auto tokens = tokenize(text, config_.tokenizer);

    std::unordered_map<TermId, TermFreq> counts;
    for (const auto &tok : tokens)
        ++counts[lexicon_.addTerm(tok)];

    docLengths_.push_back(
        std::max<std::uint32_t>(1, static_cast<std::uint32_t>(
                                       tokens.size())));
    for (const auto &[term, tf] : counts) {
        PostingList &list = buffer_[term];
        if (list.empty())
            bufferedBytes_ += kTermOverheadBytes;
        list.push_back({doc, tf});
        bufferedBytes_ += sizeof(Posting);
    }

    // Spill only between documents: every run then covers a disjoint
    // ascending docID range per term, which is what lets the merge
    // concatenate run entries instead of re-sorting.
    if (bufferedBytes_ >= config_.memoryBudgetBytes)
        spill();
    return doc;
}

void
ExternalTextIndexer::spill()
{
    if (buffer_.empty())
        return;
    if (config_.spillDir.empty())
        config_.spillDir = "boss-external.spill";
    fs::create_directories(config_.spillDir);
    std::string path =
        (fs::path(config_.spillDir) /
         ("run-" + std::to_string(runPaths_.size()) + ".spill"))
            .string();

    RunWriter w(path);
    w.writePod(kRunMagic);
    w.writePod(static_cast<std::uint32_t>(buffer_.size()));
    for (const auto &[term, postings] : buffer_) {
        w.writePod(term);
        w.writePod(static_cast<std::uint32_t>(postings.size()));
        w.write(postings.data(), postings.size() * sizeof(Posting));
        stats_.postingsSpilled += postings.size();
    }
    stats_.spillBytes += w.close();

    runPaths_.push_back(std::move(path));
    buffer_.clear();
    bufferedBytes_ = 0;
}

ExternalBuildStats
ExternalTextIndexer::finish(const std::string &outPath)
{
    BOSS_ASSERT(!finished_, "finish() called twice");
    BOSS_ASSERT(!docLengths_.empty(),
                "finish() before any addDocument()");
    finished_ = true;

    if (config_.spillDir.empty())
        config_.spillDir = outPath + ".spill";
    // A build that never hit the budget merges straight from the
    // in-memory buffer -- no scratch I/O at all. Otherwise the
    // residual buffer becomes the final run and the merge consumes
    // runs only.
    if (!runPaths_.empty())
        spill();

    // Document statistics, computed exactly as IndexBuilder::build()
    // does (same accumulation order => bit-identical doubles).
    double avgDocLen =
        std::accumulate(docLengths_.begin(), docLengths_.end(), 0.0) /
        static_cast<double>(docLengths_.size());
    Bm25 bm25(config_.bm25,
              static_cast<std::uint32_t>(docLengths_.size()),
              avgDocLen);
    std::vector<DocInfo> docs(docLengths_.size());
    for (std::size_t d = 0; d < docLengths_.size(); ++d) {
        docs[d].length = docLengths_[d];
        docs[d].norm = bm25.docNorm(docLengths_[d]);
    }

    // Every lexicon term owns at least one posting (ids are only
    // assigned to occurring tokens), so the list table is dense:
    // numTerms == lexicon size, no trailing gap slots.
    auto numTerms = lexicon_.size();

    std::ofstream os(outPath, std::ios::binary | std::ios::trunc);
    BOSS_ASSERT(os.good(), "cannot open '", outPath,
                "' for writing");
    IndexFileWriter writer(os, config_.bm25, avgDocLen, docs,
                           numTerms);

    std::vector<std::unique_ptr<RunReader>> runs;
    runs.reserve(runPaths_.size());
    for (const auto &path : runPaths_)
        runs.push_back(std::make_unique<RunReader>(path));

    if (runs.empty()) {
        // Spill-free path: buffer_ is a std::map, already in
        // ascending TermId order.
        TermId next = 0;
        for (const auto &[term, postings] : buffer_) {
            for (; next < term; ++next)
                writer.writeList(CompressedPostingList{});
            writer.writeList(IndexBuilder::buildList(
                term, postings, std::nullopt, bm25, docs));
            ++next;
        }
        for (; next < numTerms; ++next)
            writer.writeList(CompressedPostingList{});
        buffer_.clear();
        bufferedBytes_ = 0;
        writer.finish();
        lexicon_.save(os);
        os.flush();
        BOSS_ASSERT(os.good(), "error writing '", outPath, "'");
        stats_.numDocs =
            static_cast<std::uint32_t>(docLengths_.size());
        stats_.numTerms = numTerms;
        return stats_;
    }

    PostingList merged;
    TermId nextTerm = 0;
    for (;;) {
        // Smallest un-consumed term across runs.
        bool any = false;
        TermId minTerm = 0;
        for (const auto &r : runs) {
            if (!r->exhausted() &&
                (!any || r->term() < minTerm)) {
                minTerm = r->term();
                any = true;
            }
        }
        if (!any)
            break;

        // A term absent from every run would leave a default slot,
        // exactly like IndexBuilder::build()'s gap lists. The text
        // path never produces gaps (dense lexicon ids), but the
        // writer must not desynchronize if one ever appears.
        for (; nextTerm < minTerm; ++nextTerm)
            writer.writeList(CompressedPostingList{});

        // Concatenate the term's postings in run order: runs are cut
        // at document boundaries, so ranges are disjoint ascending.
        merged.clear();
        for (auto &r : runs) {
            if (!r->exhausted() && r->term() == minTerm) {
                merged.insert(merged.end(), r->postings().begin(),
                              r->postings().end());
                r->advance();
            }
        }
        BOSS_DEBUG_ASSERT(isValidPostingList(merged),
                          "merged postings unsorted for term ",
                          minTerm);
        writer.writeList(IndexBuilder::buildList(
            minTerm, merged, std::nullopt, bm25, docs));
        ++nextTerm;
    }
    for (; nextTerm < numTerms; ++nextTerm)
        writer.writeList(CompressedPostingList{});
    writer.finish();
    lexicon_.save(os);
    os.flush();
    BOSS_ASSERT(os.good(), "error writing '", outPath, "'");

    runs.clear();
    for (const auto &path : runPaths_)
        fs::remove(path);
    std::error_code ec;
    fs::remove(config_.spillDir, ec); // only when empty; best-effort

    stats_.spillRuns = static_cast<std::uint32_t>(runPaths_.size());
    stats_.numDocs = static_cast<std::uint32_t>(docLengths_.size());
    stats_.numTerms = numTerms;
    return stats_;
}

} // namespace boss::index
