/**
 * @file
 * Functional block decoder shared by all engines: turns one
 * compressed block back into docIDs and term frequencies.
 */

#ifndef BOSS_INDEX_BLOCK_DECODER_H
#define BOSS_INDEX_BLOCK_DECODER_H

#include "common/aligned.h"
#include "index/compressed_list.h"

namespace boss::index
{

/**
 * Decode block @p b of @p list. Output buffers are AlignedVec so the
 * SIMD kernels store to cache-line-aligned scratch.
 *
 * @param list the compressed posting list
 * @param b block index (< list.numBlocks())
 * @param docs out: absolute docIDs (resized to the block's count)
 * @param tfs out: term frequencies (same size); may be nullptr when
 *            the caller only needs docIDs (saves the tf decode)
 */
void decodeBlock(const CompressedPostingList &list, std::uint32_t b,
                 AlignedVec<DocId> &docs, AlignedVec<TermFreq> *tfs);

/**
 * Decode only the tf payload of block @p b (resized to the block's
 * count). Lets a caller that already decoded the doc payload fetch
 * the tf sidecar lazily without re-decoding the docIDs.
 */
void decodeBlockTfs(const CompressedPostingList &list, std::uint32_t b,
                    AlignedVec<TermFreq> &tfs);

/** Decode the entire list back to postings (testing oracle). */
PostingList decodeAll(const CompressedPostingList &list);

} // namespace boss::index

#endif // BOSS_INDEX_BLOCK_DECODER_H
