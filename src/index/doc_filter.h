/**
 * @file
 * Tombstone delete filter: a bitmap over one index's local docID
 * space.
 *
 * Live-index deletes are out-of-place (Lucene-style): the immutable
 * posting lists keep the deleted document's postings, and the engine
 * filters tombstoned docIDs out *before* they can enter the top-k
 * heap (a deleted doc must never raise the selection threshold).
 * Merges later drop the postings for real (segments/live_index.h).
 */

#ifndef BOSS_INDEX_DOC_FILTER_H
#define BOSS_INDEX_DOC_FILTER_H

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace boss::index
{

/**
 * A fixed-size delete bitmap over local docIDs [0, numDocs).
 *
 * Mutation (markDeleted) is single-writer; concurrent readers must
 * hold an immutable copy (the live index publishes a frozen copy
 * into every SegmentMap version for exactly this reason).
 */
class TombstoneSet
{
  public:
    TombstoneSet() = default;
    explicit TombstoneSet(std::uint32_t numDocs)
        : numDocs_(numDocs), words_((numDocs + 63) / 64, 0)
    {
    }

    std::uint32_t numDocs() const { return numDocs_; }
    std::uint32_t deletedCount() const { return deleted_; }
    std::uint32_t liveCount() const { return numDocs_ - deleted_; }
    bool any() const { return deleted_ != 0; }

    /** Tombstone @p d. Returns false if it was already deleted. */
    bool
    markDeleted(DocId d)
    {
        std::uint64_t &w = words_[d >> 6];
        const std::uint64_t bit = 1ull << (d & 63);
        if ((w & bit) != 0)
            return false;
        w |= bit;
        ++deleted_;
        return true;
    }

    /** Is @p d tombstoned? Precondition: d < numDocs(). */
    bool
    deleted(DocId d) const
    {
        return ((words_[d >> 6] >> (d & 63)) & 1u) != 0;
    }

    /** All tombstoned docIDs in ascending order (manifest format). */
    std::vector<std::uint32_t>
    deletedIds() const
    {
        std::vector<std::uint32_t> out;
        out.reserve(deleted_);
        for (std::uint32_t d = 0; d < numDocs_; ++d) {
            if (deleted(d))
                out.push_back(d);
        }
        return out;
    }

  private:
    std::uint32_t numDocs_ = 0;
    std::uint32_t deleted_ = 0;
    std::vector<std::uint64_t> words_;
};

} // namespace boss::index

#endif // BOSS_INDEX_DOC_FILTER_H
