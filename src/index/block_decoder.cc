#include "index/block_decoder.h"

#include <span>

#include "common/logging.h"
#include "compress/codec.h"
#include "kernels/kernels.h"

namespace boss::index
{

void
decodeBlock(const CompressedPostingList &list, std::uint32_t b,
            AlignedVec<DocId> &docs, AlignedVec<TermFreq> *tfs)
{
    BOSS_ASSERT(b < list.numBlocks(), "block index out of range");
    const BlockMeta &meta = list.blocks[b];
    const compress::Codec &codec = compress::codecFor(list.scheme);

    docs.resize(meta.numElems);
    BOSS_DEBUG_ASSERT(isKernelAligned(docs.data()),
                      "decode scratch misaligned");
    std::span<const std::uint8_t> docBytes(
        list.docPayload.data() + meta.docOffset, meta.docBytes);
    codec.decode(docBytes, docs);

    // Delta -> absolute docIDs (vectorized inclusive scan).
    kernels::ops().prefixSum(docs.data(), docs.size(),
                             list.blockBase(b));

    if (tfs != nullptr)
        decodeBlockTfs(list, b, *tfs);
}

void
decodeBlockTfs(const CompressedPostingList &list, std::uint32_t b,
               AlignedVec<TermFreq> &tfs)
{
    BOSS_ASSERT(b < list.numBlocks(), "block index out of range");
    const BlockMeta &meta = list.blocks[b];
    const compress::Codec &codec = compress::codecFor(list.scheme);
    tfs.resize(meta.numElems);
    BOSS_DEBUG_ASSERT(isKernelAligned(tfs.data()),
                      "decode scratch misaligned");
    std::span<const std::uint8_t> tfBytes(
        list.tfPayload.data() + meta.tfOffset, meta.tfBytes);
    codec.decode(tfBytes, tfs);
}

PostingList
decodeAll(const CompressedPostingList &list)
{
    PostingList out;
    out.reserve(list.docCount);
    AlignedVec<DocId> docs;
    AlignedVec<TermFreq> tfs;
    for (std::uint32_t b = 0; b < list.numBlocks(); ++b) {
        decodeBlock(list, b, docs, &tfs);
        for (std::size_t i = 0; i < docs.size(); ++i)
            out.push_back({docs[i], tfs[i]});
    }
    return out;
}

} // namespace boss::index
