#include "index/block_decoder.h"

#include <span>

#include "common/logging.h"
#include "compress/codec.h"

namespace boss::index
{

void
decodeBlock(const CompressedPostingList &list, std::uint32_t b,
            std::vector<DocId> &docs, std::vector<TermFreq> *tfs)
{
    BOSS_ASSERT(b < list.numBlocks(), "block index out of range");
    const BlockMeta &meta = list.blocks[b];
    const compress::Codec &codec = compress::codecFor(list.scheme);

    docs.resize(meta.numElems);
    std::span<const std::uint8_t> docBytes(
        list.docPayload.data() + meta.docOffset, meta.docBytes);
    codec.decode(docBytes, docs);

    DocId acc = list.blockBase(b);
    for (auto &d : docs) {
        acc += d;
        d = acc;
    }

    if (tfs != nullptr)
        decodeBlockTfs(list, b, *tfs);
}

void
decodeBlockTfs(const CompressedPostingList &list, std::uint32_t b,
               std::vector<TermFreq> &tfs)
{
    BOSS_ASSERT(b < list.numBlocks(), "block index out of range");
    const BlockMeta &meta = list.blocks[b];
    const compress::Codec &codec = compress::codecFor(list.scheme);
    tfs.resize(meta.numElems);
    std::span<const std::uint8_t> tfBytes(
        list.tfPayload.data() + meta.tfOffset, meta.tfBytes);
    codec.decode(tfBytes, tfs);
}

PostingList
decodeAll(const CompressedPostingList &list)
{
    PostingList out;
    out.reserve(list.docCount);
    std::vector<DocId> docs;
    std::vector<TermFreq> tfs;
    for (std::uint32_t b = 0; b < list.numBlocks(); ++b) {
        decodeBlock(list, b, docs, &tfs);
        for (std::size_t i = 0; i < docs.size(); ++i)
            out.push_back({docs[i], tfs[i]});
    }
    return out;
}

} // namespace boss::index
