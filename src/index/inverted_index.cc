#include "index/inverted_index.h"

#include <algorithm>
#include <numeric>

#include "common/crc32.h"
#include "common/logging.h"
#include "compress/codec.h"

namespace boss::index
{

InvertedIndex::InvertedIndex(Bm25Params params, std::vector<DocInfo> docs,
                             double avgDocLen,
                             std::vector<CompressedPostingList> lists)
    : bm25_(params, static_cast<std::uint32_t>(docs.size()), avgDocLen),
      docs_(std::move(docs)), avgDocLen_(avgDocLen),
      lists_(std::move(lists))
{
}

std::uint64_t
InvertedIndex::sizeBytes() const
{
    std::uint64_t total = docs_.size() * kDocNormBytes;
    for (const auto &list : lists_)
        total += list.sizeBytes();
    return total;
}

void
IndexBuilder::setDocLengths(std::vector<std::uint32_t> lengths)
{
    docLengths_ = std::move(lengths);
}

void
IndexBuilder::setGlobalStats(std::uint32_t numDocs, double avgDocLen)
{
    globalStats_ = GlobalStats{numDocs, avgDocLen};
}

void
IndexBuilder::addTerm(TermId term, PostingList postings)
{
    BOSS_ASSERT(isValidPostingList(postings),
                "term ", term, ": postings not sorted/unique");
    pending_.push_back({term, std::move(postings), std::nullopt});
}

void
IndexBuilder::addTerm(TermId term, PostingList postings,
                      std::uint32_t scoredDf)
{
    BOSS_ASSERT(isValidPostingList(postings),
                "term ", term, ": postings not sorted/unique");
    BOSS_ASSERT(scoredDf >= postings.size(),
                "term ", term, ": global df ", scoredDf,
                " below local posting count ", postings.size());
    pending_.push_back({term, std::move(postings), scoredDf});
}

CompressedPostingList
IndexBuilder::compressList(TermId term, const PostingList &postings,
                           compress::Scheme scheme, const Bm25 &bm25,
                           const std::vector<DocInfo> &docs,
                           std::optional<std::uint32_t> dfOverride)
{
    CompressedPostingList out;
    out.term = term;
    out.scheme = scheme;
    out.docCount = static_cast<std::uint32_t>(postings.size());
    out.idf =
        static_cast<float>(bm25.idf(dfOverride.value_or(out.docCount)));

    const compress::Codec &codec = compress::codecFor(scheme);
    std::vector<std::uint32_t> gaps;
    std::vector<std::uint32_t> tfs;
    compress::BlockEncoding enc;

    DocId prevLast = 0;
    for (std::size_t begin = 0; begin < postings.size();
         begin += kBlockSize) {
        std::size_t count =
            std::min<std::size_t>(kBlockSize, postings.size() - begin);

        gaps.clear();
        tfs.clear();
        float maxScore = 0.f;
        DocId prev = prevLast;
        for (std::size_t i = 0; i < count; ++i) {
            const Posting &p = postings[begin + i];
            BOSS_ASSERT(p.doc < docs.size(),
                        "posting references unknown doc ", p.doc);
            gaps.push_back(p.doc - prev);
            prev = p.doc;
            tfs.push_back(p.tf);
            float s = bm25.termScore(out.idf, p.tf, docs[p.doc].norm);
            maxScore = std::max(maxScore, s);
        }

        BlockMeta meta;
        meta.firstIndex = static_cast<std::uint32_t>(begin);
        meta.firstDoc = postings[begin].doc;
        meta.lastDoc = postings[begin + count - 1].doc;
        meta.maxTermScore = maxScore;
        meta.numElems = static_cast<std::uint8_t>(count);

        if (!codec.encode(gaps, enc)) {
            // Scheme cannot represent this block (e.g. S16 with a
            // gap >= 2^28): fall back to BitPacking for this list.
            // Callers doing hybrid selection will simply never pick
            // an unencodable scheme; forcing one is a user error.
            BOSS_FATAL("scheme ", schemeName(scheme),
                       " cannot encode term ", term);
        }
        meta.docOffset = static_cast<std::uint32_t>(out.docPayload.size());
        meta.docBytes = static_cast<std::uint32_t>(enc.bytes.size());
        meta.docCrc = crc32(enc.bytes.data(), enc.bytes.size());
        meta.bitWidth = enc.bitWidth;
        meta.exceptionInfo = enc.exceptionCount;
        out.docPayload.append(enc.bytes.data(), enc.bytes.size());

        if (!codec.encode(tfs, enc)) {
            BOSS_FATAL("scheme ", schemeName(scheme),
                       " cannot encode tf stream of term ", term);
        }
        meta.tfOffset = static_cast<std::uint32_t>(out.tfPayload.size());
        meta.tfBytes = static_cast<std::uint32_t>(enc.bytes.size());
        meta.tfCrc = crc32(enc.bytes.data(), enc.bytes.size());
        out.tfPayload.append(enc.bytes.data(), enc.bytes.size());

        out.blocks.push_back(meta);
        out.maxTermScore = std::max(out.maxTermScore, maxScore);
        prevLast = meta.lastDoc;
    }
    return out;
}

CompressedPostingList
IndexBuilder::buildList(TermId term, const PostingList &postings,
                        std::optional<compress::Scheme> forced,
                        const Bm25 &bm25,
                        const std::vector<DocInfo> &docs,
                        std::optional<std::uint32_t> dfOverride)
{
    if (postings.empty()) {
        CompressedPostingList out;
        out.term = term;
        // A term with postings elsewhere in the corpus still
        // carries its global idf; a corpus-wide empty term keeps
        // the default 0 like an unsharded build.
        if (dfOverride && *dfOverride > 0)
            out.idf = static_cast<float>(bm25.idf(*dfOverride));
        return out;
    }
    if (forced.has_value())
        return compressList(term, postings, *forced, bm25, docs,
                            dfOverride);

    // Hybrid: smallest total size wins (paper Fig. 3 "Hybrid").
    CompressedPostingList best;
    bool first = true;
    for (compress::Scheme s : compress::kAllSchemes) {
        if (s == compress::Scheme::PFD)
            continue; // same format as OptPFD, never smaller
        // Skip schemes that cannot represent some block; S16 is
        // the only candidate (gaps >= 2^28).
        if (s == compress::Scheme::S16) {
            bool ok = true;
            DocId prev = 0;
            for (const auto &p : postings) {
                if (p.doc - prev >= (1u << 28) || p.tf >= (1u << 28)) {
                    ok = false;
                    break;
                }
                prev = p.doc;
            }
            if (!ok)
                continue;
        }
        CompressedPostingList trial =
            compressList(term, postings, s, bm25, docs, dfOverride);
        if (first || trial.sizeBytes() < best.sizeBytes()) {
            best = std::move(trial);
            first = false;
        }
    }
    return best;
}

InvertedIndex
IndexBuilder::build()
{
    BOSS_ASSERT(!docLengths_.empty(), "setDocLengths() before build()");

    double localAvgLen =
        std::accumulate(docLengths_.begin(), docLengths_.end(), 0.0) /
        static_cast<double>(docLengths_.size());

    // Shard builds score against the corpus-wide statistics so every
    // shard stores the same idf / norm floats it would get in an
    // unsharded build.
    double scoredAvgLen =
        globalStats_ ? globalStats_->avgDocLen : localAvgLen;
    std::uint32_t scoredNumDocs =
        globalStats_ ? globalStats_->numDocs
                     : static_cast<std::uint32_t>(docLengths_.size());
    Bm25 bm25(params_, scoredNumDocs, scoredAvgLen);

    std::vector<DocInfo> docs(docLengths_.size());
    for (std::size_t d = 0; d < docLengths_.size(); ++d) {
        docs[d].length = docLengths_[d];
        docs[d].norm = bm25.docNorm(docLengths_[d]);
    }

    // Lists are stored indexed by TermId.
    TermId maxTerm = 0;
    for (const auto &entry : pending_)
        maxTerm = std::max(maxTerm, entry.term);
    std::vector<CompressedPostingList> lists(
        pending_.empty() ? 0 : maxTerm + 1);

    for (auto &entry : pending_) {
        lists[entry.term] = buildList(entry.term, entry.postings,
                                      forced_, bm25, docs,
                                      entry.scoredDf);
    }

    return InvertedIndex(params_, std::move(docs), scoredAvgLen,
                         std::move(lists));
}

} // namespace boss::index
