/**
 * @file
 * The inverted index: document table, per-term compressed posting
 * lists, and the builder that assembles them from raw postings.
 */

#ifndef BOSS_INDEX_INVERTED_INDEX_H
#define BOSS_INDEX_INVERTED_INDEX_H

#include <optional>
#include <string>
#include <vector>

#include "compress/scheme.h"
#include "index/bm25.h"
#include "index/compressed_list.h"
#include "index/posting_list.h"

namespace boss::index
{

/** Bytes of precomputed per-document scoring metadata (paper: 4B). */
inline constexpr std::uint32_t kDocNormBytes = 4;

/**
 * Per-document metadata: length and the precomputed BM25 norm.
 */
struct DocInfo
{
    std::uint32_t length = 0; ///< |D| in tokens
    float norm = 0.f;         ///< k1*(1 - b + b*|D|/avgdl)
};

/**
 * An immutable, fully built inverted index for one shard.
 */
class InvertedIndex
{
  public:
    InvertedIndex(Bm25Params params, std::vector<DocInfo> docs,
                  double avgDocLen,
                  std::vector<CompressedPostingList> lists);

    std::uint32_t numDocs() const
    {
        return static_cast<std::uint32_t>(docs_.size());
    }
    std::uint32_t numTerms() const
    {
        return static_cast<std::uint32_t>(lists_.size());
    }
    double avgDocLen() const { return avgDocLen_; }

    const DocInfo &doc(DocId d) const { return docs_[d]; }
    const std::vector<DocInfo> &docs() const { return docs_; }

    const CompressedPostingList &list(TermId t) const
    {
        return lists_[t];
    }
    const std::vector<CompressedPostingList> &lists() const
    {
        return lists_;
    }

    const Bm25 &scorer() const { return bm25_; }

    /** Total compressed index footprint in bytes. */
    std::uint64_t sizeBytes() const;

  private:
    Bm25 bm25_;
    std::vector<DocInfo> docs_;
    double avgDocLen_;
    std::vector<CompressedPostingList> lists_;
};

/**
 * Builds an InvertedIndex from raw posting lists.
 *
 * Scheme selection follows the paper's hybrid approach: by default
 * every posting list is encoded with all supported schemes and the
 * smallest encoding wins; a fixed scheme can be forced for ablations.
 */
class IndexBuilder
{
  public:
    explicit IndexBuilder(Bm25Params params = {}) : params_(params) {}

    /** Force one scheme for every list (hybrid selection if unset). */
    void forceScheme(compress::Scheme s) { forced_ = s; }

    /**
     * Set document lengths (token counts). Must cover every docID
     * referenced by the posting lists.
     */
    void setDocLengths(std::vector<std::uint32_t> lengths);

    /**
     * Score with corpus-wide statistics instead of the local document
     * table. Document-partitioned shards use this: every shard bakes
     * the same global numDocs / avgDocLen into its stored norms (and,
     * combined with the per-term df override of addTerm, the same
     * idf), so per-posting scores — and therefore merged top-k
     * results — are bit-identical at any shard count.
     */
    void setGlobalStats(std::uint32_t numDocs, double avgDocLen);

    /** Add one term's postings (sorted by docID, no duplicates). */
    void addTerm(TermId term, PostingList postings);

    /**
     * Add one term's postings scored with an explicit document
     * frequency (the term's corpus-wide df) instead of the local
     * posting count. Shard builders pass the global df here.
     */
    void addTerm(TermId term, PostingList postings,
                 std::uint32_t scoredDf);

    /** Assemble the final index. The builder is consumed. */
    InvertedIndex build();

    /**
     * Compress a single posting list with a given scheme; exposed for
     * tests and for the compression-ratio experiment (Fig. 3).
     * dfOverride substitutes the stored idf's document frequency
     * (shards score with the corpus-wide df, not the local count).
     */
    static CompressedPostingList
    compressList(TermId term, const PostingList &postings,
                 compress::Scheme scheme, const Bm25 &bm25,
                 const std::vector<DocInfo> &docs,
                 std::optional<std::uint32_t> dfOverride = {});

    /**
     * Produce one term's final stored list: the forced scheme when
     * given, otherwise hybrid smallest-encoding-wins over every
     * representable scheme. This is the single codepath shared by
     * build() and the live-index segment rebake (which re-encodes
     * per-segment views against live survivor statistics), so both
     * make identical scheme choices and produce identical payloads
     * for identical inputs.
     */
    static CompressedPostingList
    buildList(TermId term, const PostingList &postings,
              std::optional<compress::Scheme> forced, const Bm25 &bm25,
              const std::vector<DocInfo> &docs,
              std::optional<std::uint32_t> dfOverride = {});

  private:
    struct PendingList
    {
        TermId term;
        PostingList postings;
        std::optional<std::uint32_t> scoredDf;
    };

    struct GlobalStats
    {
        std::uint32_t numDocs;
        double avgDocLen;
    };

    Bm25Params params_;
    std::optional<compress::Scheme> forced_;
    std::optional<GlobalStats> globalStats_;
    std::vector<std::uint32_t> docLengths_;
    std::vector<PendingList> pending_;
};

} // namespace boss::index

#endif // BOSS_INDEX_INVERTED_INDEX_H
