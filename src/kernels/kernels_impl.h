/**
 * @file
 * Internal plumbing between the kernel tiers and the dispatcher.
 *
 * Each tier's translation unit defines one Ops table. The SIMD TUs
 * are compiled with their own -m flags (see CMakeLists.txt); when a
 * toolchain or target cannot build a tier, the TU falls back to the
 * scalar entry points and reports itself non-compiled, so the
 * dispatcher never exposes it. The scalar entry points are exported
 * here both for that fallback and so SIMD kernels can delegate their
 * unaligned/tail slices to the scalar code path.
 */

#ifndef BOSS_KERNELS_KERNELS_IMPL_H
#define BOSS_KERNELS_KERNELS_IMPL_H

#include "common/logging.h"
#include "kernels/kernels.h"

namespace boss::kernels::detail
{

/**
 * Decode up to @p count VarByte values with the plain continuation
 * loop, advancing @p pos. The SIMD tiers call this for a whole batch
 * when their no-continuation window test fails, so the (frequent on
 * multi-byte encodings) mixed case pays one call and one window
 * retest per batch instead of per value.
 */
inline std::size_t
decodeVarByteRun(const std::uint8_t *in, std::size_t inBytes,
                 std::size_t &pos, std::uint32_t *out,
                 std::size_t count)
{
    for (std::size_t i = 0; i < count; ++i) {
        std::uint32_t acc = 0;
        while (true) {
            BOSS_ASSERT(pos < inBytes, "VB payload truncated");
            std::uint8_t b = in[pos++];
            acc = (acc << 7) | (b & 0x7F);
            if ((b & 0x80) == 0)
                break;
        }
        out[i] = acc;
    }
    return count;
}

// Scalar reference kernels (always available).
void scalarUnpackBits(const std::uint8_t *in, std::size_t inBytes,
                      std::uint32_t *out, std::size_t n,
                      std::uint32_t width);
void scalarPrefixSum(std::uint32_t *values, std::size_t n,
                     std::uint32_t base);
std::size_t scalarDecodeVarByte(const std::uint8_t *in,
                                std::size_t inBytes,
                                std::uint32_t *out, std::size_t n);
std::size_t scalarLowerBound(const std::uint32_t *data, std::size_t n,
                             std::uint32_t key);
void scalarScoreBm25(double idf, double k1p1, const std::uint32_t *tfs,
                     const float *norms, std::size_t n, float *out);

extern const Ops kScalarOps;
extern const Ops kSse42Ops;
extern const Ops kAvx2Ops;

/** True when the tier's TU was compiled with its intrinsics. */
extern const bool kSse42Compiled;
extern const bool kAvx2Compiled;

} // namespace boss::kernels::detail

#endif // BOSS_KERNELS_KERNELS_IMPL_H
