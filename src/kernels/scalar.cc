/**
 * @file
 * Scalar (portable) kernel tier -- the bit-exact reference every
 * SIMD tier is tested against, and itself much faster than the
 * seed's per-element BitReader loop: the unpack kernel reads one
 * unaligned 64-bit window per value instead of refilling a bit
 * accumulator byte by byte, and the VarByte kernel decodes eight
 * single-byte values per 64-bit load on the (dominant) small-gap
 * path.
 */

#include <array>
#include <cstring>
#include <utility>

#include "common/bitops.h"
#include "common/logging.h"
#include "kernels/kernels_impl.h"

namespace boss::kernels::detail
{

namespace
{

/** Little-endian load of up to 8 bytes; missing bytes read as 0. */
inline std::uint64_t
loadTail64(const std::uint8_t *p, std::size_t avail)
{
    std::uint64_t w = 0;
    std::memcpy(&w, p, avail < 8 ? avail : 8);
    return w;
}

// ---------------------------------------------------------------
// Per-bit-width fully unrolled unpack (simdcomp-style fastunpack).
//
// With a constant width W, 32 consecutive values occupy exactly W
// little-endian 32-bit words, and every value's word index and shift
// are compile-time constants. The templates below expand one
// straight-line extraction per value -- no bit accumulator, no
// per-element branches -- and a table indexed by width selects the
// right instantiation at runtime.
// ---------------------------------------------------------------

template <unsigned W, unsigned J>
inline std::uint32_t
extractValue(const std::uint32_t *words)
{
    constexpr unsigned bit = J * W;
    constexpr unsigned wi = bit / 32;
    constexpr unsigned sh = bit % 32;
    constexpr std::uint32_t mask =
        W >= 32 ? 0xFFFFFFFFu : ((1u << W) - 1u);
    std::uint32_t v = words[wi] >> sh;
    if constexpr (sh + W > 32)
        v |= words[wi + 1] << (32 - sh);
    return v & mask;
}

template <unsigned W, std::size_t... J>
inline void
unpack32Impl(const std::uint32_t *words, std::uint32_t *out,
             std::index_sequence<J...>)
{
    ((out[J] = extractValue<W, static_cast<unsigned>(J)>(words)), ...);
}

/** Unpack 32 W-bit values; consumes exactly 4*W input bytes. */
template <unsigned W>
void
unpack32(const std::uint8_t *in, std::uint32_t *out)
{
    std::uint32_t words[W];
    std::memcpy(words, in, sizeof(words));
    unpack32Impl<W>(words, out, std::make_index_sequence<32>{});
}

using Unpack32Fn = void (*)(const std::uint8_t *, std::uint32_t *);

template <std::size_t... W>
constexpr std::array<Unpack32Fn, 33>
makeUnpackTable(std::index_sequence<W...>)
{
    // Width 0 never occurs (encoders clamp to >= 1); keep a null
    // slot so the table is indexed directly by width.
    return {nullptr, &unpack32<static_cast<unsigned>(W + 1)>...};
}

constexpr std::array<Unpack32Fn, 33> kUnpack32 =
    makeUnpackTable(std::make_index_sequence<32>{});

} // namespace

void
scalarUnpackBits(const std::uint8_t *in, std::size_t inBytes,
                 std::uint32_t *out, std::size_t n, std::uint32_t width)
{
    BOSS_ASSERT(width >= 1 && width <= 32, "bad unpack width ", width);
    const std::uint64_t mask =
        width >= 32 ? 0xFFFFFFFFull : ((1ull << width) - 1);

    // Whole 32-value groups through the unrolled kernel. Each group
    // consumes exactly 4*width bytes, so a full 128-entry block is
    // four straight-line calls and never reads past the payload.
    std::uint64_t bit = 0;
    std::size_t j = 0;
    const Unpack32Fn unpack = kUnpack32[width];
    while (n - j >= 32 && (bit >> 3) + 4ull * width <= inBytes) {
        unpack(in + (bit >> 3), out + j);
        j += 32;
        bit += 32ull * width;
    }

    // Remaining values via 64-bit windows: a window at byte
    // (bit / 8) always contains the value (shift <= 7, 7 + 32 <=
    // 64). Windows that would cross the end of the input take the
    // zero-padded tail path, so reads stay strictly inside
    // [in, in + inBytes) and bits past the end read as zero
    // (BitReader semantics).
    std::size_t nFast = 0;
    if (inBytes >= 8) {
        // Largest j with (j*width)/8 + 8 <= inBytes, clamped to n.
        std::uint64_t maxBit =
            (static_cast<std::uint64_t>(inBytes) - 8) * 8 + 7;
        std::uint64_t jMax = maxBit / width + 1;
        nFast = jMax < n ? static_cast<std::size_t>(jMax) : n;
    }
    for (; j < nFast; ++j) {
        std::uint64_t w;
        std::memcpy(&w, in + (bit >> 3), 8);
        out[j] = static_cast<std::uint32_t>((w >> (bit & 7)) & mask);
        bit += width;
    }
    for (; j < n; ++j) {
        std::size_t off = static_cast<std::size_t>(bit >> 3);
        std::uint64_t w =
            off < inBytes ? loadTail64(in + off, inBytes - off) : 0;
        out[j] = static_cast<std::uint32_t>((w >> (bit & 7)) & mask);
        bit += width;
    }
}

void
scalarPrefixSum(std::uint32_t *values, std::size_t n, std::uint32_t base)
{
    std::uint32_t acc = base;
    for (std::size_t i = 0; i < n; ++i) {
        acc += values[i];
        values[i] = acc;
    }
}

std::size_t
scalarDecodeVarByte(const std::uint8_t *in, std::size_t inBytes,
                    std::uint32_t *out, std::size_t n)
{
    std::size_t pos = 0;
    std::size_t i = 0;
    while (i < n) {
        // Fast path: a 64-bit window with no continuation bits is
        // eight complete single-byte values.
        if (i + 8 <= n && pos + 8 <= inBytes) {
            std::uint64_t w;
            std::memcpy(&w, in + pos, 8);
            if ((w & 0x8080808080808080ull) == 0) {
                for (int b = 0; b < 8; ++b)
                    out[i + b] =
                        static_cast<std::uint32_t>((w >> (8 * b)) & 0x7F);
                i += 8;
                pos += 8;
                continue;
            }
        }
        std::uint32_t acc = 0;
        while (true) {
            BOSS_ASSERT(pos < inBytes, "VB payload truncated");
            std::uint8_t b = in[pos++];
            acc = (acc << 7) | (b & 0x7F);
            if ((b & 0x80) == 0)
                break;
        }
        out[i++] = acc;
    }
    return pos;
}

std::size_t
scalarLowerBound(const std::uint32_t *data, std::size_t n,
                 std::uint32_t key)
{
    // Branchless binary search: every iteration halves the window
    // with a conditional-move instead of a predicted branch.
    std::size_t base = 0;
    std::size_t len = n;
    while (len > 1) {
        std::size_t half = len / 2;
        base += data[base + half - 1] < key ? half : 0;
        len -= half;
    }
    if (len == 1 && data[base] < key)
        ++base;
    return base;
}

void
scalarScoreBm25(double idf, double k1p1, const std::uint32_t *tfs,
                const float *norms, std::size_t n, float *out)
{
    for (std::size_t i = 0; i < n; ++i) {
        double f = static_cast<double>(tfs[i]);
        out[i] = static_cast<float>(
            idf * f * k1p1 / (f + static_cast<double>(norms[i])));
    }
}

const Ops kScalarOps = {
    &scalarUnpackBits, &scalarPrefixSum, &scalarDecodeVarByte,
    &scalarLowerBound, &scalarScoreBm25,
};

} // namespace boss::kernels::detail
