/**
 * @file
 * Kernel tier detection and dispatch.
 *
 * Tier resolution happens once, on the first ops() call: the
 * BOSS_KERNELS environment variable is consulted ("scalar",
 * "sse42", "avx2", or "auto"), then CPUID. The active table is held
 * in an atomic pointer so concurrent readers on the query path pay
 * one relaxed load; setTier() (tests, CLI --kernels) swaps it from
 * single-threaded context.
 */

#include "kernels/kernels_impl.h"

#include <atomic>
#include <cstdlib>
#include <mutex>

#include "common/logging.h"

namespace boss::kernels
{

namespace
{

using detail::kAvx2Compiled;
using detail::kAvx2Ops;
using detail::kScalarOps;
using detail::kSse42Compiled;
using detail::kSse42Ops;

/** Host CPU support for a tier's instruction set. */
bool
cpuSupports(Tier t)
{
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
    switch (t) {
      case Tier::Scalar: return true;
      case Tier::Sse42: return __builtin_cpu_supports("sse4.2") != 0;
      case Tier::Avx2: return __builtin_cpu_supports("avx2") != 0;
    }
    return false;
#else
    return t == Tier::Scalar;
#endif
}

bool
tierCompiled(Tier t)
{
    switch (t) {
      case Tier::Scalar: return true;
      case Tier::Sse42: return kSse42Compiled;
      case Tier::Avx2: return kAvx2Compiled;
    }
    return false;
}

const Ops *
tableFor(Tier t)
{
    switch (t) {
      case Tier::Scalar: return &kScalarOps;
      case Tier::Sse42: return &kSse42Ops;
      case Tier::Avx2: return &kAvx2Ops;
    }
    BOSS_PANIC("unknown kernel tier");
}

std::atomic<const Ops *> gActiveOps{nullptr};
std::atomic<Tier> gActiveTier{Tier::Scalar};
std::once_flag gInitOnce;

void
activate(Tier t)
{
    gActiveTier.store(t, std::memory_order_relaxed);
    gActiveOps.store(tableFor(t), std::memory_order_release);
}

/** Resolve the startup tier: BOSS_KERNELS env var, then CPUID. */
void
initFromEnvironment()
{
    const char *env = std::getenv("BOSS_KERNELS");
    if (env != nullptr && env[0] != '\0') {
        std::string_view name(env);
        if (name != "auto") {
            Tier t;
            if (name == "scalar") {
                t = Tier::Scalar;
            } else if (name == "sse42") {
                t = Tier::Sse42;
            } else if (name == "avx2") {
                t = Tier::Avx2;
            } else {
                BOSS_FATAL("BOSS_KERNELS='", env,
                           "' is not scalar|sse42|avx2|auto");
            }
            if (!tierSupported(t))
                BOSS_FATAL("BOSS_KERNELS='", env,
                           "' requests a kernel tier this host "
                           "does not support");
            activate(t);
            return;
        }
    }
    activate(bestSupportedTier());
}

void
ensureInit()
{
    std::call_once(gInitOnce, initFromEnvironment);
}

} // namespace

std::string_view
tierName(Tier t)
{
    switch (t) {
      case Tier::Scalar: return "scalar";
      case Tier::Sse42: return "sse42";
      case Tier::Avx2: return "avx2";
    }
    return "?";
}

bool
tierSupported(Tier t)
{
    return cpuSupports(t) && tierCompiled(t);
}

Tier
bestSupportedTier()
{
    if (tierSupported(Tier::Avx2))
        return Tier::Avx2;
    if (tierSupported(Tier::Sse42))
        return Tier::Sse42;
    return Tier::Scalar;
}

std::vector<Tier>
availableTiers()
{
    std::vector<Tier> tiers{Tier::Scalar};
    if (tierSupported(Tier::Sse42))
        tiers.push_back(Tier::Sse42);
    if (tierSupported(Tier::Avx2))
        tiers.push_back(Tier::Avx2);
    return tiers;
}

Tier
activeTier()
{
    ensureInit();
    return gActiveTier.load(std::memory_order_relaxed);
}

std::string_view
activeTierName()
{
    return tierName(activeTier());
}

void
setTier(Tier t)
{
    ensureInit();
    if (!tierSupported(t))
        BOSS_FATAL("kernel tier '", tierName(t),
                   "' is not supported on this host");
    activate(t);
}

bool
setTierByName(std::string_view name)
{
    if (name == "auto") {
        ensureInit();
        activate(bestSupportedTier());
        return true;
    }
    Tier t;
    if (name == "scalar") {
        t = Tier::Scalar;
    } else if (name == "sse42") {
        t = Tier::Sse42;
    } else if (name == "avx2") {
        t = Tier::Avx2;
    } else {
        return false;
    }
    setTier(t);
    return true;
}

const Ops &
ops()
{
    const Ops *p = gActiveOps.load(std::memory_order_acquire);
    if (p == nullptr) {
        ensureInit();
        p = gActiveOps.load(std::memory_order_acquire);
    }
    return *p;
}

const Ops &
opsFor(Tier t)
{
    if (!tierSupported(t))
        BOSS_FATAL("kernel tier '", tierName(t),
                   "' is not supported on this host");
    return *tableFor(t);
}

} // namespace boss::kernels
