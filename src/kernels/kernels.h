/**
 * @file
 * Runtime-dispatched CPU kernels for the block decode/score datapath.
 *
 * BOSS decompresses fixed 128-entry posting blocks and scores them at
 * line rate; on the host side that datapath reduces to five scalar
 * loops (bit unpack, delta prefix-sum, VarByte decode, in-block
 * search, BM25 term scoring). This module provides those loops as
 * per-tier kernels -- portable scalar, SSE4.2 and AVX2 -- selected
 * once at startup from CPUID, with two hard guarantees:
 *
 *  1. Bit-exactness. Every tier produces byte-identical output to the
 *     scalar tier for every input, including float scoring (the SIMD
 *     scorer performs the exact IEEE op sequence of Bm25::termScore,
 *     and no kernel translation unit enables FMA contraction). The
 *     golden top-k fixture and the codec fuzz suite enforce this
 *     under every available tier.
 *
 *  2. Memory safety. Kernels never read or write outside the spans
 *     they are handed -- no trailing-slack contract, no overreads --
 *     so they are ASan-clean on arbitrary buffers.
 *
 * Tier selection: the best CPUID-supported tier wins by default; the
 * BOSS_KERNELS environment variable (scalar|sse42|avx2|auto) or
 * setTier()/setTierByName() (CLI --kernels flag, tests) override it.
 * Overrides requesting an unsupported tier fail loudly rather than
 * silently degrading.
 */

#ifndef BOSS_KERNELS_KERNELS_H
#define BOSS_KERNELS_KERNELS_H

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace boss::kernels
{

/** Instruction-set tiers, ordered from baseline to best. */
enum class Tier : std::uint8_t
{
    Scalar = 0,
    Sse42 = 1,
    Avx2 = 2,
};

/** Lower-case tier name ("scalar", "sse42", "avx2"). */
std::string_view tierName(Tier t);

/**
 * True when tier @p t can run here: the host CPU reports the feature
 * and the build compiled the tier's translation unit with the
 * matching -m flags.
 */
bool tierSupported(Tier t);

/** The best supported tier on this host (>= Tier::Scalar). */
Tier bestSupportedTier();

/** All supported tiers, baseline first (always contains Scalar). */
std::vector<Tier> availableTiers();

/**
 * The tier whose kernels ops() currently returns. Resolved on first
 * use from BOSS_KERNELS (default: auto = bestSupportedTier()).
 */
Tier activeTier();

/** Name of the active tier (for stats/summary fields). */
std::string_view activeTierName();

/**
 * Force the active tier. Fatal if @p t is not supported on this
 * host. Not thread-safe against in-flight queries: call at startup
 * or from single-threaded test code.
 */
void setTier(Tier t);

/**
 * Parse and apply a tier override: "scalar", "sse42", "avx2" or
 * "auto". Returns false (and changes nothing) on an unknown name;
 * fatal if the named tier is unsupported on this host.
 */
bool setTierByName(std::string_view name);

/**
 * One tier's kernel table. All function pointers are always valid.
 */
struct Ops
{
    /**
     * Unpack @p n values of @p width bits (1..32) from the LSB-first
     * contiguous bitstream at [@p in, @p in + @p inBytes). Matches
     * BitWriter's layout; like BitReader, bits past the end of the
     * stream read as zero. Never touches memory outside the input
     * span or out[0, n).
     */
    void (*unpackBits)(const std::uint8_t *in, std::size_t inBytes,
                       std::uint32_t *out, std::size_t n,
                       std::uint32_t width);

    /**
     * In-place inclusive prefix sum over values[0, n) with carry-in
     * @p base: values[i] <- base + values[0] + ... + values[i], with
     * uint32 wrap-around (the delta -> absolute docID reconstruction).
     */
    void (*prefixSum)(std::uint32_t *values, std::size_t n,
                      std::uint32_t base);

    /**
     * Decode @p n VarByte values (MSB-first 7-bit groups, 0x80
     * continuation -- VarByteCodec's format). Fatal on a truncated
     * stream, mirroring the scalar decoder's assertion. Returns the
     * number of input bytes consumed.
     */
    std::size_t (*decodeVarByte)(const std::uint8_t *in,
                                 std::size_t inBytes,
                                 std::uint32_t *out, std::size_t n);

    /**
     * First index i in the ascending array data[0, n) with
     * data[i] >= key; n when every element is smaller. Branchless /
     * SIMD replacement for std::lower_bound on <= 128-entry blocks.
     */
    std::size_t (*lowerBound)(const std::uint32_t *data, std::size_t n,
                              std::uint32_t key);

    /**
     * Batch BM25 term scoring:
     *   out[i] = float(idf * tf[i] * k1p1 / (tf[i] + double(norm[i])))
     * -- the exact op sequence of Bm25::termScore, so results are
     * bit-identical to the scalar scorer in every tier.
     */
    void (*scoreBm25)(double idf, double k1p1,
                      const std::uint32_t *tfs, const float *norms,
                      std::size_t n, float *out);
};

/** The active tier's kernel table. */
const Ops &ops();

/** A specific tier's table (fatal if unsupported). */
const Ops &opsFor(Tier t);

} // namespace boss::kernels

#endif // BOSS_KERNELS_KERNELS_H
