/**
 * @file
 * SSE4.2 kernel tier. Bit unpack for w <= 16 uses the same 16-byte
 * group-window + byte-shuffle scheme as the AVX2 tier, split across
 * two xmm vectors; SSE has no per-lane variable shift, so each lane
 * is normalized with a pmulld by 2^(7 - shift) followed by a fixed
 * >> 7 (exact: shift + width <= 23 < 32 bits survive the multiply).
 * Wider widths delegate to the scalar 64-bit-window loop. Further
 * wins are the 4-lane inclusive-scan prefix sum, the 16-byte VarByte
 * fast path, and the vectorized in-block lower bound. Compiled with
 * -msse4.2 (see CMakeLists.txt); on toolchains/targets without it,
 * the table falls back to scalar entries and reports non-compiled,
 * so the dispatcher never selects it.
 */

#include "kernels/kernels_impl.h"

#if defined(__SSE4_2__)

#include <nmmintrin.h>
#include <smmintrin.h>

#include <cstring>

namespace boss::kernels::detail
{

namespace
{

// Per-width shuffle/multiplier constants for the w <= 16 unpack
// path: an 8-value group spans exactly w <= 16 bytes, and value k's
// bytes [(kw >> 3), (kw + w - 1) >> 3] all index inside the 16-byte
// window (8*16 - 1 = 127 -> byte 15). Bytes outside a value's span
// shuffle in as zero (0x80).
struct SseShufTable {
    std::uint8_t shufLo[17][16];
    std::uint8_t shufHi[17][16];
    std::uint32_t mul[17][8]; // 2^(7 - ((k*w) & 7))
};

constexpr SseShufTable
makeSseShufTable()
{
    SseShufTable t{};
    for (unsigned w = 1; w <= 16; ++w) {
        for (unsigned k = 0; k < 8; ++k) {
            unsigned first = (k * w) >> 3;
            unsigned last = (k * w + w - 1) >> 3;
            for (unsigned b = 0; b < 4; ++b) {
                unsigned idx = first + b;
                std::uint8_t v =
                    idx <= last ? static_cast<std::uint8_t>(idx)
                                : std::uint8_t{0x80};
                if (k < 4)
                    t.shufLo[w][k * 4 + b] = v;
                else
                    t.shufHi[w][(k - 4) * 4 + b] = v;
            }
            t.mul[w][k] = 1u << (7 - ((k * w) & 7));
        }
    }
    return t;
}

constexpr SseShufTable kSseShuf = makeSseShufTable();

/**
 * Unpack `groups` 8-value groups of width <= 16. The caller
 * guarantees `in` is readable for (groups - 1) * width + 16 bytes.
 */
inline void
sseUnpackGroups16(const std::uint8_t *in, std::uint32_t *out,
                  std::size_t groups, std::uint32_t w)
{
    const __m128i shufLo = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(kSseShuf.shufLo[w]));
    const __m128i shufHi = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(kSseShuf.shufHi[w]));
    const __m128i mulLo = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(kSseShuf.mul[w]));
    const __m128i mulHi = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(kSseShuf.mul[w] + 4));
    const __m128i mask =
        _mm_set1_epi32(static_cast<int>((1u << w) - 1u));
    for (std::size_t g = 0; g < groups; ++g) {
        __m128i win = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(in + g * w));
        __m128i lo = _mm_and_si128(
            _mm_srli_epi32(
                _mm_mullo_epi32(_mm_shuffle_epi8(win, shufLo), mulLo),
                7),
            mask);
        __m128i hi = _mm_and_si128(
            _mm_srli_epi32(
                _mm_mullo_epi32(_mm_shuffle_epi8(win, shufHi), mulHi),
                7),
            mask);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(out + 8 * g), lo);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(out + 8 * g + 4),
                         hi);
    }
}

void
sseUnpackBits(const std::uint8_t *in, std::size_t inBytes,
              std::uint32_t *out, std::size_t n, std::uint32_t width)
{
    if (width > 16 || n < 8) {
        scalarUnpackBits(in, inBytes, out, n, width);
        return;
    }
    const std::uint32_t w = width;
    // Chunks of <= 16 groups (one full block); inputs too short for
    // the last group's 16-byte window are staged through a
    // zero-padded stack buffer (padding decodes as zero, matching
    // BitReader past-the-end semantics).
    while (n >= 8) {
        std::size_t groups = n / 8 < 16 ? n / 8 : 16;
        std::size_t lastEnd = (groups - 1) * w + 16;
        if (inBytes >= lastEnd) {
            sseUnpackGroups16(in, out, groups, w);
        } else {
            alignas(16) std::uint8_t buf[16 * 16 + 16];
            std::memset(buf, 0, sizeof(buf));
            std::size_t copy =
                inBytes < sizeof(buf) ? inBytes : sizeof(buf);
            std::memcpy(buf, in, copy);
            sseUnpackGroups16(buf, out, groups, w);
        }
        // Each group consumes exactly w bytes (8w bits); on a
        // truncated input, stop advancing at the end.
        std::size_t consumed = groups * w;
        std::size_t adv = consumed < inBytes ? consumed : inBytes;
        in += adv;
        inBytes -= adv;
        out += groups * 8;
        n -= groups * 8;
    }
    if (n > 0)
        scalarUnpackBits(in, inBytes, out, n, width);
}

void
ssePrefixSum(std::uint32_t *values, std::size_t n, std::uint32_t base)
{
    std::size_t i = 0;
    __m128i carry = _mm_set1_epi32(static_cast<int>(base));
    for (; i + 4 <= n; i += 4) {
        __m128i x = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(values + i));
        // In-register inclusive scan: x += x<<32; x += x<<64.
        x = _mm_add_epi32(x, _mm_slli_si128(x, 4));
        x = _mm_add_epi32(x, _mm_slli_si128(x, 8));
        x = _mm_add_epi32(x, carry);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(values + i), x);
        // Broadcast the new running total (lane 3).
        carry = _mm_shuffle_epi32(x, 0xFF);
    }
    std::uint32_t acc =
        static_cast<std::uint32_t>(_mm_cvtsi128_si32(carry));
    for (; i < n; ++i) {
        acc += values[i];
        values[i] = acc;
    }
}

std::size_t
sseDecodeVarByte(const std::uint8_t *in, std::size_t inBytes,
                 std::uint32_t *out, std::size_t n)
{
    std::size_t pos = 0;
    std::size_t i = 0;
    while (i < n) {
        // 16 bytes with no continuation bit are 16 complete values.
        if (i + 16 <= n && pos + 16 <= inBytes) {
            __m128i v = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(in + pos));
            if (_mm_movemask_epi8(v) == 0) {
                __m128i lo = _mm_cvtepu8_epi32(v);
                __m128i v2 = _mm_srli_si128(v, 4);
                __m128i v3 = _mm_srli_si128(v, 8);
                __m128i v4 = _mm_srli_si128(v, 12);
                _mm_storeu_si128(reinterpret_cast<__m128i *>(out + i),
                                 lo);
                _mm_storeu_si128(
                    reinterpret_cast<__m128i *>(out + i + 4),
                    _mm_cvtepu8_epi32(v2));
                _mm_storeu_si128(
                    reinterpret_cast<__m128i *>(out + i + 8),
                    _mm_cvtepu8_epi32(v3));
                _mm_storeu_si128(
                    reinterpret_cast<__m128i *>(out + i + 12),
                    _mm_cvtepu8_epi32(v4));
                i += 16;
                pos += 16;
                continue;
            }
            // Mixed widths: decode a batch plainly, then retest.
            i += decodeVarByteRun(in, inBytes, pos, out + i, 8);
            continue;
        }
        // Tail: one value at a time via the plain loop.
        i += decodeVarByteRun(in, inBytes, pos, out + i, 1);
    }
    return pos;
}

std::size_t
sseLowerBound(const std::uint32_t *data, std::size_t n,
              std::uint32_t key)
{
    // count(data[i] < key) over the sorted block equals the lower
    // bound. Whole 16-element chunks are skipped with one compare
    // against their last element; the landing chunk is counted with
    // unsigned SIMD compares (sign-flip trick).
    std::size_t i = 0;
    while (i + 16 <= n && data[i + 15] < key)
        i += 16;
    std::size_t cnt = i;
    const __m128i flip = _mm_set1_epi32(
        static_cast<int>(0x80000000u));
    const __m128i keyv = _mm_xor_si128(
        _mm_set1_epi32(static_cast<int>(key)), flip);
    for (; i + 4 <= n; i += 4) {
        __m128i x = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(data + i));
        // key > x  (unsigned)  <=>  x < key.
        __m128i lt = _mm_cmpgt_epi32(keyv, _mm_xor_si128(x, flip));
        int m = _mm_movemask_ps(_mm_castsi128_ps(lt));
        cnt += static_cast<std::size_t>(_mm_popcnt_u32(
            static_cast<unsigned>(m)));
        if (m != 0xF)
            return cnt; // first >= key found in this vector
    }
    for (; i < n; ++i) {
        if (data[i] < key)
            ++cnt;
        else
            break;
    }
    return cnt;
}

} // namespace

const Ops kSse42Ops = {
    &sseUnpackBits, &ssePrefixSum, &sseDecodeVarByte,
    &sseLowerBound, &scalarScoreBm25,
};
const bool kSse42Compiled = true;

} // namespace boss::kernels::detail

#else // !__SSE4_2__

namespace boss::kernels::detail
{

const Ops kSse42Ops = kScalarOps;
const bool kSse42Compiled = false;

} // namespace boss::kernels::detail

#endif
