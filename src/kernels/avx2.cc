/**
 * @file
 * AVX2 kernel tier.
 *
 * Bit unpack exploits a property of the fixed LSB-first layout: with
 * a constant width w, value j = 8g+k starts at bit 8gw + kw, so a
 * group of 8 values has constant per-lane byte offsets (kw >> 3) and
 * shifts (kw & 7) relative to a group base that advances by exactly
 * w bytes. For w <= 16 the whole group spans w <= 16 bytes, so one
 * 16-byte load broadcast to both ymm lanes plus a per-width byte
 * shuffle (constexpr table), a variable shift, and a mask emits 8
 * values -- no gather. Widths 17..25 use one 32-bit gather per 8
 * values. Inputs too short for a full vector window are staged
 * through a zero-padded stack buffer, so no load ever leaves the
 * input span (ASan-clean on any buffer).
 *
 * The prefix sum is the classic in-register inclusive scan (shift-
 * add within 128-bit lanes, then lane/vector carry propagation);
 * integer adds make it trivially bit-exact. The BM25 scorer runs
 * 4-wide in double precision with the exact op sequence of
 * Bm25::termScore (mul, mul, div over add); this TU deliberately
 * compiles without -mfma so nothing can contract into an FMA and
 * change rounding versus the scalar tier.
 */

#include "kernels/kernels_impl.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <cstring>

namespace boss::kernels::detail
{

namespace
{

// Per-width shuffle constants for the w <= 16 unpack path. With a
// 16-byte group window broadcast to both ymm lanes, lane k's value
// lives in the bytes [(kw >> 3), (kw + w - 1) >> 3] at bit offset
// (kw & 7). All indexes are <= 15 because 8 values span exactly 8w
// bits and 8*16 - 1 = 127 -> byte 15. Bytes outside a value's span
// shuffle in as zero (0x80), which the post-shift mask would discard
// anyway, so garbage can never alias real data.
struct ShufTable {
    std::uint8_t shuf[17][32];
    std::uint32_t shift[17][8];
};

constexpr ShufTable
makeShufTable()
{
    ShufTable t{};
    for (unsigned w = 1; w <= 16; ++w) {
        for (unsigned k = 0; k < 8; ++k) {
            unsigned first = (k * w) >> 3;
            unsigned last = (k * w + w - 1) >> 3;
            for (unsigned b = 0; b < 4; ++b) {
                unsigned slot =
                    (k < 4 ? k * 4 : 16 + (k - 4) * 4) + b;
                unsigned idx = first + b;
                t.shuf[w][slot] = idx <= last
                                      ? static_cast<std::uint8_t>(idx)
                                      : std::uint8_t{0x80};
            }
            t.shift[w][k] = (k * w) & 7;
        }
    }
    return t;
}

constexpr ShufTable kShuf = makeShufTable();

/**
 * Unpack `groups` 8-value groups of width <= 16. The caller
 * guarantees `in` is readable for (groups - 1) * width + 16 bytes.
 */
inline void
avx2UnpackGroups16(const std::uint8_t *in, std::uint32_t *out,
                   std::size_t groups, std::uint32_t w)
{
    const __m256i shuf = _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(kShuf.shuf[w]));
    const __m256i shifts = _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(kShuf.shift[w]));
    const __m256i mask =
        _mm256_set1_epi32(static_cast<int>((1u << w) - 1u));
    for (std::size_t g = 0; g < groups; ++g) {
        __m256i win = _mm256_broadcastsi128_si256(_mm_loadu_si128(
            reinterpret_cast<const __m128i *>(in + g * w)));
        __m256i vals = _mm256_and_si256(
            _mm256_srlv_epi32(_mm256_shuffle_epi8(win, shuf), shifts),
            mask);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + 8 * g),
                            vals);
    }
}

void
avx2UnpackBits(const std::uint8_t *in, std::size_t inBytes,
               std::uint32_t *out, std::size_t n, std::uint32_t width)
{
    // Widths above 25 bits can straddle a 32-bit window (shift +
    // width > 32); they are rare for d-gaps, so take the scalar
    // 64-bit-window path.
    if (width > 25 || n < 8) {
        scalarUnpackBits(in, inBytes, out, n, width);
        return;
    }

    const std::uint32_t w = width;

    if (w <= 16) {
        // Shuffle path, in chunks of <= 16 groups (one full block).
        // When the input has fewer bytes than the last group's
        // 16-byte window needs, the chunk is staged through a
        // zero-padded stack buffer; padding bits decode as zero,
        // matching BitReader past-the-end semantics.
        while (n >= 8) {
            std::size_t groups = n / 8 < 16 ? n / 8 : 16;
            std::size_t lastEnd = (groups - 1) * w + 16;
            if (inBytes >= lastEnd) {
                avx2UnpackGroups16(in, out, groups, w);
            } else {
                alignas(32) std::uint8_t buf[16 * 16 + 16];
                std::memset(buf, 0, sizeof(buf));
                std::size_t copy =
                    inBytes < sizeof(buf) ? inBytes : sizeof(buf);
                std::memcpy(buf, in, copy);
                avx2UnpackGroups16(buf, out, groups, w);
            }
            // Each group consumes exactly w bytes (8w bits). On a
            // truncated input, stop advancing at the end; everything
            // from there on decodes as zero regardless of position.
            std::size_t consumed = groups * w;
            std::size_t adv = consumed < inBytes ? consumed : inBytes;
            in += adv;
            inBytes -= adv;
            out += groups * 8;
            n -= groups * 8;
        }
        if (n > 0)
            scalarUnpackBits(in, inBytes, out, n, width);
        return;
    }

    // Gather path for widths 17..25: per-lane constants for one
    // 8-value group.
    const __m256i baseOff = _mm256_setr_epi32(
        0, static_cast<int>(w >> 3), static_cast<int>(2 * w >> 3),
        static_cast<int>(3 * w >> 3), static_cast<int>(4 * w >> 3),
        static_cast<int>(5 * w >> 3), static_cast<int>(6 * w >> 3),
        static_cast<int>(7 * w >> 3));
    const __m256i shifts = _mm256_setr_epi32(
        0, static_cast<int>(w & 7), static_cast<int>(2 * w & 7),
        static_cast<int>(3 * w & 7), static_cast<int>(4 * w & 7),
        static_cast<int>(5 * w & 7), static_cast<int>(6 * w & 7),
        static_cast<int>(7 * w & 7));
    const __m256i mask = _mm256_set1_epi32(
        static_cast<int>((1u << w) - 1u));

    // Group g's widest lane reads 4 bytes at g*w + (7w >> 3); stop
    // before that window would cross the end of the input.
    const std::size_t lastLane = (7 * w) >> 3;
    std::size_t safeGroups = 0;
    if (inBytes >= lastLane + 4) {
        std::size_t maxBase = inBytes - 4 - lastLane;
        safeGroups = maxBase / w + 1;
    }
    const std::size_t groups = n / 8;
    if (safeGroups > groups)
        safeGroups = groups;

    for (std::size_t g = 0; g < safeGroups; ++g) {
        __m256i off = _mm256_add_epi32(
            baseOff, _mm256_set1_epi32(static_cast<int>(g * w)));
        __m256i words = _mm256_i32gather_epi32(
            reinterpret_cast<const int *>(in), off, 1);
        __m256i vals = _mm256_and_si256(
            _mm256_srlv_epi32(words, shifts), mask);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + 8 * g),
                            vals);
    }

    // Tail (partial group and/or gather-unsafe suffix): 8*safeGroups
    // values consumed exactly safeGroups*w bytes, so the scalar loop
    // resumes on a whole-byte boundary.
    std::size_t j0 = 8 * safeGroups;
    if (j0 < n) {
        std::size_t byteOff = safeGroups * w;
        scalarUnpackBits(in + byteOff, inBytes - byteOff, out + j0,
                         n - j0, width);
    }
}

void
avx2PrefixSum(std::uint32_t *values, std::size_t n, std::uint32_t base)
{
    std::size_t i = 0;
    __m256i carry = _mm256_set1_epi32(static_cast<int>(base));
    for (; i + 8 <= n; i += 8) {
        __m256i x = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(values + i));
        // Inclusive scan within each 128-bit lane...
        x = _mm256_add_epi32(x, _mm256_slli_si256(x, 4));
        x = _mm256_add_epi32(x, _mm256_slli_si256(x, 8));
        // ...then add the low lane's total into the high lane.
        __m256i t = _mm256_permute2x128_si256(x, x, 0x08);
        x = _mm256_add_epi32(x, _mm256_shuffle_epi32(t, 0xFF));
        x = _mm256_add_epi32(x, carry);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(values + i),
                            x);
        // Broadcast the running total (lane 7) for the next group.
        carry = _mm256_shuffle_epi32(
            _mm256_permute2x128_si256(x, x, 0x11), 0xFF);
    }
    std::uint32_t acc =
        static_cast<std::uint32_t>(_mm256_extract_epi32(carry, 0));
    for (; i < n; ++i) {
        acc += values[i];
        values[i] = acc;
    }
}

std::size_t
avx2DecodeVarByte(const std::uint8_t *in, std::size_t inBytes,
                  std::uint32_t *out, std::size_t n)
{
    std::size_t pos = 0;
    std::size_t i = 0;
    while (i < n) {
        // 32 bytes with no continuation bit are 32 complete values.
        if (i + 32 <= n && pos + 32 <= inBytes) {
            __m256i v = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(in + pos));
            if (_mm256_movemask_epi8(v) == 0) {
                for (int c = 0; c < 4; ++c) {
                    __m128i chunk = _mm_loadl_epi64(
                        reinterpret_cast<const __m128i *>(in + pos +
                                                          8 * c));
                    _mm256_storeu_si256(
                        reinterpret_cast<__m256i *>(out + i + 8 * c),
                        _mm256_cvtepu8_epi32(chunk));
                }
                i += 32;
                pos += 32;
                continue;
            }
            // Mixed widths: decode a batch plainly, then retest.
            i += decodeVarByteRun(in, inBytes, pos, out + i, 16);
            continue;
        }
        i += decodeVarByteRun(in, inBytes, pos, out + i, 1);
    }
    return pos;
}

std::size_t
avx2LowerBound(const std::uint32_t *data, std::size_t n,
               std::uint32_t key)
{
    std::size_t i = 0;
    while (i + 32 <= n && data[i + 31] < key)
        i += 32;
    std::size_t cnt = i;
    const __m256i flip = _mm256_set1_epi32(
        static_cast<int>(0x80000000u));
    const __m256i keyv = _mm256_xor_si256(
        _mm256_set1_epi32(static_cast<int>(key)), flip);
    for (; i + 8 <= n; i += 8) {
        __m256i x = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(data + i));
        __m256i lt =
            _mm256_cmpgt_epi32(keyv, _mm256_xor_si256(x, flip));
        int m = _mm256_movemask_ps(_mm256_castsi256_ps(lt));
        cnt += static_cast<std::size_t>(_mm_popcnt_u32(
            static_cast<unsigned>(m)));
        if (m != 0xFF)
            return cnt;
    }
    for (; i < n; ++i) {
        if (data[i] < key)
            ++cnt;
        else
            break;
    }
    return cnt;
}

void
avx2ScoreBm25(double idf, double k1p1, const std::uint32_t *tfs,
              const float *norms, std::size_t n, float *out)
{
    const __m256d idfv = _mm256_set1_pd(idf);
    const __m256d kv = _mm256_set1_pd(k1p1);
    const __m128i flip = _mm_set1_epi32(static_cast<int>(0x80000000u));
    const __m256d two31 = _mm256_set1_pd(2147483648.0);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m128i tf = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(tfs + i));
        // Exact unsigned u32 -> double: (int32)(tf - 2^31) + 2^31.
        __m256d f = _mm256_add_pd(
            _mm256_cvtepi32_pd(_mm_xor_si128(tf, flip)), two31);
        __m256d nd = _mm256_cvtps_pd(_mm_loadu_ps(norms + i));
        __m256d num = _mm256_mul_pd(_mm256_mul_pd(idfv, f), kv);
        __m256d den = _mm256_add_pd(f, nd);
        _mm_storeu_ps(out + i,
                      _mm256_cvtpd_ps(_mm256_div_pd(num, den)));
    }
    if (i < n)
        scalarScoreBm25(idf, k1p1, tfs + i, norms + i, n - i, out + i);
}

} // namespace

const Ops kAvx2Ops = {
    &avx2UnpackBits, &avx2PrefixSum, &avx2DecodeVarByte,
    &avx2LowerBound, &avx2ScoreBm25,
};
const bool kAvx2Compiled = true;

} // namespace boss::kernels::detail

#else // !__AVX2__

namespace boss::kernels::detail
{

const Ops kAvx2Ops = kScalarOps;
const bool kAvx2Compiled = false;

} // namespace boss::kernels::detail

#endif
