/**
 * @file
 * Lightweight statistics framework in the spirit of gem5's stats
 * package. Every timing model registers named counters into a
 * per-run Group tree; benches read them back to print the paper's
 * tables and figures, and the observability layer exports the whole
 * tree as JSON (text dump and JSON share the same registry).
 */

#ifndef BOSS_STATS_STATS_H
#define BOSS_STATS_STATS_H

#include <cstdint>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace boss::stats
{

/**
 * A monotonically increasing 64-bit event counter.
 */
class Counter
{
  public:
    Counter() = default;

    Counter &operator+=(std::uint64_t n) { value_ += n; return *this; }
    Counter &operator++() { ++value_; return *this; }

    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * A scalar accumulator for non-integral quantities (bytes, joules).
 */
class Scalar
{
  public:
    Scalar() = default;

    Scalar &operator+=(double v) { value_ += v; return *this; }
    void set(double v) { value_ = v; }

    double value() const { return value_; }
    void reset() { value_ = 0.0; }

  private:
    double value_ = 0.0;
};

/** Bucket spacing of a Histogram. */
enum class Scale : std::uint8_t
{
    Linear, ///< equal-width buckets over [lo, hi)
    Log,    ///< geometric (HDR-style) buckets over [lo, hi); lo > 0
};

/**
 * Fixed-bucket histogram over a [lo, hi) range plus overflow bucket.
 *
 * Linear histograms divide [lo, hi) into equal-width buckets. Log
 * histograms space bucket edges geometrically, so tail quantiles of
 * latency-like quantities spanning several decades keep constant
 * relative resolution: with b buckets over d decades, every bucket
 * is a factor of 10^(d/b) wide, and percentile() resolves p999 to
 * within that factor at any magnitude. Values below lo land in
 * bucket 0; values at or above hi land in the trailing overflow
 * bucket.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t buckets,
              Scale scale = Scale::Linear);

    void sample(double v, std::uint64_t count = 1);

    std::uint64_t samples() const { return samples_; }
    double mean() const;
    double min() const { return min_; }
    double max() const { return max_; }
    double lo() const { return lo_; }
    double hi() const { return hi_; }
    Scale scale() const { return scale_; }
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }

    /**
     * The value at quantile @p q in [0, 1], interpolated within the
     * covering bucket and clamped to the observed [min, max] (so
     * p0 == min() and p1 == max() exactly). 0 with no samples.
     */
    double percentile(double q) const;

    void reset();

  private:
    /** Lower edge of bucket @p i (i may equal bucket count = hi). */
    double bucketEdge(std::size_t i) const;

    double lo_;
    double hi_;
    Scale scale_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t samples_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * A named tree of statistics. Groups own their children; leaf stats
 * are owned by the model objects and registered by pointer, matching
 * gem5's pattern where stats live inside SimObjects.
 *
 * Children and leaves are kept in registration order, so dump() and
 * dumpJson() output is stable across runs and diffs between runs
 * only show real value changes (never container-iteration noise).
 */
class Group
{
  public:
    explicit Group(std::string name) : name_(std::move(name)) {}

    /** Create (or fetch) a child group. */
    Group &subgroup(const std::string &name);

    /** Register leaf statistics. Pointers must outlive the group. */
    void addCounter(const std::string &name, const Counter *c,
                    const std::string &desc = "");
    void addScalar(const std::string &name, const Scalar *s,
                   const std::string &desc = "");
    void addHistogram(const std::string &name, const Histogram *h,
                      const std::string &desc = "");
    /** A derived value computed on demand (gem5 "Formula"). */
    void addFormula(const std::string &name, std::function<double()> fn,
                    const std::string &desc = "");

    /** Fetch a registered counter value by dotted path; 0 if absent. */
    std::uint64_t counterValue(const std::string &path) const;
    /** Fetch a scalar/formula value by dotted path; 0.0 if absent. */
    double scalarValue(const std::string &path) const;

    /** Dump all stats as "path value # desc" lines. */
    void dump(std::ostream &os, const std::string &prefix = "") const;

    /**
     * Serialize the whole tree as one JSON object:
     *   {"name": ..., "stats": {leaf: {...}, ...}, "groups": [...]}
     * Counters/scalars/formulas carry "value"; histograms carry the
     * full shape (lo, hi, samples, mean, min, max, bucket array with
     * the trailing overflow bucket). Emission follows registration
     * order, so output is byte-stable across identical runs.
     */
    void dumpJson(std::ostream &os, int indent = 0) const;

    const std::string &name() const { return name_; }

  private:
    struct Leaf
    {
        std::string name;
        const Counter *counter = nullptr;
        const Scalar *scalar = nullptr;
        const Histogram *histogram = nullptr;
        std::function<double()> formula;
        std::string desc;
    };

    Leaf &newLeaf(const std::string &name, const std::string &desc);
    const Leaf *findLeaf(const std::string &path) const;

    std::string name_;
    /** Registration-ordered; lookups are linear (trees are small). */
    std::vector<Leaf> leaves_;
    std::vector<std::unique_ptr<Group>> children_;
};

} // namespace boss::stats

#endif // BOSS_STATS_STATS_H
