#include "stats/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <iomanip>
#include <limits>

namespace boss::stats
{

Histogram::Histogram(double lo, double hi, std::size_t buckets,
                     Scale scale)
    : lo_(lo), hi_(hi), scale_(scale), buckets_(buckets + 1, 0),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity())
{
    assert(hi > lo && buckets > 0 && "bad histogram shape");
    assert((scale == Scale::Linear || lo > 0.0) &&
           "log histograms need a positive lower bound");
}

void
Histogram::sample(double v, std::uint64_t count)
{
    std::size_t nb = buckets_.size() - 1;
    std::size_t idx;
    if (v < lo_) {
        idx = 0;
    } else if (v >= hi_) {
        idx = nb; // overflow bucket
    } else if (scale_ == Scale::Linear) {
        idx = static_cast<std::size_t>((v - lo_) / (hi_ - lo_) * nb);
    } else {
        idx = static_cast<std::size_t>(std::log(v / lo_) /
                                       std::log(hi_ / lo_) * nb);
        // Guard the edge where rounding lands exactly on nb.
        idx = std::min(idx, nb - 1);
    }
    buckets_[idx] += count;
    samples_ += count;
    sum_ += v * static_cast<double>(count);
    if (v < min_)
        min_ = v;
    if (v > max_)
        max_ = v;
}

double
Histogram::bucketEdge(std::size_t i) const
{
    std::size_t nb = buckets_.size() - 1;
    double t = static_cast<double>(i) / static_cast<double>(nb);
    if (scale_ == Scale::Linear)
        return lo_ + (hi_ - lo_) * t;
    return lo_ * std::pow(hi_ / lo_, t);
}

double
Histogram::percentile(double q) const
{
    if (samples_ == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    // Rank of the requested quantile, 1-based over all samples.
    double rank = q * static_cast<double>(samples_);
    std::uint64_t seen = 0;
    std::size_t nb = buckets_.size() - 1;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        std::uint64_t n = buckets_[i];
        if (n == 0)
            continue;
        if (static_cast<double>(seen + n) >= rank) {
            // Interpolate within the covering bucket. The overflow
            // bucket has no upper edge; report the observed max.
            if (i == nb)
                return max_;
            double frac =
                (rank - static_cast<double>(seen)) /
                static_cast<double>(n);
            double v = bucketEdge(i) +
                       (bucketEdge(i + 1) - bucketEdge(i)) * frac;
            return std::clamp(v, min_, max_);
        }
        seen += n;
    }
    return max_;
}

double
Histogram::mean() const
{
    return samples_ == 0 ? 0.0 : sum_ / static_cast<double>(samples_);
}

void
Histogram::reset()
{
    for (auto &b : buckets_)
        b = 0;
    samples_ = 0;
    sum_ = 0.0;
    min_ = std::numeric_limits<double>::infinity();
    max_ = -std::numeric_limits<double>::infinity();
}

Group &
Group::subgroup(const std::string &name)
{
    for (auto &child : children_) {
        if (child->name_ == name)
            return *child;
    }
    children_.push_back(std::make_unique<Group>(name));
    return *children_.back();
}

Group::Leaf &
Group::newLeaf(const std::string &name, const std::string &desc)
{
    for (auto &leaf : leaves_) {
        if (leaf.name == name) {
            // Re-registration replaces the binding but keeps the
            // original position, so repeated setup stays stable.
            leaf = Leaf{};
            leaf.name = name;
            leaf.desc = desc;
            return leaf;
        }
    }
    leaves_.emplace_back();
    leaves_.back().name = name;
    leaves_.back().desc = desc;
    return leaves_.back();
}

void
Group::addCounter(const std::string &name, const Counter *c,
                  const std::string &desc)
{
    newLeaf(name, desc).counter = c;
}

void
Group::addScalar(const std::string &name, const Scalar *s,
                 const std::string &desc)
{
    newLeaf(name, desc).scalar = s;
}

void
Group::addHistogram(const std::string &name, const Histogram *h,
                    const std::string &desc)
{
    newLeaf(name, desc).histogram = h;
}

void
Group::addFormula(const std::string &name, std::function<double()> fn,
                  const std::string &desc)
{
    newLeaf(name, desc).formula = std::move(fn);
}

const Group::Leaf *
Group::findLeaf(const std::string &path) const
{
    auto dot = path.find('.');
    if (dot == std::string::npos) {
        for (const auto &leaf : leaves_) {
            if (leaf.name == path)
                return &leaf;
        }
        return nullptr;
    }
    std::string head = path.substr(0, dot);
    for (const auto &child : children_) {
        if (child->name_ == head)
            return child->findLeaf(path.substr(dot + 1));
    }
    return nullptr;
}

std::uint64_t
Group::counterValue(const std::string &path) const
{
    const Leaf *leaf = findLeaf(path);
    if (leaf == nullptr || leaf->counter == nullptr)
        return 0;
    return leaf->counter->value();
}

double
Group::scalarValue(const std::string &path) const
{
    const Leaf *leaf = findLeaf(path);
    if (leaf == nullptr)
        return 0.0;
    if (leaf->scalar != nullptr)
        return leaf->scalar->value();
    if (leaf->counter != nullptr)
        return static_cast<double>(leaf->counter->value());
    if (leaf->formula)
        return leaf->formula();
    return 0.0;
}

void
Group::dump(std::ostream &os, const std::string &prefix) const
{
    std::string base = prefix.empty() ? name_ : prefix + "." + name_;
    for (const auto &leaf : leaves_) {
        os << std::left << std::setw(52) << (base + "." + leaf.name)
           << " ";
        if (leaf.counter != nullptr) {
            os << leaf.counter->value();
        } else if (leaf.scalar != nullptr) {
            os << leaf.scalar->value();
        } else if (leaf.histogram != nullptr) {
            os << "n=" << leaf.histogram->samples()
               << " mean=" << leaf.histogram->mean()
               << " min=" << leaf.histogram->min()
               << " max=" << leaf.histogram->max()
               << " p50=" << leaf.histogram->percentile(0.50)
               << " p99=" << leaf.histogram->percentile(0.99)
               << " p999=" << leaf.histogram->percentile(0.999);
        } else if (leaf.formula) {
            os << leaf.formula();
        }
        if (!leaf.desc.empty())
            os << "  # " << leaf.desc;
        os << '\n';
    }
    for (const auto &child : children_)
        child->dump(os, base);
}

namespace
{

void
writeEscaped(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

void
writeNumber(std::ostream &os, double v)
{
    // Infinities (an unsampled histogram's min/max) are not valid
    // JSON numbers; null keeps the document parseable.
    if (v == std::numeric_limits<double>::infinity() ||
        v == -std::numeric_limits<double>::infinity()) {
        os << "null";
        return;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os << buf;
}

void
pad(std::ostream &os, int indent)
{
    for (int i = 0; i < indent; ++i)
        os << ' ';
}

} // namespace

void
Group::dumpJson(std::ostream &os, int indent) const
{
    pad(os, indent);
    os << "{\n";
    pad(os, indent + 2);
    os << "\"name\": ";
    writeEscaped(os, name_);
    os << ",\n";
    pad(os, indent + 2);
    os << "\"stats\": {";
    bool firstLeaf = true;
    for (const auto &leaf : leaves_) {
        if (!firstLeaf)
            os << ',';
        firstLeaf = false;
        os << '\n';
        pad(os, indent + 4);
        writeEscaped(os, leaf.name);
        os << ": {";
        if (leaf.counter != nullptr) {
            os << "\"type\": \"counter\", \"value\": "
               << leaf.counter->value();
        } else if (leaf.scalar != nullptr) {
            os << "\"type\": \"scalar\", \"value\": ";
            writeNumber(os, leaf.scalar->value());
        } else if (leaf.histogram != nullptr) {
            const Histogram &h = *leaf.histogram;
            os << "\"type\": \"histogram\", \"scale\": "
               << (h.scale() == Scale::Log ? "\"log\"" : "\"linear\"")
               << ", \"lo\": ";
            writeNumber(os, h.lo());
            os << ", \"hi\": ";
            writeNumber(os, h.hi());
            os << ", \"samples\": " << h.samples() << ", \"mean\": ";
            writeNumber(os, h.mean());
            os << ", \"min\": ";
            writeNumber(os, h.min());
            os << ", \"max\": ";
            writeNumber(os, h.max());
            os << ", \"p50\": ";
            writeNumber(os, h.percentile(0.50));
            os << ", \"p99\": ";
            writeNumber(os, h.percentile(0.99));
            os << ", \"p999\": ";
            writeNumber(os, h.percentile(0.999));
            os << ", \"buckets\": [";
            for (std::size_t b = 0; b < h.buckets().size(); ++b) {
                if (b > 0)
                    os << ", ";
                os << h.buckets()[b];
            }
            os << ']';
        } else if (leaf.formula) {
            os << "\"type\": \"formula\", \"value\": ";
            writeNumber(os, leaf.formula());
        } else {
            os << "\"type\": \"empty\"";
        }
        if (!leaf.desc.empty()) {
            os << ", \"desc\": ";
            writeEscaped(os, leaf.desc);
        }
        os << '}';
    }
    if (!firstLeaf) {
        os << '\n';
        pad(os, indent + 2);
    }
    os << "},\n";
    pad(os, indent + 2);
    os << "\"groups\": [";
    bool firstChild = true;
    for (const auto &child : children_) {
        if (!firstChild)
            os << ',';
        firstChild = false;
        os << '\n';
        child->dumpJson(os, indent + 4);
    }
    if (!firstChild) {
        os << '\n';
        pad(os, indent + 2);
    }
    os << "]\n";
    pad(os, indent);
    os << "}";
}

} // namespace boss::stats
