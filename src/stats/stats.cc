#include "stats/stats.h"

#include <iomanip>
#include <limits>

#include "common/logging.h"

namespace boss::stats
{

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), buckets_(buckets + 1, 0),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity())
{
    BOSS_ASSERT(hi > lo && buckets > 0, "bad histogram shape");
}

void
Histogram::sample(double v, std::uint64_t count)
{
    std::size_t nb = buckets_.size() - 1;
    std::size_t idx;
    if (v < lo_) {
        idx = 0;
    } else if (v >= hi_) {
        idx = nb; // overflow bucket
    } else {
        idx = static_cast<std::size_t>((v - lo_) / (hi_ - lo_) * nb);
    }
    buckets_[idx] += count;
    samples_ += count;
    sum_ += v * static_cast<double>(count);
    if (v < min_)
        min_ = v;
    if (v > max_)
        max_ = v;
}

double
Histogram::mean() const
{
    return samples_ == 0 ? 0.0 : sum_ / static_cast<double>(samples_);
}

void
Histogram::reset()
{
    for (auto &b : buckets_)
        b = 0;
    samples_ = 0;
    sum_ = 0.0;
    min_ = std::numeric_limits<double>::infinity();
    max_ = -std::numeric_limits<double>::infinity();
}

Group &
Group::subgroup(const std::string &name)
{
    auto it = children_.find(name);
    if (it == children_.end()) {
        it = children_.emplace(name, std::make_unique<Group>(name)).first;
    }
    return *it->second;
}

void
Group::addCounter(const std::string &name, const Counter *c,
                  const std::string &desc)
{
    Leaf leaf;
    leaf.counter = c;
    leaf.desc = desc;
    leaves_[name] = std::move(leaf);
}

void
Group::addScalar(const std::string &name, const Scalar *s,
                 const std::string &desc)
{
    Leaf leaf;
    leaf.scalar = s;
    leaf.desc = desc;
    leaves_[name] = std::move(leaf);
}

void
Group::addHistogram(const std::string &name, const Histogram *h,
                    const std::string &desc)
{
    Leaf leaf;
    leaf.histogram = h;
    leaf.desc = desc;
    leaves_[name] = std::move(leaf);
}

void
Group::addFormula(const std::string &name, std::function<double()> fn,
                  const std::string &desc)
{
    Leaf leaf;
    leaf.formula = std::move(fn);
    leaf.desc = desc;
    leaves_[name] = std::move(leaf);
}

const Group::Leaf *
Group::findLeaf(const std::string &path) const
{
    auto dot = path.find('.');
    if (dot == std::string::npos) {
        auto it = leaves_.find(path);
        return it == leaves_.end() ? nullptr : &it->second;
    }
    auto child = children_.find(path.substr(0, dot));
    if (child == children_.end())
        return nullptr;
    return child->second->findLeaf(path.substr(dot + 1));
}

std::uint64_t
Group::counterValue(const std::string &path) const
{
    const Leaf *leaf = findLeaf(path);
    if (leaf == nullptr || leaf->counter == nullptr)
        return 0;
    return leaf->counter->value();
}

double
Group::scalarValue(const std::string &path) const
{
    const Leaf *leaf = findLeaf(path);
    if (leaf == nullptr)
        return 0.0;
    if (leaf->scalar != nullptr)
        return leaf->scalar->value();
    if (leaf->counter != nullptr)
        return static_cast<double>(leaf->counter->value());
    if (leaf->formula)
        return leaf->formula();
    return 0.0;
}

void
Group::dump(std::ostream &os, const std::string &prefix) const
{
    std::string base = prefix.empty() ? name_ : prefix + "." + name_;
    for (const auto &[name, leaf] : leaves_) {
        os << std::left << std::setw(52) << (base + "." + name) << " ";
        if (leaf.counter != nullptr) {
            os << leaf.counter->value();
        } else if (leaf.scalar != nullptr) {
            os << leaf.scalar->value();
        } else if (leaf.histogram != nullptr) {
            os << "n=" << leaf.histogram->samples()
               << " mean=" << leaf.histogram->mean()
               << " min=" << leaf.histogram->min()
               << " max=" << leaf.histogram->max();
        } else if (leaf.formula) {
            os << leaf.formula();
        }
        if (!leaf.desc.empty())
            os << "  # " << leaf.desc;
        os << '\n';
    }
    for (const auto &[name, child] : children_)
        child->dump(os, base);
}

} // namespace boss::stats
