/**
 * @file
 * Query execution over a live-index epoch (a pinned SegmentMap
 * Version): run the plan on every segment's rebaked view with its
 * frozen tombstones, rebase local docIDs to global ones, and merge
 * the per-segment top-k lists exactly.
 *
 * Exactness mirrors the sharded argument (engine/topk.h): every
 * segment runs the same k, scores are globally comparable because
 * each view is rebaked against the epoch's survivor statistics, and
 * a segment's local docID order equals its global order (globalIds
 * are strictly ascending), so local tie-breaks agree with global
 * ones. The merged result is bit-identical to a from-scratch rebuild
 * of the surviving documents.
 *
 * This lives in the engine layer (not index/segments) because it
 * drives executeQuery; boss_index cannot link boss_engine.
 */

#ifndef BOSS_ENGINE_SEGMENT_SEARCH_H
#define BOSS_ENGINE_SEGMENT_SEARCH_H

#include <cstddef>
#include <vector>

#include "engine/execute.h"
#include "index/segments/segment_map.h"

namespace boss::engine
{

/**
 * Top-k of @p plan over every segment of @p version, in rank order
 * with global docIDs. Every term in the plan must be below
 * version.termBound().
 */
std::vector<Result>
searchSegments(const index::segments::Version &version,
               const QueryPlan &plan, std::size_t k,
               const ExecFlags &flags);

/** naiveTopK analogue over a version (test oracle). */
std::vector<Result>
naiveSearchSegments(const index::segments::Version &version,
                    const QueryPlan &plan, std::size_t k);

} // namespace boss::engine

#endif // BOSS_ENGINE_SEGMENT_SEARCH_H
