/**
 * @file
 * Reusable per-query scratch buffers.
 *
 * Every cursor and probe in a query decodes 128-entry blocks into
 * heap vectors; without pooling, each query allocates (and frees) a
 * fresh set. A QueryArena hands out docID/tf buffers whose capacity
 * survives reset(), so a worker thread serving a batch of queries
 * allocates only on its first query and then runs allocation-free on
 * the decode path. Arenas are not thread-safe: each pool worker owns
 * one and threads it through buildStreams()/executeQuery().
 */

#ifndef BOSS_ENGINE_ARENA_H
#define BOSS_ENGINE_ARENA_H

#include <deque>

#include "common/aligned.h"
#include "common/types.h"

namespace boss::engine
{

class QueryArena
{
  public:
    /**
     * Borrow a docID buffer until the next reset(). References stay
     * valid across further acquisitions (deque storage). Buffers are
     * AlignedVec: the SIMD decode kernels store into them.
     */
    AlignedVec<DocId> &
    docBuffer()
    {
        if (docsUsed_ == docBufs_.size())
            docBufs_.emplace_back();
        return docBufs_[docsUsed_++];
    }

    /** Borrow a term-frequency buffer until the next reset(). */
    AlignedVec<TermFreq> &
    tfBuffer()
    {
        if (tfsUsed_ == tfBufs_.size())
            tfBufs_.emplace_back();
        return tfBufs_[tfsUsed_++];
    }

    /**
     * Borrow a float buffer until the next reset() (batch-scoring
     * scratch: gathered norms, kernel score output).
     */
    AlignedVec<float> &
    floatBuffer()
    {
        if (floatsUsed_ == floatBufs_.size())
            floatBufs_.emplace_back();
        return floatBufs_[floatsUsed_++];
    }

    /**
     * Return every borrowed buffer to the pool (capacity is kept).
     * Call between queries, after the previous query's streams are
     * destroyed.
     */
    void
    reset()
    {
        docsUsed_ = 0;
        tfsUsed_ = 0;
        floatsUsed_ = 0;
    }

  private:
    std::deque<AlignedVec<DocId>> docBufs_;
    std::deque<AlignedVec<TermFreq>> tfBufs_;
    std::deque<AlignedVec<float>> floatBufs_;
    std::size_t docsUsed_ = 0;
    std::size_t tfsUsed_ = 0;
    std::size_t floatsUsed_ = 0;
};

} // namespace boss::engine

#endif // BOSS_ENGINE_ARENA_H
