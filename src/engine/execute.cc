#include "engine/execute.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/aligned.h"
#include "common/logging.h"
#include "engine/streams.h"
#include "index/block_decoder.h"
#include "kernels/kernels.h"

namespace boss::engine
{

namespace
{

/**
 * Sum the BM25 contributions of the collected matches, deduplicating
 * terms (a term can reach the same doc through two DNF groups).
 */
Score
scoreMatches(const index::InvertedIndex &index, DocId d,
             std::vector<TermMatch> &matches)
{
    float norm = index.doc(d).norm;
    // Sum in canonical term order: float addition is not
    // associative, so summing in stream-arrival order would make a
    // doc's score depend on the skip history that led to it. Term
    // order makes the score a pure function of the matched set --
    // bit-identical across ablation flags, shard counts, and the
    // exhaustive oracle. Sorting also turns the duplicate check (a
    // term reaching the doc through two DNF groups) into an
    // adjacent-element test.
    std::sort(matches.begin(), matches.end(),
              [](const TermMatch &a, const TermMatch &b) {
                  return a.term < b.term;
              });
    Score total = 0.f;
    for (std::size_t i = 0; i < matches.size(); ++i) {
        if (i > 0 && matches[i].term == matches[i - 1].term)
            continue;
        total += index.scorer().termScore(matches[i].idf,
                                          matches[i].tf, norm);
    }
    return total;
}

/**
 * The unified union/top-k loop: WAND pivoting (union module) plus
 * block-level refinement (block fetch module), both optional.
 *
 * `live` is kept sorted by current docID for the whole loop. An
 * iteration only ever advances a *prefix* of `live` (the streams at
 * or below the pivot / current doc); restoring order is therefore a
 * matter of re-inserting just those streams -- the suffix never
 * moves. This replaces the former per-iteration full std::sort, and
 * the per-stream lastBlockChecked field replaces a std::map keyed by
 * stream pointer, so the steady-state loop touches no allocator.
 */
std::vector<Result>
unionLoop(const index::InvertedIndex &index, const QueryPlan &plan,
          std::size_t k, const ExecFlags &flags, ExecHooks *hooks,
          QueryArena *arena, FaultPolicy *faults,
          const index::TombstoneSet *tombstones)
{
    auto streams = buildStreams(index, plan, hooks, arena, faults);
    TopK topk(k);
    std::uint64_t resultBytes = 0;

    std::vector<DocStream *> live;
    live.reserve(streams.size());
    for (auto &s : streams) {
        if (!s->atEnd())
            live.push_back(s.get());
    }
    std::stable_sort(live.begin(), live.end(),
                     [](DocStream *a, DocStream *b) {
                         return a->doc() < b->doc();
                     });

    // Re-establish order after live[0, m) advanced (or ended): pull
    // the prefix out and re-insert each surviving stream after all
    // streams with an equal or smaller doc. Deterministic, and O(m
    // log n + moves) instead of O(n log n) per iteration.
    std::vector<DocStream *> moved;
    moved.reserve(live.size());
    auto reorderPrefix = [&](std::size_t m) {
        moved.assign(live.begin(), live.begin() + m);
        live.erase(live.begin(), live.begin() + m);
        for (DocStream *s : moved) {
            if (s->atEnd())
                continue;
            auto it = std::upper_bound(
                live.begin(), live.end(), s->doc(),
                [](DocId d, DocStream *t) { return d < t->doc(); });
            live.insert(it, s);
        }
    };

    std::vector<TermMatch> matches;
    while (!live.empty()) {
        if (hooks != nullptr)
            hooks->onUnionStep();

        Score theta = topk.threshold();

        if (flags.wandSkip) {
            // Pivot selection over list-level upper bounds.
            float acc = 0.f;
            std::size_t p = live.size();
            for (std::size_t i = 0; i < live.size(); ++i) {
                acc += live[i]->upperBound();
                if (acc > theta) {
                    p = i;
                    break;
                }
            }
            if (p == live.size())
                break; // no remaining doc can beat the cutoff
            DocId pivot = live[p]->doc();
            if (live[0]->doc() < pivot) {
                // Documents below the pivot are skippable (WAND).
                for (std::size_t i = 0; i < p; ++i) {
                    if (hooks != nullptr)
                        hooks->onSkippedDocs(1);
                    live[i]->advanceTo(pivot);
                }
                reorderPrefix(p);
                continue;
            }
        }

        DocId d = live[0]->doc();
        std::size_t q = 0;
        while (q + 1 < live.size() && live[q + 1]->doc() == d)
            ++q;

        if (flags.blockSkip && topk.full()) {
            // Block fetch module: each block is inspected once, when
            // the stream first positions on it. The score estimation
            // unit bounds every doc in the block's range by summing
            // the max term-scores of all overlapping blocks (paper
            // Fig. 5(c)); blocks that cannot beat the cutoff are
            // skipped without ever being fetched.
            bool skipped = false;
            for (std::size_t i = 0; i <= q; ++i) {
                DocStream *s = live[i];
                DocId key = s->blockEnd();
                if (s->lastBlockChecked == key)
                    continue; // this block already inspected
                s->lastBlockChecked = key;
                DocId lo = s->doc();
                float ub = 0.f;
                for (DocStream *other : live)
                    ub += other->maxBlockUBInRange(lo, key);
                if (ub <= theta) {
                    s->skipPastBlock();
                    skipped = true;
                }
            }
            if (skipped) {
                reorderPrefix(q + 1);
                continue;
            }
        }

        if (tombstones != nullptr && tombstones->deleted(d)) {
            // Tombstoned doc: never scored, never offered to the
            // heap (it must not raise the top-k threshold). Its
            // streams advance normally so the loop invariants hold.
            for (std::size_t i = 0; i <= q; ++i)
                live[i]->next();
            reorderPrefix(q + 1);
            continue;
        }

        matches.clear();
        for (std::size_t i = 0; i <= q; ++i)
            live[i]->collectMatches(matches);
        Score s = scoreMatches(index, d, matches);
        if (hooks != nullptr) {
            hooks->onNormLoad(d);
            hooks->onScore(d, static_cast<std::uint32_t>(matches.size()));
        }
        bool accepted = topk.insert(d, s);
        if (hooks != nullptr)
            hooks->onTopkInsert(accepted);
        if (flags.storeAllResults)
            resultBytes += 8; // (docID, score) written for host top-k

        for (std::size_t i = 0; i <= q; ++i)
            live[i]->next();
        reorderPrefix(q + 1);
    }

    if (flags.storeAllResults && hooks != nullptr)
        hooks->onResultStore(resultBytes);
    return topk.sorted();
}

/** One surviving candidate in the IIU-style intersection. */
struct IiuCandidate
{
    DocId doc;
    float partialScore; ///< accumulated term scores so far
};

/**
 * IIU-style membership probe: binary-search the block metadata, load
 * the containing block with a random access, binary-search inside.
 * Returns the tf, or 0 if absent. Caches the last loaded block.
 */
class IiuProber
{
  public:
    IiuProber(const index::CompressedPostingList &list, ExecHooks *hooks,
              QueryArena *arena, FaultPolicy *faults)
        : list_(list), hooks_(hooks), faults_(faults),
          docs_(arena != nullptr ? &arena->docBuffer() : &ownedDocs_),
          tfs_(arena != nullptr ? &arena->tfBuffer() : &ownedTfs_)
    {}

    /**
     * Probes arrive in ascending docID order, so the metadata seek
     * resumes from the last position (each record is inspected at
     * most once across all probes). The landing block is loaded with
     * a random access -- probes land wherever the candidate stream
     * dictates -- and binary-searched; the tf/norm sidecar is
     * fetched only when the document actually matches.
     */
    TermFreq
    probe(DocId d)
    {
        std::uint32_t inspected = 0;
        while (searchBase_ < list_.numBlocks() &&
               list_.blocks[searchBase_].lastDoc < d) {
            ++searchBase_;
            ++inspected;
        }
        if (hooks_ != nullptr && inspected > 0)
            hooks_->onMetaRead(list_.term, inspected);
        std::uint32_t lo = searchBase_;
        if (lo >= list_.numBlocks() || list_.blocks[lo].firstDoc > d)
            return 0;
        if (!cached_ || cachedBlock_ != lo) {
            cached_ = true;
            cachedBlock_ = lo;
            tfLoaded_ = false;
            tfDropped_ = false;
            blockDropped_ = false;
            if (hooks_ != nullptr)
                hooks_->onProbeBlockLoad(list_.term, list_.blocks[lo]);
            if (faults_ != nullptr &&
                !faults_->verifyBlock(list_, lo, false, hooks_)) {
                // Dropped block: every probe landing here misses, so
                // the candidates it would have confirmed degrade out
                // of the intersection instead of crashing the pass.
                blockDropped_ = true;
            } else {
                if (hooks_ != nullptr)
                    hooks_->onDecode(list_.blocks[lo].numElems);
                index::decodeBlock(list_, lo, *docs_, tfs_);
            }
        }
        if (blockDropped_)
            return 0;
        // Branchless/SIMD in-block search (kernel dispatch); the
        // modeled cost stays the metadata-driven estimate below.
        std::size_t idx =
            kernels::ops().lowerBound(docs_->data(), docs_->size(), d);
        if (hooks_ != nullptr)
            hooks_->onCompare(8); // ~log2(128) comparisons
        if (idx == docs_->size() || (*docs_)[idx] != d)
            return 0;
        if (!tfLoaded_) {
            tfLoaded_ = true;
            if (hooks_ != nullptr)
                hooks_->onTfBlockLoad(list_.term, list_.blocks[lo]);
            if (faults_ != nullptr &&
                !faults_->verifyBlock(list_, lo, true, hooks_))
                tfDropped_ = true;
            else if (hooks_ != nullptr)
                hooks_->onDecode(list_.blocks[lo].numElems);
        }
        if (tfDropped_)
            return 0; // unreadable tf sidecar: treat as a miss
        return (*tfs_)[idx];
    }

  private:
    const index::CompressedPostingList &list_;
    ExecHooks *hooks_;
    FaultPolicy *faults_;
    bool cached_ = false;
    bool tfLoaded_ = false;
    bool tfDropped_ = false;
    bool blockDropped_ = false;
    std::uint32_t cachedBlock_ = 0;
    std::uint32_t searchBase_ = 0;
    AlignedVec<DocId> *docs_;
    AlignedVec<TermFreq> *tfs_;
    AlignedVec<DocId> ownedDocs_;
    AlignedVec<TermFreq> ownedTfs_;
};

/** Fully decode a list, charging sequential loads (IIU base list). */
std::vector<IiuCandidate>
iiuDecodeList(const index::InvertedIndex &index, TermId t,
              ExecHooks *hooks, QueryArena *arena, FaultPolicy *faults)
{
    const auto &list = index.list(t);
    std::vector<IiuCandidate> out;
    out.reserve(list.docCount);
    AlignedVec<DocId> ownedDocs;
    AlignedVec<TermFreq> ownedTfs;
    AlignedVec<float> ownedFloats;
    AlignedVec<DocId> &docs =
        arena != nullptr ? arena->docBuffer() : ownedDocs;
    AlignedVec<TermFreq> &tfs =
        arena != nullptr ? arena->tfBuffer() : ownedTfs;
    AlignedVec<float> &scratch =
        arena != nullptr ? arena->floatBuffer() : ownedFloats;
    const double k1p1 = index.scorer().params().k1 + 1.0;
    for (std::uint32_t b = 0; b < list.numBlocks(); ++b) {
        if (hooks != nullptr) {
            hooks->onMetaRead(t, 1);
            hooks->onDocBlockLoad(t, list.blocks[b]);
        }
        if (faults != nullptr &&
            !faults->verifyBlock(list, b, false, hooks)) {
            // Unreadable doc payload: the whole block's postings
            // degrade out of the exhaustive scan.
            continue;
        }
        if (hooks != nullptr)
            hooks->onTfBlockLoad(t, list.blocks[b]);
        if (faults != nullptr &&
            !faults->verifyBlock(list, b, true, hooks)) {
            // docIDs survive, tfs do not: keep the candidates at
            // score zero so downstream probes still see them.
            if (hooks != nullptr)
                hooks->onDecode(list.blocks[b].numElems);
            index::decodeBlock(list, b, docs, nullptr);
            for (DocId d : docs)
                out.push_back({d, 0.f});
            continue;
        }
        if (hooks != nullptr)
            hooks->onDecode(2u * list.blocks[b].numElems);
        index::decodeBlock(list, b, docs, &tfs);
        // Batch BM25 term scoring: gather the per-document norms,
        // then score the whole block through the kernel (bit-exact
        // with Bm25::termScore -- identical IEEE op sequence).
        std::size_t m = docs.size();
        scratch.resize(2 * m);
        float *norms = scratch.data();
        float *scores = norms + m;
        for (std::size_t i = 0; i < m; ++i)
            norms[i] = index.doc(docs[i]).norm;
        kernels::ops().scoreBm25(list.idf, k1p1, tfs.data(), norms, m,
                                 scores);
        for (std::size_t i = 0; i < m; ++i)
            out.push_back({docs[i], scores[i]});
    }
    return out;
}

/**
 * IIU execution for plans containing intersections: iterative SvS
 * with binary-search membership probes, spilling intermediate lists
 * to memory between passes (paper Sec. III-B).
 */
std::vector<Result>
iiuIntersectPath(const index::InvertedIndex &index, const QueryPlan &plan,
                 std::size_t k, const ExecFlags &flags, ExecHooks *hooks,
                 QueryArena *arena, FaultPolicy *faults,
                 const index::TombstoneSet *tombstones)
{
    // Determine the conjunction structure: either one pure group, or
    // the factored common ^ (rest1 v rest2 v ...) shape.
    std::vector<TermId> commonTerms;
    std::vector<TermId> unionTerms;
    if (plan.isPureIntersection()) {
        commonTerms = plan.groups[0];
    } else {
        commonTerms = plan.groups[0];
        for (const auto &g : plan.groups) {
            std::vector<TermId> next;
            std::set_intersection(commonTerms.begin(), commonTerms.end(),
                                  g.begin(), g.end(),
                                  std::back_inserter(next));
            commonTerms = std::move(next);
        }
        std::set<TermId> rest;
        for (const auto &g : plan.groups) {
            for (TermId t : g) {
                if (!std::binary_search(commonTerms.begin(),
                                        commonTerms.end(), t))
                    rest.insert(t);
            }
        }
        unionTerms.assign(rest.begin(), rest.end());
        BOSS_ASSERT(!commonTerms.empty(),
                    "IIU path requires a conjunctive component");
    }

    // Base candidates: the union component merged exhaustively (and
    // spilled), or the smallest conjunctive list.
    std::sort(commonTerms.begin(), commonTerms.end(),
              [&](TermId a, TermId b) {
                  return index.list(a).docCount < index.list(b).docCount;
              });

    std::vector<IiuCandidate> current;
    std::vector<TermId> probeTerms;
    if (unionTerms.empty()) {
        current =
            iiuDecodeList(index, commonTerms[0], hooks, arena, faults);
        probeTerms.assign(commonTerms.begin() + 1, commonTerms.end());
    } else {
        // Merge the union terms' lists (exhaustive, all loaded).
        std::map<DocId, float> merged;
        for (TermId t : unionTerms) {
            for (const auto &c :
                 iiuDecodeList(index, t, hooks, arena, faults)) {
                if (hooks != nullptr)
                    hooks->onCompare(1);
                merged[c.doc] += c.partialScore;
            }
        }
        current.reserve(merged.size());
        for (const auto &[d, s] : merged)
            current.push_back({d, s});
        if (hooks != nullptr) {
            // The merged stream is spilled before the intersection.
            hooks->onIntermediate(current.size() * 8, 0);
        }
        probeTerms = commonTerms;
    }

    for (std::size_t pi = 0; pi < probeTerms.size(); ++pi) {
        TermId t = probeTerms[pi];
        const auto &list = index.list(t);
        IiuProber prober(list, hooks, arena, faults);
        std::vector<IiuCandidate> next;
        next.reserve(current.size());
        for (const auto &c : current) {
            TermFreq tf = prober.probe(c.doc);
            if (tf == 0)
                continue;
            float s = index.scorer().termScore(list.idf, tf,
                                               index.doc(c.doc).norm);
            next.push_back({c.doc, c.partialScore + s});
        }
        if (hooks != nullptr) {
            // Intermediate spilled and refilled between passes.
            if (pi + 1 < probeTerms.size())
                hooks->onIntermediate(next.size() * 8, next.size() * 8);
            // Reading the candidate list itself.
            if (pi > 0 || !unionTerms.empty())
                hooks->onIntermediate(0, current.size() * 8);
        }
        current = std::move(next);
    }

    TopK topk(k);
    std::uint64_t resultBytes = 0;
    for (const auto &c : current) {
        if (tombstones != nullptr && tombstones->deleted(c.doc))
            continue; // deleted docs never reach the top-k heap
        if (hooks != nullptr) {
            hooks->onNormLoad(c.doc);
            hooks->onScore(c.doc, 1);
        }
        bool accepted = topk.insert(c.doc, c.partialScore);
        if (hooks != nullptr)
            hooks->onTopkInsert(accepted);
        if (flags.storeAllResults)
            resultBytes += 8;
    }
    if (flags.storeAllResults && hooks != nullptr)
        hooks->onResultStore(resultBytes);
    return topk.sorted();
}

} // namespace

namespace
{

/**
 * True when the plan has the conjunctive shape the IIU iterative
 * intersection handles: a pure intersection, or common ^ (a v b...)
 * with single-term rests (the Table II query shapes).
 */
bool
hasConjunctiveCore(const QueryPlan &plan)
{
    if (plan.isPureIntersection())
        return true;
    std::vector<TermId> common = plan.groups[0];
    for (const auto &g : plan.groups) {
        std::vector<TermId> next;
        std::set_intersection(common.begin(), common.end(), g.begin(),
                              g.end(), std::back_inserter(next));
        common = std::move(next);
    }
    if (common.empty())
        return false;
    for (const auto &g : plan.groups) {
        if (g.size() != common.size() + 1)
            return false;
    }
    return true;
}

} // namespace

std::vector<Result>
executeQuery(const index::InvertedIndex &index, const QueryPlan &plan,
             std::size_t k, const ExecFlags &flags, ExecHooks *hooks,
             QueryArena *arena, FaultPolicy *faults,
             const index::TombstoneSet *tombstones)
{
    BOSS_ASSERT(!plan.groups.empty(), "empty query plan");
    if (flags.binaryIntersect && !plan.isPureUnion() &&
        hasConjunctiveCore(plan)) {
        return iiuIntersectPath(index, plan, k, flags, hooks, arena,
                                faults, tombstones);
    }
    return unionLoop(index, plan, k, flags, hooks, arena, faults,
                     tombstones);
}

std::vector<Result>
naiveTopK(const index::InvertedIndex &index, const QueryPlan &plan,
          std::size_t k, const index::TombstoneSet *tombstones)
{
    // Decode every term fully.
    std::map<TermId, index::PostingList> decoded;
    for (TermId t : plan.allTerms)
        decoded[t] = index::decodeAll(index.list(t));

    // Candidate docs mapped to the set of terms contributing to
    // their score. Scoring follows boolean-clause semantics: a term
    // contributes only when its whole DNF group matches the doc
    // (terms shared by several matching groups count once).
    std::map<DocId, std::set<TermId>> matched;
    for (const auto &g : plan.groups) {
        std::map<DocId, std::size_t> counts;
        for (TermId t : g) {
            for (const auto &p : decoded[t])
                ++counts[p.doc];
        }
        for (const auto &[d, c] : counts) {
            if (c == g.size())
                matched[d].insert(g.begin(), g.end());
        }
    }

    TopK topk(k);
    for (const auto &[d, terms] : matched) {
        if (tombstones != nullptr && tombstones->deleted(d))
            continue;
        Score s = 0.f;
        for (TermId t : terms) {
            const auto &list = decoded[t];
            auto it = std::lower_bound(
                list.begin(), list.end(), d,
                [](const index::Posting &p, DocId doc) {
                    return p.doc < doc;
                });
            BOSS_ASSERT(it != list.end() && it->doc == d,
                        "matched term must contain doc");
            s += index.scorer().termScore(index.list(t).idf, it->tf,
                                          index.doc(d).norm);
        }
        topk.insert(d, s);
    }
    return topk.sorted();
}

} // namespace boss::engine
