#include "engine/plan.h"

#include <algorithm>
#include <cctype>
#include <set>

#include "common/logging.h"

namespace boss::engine
{

namespace
{

/** Token stream over an expression string. */
struct Lexer
{
    enum class Tok { Term, And, Or, LParen, RParen, End };

    std::string_view text;
    std::size_t pos = 0;
    std::string termName; ///< payload of the last Term token

    Tok
    next()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos]))) {
            ++pos;
        }
        if (pos >= text.size())
            return Tok::End;
        char c = text[pos];
        if (c == '(') {
            ++pos;
            return Tok::LParen;
        }
        if (c == ')') {
            ++pos;
            return Tok::RParen;
        }
        if (c == '"') {
            std::size_t close = text.find('"', pos + 1);
            if (close == std::string_view::npos)
                BOSS_FATAL("query expression: unterminated quote in '",
                           std::string(text), "'");
            termName = std::string(text.substr(pos + 1, close - pos - 1));
            pos = close + 1;
            return Tok::Term;
        }
        // Keyword: AND / OR (case-insensitive).
        std::size_t start = pos;
        while (pos < text.size() &&
               std::isalpha(static_cast<unsigned char>(text[pos]))) {
            ++pos;
        }
        std::string word(text.substr(start, pos - start));
        std::transform(word.begin(), word.end(), word.begin(),
                       [](unsigned char ch) { return std::toupper(ch); });
        if (word == "AND")
            return Tok::And;
        if (word == "OR")
            return Tok::Or;
        BOSS_FATAL("query expression: unexpected token '", word,
                   "' in '", std::string(text), "'");
    }
};

struct Parser
{
    Lexer lex;
    Lexer::Tok lookahead;
    const TermResolver &resolve;

    Parser(std::string_view text, const TermResolver &resolver)
        : lex{text, 0, {}}, resolve(resolver)
    {
        lookahead = lex.next();
    }

    void advance() { lookahead = lex.next(); }

    QueryExpr
    parseAtom()
    {
        if (lookahead == Lexer::Tok::Term) {
            QueryExpr e;
            e.kind = QueryExpr::Kind::Term;
            e.term = resolve(lex.termName);
            advance();
            return e;
        }
        if (lookahead == Lexer::Tok::LParen) {
            advance();
            QueryExpr e = parseOr();
            if (lookahead != Lexer::Tok::RParen)
                BOSS_FATAL("query expression: expected ')'");
            advance();
            return e;
        }
        BOSS_FATAL("query expression: expected term or '('");
    }

    QueryExpr
    parseAnd()
    {
        QueryExpr left = parseAtom();
        while (lookahead == Lexer::Tok::And) {
            advance();
            QueryExpr right = parseAtom();
            if (left.kind == QueryExpr::Kind::And) {
                left.children.push_back(std::move(right));
            } else {
                QueryExpr node;
                node.kind = QueryExpr::Kind::And;
                node.children.push_back(std::move(left));
                node.children.push_back(std::move(right));
                left = std::move(node);
            }
        }
        return left;
    }

    QueryExpr
    parseOr()
    {
        QueryExpr left = parseAnd();
        while (lookahead == Lexer::Tok::Or) {
            advance();
            QueryExpr right = parseAnd();
            if (left.kind == QueryExpr::Kind::Or) {
                left.children.push_back(std::move(right));
            } else {
                QueryExpr node;
                node.kind = QueryExpr::Kind::Or;
                node.children.push_back(std::move(left));
                node.children.push_back(std::move(right));
                left = std::move(node);
            }
        }
        return left;
    }
};

/** DNF of an expression: a list of AND-groups. */
std::vector<std::vector<TermId>>
toDnf(const QueryExpr &e)
{
    switch (e.kind) {
      case QueryExpr::Kind::Term:
        return {{e.term}};
      case QueryExpr::Kind::Or: {
        std::vector<std::vector<TermId>> out;
        for (const auto &child : e.children) {
            auto sub = toDnf(child);
            out.insert(out.end(), sub.begin(), sub.end());
        }
        return out;
      }
      case QueryExpr::Kind::And: {
        std::vector<std::vector<TermId>> acc = {{}};
        for (const auto &child : e.children) {
            auto sub = toDnf(child);
            std::vector<std::vector<TermId>> next;
            for (const auto &a : acc) {
                for (const auto &b : sub) {
                    std::vector<TermId> merged = a;
                    merged.insert(merged.end(), b.begin(), b.end());
                    next.push_back(std::move(merged));
                }
            }
            acc = std::move(next);
        }
        return acc;
      }
    }
    return {};
}

} // namespace

QueryExpr
parseExpression(std::string_view text, const TermResolver &resolve)
{
    Parser parser(text, resolve);
    QueryExpr e = parser.parseOr();
    if (parser.lookahead != Lexer::Tok::End)
        BOSS_FATAL("query expression: trailing tokens in '",
                   std::string(text), "'");
    return e;
}

TermId
defaultTermResolver(std::string_view name)
{
    if (name.size() < 2 || name[0] != 't')
        BOSS_FATAL("term name '", std::string(name),
                   "' is not of the form t<N>");
    TermId t = 0;
    for (std::size_t i = 1; i < name.size(); ++i) {
        char c = name[i];
        if (c < '0' || c > '9')
            BOSS_FATAL("term name '", std::string(name),
                       "' is not of the form t<N>");
        t = t * 10 + static_cast<TermId>(c - '0');
    }
    return t;
}

QueryPlan
planQuery(const QueryExpr &expr)
{
    QueryPlan plan;
    plan.groups = toDnf(expr);
    // Dedup terms within each group and collect the full term set.
    std::set<TermId> all;
    for (auto &g : plan.groups) {
        std::sort(g.begin(), g.end());
        g.erase(std::unique(g.begin(), g.end()), g.end());
        all.insert(g.begin(), g.end());
    }
    plan.allTerms.assign(all.begin(), all.end());
    return plan;
}

QueryPlan
planQuery(const workload::Query &query)
{
    using workload::QueryType;
    QueryPlan plan;
    const auto &t = query.terms;
    switch (query.type) {
      case QueryType::Q1:
        plan.groups = {{t[0]}};
        break;
      case QueryType::Q2:
        plan.groups = {{t[0], t[1]}};
        break;
      case QueryType::Q3:
        plan.groups = {{t[0]}, {t[1]}};
        break;
      case QueryType::Q4:
        plan.groups = {{t[0], t[1], t[2], t[3]}};
        break;
      case QueryType::Q5:
        plan.groups = {{t[0]}, {t[1]}, {t[2]}, {t[3]}};
        break;
      case QueryType::Q6:
        // A AND (B OR C OR D) -> (A^B) v (A^C) v (A^D).
        plan.groups = {{t[0], t[1]}, {t[0], t[2]}, {t[0], t[3]}};
        break;
    }
    // Groups are canonically sorted sets (buildStreams relies on it).
    for (auto &g : plan.groups)
        std::sort(g.begin(), g.end());
    std::set<TermId> all(t.begin(), t.end());
    plan.allTerms.assign(all.begin(), all.end());
    return plan;
}

} // namespace boss::engine
