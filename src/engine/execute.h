/**
 * @file
 * Query execution: one algorithm family, four behaviors.
 *
 * The flag set reproduces every system and ablation in the paper:
 *
 *   BOSS            blockSkip=1 wandSkip=1
 *   BOSS-block-only blockSkip=1 wandSkip=0          (Fig. 14)
 *   BOSS-exhaustive blockSkip=0 wandSkip=0          (Fig. 13)
 *   IIU             binaryIntersect=1 storeAllResults=1
 *   Lucene-like CPU all skips off (SvS with skip lists)
 *
 * All variants return the exact same top-k (early termination is
 * lossless); tests assert this invariant.
 */

#ifndef BOSS_ENGINE_EXECUTE_H
#define BOSS_ENGINE_EXECUTE_H

#include <vector>

#include "engine/arena.h"
#include "engine/hooks.h"
#include "engine/plan.h"
#include "engine/resilience.h"
#include "engine/topk.h"
#include "index/doc_filter.h"
#include "index/inverted_index.h"

namespace boss::engine
{

/** Behavior switches (see file comment). */
struct ExecFlags
{
    /** Block-level early termination in the block fetch module. */
    bool blockSkip = true;
    /** Doc-level WAND early termination in the union module. */
    bool wandSkip = true;
    /** IIU-style binary-search membership intersection. */
    bool binaryIntersect = false;
    /**
     * Score every candidate and write the full scored list back to
     * memory (host-side top-k, as IIU does).
     */
    bool storeAllResults = false;
};

/** Default number of results (paper: k = 1000). */
inline constexpr std::size_t kDefaultTopK = 1000;

/**
 * Execute @p plan against @p index and return the top-k results in
 * rank order. @p hooks may be nullptr for pure functional use.
 * @p arena, when non-null, supplies reusable decode scratch (reset it
 * between queries); results are identical with or without it.
 * @p faults, when non-null, CRC-verifies every block payload under
 * the fault model's injected errors: unrecoverable blocks are
 * dropped, degrading scores instead of crashing. A null @p faults is
 * the unchecked fast path with bit-identical results to builds
 * without the resilience layer.
 * @p tombstones, when non-null, filters deleted documents out before
 * they can enter the top-k heap (live-index deletes). Pruning bounds
 * are computed over all postings including tombstoned ones — a valid
 * over-approximation — so early termination stays lossless: results
 * are bit-identical to an index rebuilt from the surviving docs with
 * the same baked statistics.
 */
std::vector<Result>
executeQuery(const index::InvertedIndex &index, const QueryPlan &plan,
             std::size_t k, const ExecFlags &flags,
             ExecHooks *hooks = nullptr, QueryArena *arena = nullptr,
             FaultPolicy *faults = nullptr,
             const index::TombstoneSet *tombstones = nullptr);

/**
 * Brute-force oracle: decodes every posting list fully and scores
 * with hash maps. Slow; used by tests as ground truth.
 */
std::vector<Result>
naiveTopK(const index::InvertedIndex &index, const QueryPlan &plan,
          std::size_t k,
          const index::TombstoneSet *tombstones = nullptr);

} // namespace boss::engine

#endif // BOSS_ENGINE_EXECUTE_H
