#include "engine/cursor.h"

#include "common/logging.h"
#include "index/block_decoder.h"
#include "kernels/kernels.h"

namespace boss::engine
{

ListCursor::ListCursor(const index::CompressedPostingList &list,
                       ExecHooks *hooks, QueryArena *arena,
                       FaultPolicy *faults)
    : list_(list), hooks_(hooks), faults_(faults),
      docs_(arena != nullptr ? &arena->docBuffer() : &ownedDocs_),
      tfs_(arena != nullptr ? &arena->tfBuffer() : &ownedTfs_)
{
    if (list_.numBlocks() == 0) {
        ended_ = true;
        return;
    }
    setBlock(0);
}

void
ListCursor::setBlock(std::uint32_t b)
{
    block_ = b;
    pos_ = 0;
    // A block already sitting in the decode buffer needs no second
    // decode (the per-stream decoded-block cache); forward-only
    // traversal makes this a pure memo, never an invalidation
    // hazard.
    decoded_ = decodedBlock_ == b;
    tfLoaded_ = decoded_ && tfLoaded_;
    if (hooks_ != nullptr)
        hooks_->onMetaRead(list_.term, 1);
}

void
ListCursor::ensureDecoded()
{
    if (decoded_)
        return;
    decoded_ = true;
    tfLoaded_ = false;
    decodedBlock_ = block_;
    ++blocksLoaded_;
    if (hooks_ != nullptr)
        hooks_->onDocBlockLoad(list_.term, list_.blocks[block_]);
    if (faults_ != nullptr &&
        !faults_->verifyBlock(list_, block_, false, hooks_)) {
        // Dropped block: one sentinel posting at the block's last
        // docID. advanceTo's in-block scan still terminates
        // (lastDoc >= any in-block target) and tf() reports 0, so
        // the block's score contribution degrades to nothing.
        docs_->assign(1, list_.blocks[block_].lastDoc);
        dropped_ = true;
        return;
    }
    dropped_ = false;
    if (hooks_ != nullptr)
        hooks_->onDecode(list_.blocks[block_].numElems);
    index::decodeBlock(list_, block_, *docs_, nullptr);
}

DocId
ListCursor::doc() const
{
    BOSS_ASSERT(!ended_, "doc() on exhausted cursor");
    if (!decoded_)
        return list_.blocks[block_].firstDoc; // pos_ is 0
    return (*docs_)[pos_];
}

TermFreq
ListCursor::tf()
{
    BOSS_ASSERT(!ended_, "tf() on exhausted cursor");
    ensureDecoded();
    if (!tfLoaded_) {
        tfLoaded_ = true;
        if (dropped_) {
            // The doc payload was already dropped; the tf sidecar is
            // never fetched and the sentinel posting scores zero.
            tfs_->assign(docs_->size(), 0);
            return (*tfs_)[pos_];
        }
        if (hooks_ != nullptr)
            hooks_->onTfBlockLoad(list_.term, list_.blocks[block_]);
        if (faults_ != nullptr &&
            !faults_->verifyBlock(list_, block_, true, hooks_)) {
            // tf sidecar unreadable: keep the docIDs, degrade every
            // tf to 0 so the block contributes no score.
            tfs_->assign(docs_->size(), 0);
            return (*tfs_)[pos_];
        }
        if (hooks_ != nullptr)
            hooks_->onDecode(list_.blocks[block_].numElems);
        index::decodeBlockTfs(list_, block_, *tfs_);
    }
    return (*tfs_)[pos_];
}

void
ListCursor::next()
{
    BOSS_ASSERT(!ended_, "next() on exhausted cursor");
    ensureDecoded();
    if (pos_ + 1 < docs_->size()) {
        ++pos_;
        return;
    }
    if (block_ + 1 < list_.numBlocks()) {
        setBlock(block_ + 1);
        return;
    }
    ended_ = true;
}

void
ListCursor::advanceTo(DocId target)
{
    if (ended_ || doc() >= target)
        return;

    // Within the current block? (blockLast >= target guarantees the
    // in-block scan terminates.) If the block is already decoded
    // this touches no memory beyond the scan itself.
    if (target <= blockLast()) {
        ensureDecoded();
        // Branchless/SIMD in-block seek; blockLast >= target
        // guarantees a hit, so the result never runs off the block.
        pos_ += static_cast<std::uint32_t>(kernels::ops().lowerBound(
            docs_->data() + pos_, docs_->size() - pos_, target));
        return;
    }

    // Seek over block metadata. Each inspected record is a metadata
    // read; jumped-over blocks are never fetched or decoded.
    std::uint32_t b = block_ + 1;
    std::uint32_t inspected = 0;
    std::uint64_t skippedBlocks = 0;
    while (b < list_.numBlocks()) {
        ++inspected;
        if (list_.blocks[b].lastDoc >= target)
            break;
        ++skippedBlocks;
        ++b;
    }
    if (hooks_ != nullptr) {
        if (inspected > 0)
            hooks_->onMetaRead(list_.term, inspected);
        if (skippedBlocks > 0)
            hooks_->onSkippedBlocks(list_.term, skippedBlocks);
    }
    if (b >= list_.numBlocks()) {
        ended_ = true;
        return;
    }
    setBlock(b);
    if (target > list_.blocks[b].firstDoc) {
        ensureDecoded();
        pos_ += static_cast<std::uint32_t>(kernels::ops().lowerBound(
            docs_->data() + pos_, docs_->size() - pos_, target));
    }
}

void
ListCursor::skipPastBlock()
{
    BOSS_ASSERT(!ended_, "skipPastBlock() on exhausted cursor");
    std::uint64_t remaining =
        decoded_ ? docs_->size() - pos_ : list_.blocks[block_].numElems;
    if (hooks_ != nullptr) {
        if (remaining > 0)
            hooks_->onSkippedDocs(remaining);
        if (!decoded_)
            hooks_->onSkippedBlocks(list_.term, 1);
    }
    if (block_ + 1 < list_.numBlocks()) {
        setBlock(block_ + 1);
    } else {
        ended_ = true;
    }
}

float
ListCursor::peekMaxInRange(DocId lo, DocId hi)
{
    if (ended_)
        return 0.f;
    // The score estimation unit holds only a small window of block
    // metadata (the paper's 288 B block-fetch buffer); when a range
    // spans more blocks than the window, fall back to the list-level
    // maximum -- a free, still-safe upper bound.
    // Records in the window are already buffered on-chip: each
    // record's fetch is charged once, when the cursor positions on
    // its block (setBlock); peeking is free.
    constexpr std::uint32_t kPeekWindow = 2;
    float best = 0.f;
    for (std::uint32_t b = block_; b < list_.numBlocks(); ++b) {
        const index::BlockMeta &meta = list_.blocks[b];
        if (meta.firstDoc > hi)
            break;
        if (b - block_ >= kPeekWindow) {
            best = list_.maxTermScore;
            break;
        }
        if (meta.lastDoc >= lo)
            best = std::max(best, meta.maxTermScore);
    }
    return best;
}

} // namespace boss::engine
