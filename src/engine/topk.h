/**
 * @file
 * Top-k accumulator.
 *
 * The ordering is total and deterministic: higher score wins, equal
 * scores break toward the smaller docID. Every engine (hardware
 * models and software baselines) uses this same comparator, so their
 * top-k outputs are bit-identical and directly comparable in tests.
 */

#ifndef BOSS_ENGINE_TOPK_H
#define BOSS_ENGINE_TOPK_H

#include <algorithm>
#include <limits>
#include <vector>

#include "common/types.h"

namespace boss::engine
{

/** One retrieval result. */
struct Result
{
    DocId doc = kInvalidDocId;
    Score score = 0.f;

    friend bool
    operator==(const Result &a, const Result &b)
    {
        return a.doc == b.doc && a.score == b.score;
    }
};

/** True iff result @p a ranks strictly above @p b. */
inline bool
ranksAbove(const Result &a, const Result &b)
{
    if (a.score != b.score)
        return a.score > b.score;
    return a.doc < b.doc;
}

/**
 * Bounded top-k selection via a binary min-heap keyed by rank order
 * (the root is the current weakest entry -- the "cutoff" document).
 */
class TopK
{
  public:
    explicit TopK(std::size_t k) : k_(k) {}

    /**
     * Offer a candidate. Returns true if it entered the top-k.
     */
    bool
    insert(DocId doc, Score score)
    {
        Result cand{doc, score};
        if (heap_.size() < k_) {
            heap_.push_back(cand);
            std::push_heap(heap_.begin(), heap_.end(), ranksAbove);
            return true;
        }
        if (!ranksAbove(cand, heap_.front()))
            return false;
        std::pop_heap(heap_.begin(), heap_.end(), ranksAbove);
        heap_.back() = cand;
        std::push_heap(heap_.begin(), heap_.end(), ranksAbove);
        return true;
    }

    /**
     * The current cutoff score: candidates must *exceed* it (or tie
     * and win on docID) to enter. -inf while the heap is not full,
     * so nothing is pruned before k results exist.
     */
    Score
    threshold() const
    {
        if (heap_.size() < k_)
            return -std::numeric_limits<Score>::infinity();
        return heap_.front().score;
    }

    bool full() const { return heap_.size() >= k_; }
    std::size_t size() const { return heap_.size(); }
    std::size_t k() const { return k_; }

    /** Results in rank order (best first). */
    std::vector<Result>
    sorted() const
    {
        std::vector<Result> out = heap_;
        std::sort(out.begin(), out.end(), ranksAbove);
        return out;
    }

  private:
    std::size_t k_;
    std::vector<Result> heap_;
};

/**
 * Merge per-shard top-k lists into the global top-k (rank order).
 *
 * Exact as long as every shard ran with the same k: any document in
 * the global top-k is by definition in its own shard's top-k, so the
 * union of the per-shard heaps is a superset of the answer. Inputs
 * must already carry *global* docIDs so the shared ranksAbove
 * tie-break (score desc, docID asc) matches the unsharded engine.
 */
inline std::vector<Result>
mergeTopK(const std::vector<std::vector<Result>> &perShard,
          std::size_t k)
{
    TopK merged(k);
    for (const auto &shard : perShard)
        for (const auto &r : shard)
            merged.insert(r.doc, r.score);
    return merged.sorted();
}

} // namespace boss::engine

#endif // BOSS_ENGINE_TOPK_H
