#include "engine/segment_search.h"

#include "common/logging.h"

namespace boss::engine
{

namespace
{

void
checkTermBound(const QueryPlan &plan,
               const index::segments::Version &version)
{
    for (TermId t : plan.allTerms) {
        BOSS_ASSERT(t < version.termBound(), "query term ", t,
                    " outside epoch term bound ",
                    version.termBound());
    }
}

template <typename SegmentFn>
std::vector<Result>
mergeOverSegments(const index::segments::Version &version,
                  std::size_t k, SegmentFn &&runSegment)
{
    std::vector<std::vector<Result>> perSegment;
    perSegment.reserve(version.segments().size());
    for (const auto &reader : version.segments()) {
        std::vector<Result> local = runSegment(reader);
        // Rebase to global docIDs before the merge so the shared
        // ranksAbove tie-break matches an unsegmented index.
        for (Result &r : local)
            r.doc = reader.segment->source().globalIds[r.doc];
        perSegment.push_back(std::move(local));
    }
    return mergeTopK(perSegment, k);
}

} // namespace

std::vector<Result>
searchSegments(const index::segments::Version &version,
               const QueryPlan &plan, std::size_t k,
               const ExecFlags &flags)
{
    checkTermBound(plan, version);
    return mergeOverSegments(
        version, k, [&](const index::segments::SegmentReader &reader) {
            return executeQuery(*reader.view, plan, k, flags, nullptr,
                                nullptr, nullptr,
                                reader.tombstones.get());
        });
}

std::vector<Result>
naiveSearchSegments(const index::segments::Version &version,
                    const QueryPlan &plan, std::size_t k)
{
    checkTermBound(plan, version);
    return mergeOverSegments(
        version, k, [&](const index::segments::SegmentReader &reader) {
            return naiveTopK(*reader.view, plan, k,
                             reader.tombstones.get());
        });
}

} // namespace boss::engine
