/**
 * @file
 * Instrumentation interface for query execution.
 *
 * The functional algorithms in engine/ run identically for every
 * system model; what differs is the cost of each step. Timing models
 * (BOSS, IIU, the Lucene-like CPU baseline) implement ExecHooks to
 * charge cycles and issue modeled memory traffic; the functional
 * oracle passes nullptr and pays nothing.
 */

#ifndef BOSS_ENGINE_HOOKS_H
#define BOSS_ENGINE_HOOKS_H

#include <cstdint>

#include "common/types.h"
#include "index/compressed_list.h"

namespace boss::engine
{

/**
 * Execution event callbacks. All have empty defaults so models
 * override only what they charge for.
 */
class ExecHooks
{
  public:
    virtual ~ExecHooks() = default;

    /** @p count block-metadata records of term @p t were inspected. */
    virtual void onMetaRead(TermId t, std::uint32_t count)
    {
        (void)t;
        (void)count;
    }

    /** A doc-gap payload block was fetched (LD List traffic). */
    virtual void onDocBlockLoad(TermId t, const index::BlockMeta &meta)
    {
        (void)t;
        (void)meta;
    }

    /** A tf payload block was fetched for scoring (LD Score). */
    virtual void onTfBlockLoad(TermId t, const index::BlockMeta &meta)
    {
        (void)t;
        (void)meta;
    }

    /** @p count values went through the decompression module. */
    virtual void onDecode(std::uint32_t count) { (void)count; }

    /** A per-document norm record was fetched (LD Score, 4B). */
    virtual void onNormLoad(DocId d) { (void)d; }

    /** Document @p d was scored, summing @p numTerms term scores. */
    virtual void onScore(DocId d, std::uint32_t numTerms)
    {
        (void)d;
        (void)numTerms;
    }

    /**
     * A block was fetched by a random-access membership probe
     * (IIU-style binary-search intersection). Distinct from
     * onDocBlockLoad so memory models can apply the random-access
     * penalty.
     */
    virtual void onProbeBlockLoad(TermId t, const index::BlockMeta &meta)
    {
        (void)t;
        (void)meta;
    }

    /** @p count docID comparisons in a set-operation unit. */
    virtual void onCompare(std::uint64_t count) { (void)count; }

    /** One union-module scheduling step (sorter/pivot selection). */
    virtual void onUnionStep() {}

    /** A candidate entered the top-k module. */
    virtual void onTopkInsert(bool accepted) { (void)accepted; }

    /** Intermediate-list spill traffic (IIU-style multi-term). */
    virtual void onIntermediate(std::uint64_t bytesWritten,
                                std::uint64_t bytesRead)
    {
        (void)bytesWritten;
        (void)bytesRead;
    }

    /** Result written back to memory (ST Result). */
    virtual void onResultStore(std::uint64_t bytes) { (void)bytes; }

    /**
     * A payload re-read after a CRC mismatch (transient-fault
     * retry). @p tfPayload distinguishes the tf sidecar from the
     * doc-gap payload; timing models re-issue the block's traffic.
     */
    virtual void onBlockRetry(TermId t, const index::BlockMeta &meta,
                              bool tfPayload)
    {
        (void)t;
        (void)meta;
        (void)tfPayload;
    }

    /**
     * A block abandoned after exhausting CRC re-reads (hard fault):
     * its postings contribute nothing and scores degrade.
     */
    virtual void onBlockDropped(TermId t, const index::BlockMeta &meta)
    {
        (void)t;
        (void)meta;
    }

    /** @p count candidate documents skipped by early termination. */
    virtual void onSkippedDocs(std::uint64_t count) { (void)count; }

    /** @p count whole blocks of term @p t skipped without loading. */
    virtual void onSkippedBlocks(TermId t, std::uint64_t count)
    {
        (void)t;
        (void)count;
    }
};

} // namespace boss::engine

#endif // BOSS_ENGINE_HOOKS_H
