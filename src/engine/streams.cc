#include "engine/streams.h"

#include <algorithm>
#include <limits>
#include <set>

#include "common/logging.h"

namespace boss::engine
{

// ------------------------------------------------------------------
// AndStream
// ------------------------------------------------------------------

AndStream::AndStream(std::vector<std::unique_ptr<DocStream>> members,
                     ExecHooks *hooks)
    : members_(std::move(members)), hooks_(hooks)
{
    BOSS_ASSERT(members_.size() >= 2, "AndStream needs >= 2 members");
    findMatch();
}

void
AndStream::findMatch()
{
    DocStream &lead = *members_[0];
    while (!lead.atEnd()) {
        DocId d = lead.doc();
        bool all = true;
        for (std::size_t i = 1; i < members_.size(); ++i) {
            members_[i]->advanceTo(d);
            if (hooks_ != nullptr)
                hooks_->onCompare(1);
            if (members_[i]->atEnd()) {
                ended_ = true;
                return;
            }
            if (members_[i]->doc() != d) {
                // Mismatch: leapfrog the lead to the blocker's doc.
                lead.advanceTo(members_[i]->doc());
                all = false;
                break;
            }
        }
        if (all) {
            current_ = d;
            return;
        }
    }
    ended_ = true;
}

void
AndStream::next()
{
    BOSS_ASSERT(!ended_, "next() on exhausted AndStream");
    members_[0]->next();
    findMatch();
}

void
AndStream::advanceTo(DocId target)
{
    if (ended_ || current_ >= target)
        return;
    members_[0]->advanceTo(target);
    findMatch();
}

float
AndStream::upperBound() const
{
    float ub = 0.f;
    for (const auto &m : members_)
        ub += m->upperBound();
    return ub;
}

float
AndStream::blockUpperBound() const
{
    float ub = 0.f;
    for (const auto &m : members_)
        ub += m->blockUpperBound();
    return ub;
}

DocId
AndStream::blockEnd() const
{
    DocId end = kInvalidDocId;
    for (const auto &m : members_)
        end = std::min(end, m->blockEnd());
    return end;
}

float
AndStream::maxBlockUBInRange(DocId lo, DocId hi)
{
    float ub = 0.f;
    for (auto &m : members_)
        ub += m->maxBlockUBInRange(lo, hi);
    return ub;
}

void
AndStream::skipPastBlock()
{
    // Composite streams skip by advancing past the joint block end.
    advanceTo(blockEnd() + 1);
}

void
AndStream::collectMatches(std::vector<TermMatch> &out)
{
    for (auto &m : members_)
        m->collectMatches(out);
}

// ------------------------------------------------------------------
// OrStream
// ------------------------------------------------------------------

OrStream::OrStream(std::vector<std::unique_ptr<DocStream>> members,
                   ExecHooks *hooks)
    : members_(std::move(members)), hooks_(hooks)
{
    BOSS_ASSERT(members_.size() >= 2, "OrStream needs >= 2 members");
}

bool
OrStream::atEnd() const
{
    for (const auto &m : members_) {
        if (!m->atEnd())
            return false;
    }
    return true;
}

DocId
OrStream::doc() const
{
    DocId d = kInvalidDocId;
    for (const auto &m : members_) {
        if (!m->atEnd())
            d = std::min(d, m->doc());
    }
    return d;
}

void
OrStream::next()
{
    DocId d = doc();
    for (auto &m : members_) {
        if (!m->atEnd() && m->doc() == d)
            m->next();
        if (hooks_ != nullptr)
            hooks_->onCompare(1);
    }
}

void
OrStream::advanceTo(DocId target)
{
    for (auto &m : members_) {
        if (!m->atEnd())
            m->advanceTo(target);
    }
}

float
OrStream::upperBound() const
{
    // A doc may match several members; their contributions add.
    float ub = 0.f;
    for (const auto &m : members_)
        ub += m->upperBound();
    return ub;
}

float
OrStream::blockUpperBound() const
{
    float ub = 0.f;
    for (const auto &m : members_) {
        if (!m->atEnd())
            ub += m->blockUpperBound();
    }
    return ub;
}

DocId
OrStream::blockEnd() const
{
    DocId end = kInvalidDocId;
    for (const auto &m : members_) {
        if (!m->atEnd())
            end = std::min(end, m->blockEnd());
    }
    return end;
}

float
OrStream::maxBlockUBInRange(DocId lo, DocId hi)
{
    float ub = 0.f;
    for (auto &m : members_) {
        if (!m->atEnd())
            ub += m->maxBlockUBInRange(lo, hi);
    }
    return ub;
}

void
OrStream::skipPastBlock()
{
    advanceTo(blockEnd() + 1);
}

void
OrStream::collectMatches(std::vector<TermMatch> &out)
{
    DocId d = doc();
    for (auto &m : members_) {
        if (!m->atEnd() && m->doc() == d)
            m->collectMatches(out);
    }
}

// ------------------------------------------------------------------
// Stream construction
// ------------------------------------------------------------------

namespace
{

std::unique_ptr<DocStream>
makeTermStream(const index::InvertedIndex &index, TermId t,
               ExecHooks *hooks, QueryArena *arena, FaultPolicy *faults)
{
    return std::make_unique<TermStream>(index.list(t), hooks, arena,
                                        faults);
}

/** AND-group over raw terms, most selective list leading. */
std::unique_ptr<DocStream>
makeGroupStream(const index::InvertedIndex &index,
                std::vector<TermId> terms, ExecHooks *hooks,
                QueryArena *arena, FaultPolicy *faults)
{
    if (terms.size() == 1)
        return makeTermStream(index, terms[0], hooks, arena, faults);
    std::sort(terms.begin(), terms.end(), [&](TermId a, TermId b) {
        return index.list(a).docCount < index.list(b).docCount;
    });
    std::vector<std::unique_ptr<DocStream>> members;
    members.reserve(terms.size());
    for (TermId t : terms)
        members.push_back(makeTermStream(index, t, hooks, arena, faults));
    return std::make_unique<AndStream>(std::move(members), hooks);
}

} // namespace

std::vector<std::unique_ptr<DocStream>>
buildStreams(const index::InvertedIndex &index, const QueryPlan &plan,
             ExecHooks *hooks, QueryArena *arena, FaultPolicy *faults)
{
    BOSS_ASSERT(!plan.groups.empty(), "empty query plan");
    std::vector<std::unique_ptr<DocStream>> streams;

    // Factor terms common to every group (groups are sorted sets):
    // A AND (B OR C) arrives as {A,B},{A,C} and becomes A ^ (B v C).
    if (plan.groups.size() >= 2) {
        std::vector<TermId> common = plan.groups[0];
        for (const auto &g : plan.groups) {
            std::vector<TermId> next;
            std::set_intersection(common.begin(), common.end(),
                                  g.begin(), g.end(),
                                  std::back_inserter(next));
            common = std::move(next);
        }
        if (!common.empty()) {
            bool factorable = true;
            std::vector<std::vector<TermId>> rests;
            for (const auto &g : plan.groups) {
                std::vector<TermId> rest;
                std::set_difference(g.begin(), g.end(), common.begin(),
                                    common.end(),
                                    std::back_inserter(rest));
                // Only factor the simple common-prefix shape the
                // hardware pipelines (each rest a single term).
                if (rest.size() != 1) {
                    factorable = false;
                    break;
                }
                rests.push_back(std::move(rest));
            }
            if (factorable) {
                std::vector<std::unique_ptr<DocStream>> orMembers;
                for (const auto &rest : rests)
                    orMembers.push_back(makeTermStream(
                        index, rest[0], hooks, arena, faults));
                std::vector<std::unique_ptr<DocStream>> andMembers;
                // Most selective common term leads the conjunction.
                std::sort(common.begin(), common.end(),
                          [&](TermId a, TermId b) {
                              return index.list(a).docCount <
                                     index.list(b).docCount;
                          });
                for (TermId t : common)
                    andMembers.push_back(makeTermStream(
                        index, t, hooks, arena, faults));
                andMembers.push_back(std::make_unique<OrStream>(
                    std::move(orMembers), hooks));
                streams.push_back(std::make_unique<AndStream>(
                    std::move(andMembers), hooks));
                return streams;
            }
        }
    }

    for (const auto &g : plan.groups)
        streams.push_back(
            makeGroupStream(index, g, hooks, arena, faults));
    return streams;
}

} // namespace boss::engine
