/**
 * @file
 * Candidate-document streams.
 *
 * A query plan is executed as a union over streams: a pure union has
 * one TermStream per term, a pure intersection is a single AndStream,
 * and a mixed query like A AND (B OR C) is an AndStream whose second
 * member is an OrStream -- mirroring how a BOSS core wires its
 * intersection and union modules together. Streams expose the two
 * upper bounds early termination needs: the list-level bound (WAND,
 * used by the union module) and the current-block bound (used by the
 * block fetch module's score estimation unit).
 */

#ifndef BOSS_ENGINE_STREAMS_H
#define BOSS_ENGINE_STREAMS_H

#include <memory>
#include <utility>
#include <vector>

#include "engine/cursor.h"
#include "engine/plan.h"
#include "index/inverted_index.h"

namespace boss::engine
{

/** A (term, tf) match contributed by a stream at its current doc. */
struct TermMatch
{
    TermId term;
    TermFreq tf;
    float idf;
};

/**
 * Abstract monotone stream of candidate documents.
 */
class DocStream
{
  public:
    virtual ~DocStream() = default;

    virtual bool atEnd() const = 0;
    /** Current candidate docID (valid while !atEnd()). */
    virtual DocId doc() const = 0;
    /** Advance past the current candidate. */
    virtual void next() = 0;
    /** Advance to the first candidate >= target. */
    virtual void advanceTo(DocId target) = 0;

    /** Upper bound of this stream's score contribution (WAND). */
    virtual float upperBound() const = 0;
    /** Upper bound from the block(s) holding the current doc. */
    virtual float blockUpperBound() const = 0;
    /** Last docID covered by the current block(s). */
    virtual DocId blockEnd() const = 0;

    /**
     * Max possible contribution of this stream to any doc in
     * [lo, hi], from block metadata (score estimation unit).
     */
    virtual float maxBlockUBInRange(DocId lo, DocId hi) = 0;

    /**
     * Skip past the current block without evaluating its remaining
     * docs (block fetch module early termination).
     */
    virtual void skipPastBlock() = 0;

    /** Collect (term, tf) contributions at the current doc. */
    virtual void collectMatches(std::vector<TermMatch> &out) = 0;

    /**
     * Block fetch module memo: blockEnd() of the last block this
     * stream was inspected on by block-level early termination.
     * Plain per-stream state (streams live for one query) so the
     * block-skip path touches no associative containers.
     */
    DocId lastBlockChecked = kInvalidDocId;
};

/**
 * Stream over a single term's posting list.
 */
class TermStream : public DocStream
{
  public:
    TermStream(const index::CompressedPostingList &list,
               ExecHooks *hooks, QueryArena *arena = nullptr,
               FaultPolicy *faults = nullptr)
        : cursor_(list, hooks, arena, faults)
    {}

    bool atEnd() const override { return cursor_.atEnd(); }
    DocId doc() const override { return cursor_.doc(); }
    void next() override { cursor_.next(); }
    void advanceTo(DocId target) override { cursor_.advanceTo(target); }

    float upperBound() const override { return cursor_.listMax(); }
    float blockUpperBound() const override { return cursor_.blockMax(); }
    DocId blockEnd() const override { return cursor_.blockLast(); }

    float
    maxBlockUBInRange(DocId lo, DocId hi) override
    {
        return cursor_.peekMaxInRange(lo, hi);
    }

    void skipPastBlock() override { cursor_.skipPastBlock(); }

    void
    collectMatches(std::vector<TermMatch> &out) override
    {
        out.push_back({cursor_.term(), cursor_.tf(), cursor_.idf()});
    }

    ListCursor &cursor() { return cursor_; }

  private:
    ListCursor cursor_;
};

/**
 * Conjunction (intersection) of member streams, advanced with the
 * Small-versus-Small strategy: the first member must be the most
 * selective. Positioned only on docs present in every member.
 */
class AndStream : public DocStream
{
  public:
    AndStream(std::vector<std::unique_ptr<DocStream>> members,
              ExecHooks *hooks);

    bool atEnd() const override { return ended_; }
    DocId doc() const override { return current_; }
    void next() override;
    void advanceTo(DocId target) override;

    float upperBound() const override;
    float blockUpperBound() const override;
    DocId blockEnd() const override;
    float maxBlockUBInRange(DocId lo, DocId hi) override;
    void skipPastBlock() override;

    void collectMatches(std::vector<TermMatch> &out) override;

  private:
    /** Align all members on the next common doc >= the lead's doc. */
    void findMatch();

    std::vector<std::unique_ptr<DocStream>> members_;
    ExecHooks *hooks_;
    DocId current_ = 0;
    bool ended_ = false;
};

/**
 * Disjunction (union) of member streams: positioned on the minimum
 * member doc.
 */
class OrStream : public DocStream
{
  public:
    OrStream(std::vector<std::unique_ptr<DocStream>> members,
             ExecHooks *hooks);

    bool atEnd() const override;
    DocId doc() const override;
    void next() override;
    void advanceTo(DocId target) override;

    float upperBound() const override;
    float blockUpperBound() const override;
    DocId blockEnd() const override;
    float maxBlockUBInRange(DocId lo, DocId hi) override;
    void skipPastBlock() override;

    void collectMatches(std::vector<TermMatch> &out) override;

  private:
    std::vector<std::unique_ptr<DocStream>> members_;
    ExecHooks *hooks_;
};

/**
 * Build the stream tree for a plan. Factors a term set common to all
 * groups into an enclosing AndStream (so Q6's A AND (B OR C OR D)
 * fetches A once), otherwise returns one stream per group.
 *
 * @p arena, when non-null, supplies every cursor's decode scratch;
 * it must outlive the returned streams and be reset() only after
 * they are destroyed. @p faults, when non-null, guards every
 * cursor's decode with the CRC/retry/drop policy.
 */
std::vector<std::unique_ptr<DocStream>>
buildStreams(const index::InvertedIndex &index, const QueryPlan &plan,
             ExecHooks *hooks, QueryArena *arena = nullptr,
             FaultPolicy *faults = nullptr);

} // namespace boss::engine

#endif // BOSS_ENGINE_STREAMS_H
