/**
 * @file
 * Decode-time resilience policy: CRC-verify, bounded re-read,
 * skip-block degrade.
 *
 * Every payload the engine decodes carries a builder-computed CRC32
 * in its block metadata. When a FaultPolicy is active, each block
 * read is checked against that CRC after the fault model injects
 * whatever the media did to it: a mismatch triggers bounded re-reads
 * (transient bit flips clear on retry), and a block that stays bad —
 * stuck media — is dropped: its postings contribute nothing, the
 * query completes with degraded scores, and the drop is counted and
 * traced. A null policy is the fast path: no copy, no CRC, behavior
 * bit-identical to a build without this subsystem.
 *
 * The policy is shared by every worker thread of a device (trace
 * building fans out over the host pool), so its counters are
 * atomics. Fault decisions themselves are pure functions of the
 * model's seed and the block's key — never of thread interleaving —
 * so results stay bit-identical at any thread count.
 */

#ifndef BOSS_ENGINE_RESILIENCE_H
#define BOSS_ENGINE_RESILIENCE_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "engine/hooks.h"
#include "index/compressed_list.h"
#include "mem/fault_model.h"

namespace boss::index
{
class InvertedIndex;
}

namespace boss::engine
{

class FaultPolicy
{
  public:
    explicit FaultPolicy(const mem::FaultModel &model) : model_(model)
    {}

    /**
     * Run the read-verify-retry protocol for one payload of block
     * @p b of @p list (@p tfPayload selects the tf sidecar).
     * Returns true when a read passed its CRC — the caller then
     * decodes the (clean) payload as usual — or false when the block
     * exhausted its retries and must be dropped. Retries and drops
     * fire the corresponding @p hooks callbacks so timing models
     * charge the extra traffic.
     */
    bool verifyBlock(const index::CompressedPostingList &list,
                     std::uint32_t b, bool tfPayload, ExecHooks *hooks);

    /**
     * Memoize successful verifies per payload of @p index: a block
     * that passed its CRC once is not re-checked on later touches.
     * This is the lazy-integrity half of the mmap load path -- a
     * mapped index skips the load-time whole-file CRC, so its first
     * decode of each block runs the full verify (catching at-rest
     * corruption on first touch), and re-touches cost O(1). Failed
     * verifies are never memoized: the deterministic fault schedule
     * replays them identically. Call again to re-arm for a new index;
     * only lists of @p index may be verified afterwards.
     */
    void enableVerifyOnce(const index::InvertedIndex &index);

    const mem::FaultModel &model() const { return model_; }

    // Cumulative event counters (across all queries and threads).
    std::uint64_t crcChecks() const { return checks_.load(); }
    std::uint64_t crcFailures() const { return failures_.load(); }
    std::uint64_t crcRetries() const { return retries_.load(); }
    std::uint64_t blocksDropped() const { return dropped_.load(); }

  private:
    /** Bit slot of one payload: 2 per block (doc, tf). */
    std::uint64_t memoSlot(TermId term, std::uint32_t b,
                           bool tfPayload) const
    {
        return (blockBase_[term] + b) * 2 + (tfPayload ? 1 : 0);
    }

    const mem::FaultModel &model_;
    /** Per-term base into the verified-bit space (prefix sums). */
    std::vector<std::uint64_t> blockBase_;
    /** One bit per payload, set after a successful verify. */
    std::unique_ptr<std::atomic<std::uint64_t>[]> verified_;
    std::atomic<std::uint64_t> checks_{0};
    std::atomic<std::uint64_t> failures_{0};
    std::atomic<std::uint64_t> retries_{0};
    std::atomic<std::uint64_t> dropped_{0};
};

} // namespace boss::engine

#endif // BOSS_ENGINE_RESILIENCE_H
