/**
 * @file
 * Query expressions and execution plans.
 *
 * The offloading API accepts expression strings like
 *   "A" AND ("B" OR "C")
 * (paper Sec. IV-D). The parser builds an expression tree; the
 * planner normalizes it to a union of intersection groups (DNF),
 * which is exactly BOSS's intersection-first execution order: a
 * 3-term mixed query A AND (B OR C) becomes (A^B) v (A^C).
 */

#ifndef BOSS_ENGINE_PLAN_H
#define BOSS_ENGINE_PLAN_H

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "workload/queries.h"

namespace boss::engine
{

/** Expression tree node. */
struct QueryExpr
{
    enum class Kind : std::uint8_t { Term, And, Or };

    Kind kind = Kind::Term;
    TermId term = 0;                ///< valid when kind == Term
    std::vector<QueryExpr> children; ///< valid for And/Or
};

/** Resolve a quoted term token (e.g. "t42") to a TermId. */
using TermResolver = std::function<TermId(std::string_view)>;

/**
 * Parse an expression string. Grammar:
 *   expr   := andExpr (OR andExpr)*
 *   andExpr:= atom (AND atom)*
 *   atom   := '"' term '"' | '(' expr ')'
 * AND binds tighter than OR. Raises fatal() on syntax errors.
 */
QueryExpr parseExpression(std::string_view text,
                          const TermResolver &resolve);

/** The default resolver for "t<N>" names used by the workload. */
TermId defaultTermResolver(std::string_view name);

/**
 * An execution plan: candidates = union over groups of the
 * intersection of each group's terms. `allTerms` lists every
 * distinct term for scoring (a document's query score sums the
 * contributions of all matching terms, per BM25).
 */
struct QueryPlan
{
    std::vector<std::vector<TermId>> groups;
    std::vector<TermId> allTerms;

    bool
    isPureUnion() const
    {
        for (const auto &g : groups) {
            if (g.size() != 1)
                return false;
        }
        return true;
    }

    bool isPureIntersection() const { return groups.size() == 1; }
};

/** Normalize an expression tree to DNF (intersections first). */
QueryPlan planQuery(const QueryExpr &expr);

/** Build the plan for one of the Table II workload query types. */
QueryPlan planQuery(const workload::Query &query);

} // namespace boss::engine

#endif // BOSS_ENGINE_PLAN_H
