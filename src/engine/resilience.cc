#include "engine/resilience.h"

#include <algorithm>
#include <vector>

#include "common/crc32.h"
#include "index/inverted_index.h"

namespace boss::engine
{

void
FaultPolicy::enableVerifyOnce(const index::InvertedIndex &index)
{
    blockBase_.assign(index.numTerms() + 1, 0);
    for (TermId t = 0; t < index.numTerms(); ++t) {
        blockBase_[t + 1] =
            blockBase_[t] + index.list(t).blocks.size();
    }
    std::uint64_t words = (blockBase_.back() * 2 + 63) / 64;
    verified_ = std::make_unique<std::atomic<std::uint64_t>[]>(
        std::max<std::uint64_t>(words, 1));
    for (std::uint64_t w = 0; w < std::max<std::uint64_t>(words, 1);
         ++w)
        verified_[w].store(0, std::memory_order_relaxed);
}

bool
FaultPolicy::verifyBlock(const index::CompressedPostingList &list,
                         std::uint32_t b, bool tfPayload,
                         ExecHooks *hooks)
{
    if (verified_ != nullptr) {
        std::uint64_t slot = memoSlot(list.term, b, tfPayload);
        if (verified_[slot / 64].load(std::memory_order_acquire) &
            (1ull << (slot % 64)))
            return true;
    }
    const index::BlockMeta &meta = list.blocks[b];
    const std::uint8_t *payload =
        tfPayload ? list.tfPayload.data() + meta.tfOffset
                  : list.docPayload.data() + meta.docOffset;
    std::size_t bytes = tfPayload ? meta.tfBytes : meta.docBytes;
    std::uint32_t expect = tfPayload ? meta.tfCrc : meta.docCrc;

    std::uint64_t key =
        mem::FaultModel::blockKey(list.term, b, tfPayload);
    bool stuck = model_.blockStuck(key);

    std::vector<std::uint8_t> scratch;
    for (std::uint32_t attempt = 0;; ++attempt) {
        checks_.fetch_add(1, std::memory_order_relaxed);
        bool ok;
        if (stuck) {
            // Worn-out cells: every read of this block returns
            // garbage; no need to materialize it to know the CRC
            // cannot match.
            ok = false;
        } else if (model_.corrupt(key, attempt, nullptr, bytes) > 0) {
            // This attempt drew transient flips: apply them to a
            // scratch copy and run the real check, so the detection
            // machinery is exercised on genuinely corrupted bytes.
            scratch.assign(payload, payload + bytes);
            model_.corrupt(key, attempt, scratch.data(), bytes);
            ok = crc32(scratch.data(), scratch.size()) == expect;
        } else {
            // Clean read: still verified, which also catches real
            // on-disk corruption that slipped past load-time checks.
            ok = crc32(payload, bytes) == expect;
        }
        if (ok) {
            if (verified_ != nullptr) {
                std::uint64_t slot = memoSlot(list.term, b, tfPayload);
                verified_[slot / 64].fetch_or(
                    1ull << (slot % 64), std::memory_order_release);
            }
            return true;
        }

        failures_.fetch_add(1, std::memory_order_relaxed);
        if (attempt >= model_.maxRetries())
            break;
        retries_.fetch_add(1, std::memory_order_relaxed);
        if (hooks != nullptr)
            hooks->onBlockRetry(list.term, meta, tfPayload);
    }

    dropped_.fetch_add(1, std::memory_order_relaxed);
    if (hooks != nullptr)
        hooks->onBlockDropped(list.term, meta);
    return false;
}

} // namespace boss::engine
