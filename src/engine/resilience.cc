#include "engine/resilience.h"

#include <vector>

#include "common/crc32.h"

namespace boss::engine
{

bool
FaultPolicy::verifyBlock(const index::CompressedPostingList &list,
                         std::uint32_t b, bool tfPayload,
                         ExecHooks *hooks)
{
    const index::BlockMeta &meta = list.blocks[b];
    const std::uint8_t *payload =
        tfPayload ? list.tfPayload.data() + meta.tfOffset
                  : list.docPayload.data() + meta.docOffset;
    std::size_t bytes = tfPayload ? meta.tfBytes : meta.docBytes;
    std::uint32_t expect = tfPayload ? meta.tfCrc : meta.docCrc;

    std::uint64_t key =
        mem::FaultModel::blockKey(list.term, b, tfPayload);
    bool stuck = model_.blockStuck(key);

    std::vector<std::uint8_t> scratch;
    for (std::uint32_t attempt = 0;; ++attempt) {
        checks_.fetch_add(1, std::memory_order_relaxed);
        bool ok;
        if (stuck) {
            // Worn-out cells: every read of this block returns
            // garbage; no need to materialize it to know the CRC
            // cannot match.
            ok = false;
        } else if (model_.corrupt(key, attempt, nullptr, bytes) > 0) {
            // This attempt drew transient flips: apply them to a
            // scratch copy and run the real check, so the detection
            // machinery is exercised on genuinely corrupted bytes.
            scratch.assign(payload, payload + bytes);
            model_.corrupt(key, attempt, scratch.data(), bytes);
            ok = crc32(scratch.data(), scratch.size()) == expect;
        } else {
            // Clean read: still verified, which also catches real
            // on-disk corruption that slipped past load-time checks.
            ok = crc32(payload, bytes) == expect;
        }
        if (ok)
            return true;

        failures_.fetch_add(1, std::memory_order_relaxed);
        if (attempt >= model_.maxRetries())
            break;
        retries_.fetch_add(1, std::memory_order_relaxed);
        if (hooks != nullptr)
            hooks->onBlockRetry(list.term, meta, tfPayload);
    }

    dropped_.fetch_add(1, std::memory_order_relaxed);
    if (hooks != nullptr)
        hooks->onBlockDropped(list.term, meta);
    return false;
}

} // namespace boss::engine
