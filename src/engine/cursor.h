/**
 * @file
 * Posting-list cursor with metadata-driven block skipping and lazy
 * block fetching.
 *
 * The cursor is the shared traversal primitive. Blocks are *fetched
 * lazily*: positioning on a block reads only its 19-byte metadata;
 * the payload is fetched and decompressed the first time a document
 * beyond the metadata is needed. This is what lets the BOSS block
 * fetch module skip whole blocks -- decided from metadata alone --
 * without ever paying their SCM traffic. Every load/decode/skip
 * fires an ExecHooks callback so timing models can charge for it.
 *
 * Decode scratch comes from an optional QueryArena so batch loops
 * run allocation-free; the cursor memoizes the decoded block and the
 * tf payload is decoded on its own (never re-decoding the docIDs it
 * rides with).
 */

#ifndef BOSS_ENGINE_CURSOR_H
#define BOSS_ENGINE_CURSOR_H

#include "common/aligned.h"
#include "engine/arena.h"
#include "engine/hooks.h"
#include "engine/resilience.h"
#include "index/compressed_list.h"

namespace boss::engine
{

class ListCursor
{
  public:
    /**
     * @param list the compressed posting list to traverse
     * @param hooks instrumentation sink (may be nullptr)
     * @param arena scratch-buffer pool (may be nullptr; the cursor
     *        then owns its decode buffers)
     * @param faults decode-time CRC/retry/drop policy (nullptr —
     *        the default — decodes directly, bit-identical to a
     *        build without fault injection)
     */
    ListCursor(const index::CompressedPostingList &list,
               ExecHooks *hooks, QueryArena *arena = nullptr,
               FaultPolicy *faults = nullptr);

    /** Exhausted? Once true, doc() is invalid. */
    bool atEnd() const { return ended_; }

    /**
     * Current docID. At an unfetched block this is the metadata's
     * firstDoc -- no payload fetch happens.
     */
    DocId doc() const;

    /**
     * Current posting's term frequency. Lazily fetches the doc and
     * tf payloads of the current block on first use.
     */
    TermFreq tf();

    /** Advance to the next posting (fetches the current block). */
    void next();

    /**
     * Advance to the first posting with docID >= @p target. Seeks at
     * block granularity first (metadata only; skipped blocks are
     * never fetched), then scans within the landing block. Landing
     * in the already-decoded block never re-decodes.
     */
    void advanceTo(DocId target);

    /**
     * Jump past the current block without evaluating its remaining
     * documents (block fetch module early termination). If the block
     * was never fetched, it never will be.
     */
    void skipPastBlock();

    /**
     * Max term score among this list's blocks overlapping
     * [@p lo, @p hi], scanning metadata forward from the current
     * block (the score estimation unit's overlap inspection).
     */
    float peekMaxInRange(DocId lo, DocId hi);

    /** Metadata of the current block. */
    const index::BlockMeta &
    blockMeta() const
    {
        return list_.blocks[block_];
    }

    /** Max term score of the current block (score estimation unit). */
    float blockMax() const { return blockMeta().maxTermScore; }

    /** Last docID of the current block. */
    DocId blockLast() const { return blockMeta().lastDoc; }

    /** List-wide upper bound (WAND). */
    float listMax() const { return list_.maxTermScore; }

    float idf() const { return list_.idf; }
    TermId term() const { return list_.term; }
    std::uint32_t docCount() const { return list_.docCount; }

    const index::CompressedPostingList &list() const { return list_; }

    /** Number of doc blocks actually fetched+decoded so far. */
    std::uint32_t blocksLoaded() const { return blocksLoaded_; }

  private:
    /** Position on block @p b (metadata only, no payload fetch). */
    void setBlock(std::uint32_t b);
    /** Fetch + decode the current block's doc payload if needed. */
    void ensureDecoded();

    /** No block decoded yet (decodedBlock_ sentinel). */
    static constexpr std::uint32_t kNoBlock = 0xFFFFFFFFu;

    const index::CompressedPostingList &list_;
    ExecHooks *hooks_;
    FaultPolicy *faults_;
    std::uint32_t block_ = 0;  ///< current block index
    std::uint32_t pos_ = 0;    ///< position within decoded block
    bool ended_ = false;
    bool decoded_ = false;
    bool tfLoaded_ = false;
    /**
     * The decoded block was dropped by the fault policy: docs_ holds
     * the single sentinel posting (lastDoc, tf 0) that keeps every
     * traversal invariant while contributing nothing to scores.
     */
    bool dropped_ = false;
    std::uint32_t decodedBlock_ = kNoBlock; ///< block docs_ holds
    std::uint32_t blocksLoaded_ = 0;
    AlignedVec<DocId> *docs_;    ///< decode scratch (arena or owned)
    AlignedVec<TermFreq> *tfs_;
    AlignedVec<DocId> ownedDocs_;     ///< fallback when no arena
    AlignedVec<TermFreq> ownedTfs_;
};

} // namespace boss::engine

#endif // BOSS_ENGINE_CURSOR_H
