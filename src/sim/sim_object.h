/**
 * @file
 * Base class for named, stat-bearing model components.
 */

#ifndef BOSS_SIM_SIM_OBJECT_H
#define BOSS_SIM_SIM_OBJECT_H

#include <string>

#include "sim/event_queue.h"
#include "stats/stats.h"

namespace boss::sim
{

/**
 * A named component attached to an event queue and a stats group.
 *
 * Mirrors gem5's SimObject in miniature: construction wires the
 * object into the simulation's shared services; subclasses register
 * their counters in their constructors.
 */
class SimObject
{
  public:
    SimObject(std::string name, EventQueue &eq, stats::Group &parent)
        : name_(std::move(name)), eq_(eq),
          statsGroup_(parent.subgroup(name_))
    {}

    virtual ~SimObject() = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    const std::string &name() const { return name_; }

  protected:
    EventQueue &eventQueue() { return eq_; }
    stats::Group &statsGroup() { return statsGroup_; }

  private:
    std::string name_;
    EventQueue &eq_;
    stats::Group &statsGroup_;
};

} // namespace boss::sim

#endif // BOSS_SIM_SIM_OBJECT_H
