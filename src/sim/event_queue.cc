#include "sim/event_queue.h"

#include "common/logging.h"

namespace boss::sim
{

void
EventQueue::schedule(Tick when, Callback cb)
{
    BOSS_ASSERT(when >= now_, "scheduling into the past: when=", when,
                " now=", now_);
    heap_.push(Entry{when, seq_++, std::move(cb)});
}

void
EventQueue::traceTick()
{
    if (now_ == tracedTick_)
        return;
    tracedTick_ = now_;
    // +1 counts the event being dispatched at this tick.
    traceScope_.counter(traceLane_, "pending",
                        static_cast<double>(now_),
                        static_cast<double>(heap_.size() + 1));
}

Tick
EventQueue::run()
{
    while (!heap_.empty()) {
        // The callback may schedule more events; copy out first.
        Entry e = std::move(const_cast<Entry &>(heap_.top()));
        heap_.pop();
        now_ = e.when;
        ++executed_;
        if (traceScope_)
            traceTick();
        e.cb();
    }
    return now_;
}

Tick
EventQueue::runUntil(Tick limit)
{
    while (!heap_.empty() && heap_.top().when <= limit) {
        Entry e = std::move(const_cast<Entry &>(heap_.top()));
        heap_.pop();
        now_ = e.when;
        ++executed_;
        if (traceScope_)
            traceTick();
        e.cb();
    }
    if (now_ < limit)
        now_ = limit;
    return now_;
}

} // namespace boss::sim
