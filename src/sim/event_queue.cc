#include "sim/event_queue.h"

#include "common/logging.h"

namespace boss::sim
{

void
EventQueue::schedule(Tick when, Callback cb)
{
    BOSS_ASSERT(when >= now_, "scheduling into the past: when=", when,
                " now=", now_);
    heap_.push(Entry{when, seq_++, std::move(cb)});
}

Tick
EventQueue::run()
{
    while (!heap_.empty()) {
        // The callback may schedule more events; copy out first.
        Entry e = std::move(const_cast<Entry &>(heap_.top()));
        heap_.pop();
        now_ = e.when;
        ++executed_;
        e.cb();
    }
    return now_;
}

Tick
EventQueue::runUntil(Tick limit)
{
    while (!heap_.empty() && heap_.top().when <= limit) {
        Entry e = std::move(const_cast<Entry &>(heap_.top()));
        heap_.pop();
        now_ = e.when;
        ++executed_;
        e.cb();
    }
    if (now_ < limit)
        now_ = limit;
    return now_;
}

} // namespace boss::sim
