/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A minimal gem5-style event queue: callables scheduled at absolute
 * ticks, executed in (tick, insertion-order) order. All timing models
 * in this repository are driven from one EventQueue per simulation
 * run, so cross-model interleavings (e.g. several accelerator cores
 * contending on SCM channels) are globally ordered.
 */

#ifndef BOSS_SIM_EVENT_QUEUE_H
#define BOSS_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.h"
#include "trace/recorder.h"

namespace boss::sim
{

/**
 * Priority queue of timestamped callbacks.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule @p cb at absolute tick @p when (>= now). */
    void schedule(Tick when, Callback cb);

    /** Schedule @p cb @p delta ticks from now. */
    void
    scheduleIn(Tick delta, Callback cb)
    {
        schedule(now_ + delta, std::move(cb));
    }

    /** Run until no events remain. Returns the final tick. */
    Tick run();

    /** Run until the queue drains or @p limit is reached. */
    Tick runUntil(Tick limit);

    /** Number of events executed so far. */
    std::uint64_t eventsExecuted() const { return executed_; }

    bool empty() const { return heap_.empty(); }

    /**
     * Attach an event recorder: each time simulated time advances,
     * the pending-event count is emitted as a counter series on
     * @p lane (one sample per distinct tick, not per event). Pass a
     * null scope to detach.
     */
    void
    setTrace(trace::Scope scope, std::uint16_t lane)
    {
        traceScope_ = scope;
        traceLane_ = lane;
    }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq; // tie-break: FIFO among same-tick events
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /** Emit the queue-depth counter sample for the current tick. */
    void traceTick();

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    Tick now_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t executed_ = 0;
    trace::Scope traceScope_;
    std::uint16_t traceLane_ = 0;
    Tick tracedTick_ = ~Tick{0};
};

/**
 * A clock domain converting between cycles and ticks.
 *
 * Cycle periods are kept in picoseconds; e.g. the 1 GHz BOSS core has
 * a 1000 ps period, the 2.7 GHz host CPU a 370 ps period (rounded,
 * which is fine for relative-throughput experiments).
 */
class ClockDomain
{
  public:
    explicit ClockDomain(double freq_hz)
        : period_(static_cast<Tick>(
              static_cast<double>(kTicksPerSecond) / freq_hz + 0.5))
    {}

    Tick period() const { return period_; }

    Tick toTicks(Cycles c) const { return c * period_; }

    Cycles
    toCycles(Tick t) const
    {
        return (t + period_ - 1) / period_;
    }

    double
    toSeconds(Cycles c) const
    {
        return static_cast<double>(toTicks(c)) /
               static_cast<double>(kTicksPerSecond);
    }

  private:
    Tick period_;
};

} // namespace boss::sim

#endif // BOSS_SIM_EVENT_QUEUE_H
