/**
 * @file
 * The BOSS device: the library's main public entry point.
 *
 * A Device owns an index image placed in the modeled SCM pool and
 * serves search queries through the full simulated accelerator
 * (functional result + cycle-level timing). This is the programmer-
 * facing facade; the paper-faithful init()/search() intrinsics in
 * src/api wrap it.
 */

#ifndef BOSS_BOSS_DEVICE_H
#define BOSS_BOSS_DEVICE_H

#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "engine/arena.h"
#include "engine/execute.h"
#include "index/memory_layout.h"
#include "index/text_builder.h"
#include "model/runner.h"
#include "trace/recorder.h"
#include "trace/summary.h"

namespace boss::accel
{

/** Device configuration (paper Table I defaults). */
struct DeviceConfig
{
    std::uint32_t cores = 8;
    mem::MemConfig mem = mem::scmConfig();
    mem::LinkConfig link;
    std::size_t k = engine::kDefaultTopK;
    /** Ablation switch; leave at Boss for the real device. */
    model::SystemKind kind = model::SystemKind::Boss;
    /** Trace-lane label; ShardedDevice names each shard device. */
    std::string label = "device";
    /**
     * Fault injection spec (default: no faults, zero overhead). When
     * any fault source is enabled, decodes run under the CRC/retry/
     * drop policy and replay charges degraded-read latency.
     */
    mem::FaultSpec faults;
    /** Base seed of the fault schedule (shared across shards). */
    std::uint64_t faultSeed = 0xB055;
    /** Shard index; per-device fault schedules key on it. */
    std::uint32_t deviceId = 0;
    /**
     * DRAM block-cache tier capacity in MiB (0 disables). When set,
     * index reads that hit the cache are serviced at DRAM timing and
     * only misses touch the SCM device; residency persists across
     * searches, so a warmed cache keeps paying off.
     */
    double cacheMB = 0.0;
    /** Timing of the DRAM device behind the cache tier. */
    mem::MemConfig cacheMem = mem::dramConfig();
    /** Cache lock shards (1 => deterministic replacement). */
    std::uint32_t cacheShards = 8;
};

/**
 * One query after the host-side build stage: its functional trace
 * set (a wide union contributes several subquery traces), the top-k
 * computed during the build, and the build-side work counters. The
 * unit of work flowing through the serving pipeline — buildQuery()
 * produces these concurrently on pool workers while replayBuilt()
 * consumes them serially on the device model.
 */
struct BuiltQuery
{
    std::vector<model::QueryTrace> traces;
    std::vector<engine::Result> topk;
    std::uint64_t evaluatedDocs = 0;
    std::uint64_t skippedDocs = 0;
};

/** Result of one search() call. */
struct SearchOutcome
{
    std::vector<engine::Result> topk;
    double simSeconds = 0.0;      ///< simulated wall time
    std::uint64_t deviceBytes = 0; ///< SCM traffic for this search
    std::uint64_t evaluatedDocs = 0;
    std::uint64_t skippedDocs = 0;
    /**
     * The whole device was down (spec'd dead shard): no query ran,
     * perQuery holds one empty list per submitted query. ShardedDevice
     * uses this to drop the shard from its merge.
     */
    bool deviceFailed = false;
    std::uint64_t crcRetries = 0;    ///< payload re-reads this search
    std::uint64_t blocksDropped = 0; ///< payloads degraded away
    // DRAM block-cache tier, this search only (zero without a
    // cache). deviceBytes stays SCM traffic, so deviceBytes +
    // dramBytes splits the served bandwidth by tier.
    std::uint64_t dramBytes = 0;
    std::uint64_t cacheLookups = 0;
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    std::uint64_t cacheEvictions = 0;
    /**
     * Per-query top-k lists, one per submitted query in submission
     * order (topk is a copy of the last entry). simSeconds is the
     * batch makespan: queries share the device, so per-query times
     * are not separable.
     */
    std::vector<std::vector<engine::Result>> perQuery;
};

class Device
{
  public:
    explicit Device(DeviceConfig config = {});
    ~Device();

    /** Place an index into the device's memory pool. */
    void loadIndex(index::InvertedIndex index);

    /**
     * Place a shared immutable index without copying it. The live
     * index uses this: every per-segment device of an epoch shares
     * that epoch's rebaked view with the publishing SegmentMap.
     */
    void loadSharedIndex(std::shared_ptr<const index::InvertedIndex> index);

    /** Load a serialized index file (the init() intrinsic's path). */
    void loadIndexFile(const std::string &path);

    /**
     * Place a text index (index + lexicon): textual query terms then
     * resolve through the lexicon in search().
     */
    void loadTextIndex(index::TextIndex ti);

    /** Load a text-index file written by saveTextIndexFile(). */
    void loadTextIndexFile(const std::string &path);

    /**
     * mmap a text-index file instead of copying it to the heap:
     * payloads stay views into the mapping and startup is
     * O(metadata). Integrity moves from load time to first touch --
     * the device arms a verify-once fault policy (a benign fault
     * model when none is configured), so each block's CRC is checked
     * on its first decode and corrupted blocks follow the normal
     * retry/drop degrade path instead of failing the load.
     */
    void loadMappedTextIndexFile(const std::string &path);

    bool hasLexicon() const { return lexicon_.has_value(); }
    const index::Lexicon &lexicon() const;

    bool hasIndex() const { return index_ != nullptr; }
    const index::InvertedIndex &index() const;
    const index::MemoryLayout &layout() const;

    /**
     * Install (or clear, with nullptr) the delete bitmap applied to
     * every subsequent query: tombstoned docs are filtered before
     * the top-k. The set is read concurrently by buildQuery calls —
     * callers must not mutate it while queries are in flight (the
     * live index publishes frozen copies; ShardedDevice::deleteDocs
     * documents its quiescence requirement).
     */
    void
    setTombstones(std::shared_ptr<const index::TombstoneSet> tombstones)
    {
        tombstones_ = std::move(tombstones);
    }
    const index::TombstoneSet *tombstones() const
    {
        return tombstones_.get();
    }

    /** Serve one query given as an API expression string. */
    SearchOutcome search(const std::string &qExpression);

    /** Serve one workload query. */
    SearchOutcome search(const workload::Query &query);

    /** Serve a batch concurrently across the device's cores. */
    SearchOutcome
    searchBatch(const std::vector<workload::Query> &queries);

    /** Serve a batch of API expression strings (see search()). */
    SearchOutcome
    searchBatch(const std::vector<std::string> &qExpressions);

    // ---- Pipelined execution (the serving layer's stages) ----
    //
    // searchBatch() is build-barrier-then-replay: every query's
    // trace must exist before the first replay tick. The serving
    // layer instead streams queries through the two stages —
    // buildQuery() calls run concurrently on pool workers while
    // replayBuilt() consumes completed builds on the (serial)
    // device model — so host decode/merge of finished queries
    // overlaps the builds still in flight.

    /** Parse an API expression into a plan (lexicon-aware). */
    engine::QueryPlan plan(const std::string &qExpression);

    /** Plan one workload query. */
    engine::QueryPlan plan(const workload::Query &query) const
    {
        return engine::planQuery(query);
    }

    /**
     * Stage 1 (thread-safe): functionally execute @p plan and build
     * its replay traces. Concurrent calls must pass distinct arenas
     * (one per worker). With a recorder attached, pass that
     * worker's scope/lane so the build span lands on its lane.
     */
    BuiltQuery buildQuery(const engine::QueryPlan &plan,
                          engine::QueryArena &arena,
                          trace::Scope scope = {},
                          std::uint16_t lane = 0) const;

    /**
     * Stage 2 (serial): replay a group of built queries on the
     * event-driven device model and aggregate the outcome exactly
     * as searchBatch() would (summaries, stats capture, totals).
     * The group models queries concurrently resident on the device;
     * perQuery follows the order of @p built.
     */
    SearchOutcome replayBuilt(std::vector<BuiltQuery> built);

    /** Cumulative simulated busy time across all searches. */
    double totalSimSeconds() const { return totalSeconds_; }
    std::uint64_t totalQueries() const { return totalQueries_; }

    const DeviceConfig &config() const { return config_; }

    /**
     * Is the device able to serve queries? False only when the fault
     * spec declared this device dead — search() then returns an
     * outcome with deviceFailed set instead of results.
     */
    bool operational() const;

    /** Cumulative resilience counters (nullptr without faults). */
    const engine::FaultPolicy *faultPolicy() const
    {
        return faultPolicy_.get();
    }

    /** The DRAM block cache (nullptr unless config.cacheMB > 0). */
    const mem::BlockCache *blockCache() const { return cache_.get(); }

    /** Cumulative traffic split across searches (SCM vs cache DRAM). */
    std::uint64_t totalScmBytes() const { return totalScmBytes_; }
    std::uint64_t totalDramBytes() const { return totalDramBytes_; }

    // ---- Observability ----

    /**
     * Attach an event recorder observing subsequent searches (trace
     * building on host-time lanes, replay on simulated-tick lanes).
     * The recorder must outlive the searches; pass nullptr to detach.
     */
    void setRecorder(trace::Recorder *recorder)
    {
        recorder_ = recorder;
    }

    /**
     * Record one QuerySummary per submitted query for each search;
     * querySummaries() returns the latest batch. Summaries derive
     * from the functional traces plus replay cycle counts, so they
     * are bit-identical at any host thread count.
     */
    void enableQuerySummaries(bool enabled)
    {
        summariesEnabled_ = enabled;
    }
    const std::vector<trace::QuerySummary> &querySummaries() const
    {
        return summaries_;
    }

    /**
     * Capture each search's replay stats tree so writeStatsJson can
     * include it (off by default: serializing the tree after every
     * search is not free).
     */
    void enableStatsCapture(bool enabled)
    {
        statsCaptureEnabled_ = enabled;
    }

    /**
     * Write the device's observability stats as one JSON document:
     * the host thread-pool group and (when capture is enabled) the
     * last search's full simulation stats tree.
     */
    void writeStatsJson(std::ostream &os) const;

  private:
    SearchOutcome runPlans(const std::vector<engine::QueryPlan> &plans);

    DeviceConfig config_;
    /** Shared so per-epoch segment devices alias one rebaked view. */
    std::shared_ptr<const index::InvertedIndex> index_;
    std::shared_ptr<const index::TombstoneSet> tombstones_;
    std::optional<index::Lexicon> lexicon_;
    std::optional<index::MemoryLayout> layout_;
    /** Set when config_.faults.enabled() or a mapped index is
     *  loaded (benign model, CRC verify only). */
    std::unique_ptr<mem::FaultModel> faultModel_;
    std::unique_ptr<engine::FaultPolicy> faultPolicy_;
    /** Set only when config_.cacheMB > 0. */
    std::unique_ptr<mem::BlockCache> cache_;
    double totalSeconds_ = 0.0;
    std::uint64_t totalQueries_ = 0;
    std::uint64_t totalScmBytes_ = 0;
    std::uint64_t totalDramBytes_ = 0;

    /**
     * Per-worker decode scratch, sized to the pool on first use and
     * reused across batches: repeated searchBatch() calls (and the
     * serving loop) run allocation-free on the decode path after
     * the first batch warms the buffers.
     */
    std::vector<engine::QueryArena> arenas_;

    trace::Recorder *recorder_ = nullptr;
    bool summariesEnabled_ = false;
    bool statsCaptureEnabled_ = false;
    std::vector<trace::QuerySummary> summaries_;
    std::string lastRunStatsJson_;
};

} // namespace boss::accel

#endif // BOSS_BOSS_DEVICE_H
