/**
 * @file
 * The BOSS device: the library's main public entry point.
 *
 * A Device owns an index image placed in the modeled SCM pool and
 * serves search queries through the full simulated accelerator
 * (functional result + cycle-level timing). This is the programmer-
 * facing facade; the paper-faithful init()/search() intrinsics in
 * src/api wrap it.
 */

#ifndef BOSS_BOSS_DEVICE_H
#define BOSS_BOSS_DEVICE_H

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "engine/execute.h"
#include "index/memory_layout.h"
#include "index/text_builder.h"
#include "model/runner.h"

namespace boss::accel
{

/** Device configuration (paper Table I defaults). */
struct DeviceConfig
{
    std::uint32_t cores = 8;
    mem::MemConfig mem = mem::scmConfig();
    mem::LinkConfig link;
    std::size_t k = engine::kDefaultTopK;
    /** Ablation switch; leave at Boss for the real device. */
    model::SystemKind kind = model::SystemKind::Boss;
};

/** Result of one search() call. */
struct SearchOutcome
{
    std::vector<engine::Result> topk;
    double simSeconds = 0.0;      ///< simulated wall time
    std::uint64_t deviceBytes = 0; ///< SCM traffic for this search
    std::uint64_t evaluatedDocs = 0;
    std::uint64_t skippedDocs = 0;
    /**
     * Per-query top-k lists, one per submitted query in submission
     * order (topk is a copy of the last entry). simSeconds is the
     * batch makespan: queries share the device, so per-query times
     * are not separable.
     */
    std::vector<std::vector<engine::Result>> perQuery;
};

class Device
{
  public:
    explicit Device(DeviceConfig config = {});
    ~Device();

    /** Place an index into the device's memory pool. */
    void loadIndex(index::InvertedIndex index);

    /** Load a serialized index file (the init() intrinsic's path). */
    void loadIndexFile(const std::string &path);

    /**
     * Place a text index (index + lexicon): textual query terms then
     * resolve through the lexicon in search().
     */
    void loadTextIndex(index::TextIndex ti);

    /** Load a text-index file written by saveTextIndexFile(). */
    void loadTextIndexFile(const std::string &path);

    bool hasLexicon() const { return lexicon_.has_value(); }
    const index::Lexicon &lexicon() const;

    bool hasIndex() const { return index_.has_value(); }
    const index::InvertedIndex &index() const;
    const index::MemoryLayout &layout() const;

    /** Serve one query given as an API expression string. */
    SearchOutcome search(const std::string &qExpression);

    /** Serve one workload query. */
    SearchOutcome search(const workload::Query &query);

    /** Serve a batch concurrently across the device's cores. */
    SearchOutcome
    searchBatch(const std::vector<workload::Query> &queries);

    /** Serve a batch of API expression strings (see search()). */
    SearchOutcome
    searchBatch(const std::vector<std::string> &qExpressions);

    /** Cumulative simulated busy time across all searches. */
    double totalSimSeconds() const { return totalSeconds_; }
    std::uint64_t totalQueries() const { return totalQueries_; }

    const DeviceConfig &config() const { return config_; }

  private:
    SearchOutcome runPlans(const std::vector<engine::QueryPlan> &plans);

    /** Parse an API expression with the device's term resolver. */
    engine::QueryPlan planExpression(const std::string &qExpression);

    DeviceConfig config_;
    std::optional<index::InvertedIndex> index_;
    std::optional<index::Lexicon> lexicon_;
    std::optional<index::MemoryLayout> layout_;
    double totalSeconds_ = 0.0;
    std::uint64_t totalQueries_ = 0;
};

} // namespace boss::accel

#endif // BOSS_BOSS_DEVICE_H
