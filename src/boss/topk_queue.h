/**
 * @file
 * Structural model of the top-k module's shift-register priority
 * queue (paper Sec. IV-C, citing Moon/Rexford/Shin's scalable
 * hardware priority queues).
 *
 * The queue is a linear array of k entries sorted by descending
 * score. An inserted entry is broadcast to every slot; each slot
 * makes a *local* decision -- keep its entry, load the incoming
 * entry, or load its left neighbor's entry (shift) -- so insertion
 * is O(1) cycles regardless of k. This class mirrors that per-slot
 * decision procedure exactly; tests prove it equivalent to the
 * software TopK heap under the same tie-breaking order.
 */

#ifndef BOSS_BOSS_TOPK_QUEUE_H
#define BOSS_BOSS_TOPK_QUEUE_H

#include <vector>

#include "engine/topk.h"

namespace boss::accel
{

class ShiftRegisterTopK
{
  public:
    explicit ShiftRegisterTopK(std::size_t k)
        : slots_(k), valid_(k, false)
    {}

    /**
     * Broadcast @p candidate to all slots; each slot decides
     * locally. Returns true if the candidate entered the queue.
     * One hardware cycle.
     */
    bool
    insert(DocId doc, Score score)
    {
        engine::Result cand{doc, score};
        // Each slot's local rule, given its entry, its left
        // neighbor's entry and the broadcast candidate:
        //  - keep,  if the candidate does not outrank my entry;
        //  - load,  if it outranks mine but not my left neighbor's
        //           (this is exactly where it belongs);
        //  - shift, if it outranks both (I take my neighbor's old
        //           entry, everything from the insertion point moves
        //           one slot right).
        // Valid entries stay compacted at the left, so a slot with
        // an empty left neighbor stays empty.
        bool inserted = false;
        // Evaluate right-to-left so each slot still sees its
        // neighbor's *previous* value, as parallel hardware latches.
        for (std::size_t i = slots_.size(); i-- > 0;) {
            bool candBeatsMine =
                !valid_[i] || engine::ranksAbove(cand, slots_[i]);
            if (!candBeatsMine)
                continue; // keep
            bool leftValid = i > 0 && valid_[i - 1];
            bool candBeatsLeft =
                leftValid && engine::ranksAbove(cand, slots_[i - 1]);
            if (candBeatsLeft) {
                // Shift: take the left neighbor's entry.
                slots_[i] = slots_[i - 1];
                valid_[i] = true;
            } else if (i == 0 || leftValid) {
                // Load: the candidate belongs exactly here.
                slots_[i] = cand;
                valid_[i] = true;
                inserted = true;
            }
            // else: beyond the compacted prefix -- stay empty.
        }
        return inserted;
    }

    /** Current cutoff: the weakest retained entry's score. */
    Score
    threshold() const
    {
        if (!valid_.back())
            return -std::numeric_limits<Score>::infinity();
        return slots_.back().score;
    }

    bool full() const { return valid_.back(); }

    /** Contents in rank order (best first). */
    std::vector<engine::Result>
    sorted() const
    {
        std::vector<engine::Result> out;
        for (std::size_t i = 0; i < slots_.size(); ++i) {
            if (valid_[i])
                out.push_back(slots_[i]);
        }
        return out;
    }

    std::size_t k() const { return slots_.size(); }

  private:
    std::vector<engine::Result> slots_;
    std::vector<bool> valid_;
};

} // namespace boss::accel

#endif // BOSS_BOSS_TOPK_QUEUE_H
