#include "boss/device.h"

#include <limits>
#include <map>

#include "common/logging.h"
#include "engine/plan.h"
#include "engine/topk.h"
#include "index/serialize.h"

namespace boss::accel
{

namespace api_detail
{
/** Max terms four ganged BOSS cores handle in hardware. */
constexpr std::size_t kMaxHwTerms = 16;
/** Subquery width for host-managed wide unions. */
constexpr std::size_t kSplitWidth = 16;
} // namespace api_detail

namespace
{
/** Index images start above the device's reserved low region. */
constexpr Addr kImageBase = 0x10000;
} // namespace

Device::Device(DeviceConfig config) : config_(std::move(config)) {}

Device::~Device() = default;

void
Device::loadIndex(index::InvertedIndex index)
{
    index_.emplace(std::move(index));
    layout_.emplace(*index_, kImageBase,
                    config_.mem.timing.granule);
}

void
Device::loadIndexFile(const std::string &path)
{
    loadIndex(index::loadIndexFile(path));
}

void
Device::loadTextIndex(index::TextIndex ti)
{
    loadIndex(std::move(ti.index));
    lexicon_.emplace(std::move(ti.lexicon));
}

void
Device::loadTextIndexFile(const std::string &path)
{
    loadTextIndex(index::loadTextIndexFile(path));
}

const index::Lexicon &
Device::lexicon() const
{
    BOSS_ASSERT(lexicon_.has_value(), "no lexicon loaded");
    return *lexicon_;
}

const index::InvertedIndex &
Device::index() const
{
    BOSS_ASSERT(index_.has_value(), "no index loaded");
    return *index_;
}

const index::MemoryLayout &
Device::layout() const
{
    BOSS_ASSERT(layout_.has_value(), "no index loaded");
    return *layout_;
}

namespace
{

/**
 * Host-managed execution of a union with more than 16 terms (paper
 * Sec. IV-D): split into <=16-term subqueries, run each without
 * pruning or device top-k, gather the full scored lists in host
 * memory, and merge there.
 */
std::vector<engine::QueryPlan>
splitWidePlan(const engine::QueryPlan &plan)
{
    BOSS_ASSERT(plan.isPureUnion(),
                "queries with more than 16 terms are host-managed "
                "and only supported for pure unions");
    std::vector<engine::QueryPlan> subplans;
    engine::QueryPlan current;
    for (TermId t : plan.allTerms) {
        current.groups.push_back({t});
        current.allTerms.push_back(t);
        if (current.allTerms.size() == api_detail::kSplitWidth) {
            subplans.push_back(std::move(current));
            current = {};
        }
    }
    if (!current.groups.empty())
        subplans.push_back(std::move(current));
    return subplans;
}

} // namespace

SearchOutcome
Device::runPlans(const std::vector<engine::QueryPlan> &plans)
{
    BOSS_ASSERT(index_.has_value(), "search() before loadIndex()");

    model::TraceOptions options =
        model::traceOptionsFor(config_.kind, config_.k);
    // Subqueries of host-managed wide unions run without pruning and
    // spill their full scored lists to the host.
    model::TraceOptions wideOptions = options;
    wideOptions.flags.blockSkip = false;
    wideOptions.flags.wandSkip = false;
    wideOptions.flags.storeAllResults = true;
    wideOptions.k = std::numeric_limits<std::size_t>::max() / 2;

    SearchOutcome outcome;
    std::vector<model::QueryTrace> traces;
    traces.reserve(plans.size());
    for (const auto &plan : plans) {
        if (plan.allTerms.size() > api_detail::kMaxHwTerms) {
            // Host-managed split: gather and merge on the host.
            std::map<DocId, Score> merged;
            for (const auto &sub : splitWidePlan(plan)) {
                std::vector<engine::Result> partial;
                traces.push_back(model::buildTrace(
                    *index_, *layout_, sub, wideOptions, &partial));
                outcome.evaluatedDocs += traces.back().evaluatedDocs;
                for (const auto &r : partial)
                    merged[r.doc] += r.score;
            }
            engine::TopK topk(config_.k);
            for (const auto &[doc, score] : merged)
                topk.insert(doc, score);
            outcome.topk = topk.sorted();
            continue;
        }
        std::vector<engine::Result> results;
        traces.push_back(model::buildTrace(*index_, *layout_, plan,
                                           options, &results));
        outcome.evaluatedDocs += traces.back().evaluatedDocs;
        outcome.skippedDocs += traces.back().skippedDocs;
        // The batch outcome carries the last query's results when
        // batching; single-query callers get exactly their results.
        outcome.topk = std::move(results);
    }

    model::SystemConfig sys;
    sys.kind = config_.kind;
    sys.cores = config_.cores;
    sys.mem = config_.mem;
    sys.link = config_.link;
    auto metrics = model::replayTraces(traces, sys);
    outcome.simSeconds = metrics.run.seconds;
    outcome.deviceBytes = metrics.run.deviceBytes;

    totalSeconds_ += outcome.simSeconds;
    totalQueries_ += plans.size();
    return outcome;
}

SearchOutcome
Device::search(const std::string &qExpression)
{
    // With a lexicon loaded, quoted terms are words; otherwise the
    // synthetic t<N> naming applies.
    engine::TermResolver resolver;
    if (lexicon_.has_value()) {
        resolver = [this](std::string_view name) {
            auto id = lexicon_->lookup(name);
            if (!id.has_value())
                BOSS_FATAL("unknown query term '", std::string(name),
                           "'");
            return *id;
        };
    } else {
        resolver = engine::defaultTermResolver;
    }
    auto expr = engine::parseExpression(qExpression, resolver);
    return runPlans({engine::planQuery(expr)});
}

SearchOutcome
Device::search(const workload::Query &query)
{
    return runPlans({engine::planQuery(query)});
}

SearchOutcome
Device::searchBatch(const std::vector<workload::Query> &queries)
{
    std::vector<engine::QueryPlan> plans;
    plans.reserve(queries.size());
    for (const auto &q : queries)
        plans.push_back(engine::planQuery(q));
    return runPlans(plans);
}

} // namespace boss::accel
