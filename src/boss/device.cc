#include "boss/device.h"

#include <limits>
#include <map>
#include <sstream>

#include "common/buildinfo.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "engine/plan.h"
#include "kernels/kernels.h"
#include "engine/topk.h"
#include "index/serialize.h"

namespace boss::accel
{

namespace api_detail
{
/** Max terms four ganged BOSS cores handle in hardware. */
constexpr std::size_t kMaxHwTerms = 16;
/** Subquery width for host-managed wide unions. */
constexpr std::size_t kSplitWidth = 16;
} // namespace api_detail

namespace
{
/** Index images start above the device's reserved low region. */
constexpr Addr kImageBase = 0x10000;
} // namespace

Device::Device(DeviceConfig config) : config_(std::move(config))
{
    if (config_.faults.enabled()) {
        faultModel_ = std::make_unique<mem::FaultModel>(
            config_.faults, config_.faultSeed, config_.deviceId);
        faultPolicy_ =
            std::make_unique<engine::FaultPolicy>(*faultModel_);
    }
    if (config_.cacheMB > 0) {
        mem::BlockCacheConfig cc;
        cc.capacityBytes = static_cast<std::uint64_t>(
            config_.cacheMB * (1 << 20));
        cc.shards = config_.cacheShards;
        cache_ = std::make_unique<mem::BlockCache>(cc);
    }
}

Device::~Device() = default;

bool
Device::operational() const
{
    return faultModel_ == nullptr || !faultModel_->deviceDead();
}

void
Device::loadIndex(index::InvertedIndex index)
{
    loadSharedIndex(std::make_shared<const index::InvertedIndex>(
        std::move(index)));
}

void
Device::loadSharedIndex(
    std::shared_ptr<const index::InvertedIndex> index)
{
    BOSS_ASSERT(index != nullptr, "loadSharedIndex(nullptr)");
    index_ = std::move(index);
    layout_.emplace(*index_, kImageBase,
                    config_.mem.timing.granule);
}

void
Device::loadIndexFile(const std::string &path)
{
    loadIndex(index::loadIndexFile(path));
}

void
Device::loadTextIndex(index::TextIndex ti)
{
    loadIndex(std::move(ti.index));
    lexicon_.emplace(std::move(ti.lexicon));
}

void
Device::loadTextIndexFile(const std::string &path)
{
    loadTextIndex(index::loadTextIndexFile(path));
}

void
Device::loadMappedTextIndexFile(const std::string &path)
{
    auto mapped = index::MappedIndex::open(path);
    BOSS_ASSERT(mapped->hasLexicon(),
                "'", path, "' has no lexicon section (not a text "
                "index file)");
    lexicon_.emplace(mapped->loadLexicon());
    loadSharedIndex(index::MappedIndex::share(mapped));

    // Mapped payloads skip the load-time whole-file CRC, so decode
    // under a fault policy that checks each block's CRC on first
    // touch. Without configured faults the model is benign: no
    // injection, clean blocks verify once and then memoize, and
    // at-rest corruption in the mapping still hits the retry/drop
    // degrade path instead of crashing the process.
    if (faultPolicy_ == nullptr) {
        faultModel_ = std::make_unique<mem::FaultModel>(
            mem::FaultSpec{}, config_.faultSeed, config_.deviceId);
        faultPolicy_ =
            std::make_unique<engine::FaultPolicy>(*faultModel_);
    }
    faultPolicy_->enableVerifyOnce(*index_);
}

const index::Lexicon &
Device::lexicon() const
{
    BOSS_ASSERT(lexicon_.has_value(), "no lexicon loaded");
    return *lexicon_;
}

const index::InvertedIndex &
Device::index() const
{
    BOSS_ASSERT(index_ != nullptr, "no index loaded");
    return *index_;
}

const index::MemoryLayout &
Device::layout() const
{
    BOSS_ASSERT(layout_.has_value(), "no index loaded");
    return *layout_;
}

namespace
{

/**
 * Host-managed execution of a union with more than 16 terms (paper
 * Sec. IV-D): split into <=16-term subqueries, run each without
 * pruning or device top-k, gather the full scored lists in host
 * memory, and merge there.
 */
std::vector<engine::QueryPlan>
splitWidePlan(const engine::QueryPlan &plan)
{
    BOSS_ASSERT(plan.isPureUnion(),
                "queries with more than 16 terms are host-managed "
                "and only supported for pure unions");
    std::vector<engine::QueryPlan> subplans;
    engine::QueryPlan current;
    for (TermId t : plan.allTerms) {
        current.groups.push_back({t});
        current.allTerms.push_back(t);
        if (current.allTerms.size() == api_detail::kSplitWidth) {
            subplans.push_back(std::move(current));
            current = {};
        }
    }
    if (!current.groups.empty())
        subplans.push_back(std::move(current));
    return subplans;
}

} // namespace

BuiltQuery
Device::buildQuery(const engine::QueryPlan &plan,
                   engine::QueryArena &arena, trace::Scope scope,
                   std::uint16_t lane) const
{
    BOSS_ASSERT(index_ != nullptr, "search() before loadIndex()");

    model::TraceOptions options =
        model::traceOptionsFor(config_.kind, config_.k);
    options.faults = faultPolicy_.get();
    options.tombstones = tombstones_.get();
    // Subqueries of host-managed wide unions run without pruning and
    // spill their full scored lists to the host.
    model::TraceOptions wideOptions = options;
    wideOptions.flags.blockSkip = false;
    wideOptions.flags.wandSkip = false;
    wideOptions.flags.storeAllResults = true;
    wideOptions.k = std::numeric_limits<std::size_t>::max() / 2;

    BuiltQuery run;
    double buildStart = scope.hostMicros();
    if (plan.allTerms.size() > api_detail::kMaxHwTerms) {
        // Host-managed split: gather and merge on the host. The
        // subqueries stay sequential inside this call so the
        // host-side merge is order-stable.
        std::map<DocId, Score> merged;
        for (const auto &sub : splitWidePlan(plan)) {
            std::vector<engine::Result> partial;
            run.traces.push_back(
                model::buildTrace(*index_, *layout_, sub,
                                  wideOptions, &partial, &arena,
                                  scope, lane));
            arena.reset();
            run.evaluatedDocs += run.traces.back().evaluatedDocs;
            for (const auto &r : partial)
                merged[r.doc] += r.score;
        }
        engine::TopK topk(config_.k);
        for (const auto &[doc, score] : merged)
            topk.insert(doc, score);
        run.topk = topk.sorted();
    } else {
        run.traces.push_back(model::buildTrace(
            *index_, *layout_, plan, options, &run.topk, &arena,
            scope, lane));
        arena.reset();
        run.evaluatedDocs = run.traces.back().evaluatedDocs;
        run.skippedDocs = run.traces.back().skippedDocs;
    }
    if (scope) {
        scope.span(lane, "build", buildStart,
                   scope.hostMicros() - buildStart,
                   {{"terms", plan.allTerms.size()},
                    {"subqueries", run.traces.size()}});
    }
    return run;
}

SearchOutcome
Device::replayBuilt(std::vector<BuiltQuery> built)
{
    // Aggregate in submission order, then replay the whole group on
    // one event-driven device model (queries share the device).
    SearchOutcome outcome;
    std::vector<model::QueryTrace> traces;
    traces.reserve(built.size());
    for (BuiltQuery &run : built) {
        for (auto &t : run.traces) {
            outcome.crcRetries += t.crcRetries;
            outcome.blocksDropped += t.blocksDropped;
            traces.push_back(std::move(t));
        }
        outcome.evaluatedDocs += run.evaluatedDocs;
        outcome.skippedDocs += run.skippedDocs;
        outcome.perQuery.push_back(std::move(run.topk));
    }
    // The combined outcome carries the last query's results when
    // batching; single-query callers get exactly their results.
    if (!outcome.perQuery.empty())
        outcome.topk = outcome.perQuery.back();

    model::SystemConfig sys;
    sys.kind = config_.kind;
    sys.cores = config_.cores;
    sys.mem = config_.mem;
    sys.link = config_.link;
    sys.label = config_.label;
    sys.faults = faultModel_.get();
    sys.cache = cache_.get();
    sys.cacheMem = config_.cacheMem;
    model::ReplayObservers observers;
    observers.recorder = recorder_;
    std::vector<model::QueryTiming> timings;
    if (summariesEnabled_)
        observers.timings = &timings;
    std::ostringstream statsCapture;
    if (statsCaptureEnabled_) {
        observers.onModel = [&statsCapture](model::SystemModel &m) {
            m.statsRoot().dumpJson(statsCapture);
        };
    }
    auto metrics = model::replayTraces(traces, sys, observers);
    outcome.simSeconds = metrics.run.seconds;
    outcome.deviceBytes = metrics.run.deviceBytes;
    outcome.dramBytes = metrics.run.dramBytes;
    outcome.cacheLookups = metrics.run.cacheLookups;
    outcome.cacheHits = metrics.run.cacheHits;
    outcome.cacheMisses = metrics.run.cacheMisses;
    outcome.cacheEvictions = metrics.run.cacheEvictions;
    totalScmBytes_ += metrics.run.deviceBytes;
    totalDramBytes_ += metrics.run.dramBytes;
    if (statsCaptureEnabled_)
        lastRunStatsJson_ = statsCapture.str();
    if (summariesEnabled_) {
        summaries_.clear();
        for (std::size_t i = 0; i < traces.size(); ++i) {
            trace::QuerySummary s = model::summarizeTrace(traces[i]);
            s.query = i;
            s.cycles = timings[i].cycles;
            summaries_.push_back(s);
        }
    }

    totalSeconds_ += outcome.simSeconds;
    totalQueries_ += outcome.perQuery.size();
    return outcome;
}

SearchOutcome
Device::runPlans(const std::vector<engine::QueryPlan> &plans)
{
    BOSS_ASSERT(index_ != nullptr, "search() before loadIndex()");

    if (!operational()) {
        // A lost device answers nothing; the caller (ShardedDevice)
        // degrades to partial coverage instead of crashing.
        SearchOutcome down;
        down.deviceFailed = true;
        down.perQuery.resize(plans.size());
        return down;
    }

    // Phase 1, parallel: every plan's functional execution + trace
    // build is independent of the others (the index and layout are
    // immutable), so the batch fans out across the host thread pool.
    // Plan i writes only runs[i]; the serial aggregation in
    // replayBuilt() walks runs[] in submission order, making the
    // outcome (results, counters and trace order) bit-identical to
    // a serial loop. The per-worker arenas persist across batches,
    // so repeated invocations skip the decode-buffer rewarm.
    std::vector<BuiltQuery> runs(plans.size());
    common::ThreadPool &pool = common::ThreadPool::global();
    if (arenas_.size() < pool.size())
        arenas_.resize(pool.size());
    std::uint64_t scopeBase =
        recorder_ != nullptr ? recorder_->beginPhase() : 0;
    pool.parallelFor(plans.size(), [&](std::size_t i,
                                       std::size_t worker) {
        trace::Scope scope;
        std::uint16_t lane = 0;
        if (recorder_ != nullptr) {
            scope = recorder_->scope(worker, scopeBase + i);
            lane = recorder_->workerLane(worker);
        }
        runs[i] = buildQuery(plans[i], arenas_[worker], scope, lane);
    });

    // Phase 2, serial: replay the whole batch on the device model.
    return replayBuilt(std::move(runs));
}

void
Device::writeStatsJson(std::ostream &os) const
{
    stats::Group poolGroup("host_pool");
    common::ThreadPool::global().registerStats(poolGroup);
    os << "{\n\"build\": {\"git\": \"" << common::buildGitHash()
       << "\", \"compiler\": \"" << common::buildCompiler()
       << "\"}";
    os << ",\n\"kernels\": \"" << kernels::activeTierName() << "\"";
    os << ",\n\"host_pool\":\n";
    poolGroup.dumpJson(os, 0);
    os << ",\n\"resilience\":\n";
    if (faultPolicy_ == nullptr) {
        os << "null";
    } else {
        os << "{\"device_dead\": " << (operational() ? "false" : "true")
           << ", \"crc_checks\": " << faultPolicy_->crcChecks()
           << ", \"crc_failures\": " << faultPolicy_->crcFailures()
           << ", \"crc_retries\": " << faultPolicy_->crcRetries()
           << ", \"blocks_dropped\": " << faultPolicy_->blocksDropped()
           << "}";
    }
    os << ",\n\"last_run\":\n";
    if (lastRunStatsJson_.empty()) {
        os << "null";
    } else {
        os << lastRunStatsJson_;
    }
    os << "\n}\n";
}

engine::QueryPlan
Device::plan(const std::string &qExpression)
{
    // With a lexicon loaded, quoted terms are words; otherwise the
    // synthetic t<N> naming applies.
    engine::TermResolver resolver;
    if (lexicon_.has_value()) {
        resolver = [this](std::string_view name) {
            auto id = lexicon_->lookup(name);
            if (!id.has_value())
                BOSS_FATAL("unknown query term '", std::string(name),
                           "'");
            return *id;
        };
    } else {
        resolver = engine::defaultTermResolver;
    }
    auto expr = engine::parseExpression(qExpression, resolver);
    return engine::planQuery(expr);
}

SearchOutcome
Device::search(const std::string &qExpression)
{
    return runPlans({plan(qExpression)});
}

SearchOutcome
Device::search(const workload::Query &query)
{
    return runPlans({engine::planQuery(query)});
}

SearchOutcome
Device::searchBatch(const std::vector<workload::Query> &queries)
{
    std::vector<engine::QueryPlan> plans;
    plans.reserve(queries.size());
    for (const auto &q : queries)
        plans.push_back(engine::planQuery(q));
    return runPlans(plans);
}

SearchOutcome
Device::searchBatch(const std::vector<std::string> &qExpressions)
{
    std::vector<engine::QueryPlan> plans;
    plans.reserve(qExpressions.size());
    for (const auto &q : qExpressions)
        plans.push_back(plan(q));
    return runPlans(plans);
}

} // namespace boss::accel
