/**
 * @file
 * IIU baseline facade (paper Sec. II-D / III).
 *
 * IIU [Heo et al., ASPLOS'20] is the prior-art inverted-index
 * accelerator BOSS is compared against. Its model differs from BOSS
 * in exactly the three ways the paper identifies:
 *   1. binary-search membership intersection -> random SCM accesses;
 *   2. exhaustive unions (no early termination) and intermediate
 *      lists spilled to memory between multi-term passes;
 *   3. no hardware top-k: the full scored list is written back for
 *      the host to sort (the write traffic is charged; the host's
 *      sort time is ignored, matching the paper's methodology).
 */

#ifndef BOSS_IIU_IIU_H
#define BOSS_IIU_IIU_H

#include "model/runner.h"

namespace boss::iiu
{

/** System configuration preset for the IIU baseline. */
inline model::SystemConfig
systemConfig(std::uint32_t cores = 8,
             mem::MemConfig mem = mem::scmConfig())
{
    model::SystemConfig config;
    config.kind = model::SystemKind::Iiu;
    config.cores = cores;
    config.mem = std::move(mem);
    return config;
}

/** Run a query workload on the IIU baseline. */
inline model::WorkloadMetrics
run(const index::InvertedIndex &index,
    const index::MemoryLayout &layout,
    const std::vector<workload::Query> &queries,
    std::uint32_t cores = 8, mem::MemConfig mem = mem::scmConfig())
{
    return model::runWorkload(index, layout, queries,
                              systemConfig(cores, std::move(mem)));
}

} // namespace boss::iiu

#endif // BOSS_IIU_IIU_H
