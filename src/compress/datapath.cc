#include "compress/datapath.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>

#include "common/bitops.h"
#include "common/logging.h"
#include "compress/simple16.h"
#include "compress/simple8b.h"

namespace boss::compress
{

namespace
{

std::string
trim(std::string s)
{
    auto notSpace = [](unsigned char c) { return !std::isspace(c); };
    s.erase(s.begin(), std::find_if(s.begin(), s.end(), notSpace));
    s.erase(std::find_if(s.rbegin(), s.rend(), notSpace).base(), s.end());
    return s;
}

std::uint32_t
parseInt(const std::string &tok)
{
    try {
        return static_cast<std::uint32_t>(std::stoul(tok, nullptr, 0));
    } catch (const std::exception &) {
        BOSS_FATAL("datapath config: bad integer literal '", tok, "'");
    }
}

Op
parseOp(const std::string &tok)
{
    static const std::map<std::string, Op> ops = {
        {"pass", Op::Pass}, {"and", Op::And}, {"or", Op::Or},
        {"xor", Op::Xor},   {"add", Op::Add}, {"sub", Op::Sub},
        {"shl", Op::Shl},   {"shr", Op::Shr}, {"not", Op::Not},
        {"eq", Op::Eq},     {"mux", Op::Mux},
    };
    auto it = ops.find(tok);
    if (it == ops.end())
        BOSS_FATAL("datapath config: unknown primitive '", tok, "'");
    return it->second;
}

struct ParserState
{
    DatapathConfig config;
    std::map<std::string, std::uint32_t> wireNames;

    Operand
    parseOperand(const std::string &tok) const
    {
        if (tok == "in")
            return {OperandKind::In, 0};
        if (tok == "reg")
            return {OperandKind::Reg, 0};
        auto it = wireNames.find(tok);
        if (it != wireNames.end())
            return {OperandKind::Wire, it->second};
        if (!tok.empty() &&
            (std::isdigit(static_cast<unsigned char>(tok[0])) ||
             tok[0] == '-')) {
            return {OperandKind::Const, parseInt(tok)};
        }
        BOSS_FATAL("datapath config: unknown operand '", tok, "'");
    }

    /** Parse "<op>(<args>)" or a bare operand into an Instr. */
    Instr
    parseExpr(const std::string &expr) const
    {
        Instr instr;
        auto paren = expr.find('(');
        if (paren == std::string::npos) {
            instr.op = Op::Pass;
            instr.args[0] = parseOperand(trim(expr));
            instr.numArgs = 1;
            return instr;
        }
        instr.op = parseOp(trim(expr.substr(0, paren)));
        auto close = expr.rfind(')');
        if (close == std::string::npos || close < paren)
            BOSS_FATAL("datapath config: unbalanced parens in '",
                       expr, "'");
        std::string argstr = expr.substr(paren + 1, close - paren - 1);
        std::istringstream args(argstr);
        std::string tok;
        instr.numArgs = 0;
        while (std::getline(args, tok, ',')) {
            if (instr.numArgs >= 3)
                BOSS_FATAL("datapath config: too many args in '",
                           expr, "'");
            instr.args[instr.numArgs++] = parseOperand(trim(tok));
        }
        if (instr.numArgs == 0)
            BOSS_FATAL("datapath config: no args in '", expr, "'");
        return instr;
    }

    /** Append an expression as a new anonymous wire; return index. */
    std::uint32_t
    addWire(const std::string &expr)
    {
        config.wires.push_back(parseExpr(expr));
        return static_cast<std::uint32_t>(config.wires.size() - 1);
    }
};

void
parseKeyValues(const std::string &rest,
               std::map<std::string, std::string> &out)
{
    std::istringstream iss(rest);
    std::string tok;
    while (iss >> tok) {
        auto eq = tok.find('=');
        if (eq == std::string::npos)
            BOSS_FATAL("datapath config: expected key=value, got '",
                       tok, "'");
        out[tok.substr(0, eq)] = tok.substr(eq + 1);
    }
}

} // namespace

DatapathConfig
parseDatapathConfig(std::string_view text)
{
    ParserState st;
    bool inStage2 = false;

    std::istringstream lines{std::string(text)};
    std::string raw;
    while (std::getline(lines, raw)) {
        auto hash = raw.find('#');
        if (hash != std::string::npos)
            raw.erase(hash);
        std::string line = trim(raw);
        if (line.empty())
            continue;

        if (inStage2) {
            if (line == "}") {
                inStage2 = false;
                continue;
            }
            auto arrow = line.find("<=");
            if (arrow != std::string::npos) {
                std::string dest = trim(line.substr(0, arrow));
                if (dest != "reg")
                    BOSS_FATAL("datapath config: '<=' only updates reg");
                st.config.regNext = static_cast<int>(
                    st.addWire(trim(line.substr(arrow + 2))));
                continue;
            }
            auto eq = line.find('=');
            if (eq == std::string::npos)
                BOSS_FATAL("datapath config: bad stage2 line '",
                           line, "'");
            std::string dest = trim(line.substr(0, eq));
            std::string expr = trim(line.substr(eq + 1));
            std::uint32_t wire = st.addWire(expr);
            if (dest == "out") {
                st.config.outWire = static_cast<int>(wire);
            } else if (dest == "valid") {
                st.config.validWire = static_cast<int>(wire);
            } else {
                if (st.wireNames.count(dest) != 0)
                    BOSS_FATAL("datapath config: wire '", dest,
                               "' redefined");
                st.wireNames[dest] = wire;
            }
            continue;
        }

        std::istringstream iss(line);
        std::string head;
        iss >> head;
        std::string rest;
        std::getline(iss, rest);
        rest = trim(rest);

        if (head == "stage1") {
            std::map<std::string, std::string> kv;
            parseKeyValues(rest, kv);
            if (kv.count("mode") != 0) {
                const std::string &m = kv["mode"];
                if (m == "fixed") {
                    st.config.mode = ExtractMode::Fixed;
                } else if (m == "bytewise") {
                    st.config.mode = ExtractMode::ByteWise;
                } else if (m == "s16") {
                    st.config.mode = ExtractMode::Sel16;
                } else if (m == "s8b") {
                    st.config.mode = ExtractMode::Sel8b;
                } else {
                    BOSS_FATAL("datapath config: bad stage1 mode '",
                               m, "'");
                }
            }
            if (kv.count("header") != 0)
                st.config.headerBytes = parseInt(kv["header"]);
        } else if (head == "stage2") {
            if (rest != "{")
                BOSS_FATAL("datapath config: expected 'stage2 {'");
            inStage2 = true;
        } else if (head == "stage3") {
            std::map<std::string, std::string> kv;
            parseKeyValues(rest, kv);
            if (kv.count("exceptions") != 0) {
                const std::string &e = kv["exceptions"];
                if (e == "none") {
                    st.config.pfdExceptions = false;
                } else if (e == "pfd") {
                    st.config.pfdExceptions = true;
                } else {
                    BOSS_FATAL("datapath config: bad exceptions '",
                               e, "'");
                }
            }
        } else if (head == "stage4") {
            std::map<std::string, std::string> kv;
            parseKeyValues(rest, kv);
            if (kv.count("delta") != 0)
                st.config.useDelta = parseInt(kv["delta"]) != 0;
        } else {
            BOSS_FATAL("datapath config: unknown section '", head, "'");
        }
    }

    if (st.config.outWire < 0)
        BOSS_FATAL("datapath config: stage2 must define 'out'");
    if (st.config.validWire < 0)
        BOSS_FATAL("datapath config: stage2 must define 'valid'");
    return st.config;
}

std::string_view
builtinConfigText(Scheme s)
{
    // BitPacking: width comes from the one-byte header; stage 2 is a
    // pass-through; no exceptions.
    static constexpr std::string_view bp = R"(
stage1 mode=fixed header=1
stage2 {
  out = pass(in)
  valid = pass(1)
}
stage3 exceptions=none
stage4 delta=1
)";
    // VariableByte: the paper's Fig. 8 program. Bytes arrive MSB-group
    // first; the register accumulates 7 bits per byte and resets once
    // a byte with a clear continuation bit completes a value.
    static constexpr std::string_view vb = R"(
stage1 mode=bytewise header=0
stage2 {
  cont = shr(in, 7)
  low = and(in, 0x7f)
  shifted = shl(reg, 7)
  acc = add(low, shifted)
  done = eq(cont, 0)
  reg <= mux(done, 0, acc)
  out = pass(acc)
  valid = pass(done)
}
stage3 exceptions=none
stage4 delta=1
)";
    // PFD/OptPFD: two header bytes (width, exception count); slots are
    // fixed width; stage 3 patches exceptions from the tail.
    static constexpr std::string_view pfd = R"(
stage1 mode=fixed header=2
stage2 {
  out = pass(in)
  valid = pass(1)
}
stage3 exceptions=pfd
stage4 delta=1
)";
    static constexpr std::string_view s16 = R"(
stage1 mode=s16 header=0
stage2 {
  out = pass(in)
  valid = pass(1)
}
stage3 exceptions=none
stage4 delta=1
)";
    static constexpr std::string_view s8b = R"(
stage1 mode=s8b header=0
stage2 {
  out = pass(in)
  valid = pass(1)
}
stage3 exceptions=none
stage4 delta=1
)";

    switch (s) {
      case Scheme::BP: return bp;
      case Scheme::VB: return vb;
      case Scheme::PFD: return pfd;
      case Scheme::OptPFD: return pfd;
      case Scheme::S16: return s16;
      case Scheme::S8b: return s8b;
    }
    BOSS_PANIC("unknown scheme");
}

ProgrammableDecompressor
ProgrammableDecompressor::forScheme(Scheme s)
{
    return ProgrammableDecompressor(
        parseDatapathConfig(builtinConfigText(s)));
}

std::uint32_t
ProgrammableDecompressor::evalWire(
    const Instr &instr, std::uint32_t in, std::uint32_t reg,
    const std::vector<std::uint32_t> &wires) const
{
    auto read = [&](const Operand &o) -> std::uint32_t {
        switch (o.kind) {
          case OperandKind::In: return in;
          case OperandKind::Reg: return reg;
          case OperandKind::Wire: return wires[o.value];
          case OperandKind::Const: return o.value;
        }
        return 0;
    };
    std::uint32_t a = read(instr.args[0]);
    std::uint32_t b = instr.numArgs > 1 ? read(instr.args[1]) : 0;
    std::uint32_t c = instr.numArgs > 2 ? read(instr.args[2]) : 0;

    switch (instr.op) {
      case Op::Pass: return a;
      case Op::And: return a & b;
      case Op::Or: return a | b;
      case Op::Xor: return a ^ b;
      case Op::Add: return a + b;
      case Op::Sub: return a - b;
      case Op::Shl: return b >= 32 ? 0 : a << b;
      case Op::Shr: return b >= 32 ? 0 : a >> b;
      case Op::Not: return a == 0 ? 1u : 0u;
      case Op::Eq: return a == b ? 1u : 0u;
      case Op::Mux: return a != 0 ? b : c;
    }
    return 0;
}

void
ProgrammableDecompressor::decodeValues(
    std::span<const std::uint8_t> bytes,
    std::span<std::uint32_t> out) const
{
    if (out.empty())
        return;
    BOSS_ASSERT(bytes.size() > config_.headerBytes,
                "datapath: payload shorter than header");

    // -------- Stage 1: extract raw payloads --------
    std::vector<std::uint32_t> payloads;
    std::uint32_t width = 0;
    std::uint32_t exceptions = 0;
    switch (config_.mode) {
      case ExtractMode::Fixed: {
        width = bytes[0];
        if (config_.headerBytes >= 2)
            exceptions = bytes[1];
        BOSS_ASSERT(width >= 1 && width <= 32,
                    "datapath: corrupt fixed width ", width);
        BitReader reader(bytes.data() + config_.headerBytes,
                         bytes.size() - config_.headerBytes);
        payloads.reserve(out.size());
        for (std::size_t i = 0; i < out.size(); ++i)
            payloads.push_back(reader.get(width));
        break;
      }
      case ExtractMode::ByteWise: {
        payloads.assign(bytes.begin() + config_.headerBytes,
                        bytes.end());
        break;
      }
      case ExtractMode::Sel16: {
        const auto &modes = Simple16Codec::modeTable();
        std::size_t pos = config_.headerBytes;
        while (payloads.size() < out.size()) {
            BOSS_ASSERT(pos + 4 <= bytes.size(),
                        "datapath: S16 stream truncated");
            std::uint32_t word =
                static_cast<std::uint32_t>(bytes[pos]) |
                static_cast<std::uint32_t>(bytes[pos + 1]) << 8 |
                static_cast<std::uint32_t>(bytes[pos + 2]) << 16 |
                static_cast<std::uint32_t>(bytes[pos + 3]) << 24;
            pos += 4;
            const auto &mode = modes[word >> 28];
            std::uint32_t payload = word & maskLow(28);
            std::uint32_t shift = 0;
            for (std::uint8_t r = 0; r < mode.numRuns; ++r) {
                for (std::uint8_t c2 = 0; c2 < mode.runs[r].count;
                     ++c2) {
                    if (payloads.size() < out.size()) {
                        payloads.push_back((payload >> shift) &
                                           maskLow(mode.runs[r].width));
                    }
                    shift += mode.runs[r].width;
                }
            }
        }
        break;
      }
      case ExtractMode::Sel8b: {
        const auto &modes = Simple8bCodec::modeTable();
        std::size_t pos = config_.headerBytes;
        while (payloads.size() < out.size()) {
            BOSS_ASSERT(pos + 8 <= bytes.size(),
                        "datapath: S8b stream truncated");
            std::uint64_t word = 0;
            for (int b = 0; b < 8; ++b) {
                word |= static_cast<std::uint64_t>(bytes[pos + b])
                        << (8 * b);
            }
            pos += 8;
            const auto &mode = modes[word >> 60];
            if (mode.width == 0) {
                for (std::uint16_t c2 = 0;
                     c2 < mode.count && payloads.size() < out.size();
                     ++c2) {
                    payloads.push_back(0);
                }
                continue;
            }
            std::uint64_t mask =
                (std::uint64_t{1} << mode.width) - 1;
            std::uint32_t shift = 0;
            for (std::uint16_t c2 = 0;
                 c2 < mode.count && payloads.size() < out.size();
                 ++c2) {
                payloads.push_back(static_cast<std::uint32_t>(
                    (word >> shift) & mask));
                shift += mode.width;
            }
        }
        break;
      }
    }

    // -------- Stage 2: run the programmed manipulator --------
    std::vector<std::uint32_t> wires(config_.wires.size(), 0);
    std::uint32_t reg = config_.regInit;
    std::size_t produced = 0;
    for (std::uint32_t payload : payloads) {
        if (produced >= out.size())
            break;
        for (std::size_t w = 0; w < config_.wires.size(); ++w)
            wires[w] = evalWire(config_.wires[w], payload, reg, wires);
        std::uint32_t outVal =
            wires[static_cast<std::size_t>(config_.outWire)];
        std::uint32_t valid =
            wires[static_cast<std::size_t>(config_.validWire)];
        if (config_.regNext >= 0)
            reg = wires[static_cast<std::size_t>(config_.regNext)];
        if (valid != 0)
            out[produced++] = outVal;
    }
    BOSS_ASSERT(produced == out.size(),
                "datapath: produced ", produced, " of ", out.size(),
                " values");

    // -------- Stage 3: patch exceptions --------
    if (config_.pfdExceptions && exceptions > 0) {
        std::size_t packedBytes =
            ceilDiv(out.size() * width, 8) + config_.headerBytes;
        std::size_t pos = packedBytes;
        auto varint = [&]() {
            std::uint32_t v = 0;
            int shift = 0;
            while (true) {
                BOSS_ASSERT(pos < bytes.size(),
                            "datapath: exception stream truncated");
                std::uint8_t b = bytes[pos++];
                v |= static_cast<std::uint32_t>(b & 0x7F) << shift;
                if ((b & 0x80) == 0)
                    break;
                shift += 7;
            }
            return v;
        };
        for (std::uint32_t e = 0; e < exceptions; ++e) {
            std::uint32_t index = varint();
            std::uint32_t high = varint();
            BOSS_ASSERT(index < out.size(),
                        "datapath: exception index corrupt");
            out[index] |= high << width;
        }
    }
}

void
ProgrammableDecompressor::decodeDocIds(
    std::span<const std::uint8_t> bytes, std::uint32_t base,
    std::span<std::uint32_t> out) const
{
    decodeValues(bytes, out);
    // -------- Stage 4: delta prefix sum --------
    if (config_.useDelta) {
        std::uint32_t acc = base;
        for (auto &v : out) {
            acc += v;
            v = acc;
        }
    }
}

} // namespace boss::compress
