#include "compress/simple8b.h"

#include "common/bitops.h"
#include "common/logging.h"

namespace boss::compress
{

const std::array<Simple8bCodec::Mode, 16> &
Simple8bCodec::modeTable()
{
    static const std::array<Mode, 16> table = {{
        {240, 0}, // selector 0: 240 zeros
        {120, 0}, // selector 1: 120 zeros
        {60, 1},  {30, 2},  {20, 3},  {15, 4},
        {12, 5},  {10, 6},  {8, 7},   {7, 8},
        {6, 10},  {5, 12},  {4, 15},  {3, 20},
        {2, 30},  {1, 60},
    }};
    return table;
}

bool
Simple8bCodec::encode(std::span<const std::uint32_t> values,
                      BlockEncoding &out) const
{
    out.bytes.clear();
    const auto &modes = modeTable();

    std::size_t idx = 0;
    while (idx < values.size()) {
        std::size_t sel = modes.size() - 1;
        std::size_t take = 1;
        for (std::size_t m = 0; m < modes.size(); ++m) {
            const Mode &mode = modes[m];
            std::size_t avail = values.size() - idx;
            if (avail < mode.count)
                continue;
            bool fits = true;
            for (std::uint16_t c = 0; c < mode.count && fits; ++c) {
                std::uint32_t v = values[idx + c];
                if (mode.width == 0) {
                    fits = (v == 0);
                } else {
                    fits = bitsFor(v) <= mode.width;
                }
            }
            if (fits) {
                sel = m;
                take = mode.count;
                break;
            }
        }

        const Mode &mode = modes[sel];
        std::uint64_t word = static_cast<std::uint64_t>(sel) << 60;
        if (mode.width > 0) {
            std::uint32_t shift = 0;
            for (std::size_t c = 0; c < take; ++c) {
                word |= static_cast<std::uint64_t>(values[idx + c])
                        << shift;
                shift += mode.width;
            }
        }
        for (int b = 0; b < 8; ++b)
            out.bytes.push_back(static_cast<std::uint8_t>(word >> (8 * b)));
        idx += take;
    }
    out.bitWidth = 0;
    out.exceptionCount = 0;
    return true;
}

void
Simple8bCodec::decode(std::span<const std::uint8_t> bytes,
                      std::span<std::uint32_t> out) const
{
    const auto &modes = modeTable();
    std::size_t produced = 0;
    std::size_t pos = 0;
    while (produced < out.size()) {
        BOSS_ASSERT(pos + 8 <= bytes.size(), "S8b payload truncated");
        std::uint64_t word = 0;
        for (int b = 0; b < 8; ++b)
            word |= static_cast<std::uint64_t>(bytes[pos + b]) << (8 * b);
        pos += 8;
        const Mode &mode = modes[word >> 60];
        if (mode.width == 0) {
            for (std::uint16_t c = 0;
                 c < mode.count && produced < out.size(); ++c) {
                out[produced++] = 0;
            }
            continue;
        }
        std::uint64_t mask = mode.width >= 64
            ? ~std::uint64_t{0}
            : ((std::uint64_t{1} << mode.width) - 1);
        std::uint32_t shift = 0;
        for (std::uint16_t c = 0;
             c < mode.count && produced < out.size(); ++c) {
            out[produced++] =
                static_cast<std::uint32_t>((word >> shift) & mask);
            shift += mode.width;
        }
    }
}

} // namespace boss::compress
