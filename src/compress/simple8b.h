/**
 * @file
 * Simple8b (S8b) codec: packs runs of equal-width values into 64-bit
 * words with a 4-bit selector and 60 payload bits [Anh & Moffat,
 * SP&E 2010]. Selectors 0 and 1 encode long runs of zeros using no
 * payload bits.
 *
 * Values must be < 2^60; encode() reports failure otherwise (never
 * the case for 32-bit inputs).
 */

#ifndef BOSS_COMPRESS_SIMPLE8B_H
#define BOSS_COMPRESS_SIMPLE8B_H

#include <array>

#include "compress/codec.h"

namespace boss::compress
{

class Simple8bCodec : public Codec
{
  public:
    struct Mode
    {
        std::uint16_t count; ///< values per word
        std::uint8_t width;  ///< bits per value (0 = implicit zeros)
    };

    static const std::array<Mode, 16> &modeTable();

    Scheme scheme() const override { return Scheme::S8b; }

    bool encode(std::span<const std::uint32_t> values,
                BlockEncoding &out) const override;

    void decode(std::span<const std::uint8_t> bytes,
                std::span<std::uint32_t> out) const override;
};

} // namespace boss::compress

#endif // BOSS_COMPRESS_SIMPLE8B_H
