/**
 * @file
 * Simple16 (S16) codec: packs as many values as possible into the
 * 28-bit payload of each 32-bit word; the top 4 bits select one of
 * 16 fixed (count x width) layouts [Zhang, Long & Suel, WWW'08].
 *
 * Values must be < 2^28; encode() reports failure otherwise.
 */

#ifndef BOSS_COMPRESS_SIMPLE16_H
#define BOSS_COMPRESS_SIMPLE16_H

#include <array>

#include "compress/codec.h"

namespace boss::compress
{

class Simple16Codec : public Codec
{
  public:
    /** A (count, width) run inside one word's 28 payload bits. */
    struct Run
    {
        std::uint8_t count;
        std::uint8_t width;
    };

    /** Layout of one selector: up to 3 runs summing to <= 28 bits. */
    struct Mode
    {
        std::array<Run, 3> runs;
        std::uint8_t numRuns;
        std::uint8_t totalValues;
    };

    static const std::array<Mode, 16> &modeTable();

    Scheme scheme() const override { return Scheme::S16; }

    bool encode(std::span<const std::uint32_t> values,
                BlockEncoding &out) const override;

    void decode(std::span<const std::uint8_t> bytes,
                std::span<std::uint32_t> out) const override;
};

} // namespace boss::compress

#endif // BOSS_COMPRESS_SIMPLE16_H
