#include "compress/varbyte.h"

#include "common/logging.h"
#include "kernels/kernels.h"

namespace boss::compress
{

bool
VarByteCodec::encode(std::span<const std::uint32_t> values,
                     BlockEncoding &out) const
{
    out.bytes.clear();
    for (std::uint32_t v : values) {
        // Find the number of 7-bit groups (at least one).
        int groups = 1;
        for (std::uint32_t t = v >> 7; t != 0; t >>= 7)
            ++groups;
        for (int g = groups - 1; g >= 0; --g) {
            auto group = static_cast<std::uint8_t>((v >> (7 * g)) & 0x7F);
            if (g != 0)
                group |= 0x80; // continuation
            out.bytes.push_back(group);
        }
    }
    out.bitWidth = 0;
    out.exceptionCount = 0;
    return true;
}

void
VarByteCodec::decode(std::span<const std::uint8_t> bytes,
                     std::span<std::uint32_t> out) const
{
    // The kernel asserts on truncation exactly like the old
    // byte-at-a-time loop did.
    kernels::ops().decodeVarByte(bytes.data(), bytes.size(),
                                 out.data(), out.size());
}

} // namespace boss::compress
