#include "compress/varbyte.h"

#include "common/logging.h"

namespace boss::compress
{

bool
VarByteCodec::encode(std::span<const std::uint32_t> values,
                     BlockEncoding &out) const
{
    out.bytes.clear();
    for (std::uint32_t v : values) {
        // Find the number of 7-bit groups (at least one).
        int groups = 1;
        for (std::uint32_t t = v >> 7; t != 0; t >>= 7)
            ++groups;
        for (int g = groups - 1; g >= 0; --g) {
            auto group = static_cast<std::uint8_t>((v >> (7 * g)) & 0x7F);
            if (g != 0)
                group |= 0x80; // continuation
            out.bytes.push_back(group);
        }
    }
    out.bitWidth = 0;
    out.exceptionCount = 0;
    return true;
}

void
VarByteCodec::decode(std::span<const std::uint8_t> bytes,
                     std::span<std::uint32_t> out) const
{
    std::size_t pos = 0;
    for (auto &result : out) {
        std::uint32_t acc = 0;
        while (true) {
            BOSS_ASSERT(pos < bytes.size(), "VB payload truncated");
            std::uint8_t b = bytes[pos++];
            acc = (acc << 7) | (b & 0x7F);
            if ((b & 0x80) == 0)
                break;
        }
        result = acc;
    }
}

} // namespace boss::compress
