/**
 * @file
 * VariableByte (VB) codec.
 *
 * Values are split into 7-bit groups emitted most-significant group
 * first; the top bit of each byte is a continuation flag (1 = more
 * bytes follow). This matches the accumulate-by-shift-left-7 datapath
 * of the paper's Fig. 8 configuration program.
 */

#ifndef BOSS_COMPRESS_VARBYTE_H
#define BOSS_COMPRESS_VARBYTE_H

#include "compress/codec.h"

namespace boss::compress
{

class VarByteCodec : public Codec
{
  public:
    Scheme scheme() const override { return Scheme::VB; }

    bool encode(std::span<const std::uint32_t> values,
                BlockEncoding &out) const override;

    void decode(std::span<const std::uint8_t> bytes,
                std::span<std::uint32_t> out) const override;
};

} // namespace boss::compress

#endif // BOSS_COMPRESS_VARBYTE_H
