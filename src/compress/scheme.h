/**
 * @file
 * Enumeration of the inverted-index compression schemes supported by
 * the BOSS decompression module (paper Sec. II-B / VI).
 */

#ifndef BOSS_COMPRESS_SCHEME_H
#define BOSS_COMPRESS_SCHEME_H

#include <array>
#include <cstdint>
#include <string_view>

namespace boss::compress
{

/**
 * Compression scheme identifiers.
 *
 * PFD and OptPFD share an on-disk format; they differ only in how the
 * encoder picks the packed bit width (90th percentile vs. exhaustive
 * size minimization).
 */
enum class Scheme : std::uint8_t
{
    BP = 0,     ///< BitPacking [Lemire & Boytsov]
    VB = 1,     ///< VariableByte [Cutting & Pedersen]
    PFD = 2,    ///< PForDelta [Zukowski et al.]
    OptPFD = 3, ///< OptPForDelta [Yan, Ding & Suel]
    S16 = 4,    ///< Simple16 [Zhang, Long & Suel]
    S8b = 5,    ///< Simple8b [Anh & Moffat]
};

inline constexpr std::size_t kNumSchemes = 6;

/** All schemes, in enum order; handy for sweeps. */
inline constexpr std::array<Scheme, kNumSchemes> kAllSchemes = {
    Scheme::BP,  Scheme::VB,  Scheme::PFD,
    Scheme::OptPFD, Scheme::S16, Scheme::S8b,
};

/** The subset the paper evaluates in Fig. 3 (PFD dominated by OptPFD). */
inline constexpr std::array<Scheme, 5> kFig3Schemes = {
    Scheme::BP, Scheme::VB, Scheme::OptPFD, Scheme::S16, Scheme::S8b,
};

constexpr std::string_view
schemeName(Scheme s)
{
    switch (s) {
      case Scheme::BP: return "BP";
      case Scheme::VB: return "VB";
      case Scheme::PFD: return "PFD";
      case Scheme::OptPFD: return "OptPFD";
      case Scheme::S16: return "S16";
      case Scheme::S8b: return "S8b";
    }
    return "?";
}

} // namespace boss::compress

#endif // BOSS_COMPRESS_SCHEME_H
