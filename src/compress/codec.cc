#include "compress/codec.h"

#include "common/logging.h"
#include "compress/bitpacking.h"
#include "compress/pfordelta.h"
#include "compress/simple16.h"
#include "compress/simple8b.h"
#include "compress/varbyte.h"

namespace boss::compress
{

const Codec &
codecFor(Scheme s)
{
    static const BitPackingCodec bp;
    static const VarByteCodec vb;
    static const PForDeltaCodec pfd;
    static const OptPForDeltaCodec optpfd;
    static const Simple16Codec s16;
    static const Simple8bCodec s8b;

    switch (s) {
      case Scheme::BP: return bp;
      case Scheme::VB: return vb;
      case Scheme::PFD: return pfd;
      case Scheme::OptPFD: return optpfd;
      case Scheme::S16: return s16;
      case Scheme::S8b: return s8b;
    }
    BOSS_PANIC("unknown compression scheme");
}

Scheme
pickBestScheme(std::span<const std::uint32_t> values, BlockEncoding &best)
{
    Scheme bestScheme = Scheme::BP;
    bool found = false;
    BlockEncoding trial;
    for (Scheme s : kAllSchemes) {
        if (s == Scheme::PFD)
            continue; // dominated by OptPFD (same format, better width)
        if (!codecFor(s).encode(values, trial))
            continue;
        if (!found || trial.bytes.size() < best.bytes.size()) {
            best = trial;
            bestScheme = s;
            found = true;
        }
    }
    BOSS_ASSERT(found, "no codec could encode block");
    return bestScheme;
}

} // namespace boss::compress
