/**
 * @file
 * BitPacking (BP) codec: every value in the block is stored with the
 * bit width of the block's maximum value. One header byte carries
 * that width.
 */

#ifndef BOSS_COMPRESS_BITPACKING_H
#define BOSS_COMPRESS_BITPACKING_H

#include "compress/codec.h"

namespace boss::compress
{

class BitPackingCodec : public Codec
{
  public:
    Scheme scheme() const override { return Scheme::BP; }

    bool encode(std::span<const std::uint32_t> values,
                BlockEncoding &out) const override;

    void decode(std::span<const std::uint8_t> bytes,
                std::span<std::uint32_t> out) const override;
};

} // namespace boss::compress

#endif // BOSS_COMPRESS_BITPACKING_H
