#include "compress/simple16.h"

#include "common/bitops.h"
#include "common/logging.h"

namespace boss::compress
{

const std::array<Simple16Codec::Mode, 16> &
Simple16Codec::modeTable()
{
    // The canonical Simple16 selector table. Each mode's runs sum to
    // at most 28 bits. Ordered from most to fewest values per word so
    // the greedy encoder tries the densest packing first.
    static const std::array<Mode, 16> table = {{
        {{{{28, 1}, {0, 0}, {0, 0}}}, 1, 28},
        {{{{7, 2}, {14, 1}, {0, 0}}}, 2, 21},
        {{{{7, 1}, {7, 2}, {7, 1}}}, 3, 21},
        {{{{14, 1}, {7, 2}, {0, 0}}}, 2, 21},
        {{{{14, 2}, {0, 0}, {0, 0}}}, 1, 14},
        {{{{1, 4}, {8, 3}, {0, 0}}}, 2, 9},
        {{{{1, 3}, {4, 4}, {3, 3}}}, 3, 8},
        {{{{7, 4}, {0, 0}, {0, 0}}}, 1, 7},
        {{{{4, 5}, {2, 4}, {0, 0}}}, 2, 6},
        {{{{2, 4}, {4, 5}, {0, 0}}}, 2, 6},
        {{{{3, 6}, {2, 5}, {0, 0}}}, 2, 5},
        {{{{2, 5}, {3, 6}, {0, 0}}}, 2, 5},
        {{{{4, 7}, {0, 0}, {0, 0}}}, 1, 4},
        {{{{1, 10}, {2, 9}, {0, 0}}}, 2, 3},
        {{{{2, 14}, {0, 0}, {0, 0}}}, 1, 2},
        {{{{1, 28}, {0, 0}, {0, 0}}}, 1, 1},
    }};
    return table;
}

namespace
{

/**
 * Check whether the next values starting at @p begin fit mode @p m.
 */
bool
fitsMode(const Simple16Codec::Mode &m,
         std::span<const std::uint32_t> values, std::size_t begin)
{
    std::size_t avail = values.size() - begin;
    if (avail < m.totalValues)
        return false;
    std::size_t idx = begin;
    for (std::uint8_t r = 0; r < m.numRuns; ++r) {
        for (std::uint8_t c = 0; c < m.runs[r].count; ++c) {
            if (boss::bitsFor(values[idx]) > m.runs[r].width)
                return false;
            ++idx;
        }
    }
    return true;
}

} // namespace

bool
Simple16Codec::encode(std::span<const std::uint32_t> values,
                      BlockEncoding &out) const
{
    out.bytes.clear();
    for (auto v : values) {
        if (v >= (1u << 28))
            return false;
    }

    const auto &modes = modeTable();
    std::size_t idx = 0;
    while (idx < values.size()) {
        // Pick the densest mode that fits. The table's widest mode
        // (1x28) always fits values < 2^28, so selection terminates.
        std::size_t sel = modes.size() - 1;
        for (std::size_t m = 0; m < modes.size(); ++m) {
            if (fitsMode(modes[m], values, idx)) {
                sel = m;
                break;
            }
        }
        const Mode &mode = modes[sel];
        // Avoid padding the tail with phantom values: if fewer values
        // remain than the mode packs, fall forward to a sparser mode
        // that exactly covers the remainder or the 1x28 fallback.
        std::uint32_t word = static_cast<std::uint32_t>(sel) << 28;
        std::uint32_t shift = 0;
        for (std::uint8_t r = 0; r < mode.numRuns; ++r) {
            for (std::uint8_t c = 0; c < mode.runs[r].count; ++c) {
                word |= (values[idx] & maskLow(mode.runs[r].width))
                        << shift;
                shift += mode.runs[r].width;
                ++idx;
            }
        }
        out.bytes.push_back(static_cast<std::uint8_t>(word));
        out.bytes.push_back(static_cast<std::uint8_t>(word >> 8));
        out.bytes.push_back(static_cast<std::uint8_t>(word >> 16));
        out.bytes.push_back(static_cast<std::uint8_t>(word >> 24));
    }
    out.bitWidth = 0;
    out.exceptionCount = 0;
    return true;
}

void
Simple16Codec::decode(std::span<const std::uint8_t> bytes,
                      std::span<std::uint32_t> out) const
{
    const auto &modes = modeTable();
    std::size_t produced = 0;
    std::size_t pos = 0;
    while (produced < out.size()) {
        BOSS_ASSERT(pos + 4 <= bytes.size(), "S16 payload truncated");
        std::uint32_t word = static_cast<std::uint32_t>(bytes[pos]) |
                             static_cast<std::uint32_t>(bytes[pos + 1]) << 8 |
                             static_cast<std::uint32_t>(bytes[pos + 2]) << 16 |
                             static_cast<std::uint32_t>(bytes[pos + 3]) << 24;
        pos += 4;
        const Mode &mode = modes[word >> 28];
        std::uint32_t payload = word & maskLow(28);
        std::uint32_t shift = 0;
        for (std::uint8_t r = 0; r < mode.numRuns; ++r) {
            for (std::uint8_t c = 0; c < mode.runs[r].count; ++c) {
                if (produced < out.size()) {
                    out[produced++] =
                        (payload >> shift) & maskLow(mode.runs[r].width);
                }
                shift += mode.runs[r].width;
            }
        }
    }
}

} // namespace boss::compress
