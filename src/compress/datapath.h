/**
 * @file
 * Programmable decompression datapath (paper Sec. IV-C/IV-D, Figs. 6
 * and 8).
 *
 * The module has four stages:
 *   1. Extractor    -- slices payloads out of the serialized
 *                      bitstream. Fixed-function with a configurable
 *                      mode: fixed-width slots, byte-wise (VB), or
 *                      selector-driven words (Simple16 / Simple8b).
 *   2. Manipulator  -- a *programmable* network of primitive ALU
 *                      units (SHL/SHR/AND/OR/ADD/...) plus one
 *                      accumulator register, wired by a textual
 *                      configuration program like the paper's Fig. 8.
 *   3. Exception    -- fixed-function patcher for PFD-style
 *                      exception lists, on/off per configuration.
 *   4. Delta        -- prefix-sum unit reconstructing docIDs from
 *                      d-gaps, on/off per configuration.
 *
 * Only stage 2 is freely programmable, exactly as in the paper: "the
 * datapath is nearly the same for all those compression schemes
 * except for the second stage".
 */

#ifndef BOSS_COMPRESS_DATAPATH_H
#define BOSS_COMPRESS_DATAPATH_H

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "compress/scheme.h"

namespace boss::compress
{

/** Stage-1 extraction modes. */
enum class ExtractMode : std::uint8_t
{
    Fixed,    ///< metadata-supplied bit width per slot (BP, PFD)
    ByteWise, ///< one byte per payload (VB)
    Sel16,    ///< 32-bit words, 4-bit selector (Simple16)
    Sel8b,    ///< 64-bit words, 4-bit selector (Simple8b)
};

/** Primitive units available to stage-2 programs. */
enum class Op : std::uint8_t
{
    Pass, And, Or, Xor, Add, Sub, Shl, Shr, Not, Eq, Mux,
};

/** Operand kinds in a stage-2 program. */
enum class OperandKind : std::uint8_t
{
    In,    ///< current payload from stage 1
    Reg,   ///< accumulator register (value before this payload)
    Wire,  ///< a previously computed wire
    Const, ///< immediate
};

struct Operand
{
    OperandKind kind = OperandKind::Const;
    std::uint32_t value = 0; ///< wire index or immediate
};

/** One stage-2 instruction: dest wire = op(args...). */
struct Instr
{
    Op op = Op::Pass;
    Operand args[3];
    std::uint8_t numArgs = 1;
};

/**
 * Parsed configuration for the whole four-stage datapath.
 */
struct DatapathConfig
{
    ExtractMode mode = ExtractMode::Fixed;
    std::uint32_t headerBytes = 0; ///< bytes to skip before payloads

    std::vector<Instr> wires;   ///< stage-2 wires, in evaluation order
    int regNext = -1;           ///< wire index driving the register
    int outWire = -1;           ///< wire index driving the output
    int validWire = -1;         ///< wire index driving output-valid
    std::uint32_t regInit = 0;  ///< register reset value

    bool pfdExceptions = false; ///< stage 3 on/off
    bool useDelta = true;       ///< stage 4 on/off
};

/**
 * Parse a textual configuration program.
 *
 * Grammar (one statement per line; '#' starts a comment):
 *   stage1 mode=<fixed|bytewise|s16|s8b> header=<int>
 *   stage2 {
 *     <wire> = <op>(<arg>[, <arg>[, <arg>]])
 *     reg <= <arg>            # register next-value
 *     out = <arg>
 *     valid = <arg>
 *   }
 *   stage3 exceptions=<none|pfd>
 *   stage4 delta=<0|1>
 *
 * Args are 'in', 'reg', a previously defined wire name, or an
 * integer literal (decimal or 0x hex). Raises fatal() on malformed
 * input (configuration errors are user errors, not simulator bugs).
 */
DatapathConfig parseDatapathConfig(std::string_view text);

/** The built-in configuration program for @p s, as shipped text. */
std::string_view builtinConfigText(Scheme s);

/**
 * Interpreter for a configured datapath. Mirrors what the RTL block
 * does; tests assert it agrees with the native software codecs.
 */
class ProgrammableDecompressor
{
  public:
    explicit ProgrammableDecompressor(DatapathConfig config)
        : config_(std::move(config))
    {}

    /** Convenience: load the built-in program for a scheme. */
    static ProgrammableDecompressor forScheme(Scheme s);

    /**
     * Decode out.size() raw values (pre-delta) from @p bytes.
     */
    void decodeValues(std::span<const std::uint8_t> bytes,
                      std::span<std::uint32_t> out) const;

    /**
     * Decode out.size() docIDs: runs all four stages. @p base is the
     * docID preceding the block (stage 4 seeds its accumulator with
     * it). When the configured program disables stage 4 this equals
     * decodeValues().
     */
    void decodeDocIds(std::span<const std::uint8_t> bytes,
                      std::uint32_t base,
                      std::span<std::uint32_t> out) const;

    const DatapathConfig &config() const { return config_; }

  private:
    std::uint32_t evalWire(const Instr &instr, std::uint32_t in,
                           std::uint32_t reg,
                           const std::vector<std::uint32_t> &wires) const;

    DatapathConfig config_;
};

} // namespace boss::compress

#endif // BOSS_COMPRESS_DATAPATH_H
