#include "compress/bitpacking.h"

#include <algorithm>

#include "common/bitops.h"
#include "common/logging.h"
#include "kernels/kernels.h"

namespace boss::compress
{

bool
BitPackingCodec::encode(std::span<const std::uint32_t> values,
                        BlockEncoding &out) const
{
    out.bytes.clear();
    std::uint32_t maxv = 0;
    for (auto v : values)
        maxv = std::max(maxv, v);
    std::uint32_t width = bitsFor(maxv);
    // A width of 0 (all zeros) still needs to round-trip; keep 1 bit
    // so the decoder loop structure stays uniform.
    if (width == 0)
        width = 1;

    out.bytes.push_back(static_cast<std::uint8_t>(width));
    BitWriter writer(out.bytes);
    for (auto v : values)
        writer.put(v, width);
    writer.flush();

    out.bitWidth = static_cast<std::uint8_t>(width);
    out.exceptionCount = 0;
    return true;
}

void
BitPackingCodec::decode(std::span<const std::uint8_t> bytes,
                        std::span<std::uint32_t> out) const
{
    BOSS_ASSERT(!bytes.empty(), "BP payload missing header");
    std::uint32_t width = bytes[0];
    BOSS_ASSERT(width >= 1 && width <= 32, "BP width corrupt: ", width);
    kernels::ops().unpackBits(bytes.data() + 1, bytes.size() - 1,
                              out.data(), out.size(), width);
}

} // namespace boss::compress
