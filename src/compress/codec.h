/**
 * @file
 * Abstract interface for per-block integer codecs.
 *
 * All codecs operate on blocks of up to kBlockSize (128) unsigned
 * deltas, matching the paper's block-oriented index layout. Encodings
 * are self-describing: decode() needs only the bytes and the element
 * count (which the per-block metadata records).
 */

#ifndef BOSS_COMPRESS_CODEC_H
#define BOSS_COMPRESS_CODEC_H

#include <cstdint>
#include <span>
#include <vector>

#include "compress/scheme.h"

namespace boss::compress
{

/**
 * Result of encoding one block.
 */
struct BlockEncoding
{
    /** Serialized block payload. */
    std::vector<std::uint8_t> bytes;
    /** Packed bit width (meaningful for BP/PFD; 0 otherwise). */
    std::uint8_t bitWidth = 0;
    /** Number of patched exceptions (PFD family; 0 otherwise). */
    std::uint16_t exceptionCount = 0;
};

/**
 * A block codec. Implementations are stateless and thread-compatible.
 */
class Codec
{
  public:
    virtual ~Codec() = default;

    virtual Scheme scheme() const = 0;
    std::string_view name() const { return schemeName(scheme()); }

    /**
     * Encode @p values into @p out.
     *
     * @return false if this codec cannot represent the input (e.g.
     *         Simple16 with values >= 2^28); @p out is unspecified
     *         in that case.
     */
    virtual bool encode(std::span<const std::uint32_t> values,
                        BlockEncoding &out) const = 0;

    /**
     * Decode exactly out.size() values from @p bytes.
     *
     * @p bytes must be the exact payload produced by encode() for the
     * same element count.
     */
    virtual void decode(std::span<const std::uint8_t> bytes,
                        std::span<std::uint32_t> out) const = 0;
};

/** Singleton accessor for each scheme's codec. */
const Codec &codecFor(Scheme s);

/**
 * Encode with every codec and return the scheme with the smallest
 * payload (the paper's "hybrid" approach). Ties break toward the
 * lower enum value. Schemes that cannot encode the input are skipped.
 */
Scheme pickBestScheme(std::span<const std::uint32_t> values,
                      BlockEncoding &best);

} // namespace boss::compress

#endif // BOSS_COMPRESS_CODEC_H
