/**
 * @file
 * PForDelta (PFD) and OptPForDelta (OptPFD) codecs.
 *
 * Layout (shared by both; they differ only in bit-width selection):
 *   byte 0:  packed bit width b (1..32)
 *   byte 1:  number of exceptions e (<= block size)
 *   then:    n slots of b bits each (low b bits of every value)
 *   then:    e exception records, each a VB-coded (position, highBits)
 *            pair where highBits = value >> b.
 *
 * PFD picks the smallest b covering >= 90% of values; OptPFD tries
 * every b and keeps the one minimizing total encoded bytes.
 */

#ifndef BOSS_COMPRESS_PFORDELTA_H
#define BOSS_COMPRESS_PFORDELTA_H

#include "compress/codec.h"

namespace boss::compress
{

class PForDeltaCodec : public Codec
{
  public:
    Scheme scheme() const override { return Scheme::PFD; }

    bool encode(std::span<const std::uint32_t> values,
                BlockEncoding &out) const override;

    void decode(std::span<const std::uint8_t> bytes,
                std::span<std::uint32_t> out) const override;

  protected:
    /** Encode with a caller-chosen packed width. */
    static void encodeWithWidth(std::span<const std::uint32_t> values,
                                std::uint32_t width, BlockEncoding &out);
};

class OptPForDeltaCodec : public PForDeltaCodec
{
  public:
    Scheme scheme() const override { return Scheme::OptPFD; }

    bool encode(std::span<const std::uint32_t> values,
                BlockEncoding &out) const override;
};

} // namespace boss::compress

#endif // BOSS_COMPRESS_PFORDELTA_H
