#include "compress/pfordelta.h"

#include <algorithm>

#include "common/bitops.h"
#include "common/logging.h"
#include "kernels/kernels.h"

namespace boss::compress
{

namespace
{

void
putVarint(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

std::uint32_t
getVarint(std::span<const std::uint8_t> bytes, std::size_t &pos)
{
    std::uint32_t v = 0;
    int shift = 0;
    while (true) {
        BOSS_ASSERT(pos < bytes.size(), "PFD exception stream truncated");
        std::uint8_t b = bytes[pos++];
        v |= static_cast<std::uint32_t>(b & 0x7F) << shift;
        if ((b & 0x80) == 0)
            break;
        shift += 7;
    }
    return v;
}

} // namespace

void
PForDeltaCodec::encodeWithWidth(std::span<const std::uint32_t> values,
                                std::uint32_t width, BlockEncoding &out)
{
    out.bytes.clear();

    std::vector<std::uint32_t> positions;
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (bitsFor(values[i]) > width)
            positions.push_back(static_cast<std::uint32_t>(i));
    }

    out.bytes.push_back(static_cast<std::uint8_t>(width));
    out.bytes.push_back(static_cast<std::uint8_t>(positions.size()));

    BitWriter writer(out.bytes);
    for (auto v : values)
        writer.put(v, width);
    writer.flush();

    for (auto pos : positions) {
        putVarint(out.bytes, pos);
        putVarint(out.bytes, values[pos] >> width);
    }

    out.bitWidth = static_cast<std::uint8_t>(width);
    out.exceptionCount = static_cast<std::uint16_t>(positions.size());
}

bool
PForDeltaCodec::encode(std::span<const std::uint32_t> values,
                       BlockEncoding &out) const
{
    if (values.empty())
        return false;

    // Smallest width such that >= 90% of values fit un-patched.
    std::vector<std::uint32_t> widths;
    widths.reserve(values.size());
    for (auto v : values)
        widths.push_back(std::max(1u, bitsFor(v)));
    std::vector<std::uint32_t> sorted = widths;
    std::sort(sorted.begin(), sorted.end());
    std::size_t idx = (values.size() * 9 + 9) / 10;
    if (idx > 0)
        --idx;
    std::uint32_t width = sorted[idx];

    // Exceptions are capped at 255 by the one-byte header; widen the
    // packed slots if a pathological distribution exceeds that.
    while (width < 32) {
        std::size_t exceptions = 0;
        for (auto w : widths) {
            if (w > width)
                ++exceptions;
        }
        if (exceptions <= 255)
            break;
        ++width;
    }

    encodeWithWidth(values, width, out);
    return true;
}

bool
OptPForDeltaCodec::encode(std::span<const std::uint32_t> values,
                          BlockEncoding &out) const
{
    if (values.empty())
        return false;

    std::uint32_t maxWidth = 1;
    for (auto v : values)
        maxWidth = std::max(maxWidth, bitsFor(v));

    BlockEncoding trial;
    bool found = false;
    for (std::uint32_t width = 1; width <= maxWidth; ++width) {
        std::size_t exceptions = 0;
        for (auto v : values) {
            if (bitsFor(v) > width)
                ++exceptions;
        }
        if (exceptions > 255)
            continue;
        encodeWithWidth(values, width, trial);
        if (!found || trial.bytes.size() < out.bytes.size()) {
            out = trial;
            found = true;
        }
    }
    return found;
}

void
PForDeltaCodec::decode(std::span<const std::uint8_t> bytes,
                       std::span<std::uint32_t> out) const
{
    BOSS_ASSERT(bytes.size() >= 2, "PFD payload missing header");
    std::uint32_t width = bytes[0];
    std::uint32_t exceptions = bytes[1];
    BOSS_ASSERT(width >= 1 && width <= 32, "PFD width corrupt: ", width);

    std::size_t packedBytes = ceilDiv(out.size() * width, 8);
    BOSS_ASSERT(bytes.size() >= 2 + packedBytes, "PFD payload truncated");

    // Vectorized base unpack; exception patching stays scalar (the
    // exception stream is short and variable-length by design).
    kernels::ops().unpackBits(bytes.data() + 2, packedBytes,
                              out.data(), out.size(), width);

    std::size_t pos = 2 + packedBytes;
    for (std::uint32_t e = 0; e < exceptions; ++e) {
        std::uint32_t index = getVarint(bytes, pos);
        std::uint32_t high = getVarint(bytes, pos);
        BOSS_ASSERT(index < out.size(), "PFD exception index corrupt");
        out[index] |= high << width;
    }
}

} // namespace boss::compress
