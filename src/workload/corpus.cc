#include "workload/corpus.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace boss::workload
{

CorpusConfig
clueWebConfig()
{
    CorpusConfig c;
    c.name = "clueweb12";
    c.numDocs = 2'000'000;
    c.vocabSize = 120'000;
    c.dfSkew = 0.62;
    c.maxDfFraction = 0.20;
    c.burstiness = 0.6;
    c.avgDocLen = 750;
    c.seed = 0xC1EBull;
    return c;
}

CorpusConfig
ccNewsConfig()
{
    CorpusConfig c;
    c.name = "cc-news";
    c.numDocs = 1'200'000;
    c.vocabSize = 80'000;
    c.dfSkew = 0.7;
    c.maxDfFraction = 0.25;
    c.burstiness = 0.35;
    c.avgDocLen = 380;
    c.seed = 0xCCEEull;
    return c;
}

Corpus::Corpus(CorpusConfig config) : config_(std::move(config))
{
    BOSS_ASSERT(config_.numDocs > 0 && config_.vocabSize > 0,
                "empty corpus config");
    // Document lengths: log-normal around the configured mean, with
    // a slowly varying regional multiplier. Web crawls ingest sites
    // in runs, so neighboring docIDs have correlated lengths; this
    // is the structure that gives per-block score maxima realistic
    // variance (and block-level early termination its leverage).
    Rng rng(config_.seed * 0x9E3779B97F4A7C15ULL + 1);
    docLengths_.resize(config_.numDocs);
    double mu = std::log(static_cast<double>(config_.avgDocLen)) - 0.205;
    const std::uint32_t regionSize = 512;
    double regionMul = 1.0;
    for (std::uint32_t d = 0; d < config_.numDocs; ++d) {
        if (d % regionSize == 0)
            regionMul = std::exp(rng.normal(0.0, 0.4));
        double v = regionMul * std::exp(rng.normal(mu, 0.4));
        docLengths_[d] =
            std::max(8u, static_cast<std::uint32_t>(std::lround(v)));
    }
}

std::uint32_t
Corpus::expectedDf(TermId t) const
{
    // Zipfian document frequency by term rank, clamped to [1, maxDf].
    double maxDf = config_.maxDfFraction *
                   static_cast<double>(config_.numDocs);
    double df = maxDf / std::pow(static_cast<double>(t) + 1.0,
                                 config_.dfSkew);
    return std::max(1u, static_cast<std::uint32_t>(std::lround(df)));
}

index::PostingList
Corpus::postings(TermId t) const
{
    BOSS_ASSERT(t < config_.vocabSize, "term out of vocabulary");
    Rng rng(config_.seed ^ (0xABCD0000ULL + t) * 0x2545F4914F6CDD1DULL);

    std::uint32_t df = expectedDf(t);
    double baseP =
        static_cast<double>(df) / static_cast<double>(config_.numDocs);

    // Bursty two-state docID placement: a "hot" region boosts the
    // inclusion probability, a "cold" region suppresses it. Expected
    // overall density stays ~baseP while locality increases with the
    // burstiness knob.
    double hotBoost = 1.0 + 7.0 * config_.burstiness;
    double coldScale =
        std::max(0.05, 1.0 - 0.95 * config_.burstiness);
    // Fraction of docs in the hot state such that the mixture keeps
    // the target density: f*hot + (1-f)*cold = 1.
    double f = (1.0 - coldScale) / (hotBoost - coldScale);

    index::PostingList out;
    out.reserve(df + df / 4 + 4);
    bool hot = rng.chance(f);
    // Expected state run length of ~2000 docs.
    const double switchP = 1.0 / 2000.0;

    DocId doc = 0;
    while (doc < config_.numDocs) {
        double p = baseP * (hot ? hotBoost : coldScale);
        p = std::min(0.9999, p);
        // Geometric skip to the next included doc in this state.
        std::uint32_t gap = rng.geometric(p);
        // State may flip during the skipped span; approximate by
        // re-evaluating the state once per jump.
        if (rng.chance(1.0 - std::pow(1.0 - switchP, gap)))
            hot = rng.chance(f);
        if (gap > config_.numDocs - doc)
            break;
        doc += gap;
        if (doc >= config_.numDocs)
            break;
        // Term frequency: geometric with occasional heavy docs.
        TermFreq tf = rng.geometric(0.55);
        if (rng.chance(0.02))
            tf += rng.geometric(0.2);
        tf = std::min<TermFreq>(tf, 255);
        out.push_back({doc, tf});
        doc += 1;
    }
    if (out.empty()) {
        // Guarantee every term resolves to at least one document.
        DocId d = static_cast<DocId>(rng.below(config_.numDocs));
        out.push_back({d, 1});
    }
    return out;
}

index::InvertedIndex
Corpus::buildIndex(const std::vector<TermId> &terms,
                   const std::optional<compress::Scheme> &forced) const
{
    index::IndexBuilder builder;
    if (forced.has_value())
        builder.forceScheme(*forced);
    builder.setDocLengths(docLengths_);
    for (TermId t : terms)
        builder.addTerm(t, postings(t));
    return builder.build();
}

index::IndexShards
Corpus::buildShardedIndex(
    const std::vector<TermId> &terms, std::uint32_t numShards,
    const std::optional<compress::Scheme> &forced) const
{
    index::ShardedIndexBuilder builder(numShards);
    if (forced.has_value())
        builder.forceScheme(*forced);
    builder.setDocLengths(docLengths_);
    // postings(t) is a self-seeded stream per (corpus seed, term) —
    // no generator shared across terms or shards — so the shard
    // images do not depend on the order this loop (or the parallel
    // per-shard build behind build()) executes in.
    for (TermId t : terms)
        builder.addTerm(t, postings(t));
    return builder.build();
}

} // namespace boss::workload
