#include "workload/synthetic_streams.h"

#include <algorithm>
#include <cmath>
#include <span>

#include "common/rng.h"
#include "common/types.h"
#include "compress/codec.h"

namespace boss::workload
{

namespace
{

using boss::Rng;

/** Sorted uniform picks over [0, range), returned as d-gaps. */
std::vector<std::uint32_t>
uniformGaps(std::size_t count, std::uint32_t range, Rng &rng)
{
    std::vector<std::uint32_t> vals(count);
    for (auto &v : vals)
        v = static_cast<std::uint32_t>(rng.below(range));
    std::sort(vals.begin(), vals.end());
    std::vector<std::uint32_t> gaps(count);
    std::uint32_t prev = 0;
    for (std::size_t i = 0; i < count; ++i) {
        gaps[i] = vals[i] - prev;
        prev = vals[i];
    }
    return gaps;
}

/**
 * Clustered picks: values drawn uniformly within randomly placed
 * clusters rather than the whole range (paper: "Cluster streams also
 * consist of uniformly picked integers but from randomly chosen
 * clusters").
 */
std::vector<std::uint32_t>
clusterGaps(std::size_t count, std::uint32_t range, Rng &rng)
{
    const std::size_t numClusters = 64;
    const std::uint32_t clusterWidth = range / 4096;
    std::vector<std::uint32_t> centers(numClusters);
    for (auto &c : centers)
        c = static_cast<std::uint32_t>(rng.below(range - clusterWidth));

    std::vector<std::uint32_t> vals(count);
    for (auto &v : vals) {
        std::uint32_t center = centers[rng.below(numClusters)];
        v = center + static_cast<std::uint32_t>(rng.below(clusterWidth));
    }
    std::sort(vals.begin(), vals.end());
    std::vector<std::uint32_t> gaps(count);
    std::uint32_t prev = 0;
    for (std::size_t i = 0; i < count; ++i) {
        gaps[i] = vals[i] - prev;
        prev = vals[i];
    }
    return gaps;
}

/** Normal(2^5, 20) values with a fraction of large outliers. */
std::vector<std::uint32_t>
outlierValues(std::size_t count, double outlierFrac, Rng &rng)
{
    std::vector<std::uint32_t> vals(count);
    for (auto &v : vals) {
        if (rng.chance(outlierFrac)) {
            // Outliers: large values well outside the normal body.
            v = static_cast<std::uint32_t>(rng.range(1u << 12, 1u << 20));
        } else {
            double d = rng.normal(32.0, 20.0);
            v = d <= 0.0 ? 0u
                         : static_cast<std::uint32_t>(std::lround(d));
        }
    }
    return vals;
}

/** Values following Zipf's law over a large support. */
std::vector<std::uint32_t>
zipfValues(std::size_t count, Rng &rng)
{
    ZipfSampler zipf(1 << 16, 1.0);
    std::vector<std::uint32_t> vals(count);
    for (auto &v : vals)
        v = static_cast<std::uint32_t>(zipf(rng));
    return vals;
}

} // namespace

std::vector<std::uint32_t>
makeStream(StreamKind kind, std::size_t count, std::uint64_t seed)
{
    Rng rng(seed ^ (static_cast<std::uint64_t>(kind) << 40));
    switch (kind) {
      case StreamKind::UniformSparse:
        return uniformGaps(count, 1u << 28, rng);
      case StreamKind::UniformDense:
        return uniformGaps(count, 1u << 26, rng);
      case StreamKind::ClusterSparse:
        return clusterGaps(count, 1u << 28, rng);
      case StreamKind::ClusterDense:
        return clusterGaps(count, 1u << 26, rng);
      case StreamKind::Outlier10:
        return outlierValues(count, 0.10, rng);
      case StreamKind::Outlier30:
        return outlierValues(count, 0.30, rng);
      case StreamKind::Zipf:
        return zipfValues(count, rng);
    }
    return {};
}

double
compressionRatio(const std::vector<std::uint32_t> &values,
                 compress::Scheme s)
{
    const compress::Codec &codec = compress::codecFor(s);
    compress::BlockEncoding enc;
    std::uint64_t compressed = 0;
    for (std::size_t begin = 0; begin < values.size();
         begin += kBlockSize) {
        std::size_t count =
            std::min<std::size_t>(kBlockSize, values.size() - begin);
        std::span<const std::uint32_t> block(values.data() + begin,
                                             count);
        if (!codec.encode(block, enc))
            return 0.0;
        compressed += enc.bytes.size();
    }
    if (compressed == 0)
        return 0.0;
    return static_cast<double>(values.size() * 4) /
           static_cast<double>(compressed);
}

double
hybridCompressionRatio(const std::vector<std::uint32_t> &values)
{
    compress::BlockEncoding best;
    std::uint64_t compressed = 0;
    for (std::size_t begin = 0; begin < values.size();
         begin += kBlockSize) {
        std::size_t count =
            std::min<std::size_t>(kBlockSize, values.size() - begin);
        std::span<const std::uint32_t> block(values.data() + begin,
                                             count);
        compress::pickBestScheme(block, best);
        compressed += best.bytes.size();
    }
    if (compressed == 0)
        return 0.0;
    return static_cast<double>(values.size() * 4) /
           static_cast<double>(compressed);
}

} // namespace boss::workload
