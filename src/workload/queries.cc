#include "workload/queries.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "common/logging.h"

namespace boss::workload
{

std::string
Query::toExpression() const
{
    auto quote = [](TermId t) {
        return "\"t" + std::to_string(t) + "\"";
    };
    std::ostringstream oss;
    switch (type) {
      case QueryType::Q1:
        oss << quote(terms[0]);
        break;
      case QueryType::Q2:
        oss << quote(terms[0]) << " AND " << quote(terms[1]);
        break;
      case QueryType::Q3:
        oss << quote(terms[0]) << " OR " << quote(terms[1]);
        break;
      case QueryType::Q4:
        oss << quote(terms[0]) << " AND " << quote(terms[1]) << " AND "
            << quote(terms[2]) << " AND " << quote(terms[3]);
        break;
      case QueryType::Q5:
        oss << quote(terms[0]) << " OR " << quote(terms[1]) << " OR "
            << quote(terms[2]) << " OR " << quote(terms[3]);
        break;
      case QueryType::Q6:
        oss << quote(terms[0]) << " AND (" << quote(terms[1]) << " OR "
            << quote(terms[2]) << " OR " << quote(terms[3]) << ")";
        break;
    }
    return oss.str();
}

namespace
{

/**
 * Draw a term rank log-uniformly over [0, vocab) with a bias toward
 * popular terms: TREC Terabyte queries are dominated by common
 * English words (large posting lists) with a tail of rare entities,
 * which a popularity-biased log-uniform rank mix captures.
 */
TermId
sampleTerm(Rng &rng, std::uint32_t vocab)
{
    double logMax = std::log(static_cast<double>(vocab));
    double u = std::pow(rng.uniform(), 1.7); // bias toward rank 0
    auto t = static_cast<TermId>(std::exp(u * logMax)) - 1;
    return std::min(t, vocab - 1);
}

/**
 * Sample @p n distinct terms for one query. The first term's rank
 * anchors the query's topic specificity; the rest stay within a few
 * octaves of it -- query terms are topically related, so their
 * document frequencies are correlated, not independent draws.
 */
std::vector<TermId>
sampleTerms(Rng &rng, std::uint32_t vocab, std::uint32_t n)
{
    std::set<TermId> picked;
    double anchor =
        static_cast<double>(sampleTerm(rng, vocab)) + 1.0;
    picked.insert(static_cast<TermId>(anchor) - 1);
    while (picked.size() < n) {
        double r = anchor * std::exp(rng.normal(0.0, 0.8));
        r = std::min(r, static_cast<double>(vocab));
        auto t = static_cast<TermId>(r) - (r >= 1.0 ? 1 : 0);
        picked.insert(std::min(t, vocab - 1));
    }
    return {picked.begin(), picked.end()};
}

} // namespace

std::vector<Query>
makeWorkload(const QueryWorkloadConfig &config)
{
    BOSS_ASSERT(config.vocabSize >= 8, "vocabulary too small");
    Rng rng(config.seed);
    std::vector<Query> out;
    out.reserve(config.queriesPerBucket * 3);

    for (std::uint32_t i = 0; i < config.queriesPerBucket; ++i) {
        Query q;
        q.type = QueryType::Q1;
        q.terms = sampleTerms(rng, config.vocabSize, 1);
        out.push_back(std::move(q));
    }
    for (std::uint32_t i = 0; i < config.queriesPerBucket; ++i) {
        Query q;
        q.type = rng.chance(0.5) ? QueryType::Q2 : QueryType::Q3;
        q.terms = sampleTerms(rng, config.vocabSize, 2);
        out.push_back(std::move(q));
    }
    for (std::uint32_t i = 0; i < config.queriesPerBucket; ++i) {
        Query q;
        switch (rng.below(3)) {
          case 0: q.type = QueryType::Q4; break;
          case 1: q.type = QueryType::Q5; break;
          default: q.type = QueryType::Q6; break;
        }
        q.terms = sampleTerms(rng, config.vocabSize, 4);
        out.push_back(std::move(q));
    }
    return out;
}

std::vector<Query>
sampleQueries(const QueryWorkloadConfig &config, std::size_t count)
{
    BOSS_ASSERT(config.vocabSize >= 8, "vocabulary too small");
    std::vector<Query> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        // Split seeds, not shared state: each slot's stream is a
        // pure function of (seed, i), so any subset of slots can be
        // generated in any order — or on any worker — and agree with
        // a serial front-to-back pass bit-for-bit.
        Rng rng(splitSeed(config.seed, i));
        Query q;
        q.type = kAllQueryTypes[rng.below(kAllQueryTypes.size())];
        q.terms = sampleTerms(rng, config.vocabSize,
                              queryTypeTerms(q.type));
        out.push_back(std::move(q));
    }
    return out;
}

std::vector<Query>
filterByType(const std::vector<Query> &all, QueryType t)
{
    std::vector<Query> out;
    for (const auto &q : all) {
        if (q.type == t)
            out.push_back(q);
    }
    return out;
}

std::vector<TermId>
collectTerms(const std::vector<Query> &all)
{
    std::set<TermId> terms;
    for (const auto &q : all)
        terms.insert(q.terms.begin(), q.terms.end());
    return {terms.begin(), terms.end()};
}

} // namespace boss::workload
