/**
 * @file
 * Synthetic web-corpus generator.
 *
 * Stands in for the paper's ClueWeb12 and CC-News datasets. The
 * generator controls exactly the properties the algorithms under
 * study are sensitive to: posting-list length distribution (Zipfian
 * document frequency over the vocabulary), docID locality (bursty
 * two-state placement so block skipping has realistic structure),
 * term-frequency skew (geometric), and document-length spread
 * (log-normal-ish around the preset mean).
 */

#ifndef BOSS_WORKLOAD_CORPUS_H
#define BOSS_WORKLOAD_CORPUS_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "index/inverted_index.h"
#include "index/sharding.h"

namespace boss::workload
{

/**
 * Corpus shape parameters.
 */
struct CorpusConfig
{
    std::string name = "corpus";
    std::uint32_t numDocs = 100'000;
    std::uint32_t vocabSize = 50'000;
    double dfSkew = 0.8;       ///< Zipf exponent of document frequency
    double maxDfFraction = 0.1; ///< df of the most common term / numDocs
    double burstiness = 0.5;   ///< 0 = uniform docIDs, 1 = very bursty
    std::uint32_t avgDocLen = 300;
    std::uint64_t seed = 42;
};

/** Preset approximating ClueWeb12: bigger docs, larger vocabulary. */
CorpusConfig clueWebConfig();

/** Preset approximating CC-News: shorter news articles. */
CorpusConfig ccNewsConfig();

/**
 * A synthetic corpus. Posting lists are generated deterministically
 * per term so two runs with the same config agree exactly.
 */
class Corpus
{
  public:
    explicit Corpus(CorpusConfig config);

    const CorpusConfig &config() const { return config_; }

    /** Per-document token counts. */
    const std::vector<std::uint32_t> &docLengths() const
    {
        return docLengths_;
    }

    /** Expected document frequency of term @p t (before sampling). */
    std::uint32_t expectedDf(TermId t) const;

    /**
     * Generate term @p t's posting list. Deterministic in (seed, t).
     */
    index::PostingList postings(TermId t) const;

    /**
     * Build an index over a set of terms (only those lists are
     * materialized; all other TermIds get empty lists). Scheme
     * selection is hybrid unless @p forced is provided.
     */
    index::InvertedIndex
    buildIndex(const std::vector<TermId> &terms,
               const std::optional<compress::Scheme> &forced = {}) const;

    /**
     * Build the same index document-partitioned across @p numShards
     * devices. Generation is reproducible regardless of build order
     * or parallelism: every posting list comes from its own stream
     * keyed by (corpus seed, term) — never from generator state
     * shared across shards — and the shard builders place results by
     * shard slot. The merged search results over these shards are
     * bit-identical to buildIndex's.
     */
    index::IndexShards
    buildShardedIndex(
        const std::vector<TermId> &terms, std::uint32_t numShards,
        const std::optional<compress::Scheme> &forced = {}) const;

  private:
    CorpusConfig config_;
    std::vector<std::uint32_t> docLengths_;
};

} // namespace boss::workload

#endif // BOSS_WORKLOAD_CORPUS_H
