/**
 * @file
 * Synthetic integer streams for the compression-ratio experiment
 * (paper Fig. 3). Seven stream kinds, mirroring the paper's setup:
 * uniform sparse/dense (docID-like streams over 2^28 / 2^26 ranges,
 * sorted and delta-encoded), clustered variants, outlier streams
 * (normal with mean 2^5, sd 20, plus 10%/30% outliers), and a
 * Zipf-distributed stream.
 */

#ifndef BOSS_WORKLOAD_SYNTHETIC_STREAMS_H
#define BOSS_WORKLOAD_SYNTHETIC_STREAMS_H

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "compress/scheme.h"

namespace boss::workload
{

enum class StreamKind : std::uint8_t
{
    UniformSparse, ///< sorted uniform picks over [0, 2^28), d-gaps
    UniformDense,  ///< sorted uniform picks over [0, 2^26), d-gaps
    ClusterSparse, ///< clustered picks over [0, 2^28), d-gaps
    ClusterDense,  ///< clustered picks over [0, 2^26), d-gaps
    Outlier10,     ///< normal(32, 20) values, 10% large outliers
    Outlier30,     ///< normal(32, 20) values, 30% large outliers
    Zipf,          ///< values following Zipf's law
};

inline constexpr std::array<StreamKind, 7> kAllStreams = {
    StreamKind::UniformSparse, StreamKind::UniformDense,
    StreamKind::ClusterSparse, StreamKind::ClusterDense,
    StreamKind::Outlier10,     StreamKind::Outlier30,
    StreamKind::Zipf,
};

constexpr std::string_view
streamName(StreamKind k)
{
    switch (k) {
      case StreamKind::UniformSparse: return "uniform-sparse";
      case StreamKind::UniformDense: return "uniform-dense";
      case StreamKind::ClusterSparse: return "cluster-sparse";
      case StreamKind::ClusterDense: return "cluster-dense";
      case StreamKind::Outlier10: return "outlier-10";
      case StreamKind::Outlier30: return "outlier-30";
      case StreamKind::Zipf: return "zipf";
    }
    return "?";
}

/**
 * Generate a stream of @p count integers of the given kind.
 *
 * DocID-like kinds return d-gaps ready for compression; value-like
 * kinds (outlier, zipf) return the values themselves, exactly as a
 * tf stream would be compressed.
 */
std::vector<std::uint32_t> makeStream(StreamKind kind, std::size_t count,
                                      std::uint64_t seed);

/**
 * Compression ratio of @p values under scheme @p s: raw 4B-per-value
 * size divided by compressed size (block size 128). Returns 0 when
 * the scheme cannot encode some block.
 */
double compressionRatio(const std::vector<std::uint32_t> &values,
                        compress::Scheme s);

/** Ratio for the hybrid best-per-block choice. */
double hybridCompressionRatio(const std::vector<std::uint32_t> &values);

} // namespace boss::workload

#endif // BOSS_WORKLOAD_SYNTHETIC_STREAMS_H
