/**
 * @file
 * Query workload: the paper's six query types (Table II) and the
 * TREC-like sampler that draws 100 queries per term-count bucket
 * with random type assignment, exactly as in Sec. V-A.
 */

#ifndef BOSS_WORKLOAD_QUERIES_H
#define BOSS_WORKLOAD_QUERIES_H

#include <array>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace boss::workload
{

/** Query types per the paper's Table II. */
enum class QueryType : std::uint8_t
{
    Q1, ///< 1 term:  A
    Q2, ///< 2 terms: A AND B
    Q3, ///< 2 terms: A OR B
    Q4, ///< 4 terms: A AND B AND C AND D
    Q5, ///< 4 terms: A OR B OR C OR D
    Q6, ///< 4 terms: A AND (B OR C OR D)
};

inline constexpr std::array<QueryType, 6> kAllQueryTypes = {
    QueryType::Q1, QueryType::Q2, QueryType::Q3,
    QueryType::Q4, QueryType::Q5, QueryType::Q6,
};

constexpr std::string_view
queryTypeName(QueryType t)
{
    switch (t) {
      case QueryType::Q1: return "Q1";
      case QueryType::Q2: return "Q2";
      case QueryType::Q3: return "Q3";
      case QueryType::Q4: return "Q4";
      case QueryType::Q5: return "Q5";
      case QueryType::Q6: return "Q6";
    }
    return "?";
}

/** Number of terms used by a query type. */
constexpr std::uint32_t
queryTypeTerms(QueryType t)
{
    switch (t) {
      case QueryType::Q1: return 1;
      case QueryType::Q2:
      case QueryType::Q3: return 2;
      case QueryType::Q4:
      case QueryType::Q5:
      case QueryType::Q6: return 4;
    }
    return 0;
}

/**
 * One benchmark query: a type plus its terms.
 */
struct Query
{
    QueryType type = QueryType::Q1;
    std::vector<TermId> terms;

    /**
     * Render as an offloading-API expression string, e.g.
     * Q6 -> "\"t3\" AND (\"t7\" OR \"t9\" OR \"t12\")".
     */
    std::string toExpression() const;
};

/**
 * Workload sampler configuration.
 */
struct QueryWorkloadConfig
{
    std::uint32_t vocabSize = 50'000;
    std::uint32_t queriesPerBucket = 100; ///< paper: 100 x {1,2,4}-term
    std::uint64_t seed = 7;
};

/**
 * Sample the full workload: queriesPerBucket 1-term, 2-term and
 * 4-term queries with types assigned randomly within each bucket.
 * Term ranks are drawn log-uniformly over the vocabulary, matching
 * the mid-to-high-frequency mix of TREC Terabyte Track queries.
 */
std::vector<Query> makeWorkload(const QueryWorkloadConfig &config);

/**
 * Sample @p count queries with uniformly random types, one
 * independent RNG stream per query slot.
 *
 * Unlike makeWorkload — which advances one shared generator, so
 * query i depends on every draw before it — query i here is seeded
 * via splitSeed(config.seed, i): sampling is reproducible regardless
 * of the order (or parallelism, or partial ranges) in which slots
 * are generated. Sharded benches and the differential tests use this
 * so per-shard or per-worker query generation never shares state.
 */
std::vector<Query> sampleQueries(const QueryWorkloadConfig &config,
                                 std::size_t count);

/** All queries of one type from a workload. */
std::vector<Query> filterByType(const std::vector<Query> &all,
                                QueryType t);

/** The distinct terms referenced by a workload. */
std::vector<TermId> collectTerms(const std::vector<Query> &all);

} // namespace boss::workload

#endif // BOSS_WORKLOAD_QUERIES_H
