/**
 * @file
 * Area, power and energy model (paper Table III / Fig. 17).
 *
 * The paper synthesizes BOSS's Chisel RTL with Synopsys DC at TSMC
 * 40 nm; RTL synthesis is not reproducible offline, so the per-module
 * area/power numbers from Table III are model constants here. Energy
 * is power x simulated runtime, which is exactly the arithmetic
 * behind the paper's headline: 23.3x lower power and ~8.1x higher
 * throughput compound to ~189x lower energy.
 */

#ifndef BOSS_POWER_POWER_H
#define BOSS_POWER_POWER_H

#include <cstdint>
#include <string_view>
#include <vector>

#include "model/system.h"

namespace boss::power
{

/** One row of the Table III breakdown. */
struct ModuleCost
{
    std::string_view name;
    std::uint32_t count;  ///< instances (per core or per device)
    double areaMm2;       ///< per instance? no: total of all instances
    double powerMw;       ///< total of all instances
};

/** Per-core module breakdown (Table III, bottom). */
const std::vector<ModuleCost> &bossCoreBreakdown();

/** Device-level breakdown (Table III, top). */
const std::vector<ModuleCost> &bossDeviceBreakdown();

/** Total area of one BOSS core (paper: ~1.003 mm^2). */
double bossCoreAreaMm2();
/** Total power of one BOSS core (paper: ~406.6 mW). */
double bossCorePowerMw();
/** Total device area with 8 cores (paper: ~8.27 mm^2). */
double bossDeviceAreaMm2();
/** Total device power with 8 cores (paper: ~3.2 W). */
double bossDevicePowerW();

/** Host CPU package power (paper: 74.8 W via Intel SoC Watch). */
inline constexpr double kCpuPackagePowerW = 74.8;

/** Average power draw of a system configuration, in watts. */
double systemPowerW(model::SystemKind kind, std::uint32_t cores);

/** Energy in joules for a run of @p seconds on @p kind. */
double energyJoules(model::SystemKind kind, std::uint32_t cores,
                    double seconds);

} // namespace boss::power

#endif // BOSS_POWER_POWER_H
