#include "power/power.h"

#include "common/logging.h"

namespace boss::power
{

const std::vector<ModuleCost> &
bossCoreBreakdown()
{
    // Paper Table III (per BOSS core). Area/power columns are the
    // totals over all instances of a module within one core.
    static const std::vector<ModuleCost> rows = {
        {"block_fetch", 1, 0.108, 10.5},
        {"decompression", 4, 0.093, 43.0},
        {"intersection", 1, 0.003, 0.49},
        {"union", 1, 0.011, 5.55},
        {"scoring", 4, 0.464, 200.0},
        {"topk", 1, 0.324, 147.1},
    };
    return rows;
}

const std::vector<ModuleCost> &
bossDeviceBreakdown()
{
    static const std::vector<ModuleCost> rows = {
        {"boss_cores", 8, 8.024, 3200.0},
        {"command_queue", 1, 0.078, 0.078},
        {"query_scheduler", 1, 0.001, 1.96},
        {"mai_tlb", 1, 0.127, 1.20},
    };
    return rows;
}

double
bossCoreAreaMm2()
{
    double total = 0.0;
    for (const auto &m : bossCoreBreakdown())
        total += m.areaMm2;
    return total;
}

double
bossCorePowerMw()
{
    double total = 0.0;
    for (const auto &m : bossCoreBreakdown())
        total += m.powerMw;
    return total;
}

double
bossDeviceAreaMm2()
{
    double total = 0.0;
    for (const auto &m : bossDeviceBreakdown())
        total += m.areaMm2;
    return total;
}

double
bossDevicePowerW()
{
    double total = 0.0;
    for (const auto &m : bossDeviceBreakdown())
        total += m.powerMw;
    return total / 1000.0;
}

double
systemPowerW(model::SystemKind kind, std::uint32_t cores)
{
    switch (kind) {
      case model::SystemKind::Lucene:
        // Package power scales weakly with active cores; the paper
        // measures the full package with 8 active cores.
        return kCpuPackagePowerW *
               (0.4 + 0.6 * static_cast<double>(cores) / 8.0);
      case model::SystemKind::Iiu:
      case model::SystemKind::Boss:
      case model::SystemKind::BossExhaustive:
      case model::SystemKind::BossBlockOnly: {
        double uncore = 0.0;
        for (const auto &m : bossDeviceBreakdown()) {
            if (m.name != "boss_cores")
                uncore += m.powerMw;
        }
        return (uncore + static_cast<double>(cores) *
                             bossCorePowerMw()) /
               1000.0;
      }
    }
    BOSS_PANIC("unknown system kind");
}

double
energyJoules(model::SystemKind kind, std::uint32_t cores,
             double seconds)
{
    return systemPowerW(kind, cores) * seconds;
}

} // namespace boss::power
