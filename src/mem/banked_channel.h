/**
 * @file
 * Bank-level channel timing (the DRAMSim2 role in the paper's
 * methodology).
 *
 * The default MemorySystem charges rate-based service times, which
 * is what the evaluation's calibrated numbers use. This model adds
 * the microarchitectural layer underneath for DRAM-style devices:
 * banks with open-row buffers, tRCD/tRP/tCL activation timing, and
 * a shared data bus per channel. It is used by the banked
 * configuration presets and by the model-validation ablation that
 * checks the rate-based abstraction against it.
 */

#ifndef BOSS_MEM_BANKED_CHANNEL_H
#define BOSS_MEM_BANKED_CHANNEL_H

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "stats/stats.h"

namespace boss::mem
{

/** DRAM-style bank timing parameters (picoseconds). */
struct BankTiming
{
    std::uint32_t banks = 16;      ///< banks per channel
    std::uint32_t rowBytes = 8192; ///< row-buffer size
    Tick tRCD = 14'160; ///< activate -> column command
    Tick tRP = 14'160;  ///< precharge
    Tick tCL = 14'160;  ///< column access latency
    Tick tBL = 3'000;   ///< data-bus occupancy per 64B burst
};

/** DDR4-2666-like timing. */
inline BankTiming
ddr4BankTiming()
{
    return BankTiming{};
}

/**
 * One channel with open-page banks and a shared data bus.
 */
class BankedChannel
{
  public:
    explicit BankedChannel(BankTiming timing)
        : timing_(timing), banks_(timing.banks)
    {}

    /**
     * Service a burst-sized access to @p addr issued at @p now;
     * returns the data-completion tick. Column commands pipeline
     * (tCL overlaps across consecutive bursts); only activation and
     * the shared data bus serialize. Larger requests should be split
     * into 64B bursts by the caller, all issued at the request time.
     */
    Tick
    access(Tick now, Addr addr, bool write)
    {
        (void)write; // reads and writes share timing in this model
        std::uint64_t row = addr / timing_.rowBytes;
        std::size_t b = static_cast<std::size_t>(
            row % banks_.size());
        Bank &bank = banks_[b];

        Tick start = std::max(now, bank.readyAt);
        Tick columnIssue;
        if (bank.openRow == row && bank.rowValid) {
            ++rowHits_;
            columnIssue = start;
        } else {
            ++rowMisses_;
            Tick precharge = bank.rowValid ? timing_.tRP : 0;
            columnIssue = start + precharge + timing_.tRCD;
            bank.openRow = row;
            bank.rowValid = true;
        }
        // The bank accepts the next column command one burst later;
        // the access latency tCL overlaps with other commands.
        bank.readyAt = columnIssue + timing_.tBL;

        Tick dataStart =
            std::max(columnIssue + timing_.tCL, busReadyAt_);
        Tick done = dataStart + timing_.tBL;
        busReadyAt_ = done;
        busy_ += timing_.tBL;
        return done;
    }

    std::uint64_t rowHits() const { return rowHits_.value(); }
    std::uint64_t rowMisses() const { return rowMisses_.value(); }
    Tick busyTicks() const { return busy_; }

    void
    registerStats(stats::Group &group)
    {
        group.addCounter("row_hits", &rowHits_, "row-buffer hits");
        group.addCounter("row_misses", &rowMisses_,
                         "row-buffer misses");
    }

  private:
    struct Bank
    {
        Tick readyAt = 0;
        std::uint64_t openRow = 0;
        bool rowValid = false;
    };

    BankTiming timing_;
    std::vector<Bank> banks_;
    Tick busReadyAt_ = 0;
    Tick busy_ = 0;
    stats::Counter rowHits_;
    stats::Counter rowMisses_;
};

} // namespace boss::mem

#endif // BOSS_MEM_BANKED_CHANNEL_H
