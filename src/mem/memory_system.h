/**
 * @file
 * Event-driven channelized memory model.
 *
 * Requests are routed to channels by address interleave; each
 * channel serializes service at the configured bandwidth, detecting
 * per-requestor sequentiality (a request that continues the same
 * requestor's previous stream gets the sequential rate and latency;
 * anything else pays the random-access penalty -- the property that
 * makes IIU's binary-search intersection slow on SCM).
 *
 * Optionally, all traffic first crosses a shared host link
 * (bandwidth + latency), modeling a host-side consumer such as the
 * Lucene baseline reading the pooled memory over CXL.
 */

#ifndef BOSS_MEM_MEMORY_SYSTEM_H
#define BOSS_MEM_MEMORY_SYSTEM_H

#include <functional>
#include <unordered_map>
#include <vector>

#include "mem/banked_channel.h"
#include "mem/config.h"
#include "mem/fault_model.h"
#include "sim/sim_object.h"
#include "trace/recorder.h"

namespace boss::mem
{

/** Traffic categories, matching the paper's Fig. 15 breakdown. */
enum class Category : std::uint8_t
{
    LdList,   ///< posting-list (doc payload + metadata) loads
    LdScore,  ///< tf payload + per-doc norm loads
    LdInter,  ///< intermediate-list loads (IIU spills)
    StInter,  ///< intermediate-list stores
    StResult, ///< result stores to the host
};

inline constexpr std::size_t kNumCategories = 5;

constexpr std::string_view
categoryName(Category c)
{
    switch (c) {
      case Category::LdList: return "LD_List";
      case Category::LdScore: return "LD_Score";
      case Category::LdInter: return "LD_Inter";
      case Category::StInter: return "ST_Inter";
      case Category::StResult: return "ST_Result";
    }
    return "?";
}

/** One memory request. */
struct MemRequest
{
    Addr addr = 0;
    std::uint32_t bytes = 0;
    bool write = false;
    /** Force the random-access penalty (e.g. scattered norm reads). */
    bool forceRandom = false;
    /** Requestor id for per-stream sequentiality tracking. */
    std::uint32_t requestor = 0;
    /**
     * Stream class within the requestor (doc payload, tf payload,
     * norm sidecar, metadata, ...). The MAI/media prefetch buffers
     * track each class's forward stream independently.
     */
    std::uint8_t stream = 0;
    Category category = Category::LdList;
};

/**
 * The shared host link: a single serialized resource.
 */
class HostLink : public sim::SimObject
{
  public:
    HostLink(const std::string &name, sim::EventQueue &eq,
             stats::Group &parent, LinkConfig config);

    /**
     * Occupy the link for @p bytes starting no earlier than @p start.
     * Returns the tick at which the transfer completes.
     */
    Tick transfer(Tick start, std::uint64_t bytes);

    std::uint64_t bytesTransferred() const { return bytes_.value(); }

  private:
    LinkConfig config_;
    Tick nextFree_ = 0;
    stats::Counter transfers_;
    stats::Counter bytes_;
};

/**
 * The channelized device model.
 */
class MemorySystem : public sim::SimObject
{
  public:
    /**
     * @param link optional host link all traffic must cross first
     *             (nullptr for near-data access).
     */
    MemorySystem(const std::string &name, sim::EventQueue &eq,
                 stats::Group &parent, MemConfig config,
                 HostLink *link = nullptr);

    /**
     * Issue a request at the current event time. Returns the
     * completion tick and optionally schedules @p cb there.
     */
    Tick access(const MemRequest &req,
                std::function<void()> cb = nullptr);

    const MemConfig &config() const { return config_; }

    /** Total bytes moved in a category. */
    std::uint64_t categoryBytes(Category c) const
    {
        return catBytes_[static_cast<std::size_t>(c)].value();
    }
    /** Total accesses in a category. */
    std::uint64_t categoryAccesses(Category c) const
    {
        return catAccesses_[static_cast<std::size_t>(c)].value();
    }

    std::uint64_t totalBytes() const;
    std::uint64_t sequentialAccesses() const { return seqAcc_.value(); }
    std::uint64_t randomAccesses() const { return randAcc_.value(); }

    /** Aggregate channel busy time (for utilization accounting). */
    Tick busyTicks() const;

    /** Row-buffer statistics (banked model only; 0 otherwise). */
    std::uint64_t rowHits() const;
    std::uint64_t rowMisses() const;

    /**
     * Attach a fault model: reads landing on media lines the model
     * marks degraded pay the model's extra latency (SCM media retry
     * and remap). nullptr detaches (the default, zero overhead).
     */
    void setFaults(const FaultModel *faults) { faults_ = faults; }

    /** Reads served at degraded media latency. */
    std::uint64_t degradedReads() const { return degradedReads_.value(); }

    void resetStats();

    /**
     * Attach an event recorder: every serviced chunk becomes a span
     * on its channel's lane (@p chanLanes must have one lane per
     * channel), named after its traffic category. Pass a null scope
     * to detach.
     */
    void setTrace(trace::Scope scope,
                  std::vector<std::uint16_t> chanLanes);

  private:
    struct Channel
    {
        Tick nextFree = 0;
        Tick busy = 0;
    };

    MemConfig config_;
    HostLink *link_;
    const FaultModel *faults_ = nullptr;
    std::vector<Channel> channels_;
    /** Bank-level channels (only when config.banked). */
    std::vector<BankedChannel> bankedChannels_;
    /** (requestor, class) -> end address of that access stream. */
    std::unordered_map<std::uint64_t, Addr> streamEnd_;
    /** Ring of recent stream keys (device buffer contention). */
    std::array<std::uint64_t, 64> recentStreams_{};
    std::size_t recentPos_ = 0;

    stats::Counter reads_;
    stats::Counter writes_;
    stats::Counter seqAcc_;
    stats::Counter randAcc_;
    stats::Counter degradedReads_;
    stats::Counter catBytes_[kNumCategories];
    stats::Counter catAccesses_[kNumCategories];
    /** End-to-end request latency (issue to completion), ns.
     *  Log-bucketed: 10ns..1ms keeps tail resolution under load. */
    stats::Histogram reqLatencyNs_{10.0, 1e6, 80, stats::Scale::Log};
    /** Channel backlog seen at chunk issue (queueing delay), ns. */
    stats::Histogram chanBacklogNs_{10.0, 1e6, 80, stats::Scale::Log};

    trace::Scope traceScope_;
    std::vector<std::uint16_t> chanLanes_;
};

} // namespace boss::mem

#endif // BOSS_MEM_MEMORY_SYSTEM_H
