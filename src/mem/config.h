/**
 * @file
 * Memory-device timing configurations.
 *
 * The SCM preset models Intel Optane DCPMM per the measurements the
 * paper cites ([36], [70]): 25.6 GB/s sequential read, 6.6 GB/s
 * random read and 2.3 GB/s write across 4 channels, with ~3x DRAM
 * read latency and a 256 B internal access granule. The DRAM preset
 * models the paper's DDR4-2666 x 4-channel comparison point
 * (85.2 GB/s total).
 */

#ifndef BOSS_MEM_CONFIG_H
#define BOSS_MEM_CONFIG_H

#include <cstdint>
#include <string>

#include "common/types.h"
#include "mem/banked_channel.h"

namespace boss::mem
{

/** Per-channel timing parameters. */
struct ChannelTiming
{
    double seqReadGBs = 6.4;   ///< sequential read BW per channel
    double randReadGBs = 1.65; ///< random read BW per channel
    double writeGBs = 0.575;   ///< write BW per channel
    Tick seqReadLatency = 170'000;  ///< ps (~170 ns)
    Tick randReadLatency = 305'000; ///< ps (~305 ns)
    Tick writeLatency = 95'000;     ///< ps
    /**
     * Internal media line (Optane XPLine: 256 B). Used for layout
     * alignment and access coalescing.
     */
    std::uint32_t granule = 256;
    /**
     * Bus transfer unit (DDR-T / DDR4: 64 B). Service time is
     * charged per unit; the measured random bandwidth already
     * includes the media's internal read amplification.
     */
    std::uint32_t serviceUnit = 64;
};

/** Whole-device configuration. */
struct MemConfig
{
    std::string name = "scm";
    std::uint32_t channels = 4;
    std::uint32_t interleave = 4096; ///< channel interleave bytes
    /**
     * Number of concurrent access streams the device's internal
     * prefetch/combine buffers can track. Requests from untracked
     * streams pay the random-access rate -- this is what makes many
     * cores thrash an SCM device long before its sequential peak.
     */
    std::uint32_t streamTableSize = 16;
    ChannelTiming timing;
    /**
     * Use the bank-level channel model instead of rate-based service
     * (DRAM-style devices; the DRAMSim2 role).
     */
    bool banked = false;
    BankTiming bank;

    double
    totalSeqReadGBs() const
    {
        return timing.seqReadGBs * channels;
    }
};

/** Optane-like SCM: 25.6 / 6.6 / 2.3 GB/s over 4 channels. */
inline MemConfig
scmConfig()
{
    MemConfig c;
    c.name = "scm";
    c.channels = 4;
    c.timing = ChannelTiming{};
    return c;
}

/** DDR4-2666 x4: 85.2 GB/s seq, ~3x lower latency than SCM. */
inline MemConfig
dramConfig()
{
    MemConfig c;
    c.name = "dram";
    c.channels = 4;
    ChannelTiming t;
    t.seqReadGBs = 21.3;
    // Random 64B reads: bank conflicts and row misses cap DDR4 well
    // below peak; ~8 GB/s per channel is a realistic sustained rate.
    t.randReadGBs = 8.0;
    t.writeGBs = 19.2;
    t.seqReadLatency = 60'000;
    t.randReadLatency = 95'000;
    t.writeLatency = 60'000;
    t.granule = 64;
    c.timing = t;
    return c;
}

/** DDR4-2666 x4 with the bank-level channel model. */
inline MemConfig
dramBankedConfig()
{
    MemConfig c = dramConfig();
    c.name = "dram-banked";
    c.banked = true;
    c.bank = ddr4BankTiming();
    return c;
}

/**
 * Shared host interconnect (CXL-like): fixed bandwidth and latency
 * between the memory pool and the host CPU (paper Sec. II-C: e.g.
 * 64 GB/s for a single CXL link).
 */
struct LinkConfig
{
    double bandwidthGBs = 64.0;
    Tick latency = 400'000; ///< ps (~400 ns one-way including protocol)
};

} // namespace boss::mem

#endif // BOSS_MEM_CONFIG_H
