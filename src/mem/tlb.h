/**
 * @file
 * The Memory Access Interface's local TLB (paper Sec. IV-D).
 *
 * With 2 GB huge pages and 1 K entries the TLB covers the node's
 * entire 2 TB physical space, so in the paper's configuration it
 * never misses; the model still implements LRU replacement so tests
 * (and ablations with small pages) can exercise miss behavior.
 */

#ifndef BOSS_MEM_TLB_H
#define BOSS_MEM_TLB_H

#include <cstdint>
#include <list>
#include <unordered_map>

#include "common/types.h"
#include "stats/stats.h"

namespace boss::mem
{

class Tlb
{
  public:
    /**
     * @param entries number of TLB entries (paper: 1024)
     * @param pageBits log2 of the page size (paper: 31 -> 2 GB)
     */
    Tlb(std::uint32_t entries, std::uint32_t pageBits)
        : entries_(entries), pageBits_(pageBits)
    {}

    /**
     * Translate @p vaddr. Returns true on a hit; on a miss the page
     * is installed (LRU eviction).
     */
    bool
    translate(Addr vaddr)
    {
        Addr vpn = vaddr >> pageBits_;
        auto it = map_.find(vpn);
        if (it != map_.end()) {
            ++hits_;
            lru_.splice(lru_.begin(), lru_, it->second);
            return true;
        }
        ++misses_;
        if (map_.size() >= entries_) {
            map_.erase(lru_.back());
            lru_.pop_back();
        }
        lru_.push_front(vpn);
        map_[vpn] = lru_.begin();
        return false;
    }

    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }

    void
    registerStats(stats::Group &group)
    {
        group.addCounter("tlb_hits", &hits_, "MAI TLB hits");
        group.addCounter("tlb_misses", &misses_, "MAI TLB misses");
    }

  private:
    std::uint32_t entries_;
    std::uint32_t pageBits_;
    std::unordered_map<Addr, std::list<Addr>::iterator> map_;
    std::list<Addr> lru_;
    stats::Counter hits_;
    stats::Counter misses_;
};

} // namespace boss::mem

#endif // BOSS_MEM_TLB_H
