/**
 * @file
 * Sharded DRAM block cache over the SCM pool.
 *
 * The out-of-core tier keeps the index resident in (modeled) SCM and
 * interposes a small DRAM cache of hot posting blocks: a lookup that
 * hits is serviced at DRAM bandwidth/latency, a miss is serviced by
 * the SCM device and the block is admitted. The cache holds block
 * *placement* only -- payload bytes stay where the engine already
 * reads them (heap or mmap); what is cached is the decision of which
 * memory device services a block's traffic, which is all the timing
 * model needs.
 *
 * Replacement is CLOCK (second-chance) per shard: a hit sets the
 * entry's reference bit; eviction sweeps a ring, clearing reference
 * bits until it finds an unreferenced, unpinned victim. Entries are
 * pinned for the duration of the modeled fetch (access() pins,
 * unpin() releases) so an in-flight block can never be evicted under
 * the requestor. With one shard the policy is fully deterministic,
 * which the replacement tests rely on.
 *
 * Thread safety: each shard has its own mutex; global counters are
 * atomic. hits + misses == lookups holds at any quiescent point
 * (bypasses are a subset of misses), which the telemetry reconcile
 * check (tools/metrics_check.py) enforces end to end.
 */

#ifndef BOSS_MEM_BLOCK_CACHE_H
#define BOSS_MEM_BLOCK_CACHE_H

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace boss::mem
{

struct BlockCacheConfig
{
    /** Total DRAM budget across all shards. */
    std::uint64_t capacityBytes = 64ull << 20;
    /** Lock shards (1 => fully deterministic replacement). */
    std::uint32_t shards = 8;
};

class BlockCache
{
  public:
    enum class Outcome : std::uint8_t
    {
        Hit,      ///< block cached; serve from DRAM (pinned)
        Inserted, ///< miss; fetch from SCM, now admitted (pinned)
        Bypass,   ///< miss; not admitted (too large / all pinned)
    };

    /** Counter snapshot. hits + misses == lookups; bypasses <= misses. */
    struct Stats
    {
        std::uint64_t lookups = 0;
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
        std::uint64_t bypasses = 0;
    };

    explicit BlockCache(BlockCacheConfig config);

    /**
     * Look up the block at @p addr (@p bytes long). Hit and Inserted
     * leave the entry pinned: call unpin(addr) once the modeled
     * fetch completes. Bypass pins nothing.
     */
    Outcome access(Addr addr, std::uint32_t bytes);

    /** Release one pin taken by access(). */
    void unpin(Addr addr);

    /** Is the block resident? (test/introspection; takes the lock) */
    bool contains(Addr addr) const;

    Stats stats() const;
    std::uint64_t capacityBytes() const { return config_.capacityBytes; }
    std::uint32_t numShards() const
    {
        return static_cast<std::uint32_t>(shards_.size());
    }
    /** Resident bytes across shards (racy snapshot under load). */
    std::uint64_t usedBytes() const;

  private:
    struct Entry
    {
        std::uint32_t bytes = 0;
        std::uint32_t pins = 0;
        bool ref = false;
        std::list<Addr>::iterator pos;
    };

    struct Shard
    {
        mutable std::mutex mu;
        std::unordered_map<Addr, Entry> map;
        /** CLOCK ring; hand is the next sweep position. */
        std::list<Addr> ring;
        std::list<Addr>::iterator hand = ring.end();
        std::uint64_t used = 0;
    };

    Shard &shardFor(Addr addr);
    const Shard &shardFor(Addr addr) const;

    BlockCacheConfig config_;
    std::uint64_t shardCapacity_ = 0;
    std::vector<Shard> shards_;

    std::atomic<std::uint64_t> lookups_{0};
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> evictions_{0};
    std::atomic<std::uint64_t> bypasses_{0};
};

} // namespace boss::mem

#endif // BOSS_MEM_BLOCK_CACHE_H
