#include "mem/block_cache.h"

#include "common/logging.h"

namespace boss::mem
{

namespace
{

/** splitmix64 finalizer: spreads block addresses across shards. */
std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

BlockCache::BlockCache(BlockCacheConfig config) : config_(config)
{
    BOSS_ASSERT(config_.shards > 0, "block cache needs >= 1 shard");
    BOSS_ASSERT(config_.capacityBytes > 0,
                "block cache needs a positive capacity");
    shards_ = std::vector<Shard>(config_.shards);
    shardCapacity_ = config_.capacityBytes / config_.shards;
    BOSS_ASSERT(shardCapacity_ > 0,
                "capacity ", config_.capacityBytes,
                " too small for ", config_.shards, " shards");
}

BlockCache::Shard &
BlockCache::shardFor(Addr addr)
{
    return shards_[mix(addr) % shards_.size()];
}

const BlockCache::Shard &
BlockCache::shardFor(Addr addr) const
{
    return shards_[mix(addr) % shards_.size()];
}

BlockCache::Outcome
BlockCache::access(Addr addr, std::uint32_t bytes)
{
    lookups_.fetch_add(1, std::memory_order_relaxed);
    Shard &s = shardFor(addr);
    std::lock_guard<std::mutex> lock(s.mu);

    auto it = s.map.find(addr);
    if (it != s.map.end()) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        it->second.ref = true;
        ++it->second.pins;
        return Outcome::Hit;
    }

    misses_.fetch_add(1, std::memory_order_relaxed);
    if (bytes == 0 || bytes > shardCapacity_) {
        bypasses_.fetch_add(1, std::memory_order_relaxed);
        return Outcome::Bypass;
    }

    // CLOCK sweep until the block fits. Bounded at two full passes:
    // the first may only clear reference bits, the second must then
    // find a victim unless everything left is pinned.
    std::size_t sweepBudget = 2 * s.ring.size();
    std::uint64_t evicted = 0;
    while (s.used + bytes > shardCapacity_) {
        if (sweepBudget == 0 || s.ring.empty()) {
            // Every resident block is pinned (in-flight): do not
            // admit, the requestor just reads through to SCM.
            bypasses_.fetch_add(1, std::memory_order_relaxed);
            if (evicted != 0)
                evictions_.fetch_add(evicted,
                                     std::memory_order_relaxed);
            return Outcome::Bypass;
        }
        --sweepBudget;
        if (s.hand == s.ring.end())
            s.hand = s.ring.begin();
        Addr victim = *s.hand;
        Entry &e = s.map.at(victim);
        if (e.pins > 0 || e.ref) {
            e.ref = false;
            ++s.hand;
            continue;
        }
        s.used -= e.bytes;
        s.hand = s.ring.erase(s.hand);
        s.map.erase(victim);
        ++evicted;
    }
    if (evicted != 0)
        evictions_.fetch_add(evicted, std::memory_order_relaxed);

    // Admit just behind the hand: a fresh block gets a full sweep
    // before it is considered for eviction.
    auto pos = s.ring.insert(s.hand, addr);
    Entry e;
    e.bytes = bytes;
    e.pins = 1;
    e.ref = true;
    e.pos = pos;
    s.map.emplace(addr, e);
    s.used += bytes;
    return Outcome::Inserted;
}

void
BlockCache::unpin(Addr addr)
{
    Shard &s = shardFor(addr);
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.map.find(addr);
    BOSS_ASSERT(it != s.map.end(),
                "unpin of non-resident block ", addr);
    BOSS_ASSERT(it->second.pins > 0, "unpin without pin on ", addr);
    --it->second.pins;
}

bool
BlockCache::contains(Addr addr) const
{
    const Shard &s = shardFor(addr);
    std::lock_guard<std::mutex> lock(s.mu);
    return s.map.count(addr) != 0;
}

BlockCache::Stats
BlockCache::stats() const
{
    Stats st;
    st.lookups = lookups_.load(std::memory_order_relaxed);
    st.hits = hits_.load(std::memory_order_relaxed);
    st.misses = misses_.load(std::memory_order_relaxed);
    st.evictions = evictions_.load(std::memory_order_relaxed);
    st.bypasses = bypasses_.load(std::memory_order_relaxed);
    return st;
}

std::uint64_t
BlockCache::usedBytes() const
{
    std::uint64_t total = 0;
    for (const auto &s : shards_) {
        std::lock_guard<std::mutex> lock(s.mu);
        total += s.used;
    }
    return total;
}

} // namespace boss::mem
