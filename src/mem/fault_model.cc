#include "mem/fault_model.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/logging.h"
#include "common/rng.h"

namespace boss::mem
{

namespace
{

// Domain-separation streams for the per-decision child seeds: each
// decision kind draws from its own splitSeed stream so e.g. the
// stuck-block map and the bit-flip schedule of the same key stay
// independent.
constexpr std::uint64_t kStuckStream = 0xB10CDEAD;
constexpr std::uint64_t kFlipStream = 0xF11BB175;
constexpr std::uint64_t kDegradeStream = 0x51024EAD;

double
parseDouble(const std::string &key, const std::string &value)
{
    char *end = nullptr;
    double v = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0')
        BOSS_FATAL("fault spec: bad value '", value, "' for '", key,
                   "'");
    if (v < 0.0)
        BOSS_FATAL("fault spec: '", key, "' must be >= 0");
    return v;
}

std::uint64_t
parseUint(const std::string &key, const std::string &value)
{
    char *end = nullptr;
    unsigned long long v = std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0')
        BOSS_FATAL("fault spec: bad value '", value, "' for '", key,
                   "'");
    return v;
}

} // namespace

FaultSpec
parseFaultSpec(const std::string &spec)
{
    FaultSpec out;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string entry = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (entry.empty())
            continue;
        std::size_t eq = entry.find('=');
        if (eq == std::string::npos)
            BOSS_FATAL("fault spec: expected key=value, got '", entry,
                       "'");
        std::string key = entry.substr(0, eq);
        std::string value = entry.substr(eq + 1);
        if (key == "ber") {
            out.bitErrorRate = parseDouble(key, value);
            if (out.bitErrorRate >= 1.0)
                BOSS_FATAL("fault spec: ber must be < 1");
        } else if (key == "stuck") {
            out.stuckBlockRate = parseDouble(key, value);
            if (out.stuckBlockRate > 1.0)
                BOSS_FATAL("fault spec: stuck must be <= 1");
        } else if (key == "degrade") {
            out.degradeRate = parseDouble(key, value);
            if (out.degradeRate > 1.0)
                BOSS_FATAL("fault spec: degrade must be <= 1");
        } else if (key == "degrade-ps") {
            out.degradeLatency = parseUint(key, value);
        } else if (key == "retries") {
            out.maxRetries =
                static_cast<std::uint32_t>(parseUint(key, value));
        } else if (key == "dead-shard") {
            out.deadDevices.push_back(
                static_cast<std::uint32_t>(parseUint(key, value)));
        } else {
            BOSS_FATAL("fault spec: unknown key '", key,
                       "' (known: ber, stuck, degrade, degrade-ps, "
                       "retries, dead-shard)");
        }
    }
    return out;
}

FaultModel::FaultModel(FaultSpec spec, std::uint64_t seed,
                       std::uint32_t deviceId)
    : spec_(std::move(spec)), seed_(splitSeed(seed, deviceId)),
      deviceId_(deviceId)
{
    dead_ = std::find(spec_.deadDevices.begin(),
                      spec_.deadDevices.end(),
                      deviceId_) != spec_.deadDevices.end();
}

std::uint64_t
FaultModel::blockKey(TermId term, std::uint32_t block, bool tfPayload)
{
    return (static_cast<std::uint64_t>(term) << 33) |
           (static_cast<std::uint64_t>(block) << 1) |
           (tfPayload ? 1u : 0u);
}

bool
FaultModel::blockStuck(std::uint64_t key) const
{
    if (spec_.stuckBlockRate <= 0.0)
        return false;
    Rng rng(splitSeed(splitSeed(seed_, kStuckStream), key));
    return rng.chance(spec_.stuckBlockRate);
}

std::uint32_t
FaultModel::corrupt(std::uint64_t key, std::uint32_t attempt,
                    std::uint8_t *data, std::size_t n) const
{
    if (spec_.bitErrorRate <= 0.0 || n == 0)
        return 0;
    // Each read attempt of each block draws its own flip schedule:
    // transient faults clear on re-read with probability
    // (1 - ber)^bits. Geometric gaps realize the exact Bernoulli
    // process over bit positions without touching every bit.
    Rng rng(splitSeed(splitSeed(splitSeed(seed_, kFlipStream), key),
                      attempt));
    std::uint64_t bits = static_cast<std::uint64_t>(n) * 8;
    // 64-bit geometric gap: at low error rates the expected gap
    // (1/ber) overflows Rng::geometric's 32-bit range.
    auto gap = [&rng, p = spec_.bitErrorRate]() -> std::uint64_t {
        double u = rng.uniform();
        double g = std::floor(std::log1p(-u) / std::log1p(-p));
        if (!(g < 1.0e18)) // inf/NaN-safe "past any payload"
            return std::uint64_t{1} << 62;
        return static_cast<std::uint64_t>(g) + 1;
    };
    std::uint32_t flips = 0;
    std::uint64_t pos = gap() - 1;
    while (pos < bits) {
        if (data != nullptr)
            data[pos / 8] ^= static_cast<std::uint8_t>(
                1u << (pos % 8));
        ++flips;
        pos += gap();
    }
    return flips;
}

bool
FaultModel::readDegraded(Addr addr) const
{
    if (spec_.degradeRate <= 0.0)
        return false;
    // Degradation is a property of the media line (4 KiB management
    // unit), keyed by address: the same line is slow every time it
    // is read, regardless of who reads it or when.
    Rng rng(splitSeed(splitSeed(seed_, kDegradeStream), addr >> 12));
    return rng.chance(spec_.degradeRate);
}

} // namespace boss::mem
