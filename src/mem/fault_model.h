/**
 * @file
 * Deterministic SCM fault model.
 *
 * SCM media exhibits bit errors, blocks whose cells have worn out
 * ("stuck"), reads served at degraded latency by media management,
 * and — at pool scale — whole-device loss. The FaultModel decides,
 * reproducibly, which faults a given access experiences. Every
 * decision is a pure function of (base seed, device id, fault key,
 * attempt): nothing depends on access order, host thread count, or
 * how many other devices exist, so a fault schedule is bit-identical
 * across runs, thread counts and shard counts. Per-device schedules
 * derive through splitSeed(seed, deviceId), making each shard's
 * faults independent of the cluster around it.
 *
 * The spec is parsed from the CLI's --fault-spec string, e.g.
 *   "ber=1e-6,stuck=1e-4,degrade=0.01,retries=3,dead-shard=2"
 */

#ifndef BOSS_MEM_FAULT_MODEL_H
#define BOSS_MEM_FAULT_MODEL_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace boss::mem
{

/** What faults to inject, and how the reader may respond. */
struct FaultSpec
{
    /** Per-bit flip probability on each read attempt (transient). */
    double bitErrorRate = 0.0;
    /** Fraction of payload blocks permanently unreadable (hard). */
    double stuckBlockRate = 0.0;
    /** Fraction of media lines served at degraded latency. */
    double degradeRate = 0.0;
    /** Extra latency of a degraded read, in picoseconds. */
    Tick degradeLatency = 2'000'000; // 2 us: media retry + remap
    /** Re-read attempts after a CRC mismatch before dropping. */
    std::uint32_t maxRetries = 3;
    /** Device ids (shards) that are lost entirely. */
    std::vector<std::uint32_t> deadDevices;

    /** Any fault source active? (False spec == perfect memory.) */
    bool
    enabled() const
    {
        return bitErrorRate > 0.0 || stuckBlockRate > 0.0 ||
               degradeRate > 0.0 || !deadDevices.empty();
    }
};

/**
 * Parse a comma-separated key=value fault spec. Keys: ber, stuck,
 * degrade, degrade-ps, retries, dead-shard (repeatable). Fatal on
 * unknown keys or malformed values.
 */
FaultSpec parseFaultSpec(const std::string &spec);

class FaultModel
{
  public:
    /**
     * @param spec what to inject
     * @param seed base seed shared by the whole (sharded) device
     * @param deviceId this device's shard index; the per-device
     *        schedule derives from splitSeed(seed, deviceId)
     */
    FaultModel(FaultSpec spec, std::uint64_t seed,
               std::uint32_t deviceId = 0);

    const FaultSpec &spec() const { return spec_; }
    std::uint32_t deviceId() const { return deviceId_; }

    /** This whole device is lost (spec'd dead shard). */
    bool deviceDead() const { return dead_; }

    /** Stable fault key for one payload of one posting block. */
    static std::uint64_t blockKey(TermId term, std::uint32_t block,
                                  bool tfPayload);

    /** Is this block's media permanently unreadable (hard fault)? */
    bool blockStuck(std::uint64_t key) const;

    /**
     * Draw the transient bit flips that read @p attempt of @p key
     * experiences and apply them to @p data (pass nullptr to only
     * count). Returns the number of flipped bits.
     */
    std::uint32_t corrupt(std::uint64_t key, std::uint32_t attempt,
                          std::uint8_t *data, std::size_t n) const;

    /** Is the media line holding @p addr served at degraded latency? */
    bool readDegraded(Addr addr) const;

    /** Extra latency of a degraded read (picoseconds). */
    Tick degradePenalty() const { return spec_.degradeLatency; }

    std::uint32_t maxRetries() const { return spec_.maxRetries; }

  private:
    FaultSpec spec_;
    std::uint64_t seed_; ///< per-device: splitSeed(base, deviceId)
    std::uint32_t deviceId_;
    bool dead_ = false;
};

} // namespace boss::mem

#endif // BOSS_MEM_FAULT_MODEL_H
