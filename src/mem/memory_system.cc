#include "mem/memory_system.h"

#include <algorithm>

#include "common/bitops.h"
#include "common/logging.h"

namespace boss::mem
{

namespace
{

/** Picoseconds to move @p bytes at @p gbPerSec. */
Tick
transferTicks(std::uint64_t bytes, double gbPerSec)
{
    // 1 GB/s == 1 byte/ns == 0.001 byte/ps.
    double ps = static_cast<double>(bytes) / gbPerSec * 1000.0;
    return static_cast<Tick>(ps + 0.5);
}

} // namespace

HostLink::HostLink(const std::string &name, sim::EventQueue &eq,
                   stats::Group &parent, LinkConfig config)
    : SimObject(name, eq, parent), config_(config)
{
    statsGroup().addCounter("transfers", &transfers_,
                            "host link transfers");
    statsGroup().addCounter("bytes", &bytes_, "host link bytes moved");
}

Tick
HostLink::transfer(Tick start, std::uint64_t bytes)
{
    Tick begin = std::max(start, nextFree_);
    Tick duration = transferTicks(bytes, config_.bandwidthGBs);
    nextFree_ = begin + duration;
    ++transfers_;
    bytes_ += bytes;
    return begin + duration + config_.latency;
}

MemorySystem::MemorySystem(const std::string &name, sim::EventQueue &eq,
                           stats::Group &parent, MemConfig config,
                           HostLink *link)
    : SimObject(name, eq, parent), config_(std::move(config)),
      link_(link), channels_(config_.channels)
{
    BOSS_ASSERT(config_.channels > 0, "memory needs >= 1 channel");
    if (config_.banked) {
        for (std::uint32_t c = 0; c < config_.channels; ++c) {
            bankedChannels_.emplace_back(config_.bank);
            bankedChannels_.back().registerStats(
                statsGroup().subgroup("ch" + std::to_string(c)));
        }
    }
    statsGroup().addCounter("reads", &reads_, "read requests");
    statsGroup().addCounter("writes", &writes_, "write requests");
    statsGroup().addCounter("seq_accesses", &seqAcc_,
                            "sequential-pattern accesses");
    statsGroup().addCounter("rand_accesses", &randAcc_,
                            "random-pattern accesses");
    statsGroup().addCounter("degraded_reads", &degradedReads_,
                            "reads served at degraded media latency");
    for (std::size_t c = 0; c < kNumCategories; ++c) {
        auto cat = static_cast<Category>(c);
        statsGroup().addCounter(
            std::string(categoryName(cat)) + "_bytes", &catBytes_[c]);
        statsGroup().addCounter(
            std::string(categoryName(cat)) + "_accesses",
            &catAccesses_[c]);
    }
    statsGroup().addHistogram("req_latency_ns", &reqLatencyNs_,
                              "request issue-to-completion (ns)");
    statsGroup().addHistogram("chan_backlog_ns", &chanBacklogNs_,
                              "channel backlog at chunk issue (ns)");
}

void
MemorySystem::setTrace(trace::Scope scope,
                       std::vector<std::uint16_t> chanLanes)
{
    BOSS_ASSERT(!scope || chanLanes.size() == channels_.size(),
                "need one trace lane per memory channel");
    traceScope_ = scope;
    chanLanes_ = std::move(chanLanes);
}

Tick
MemorySystem::access(const MemRequest &req, std::function<void()> cb)
{
    BOSS_ASSERT(req.bytes > 0, "zero-size memory request");
    Tick now = eventQueue().now();
    const ChannelTiming &t = config_.timing;

    // Sequentiality is a property of the requestor's access streams.
    // A requestor interleaves several forward streams (doc payload,
    // tf payload, norm sidecar, metadata, ...); the media's prefetch
    // buffers track them independently, so detection is keyed on
    // (requestor, stream class): a request continuing its stream's
    // previous access (within one media line) gets the sequential
    // rate.
    std::uint64_t streamKey =
        ((static_cast<std::uint64_t>(req.requestor) << 8) |
         req.stream) +
        1; // +1 keeps 0 as the empty-slot sentinel
    bool sequential = false;
    if (!req.forceRandom) {
        auto it = streamEnd_.find(streamKey);
        if (it != streamEnd_.end()) {
            Addr last = it->second;
            Addr lo = last > t.granule ? last - t.granule : 0;
            sequential = req.addr >= lo && req.addr <= last + t.granule;
        }
    }
    streamEnd_[streamKey] = req.addr + req.bytes;

    // Stream-buffer contention: the device sustains its sequential
    // rate only for as many concurrent streams as its prefetch
    // buffers track. With more active streams, effectiveness
    // degrades smoothly toward the random rate.
    recentStreams_[recentPos_] = streamKey;
    recentPos_ = (recentPos_ + 1) % recentStreams_.size();
    double seqEff = t.seqReadGBs;
    if (sequential) {
        std::size_t distinct = 0;
        for (std::size_t i = 0; i < recentStreams_.size(); ++i) {
            if (recentStreams_[i] == 0)
                continue;
            bool dup = false;
            for (std::size_t j = 0; j < i; ++j) {
                if (recentStreams_[j] == recentStreams_[i]) {
                    dup = true;
                    break;
                }
            }
            if (!dup)
                ++distinct;
        }
        if (distinct > config_.streamTableSize) {
            double util = static_cast<double>(config_.streamTableSize) /
                          static_cast<double>(distinct);
            seqEff = t.randReadGBs +
                     (t.seqReadGBs - t.randReadGBs) * util;
        }
    }

    double bw = req.write ? t.writeGBs
                          : (sequential ? seqEff : t.randReadGBs);
    Tick latency = req.write
                       ? t.writeLatency
                       : (sequential ? t.seqReadLatency
                                     : t.randReadLatency);

    // Worn media lines are serviced through the device's internal
    // retry/remap path: same bandwidth, extra latency.
    if (faults_ != nullptr && !req.write &&
        faults_->readDegraded(req.addr)) {
        latency += faults_->degradePenalty();
        ++degradedReads_;
    }

    // Requests spanning interleave units are striped across
    // channels, as the controller would; completion is the slowest
    // chunk.
    Tick done = 0;
    Addr addr = req.addr;
    std::uint64_t remaining = req.bytes;
    while (remaining > 0) {
        Addr unitEnd = (addr / config_.interleave + 1) *
                       config_.interleave;
        std::uint64_t chunk =
            std::min<std::uint64_t>(remaining, unitEnd - addr);
        std::size_t ci = static_cast<std::size_t>(
            (addr / config_.interleave) % config_.channels);
        Channel &ch = channels_[ci];

        if (config_.banked) {
            // Bank-level timing: the chunk is a train of bus bursts,
            // all issued at the request time (the controller
            // pipelines column commands).
            BankedChannel &banked = bankedChannels_[ci];
            Addr burstAddr = addr;
            std::uint64_t left = chunk;
            Tick chunkDone = now;
            while (left > 0) {
                chunkDone = std::max(
                    chunkDone,
                    banked.access(now, burstAddr, req.write));
                std::uint64_t burst = std::min<std::uint64_t>(
                    left, t.serviceUnit);
                burstAddr += burst;
                left -= burst;
            }
            done = std::max(done, chunkDone);
            if (traceScope_) {
                traceScope_.span(
                    chanLanes_[ci], categoryName(req.category).data(),
                    static_cast<double>(now),
                    static_cast<double>(chunkDone - now),
                    {{"bytes", chunk}, {"write", req.write ? 1u : 0u}});
            }
        } else {
            std::uint64_t busBytes =
                ceilDiv(chunk, t.serviceUnit) * t.serviceUnit;
            Tick service = transferTicks(busBytes, bw);

            Tick begin = std::max(now, ch.nextFree);
            ch.nextFree = begin + service;
            ch.busy += service;
            done = std::max(done, begin + service + latency);
            chanBacklogNs_.sample(static_cast<double>(begin - now) /
                                  1000.0);
            if (traceScope_) {
                traceScope_.span(
                    chanLanes_[ci], categoryName(req.category).data(),
                    static_cast<double>(begin),
                    static_cast<double>(service),
                    {{"bytes", chunk}, {"write", req.write ? 1u : 0u}});
            }
        }

        addr += chunk;
        remaining -= chunk;
    }

    // Host-side consumers additionally cross the shared link.
    if (link_ != nullptr)
        done = link_->transfer(done, req.bytes);

    if (req.write) {
        ++writes_;
    } else {
        ++reads_;
    }
    if (sequential) {
        ++seqAcc_;
    } else {
        ++randAcc_;
    }
    std::size_t cat = static_cast<std::size_t>(req.category);
    catBytes_[cat] += req.bytes;
    ++catAccesses_[cat];
    reqLatencyNs_.sample(static_cast<double>(done - now) / 1000.0);

    if (cb)
        eventQueue().schedule(done, std::move(cb));
    return done;
}

std::uint64_t
MemorySystem::totalBytes() const
{
    std::uint64_t total = 0;
    for (std::size_t c = 0; c < kNumCategories; ++c)
        total += catBytes_[c].value();
    return total;
}

Tick
MemorySystem::busyTicks() const
{
    Tick total = 0;
    for (const auto &ch : channels_)
        total += ch.busy;
    for (const auto &ch : bankedChannels_)
        total += ch.busyTicks();
    return total;
}

std::uint64_t
MemorySystem::rowHits() const
{
    std::uint64_t total = 0;
    for (const auto &ch : bankedChannels_)
        total += ch.rowHits();
    return total;
}

std::uint64_t
MemorySystem::rowMisses() const
{
    std::uint64_t total = 0;
    for (const auto &ch : bankedChannels_)
        total += ch.rowMisses();
    return total;
}

void
MemorySystem::resetStats()
{
    reads_.reset();
    writes_.reset();
    seqAcc_.reset();
    randAcc_.reset();
    for (std::size_t c = 0; c < kNumCategories; ++c) {
        catBytes_[c].reset();
        catAccesses_[c].reset();
    }
    for (auto &ch : channels_)
        ch.busy = 0;
}

} // namespace boss::mem
