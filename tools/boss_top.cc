/**
 * @file
 * boss_top: terminal view of a live boss_serve metrics stream.
 *
 * Tails the JSONL time series written by --metrics-out and renders
 * each snapshot as a header line (cumulative counters) plus one
 * line per window (rates, latency digest, SLO burn) — `top` for the
 * serving pipeline, with no dependency beyond the filesystem:
 *
 *   [  12.5s] offered 25000  completed 23990  shed 910  expired 100
 *     1s   off  2012.0/s  done  1915.0/s  p50    940us  p99   5.1ms  burn  4.55
 *     10s  off  2003.4/s  done  1927.1/s  p50    951us  p99   4.9ms  burn  3.90
 *
 * Usage:
 *   boss_top [--follow] [--interval-ms N] <metrics.jsonl>
 *
 * Default reads the whole file and exits (the last snapshot is the
 * run's reconciled final state); --follow keeps polling for
 * appended lines, ctrl-c to stop. The parser accepts exactly the
 * schema telemetry::Registry::renderJsonLine emits and is validated
 * against it by tools/metrics_check.py in CI.
 */

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace
{

/**
 * Minimal JSON value for the flat snapshot schema. Objects keep
 * insertion order so windows render in the registry's order
 * (1s, 10s, 60s), not alphabetically.
 */
struct Json
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };
    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<Json> arr;
    std::vector<std::pair<std::string, Json>> obj;

    const Json *find(const std::string &key) const
    {
        for (const auto &[k, v] : obj)
            if (k == key)
                return &v;
        return nullptr;
    }
    double num(const std::string &key, double fallback = 0.0) const
    {
        const Json *v = find(key);
        return v != nullptr && v->kind == Kind::Number ? v->number
                                                       : fallback;
    }
};

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    bool parse(Json &out)
    {
        pos_ = 0;
        return value(out) && (skipWs(), pos_ == text_.size());
    }

  private:
    void skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }
    bool literal(const char *word)
    {
        std::size_t len = std::strlen(word);
        if (text_.compare(pos_, len, word) != 0)
            return false;
        pos_ += len;
        return true;
    }
    bool string(std::string &out)
    {
        if (pos_ >= text_.size() || text_[pos_] != '"')
            return false;
        ++pos_;
        out.clear();
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c == '\\' && pos_ < text_.size()) {
                char esc = text_[pos_++];
                switch (esc) {
                case 'n': out += '\n'; break;
                case 't': out += '\t'; break;
                case 'u':
                    // Snapshot strings are ASCII; keep the escape
                    // verbatim rather than decoding.
                    out += "\\u";
                    break;
                default: out += esc; break;
                }
            } else {
                out += c;
            }
        }
        if (pos_ >= text_.size())
            return false;
        ++pos_; // closing quote
        return true;
    }
    bool value(Json &out)
    {
        skipWs();
        if (pos_ >= text_.size())
            return false;
        char c = text_[pos_];
        if (c == '{') {
            ++pos_;
            out.kind = Json::Kind::Object;
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            for (;;) {
                skipWs();
                std::string key;
                if (!string(key))
                    return false;
                skipWs();
                if (pos_ >= text_.size() || text_[pos_++] != ':')
                    return false;
                Json child;
                if (!value(child))
                    return false;
                out.obj.emplace_back(std::move(key),
                                     std::move(child));
                skipWs();
                if (pos_ >= text_.size())
                    return false;
                if (text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (text_[pos_] == '}') {
                    ++pos_;
                    return true;
                }
                return false;
            }
        }
        if (c == '[') {
            ++pos_;
            out.kind = Json::Kind::Array;
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            for (;;) {
                Json child;
                if (!value(child))
                    return false;
                out.arr.push_back(std::move(child));
                skipWs();
                if (pos_ >= text_.size())
                    return false;
                if (text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (text_[pos_] == ']') {
                    ++pos_;
                    return true;
                }
                return false;
            }
        }
        if (c == '"') {
            out.kind = Json::Kind::String;
            return string(out.str);
        }
        if (literal("true")) {
            out.kind = Json::Kind::Bool;
            out.boolean = true;
            return true;
        }
        if (literal("false")) {
            out.kind = Json::Kind::Bool;
            out.boolean = false;
            return true;
        }
        if (literal("null")) {
            out.kind = Json::Kind::Null;
            return true;
        }
        char *end = nullptr;
        double n = std::strtod(text_.c_str() + pos_, &end);
        if (end == text_.c_str() + pos_)
            return false;
        pos_ = static_cast<std::size_t>(end - text_.c_str());
        out.kind = Json::Kind::Number;
        out.number = n;
        return true;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

/** Humanize a µs quantity: 940us / 5.1ms / 2.3s. */
std::string
fmtUs(double us)
{
    char buf[32];
    if (us < 1000.0)
        std::snprintf(buf, sizeof(buf), "%.0fus", us);
    else if (us < 1e6)
        std::snprintf(buf, sizeof(buf), "%.1fms", us / 1e3);
    else
        std::snprintf(buf, sizeof(buf), "%.2fs", us / 1e6);
    return buf;
}

void
render(const Json &snap)
{
    const Json *counters = snap.find("counters");
    const Json *gauges = snap.find("gauges");
    const Json *windows = snap.find("windows");
    if (counters == nullptr || windows == nullptr) {
        std::fprintf(stderr, "skipping malformed snapshot line\n");
        return;
    }
    std::printf(
        "[%7.1fs] offered %.0f  completed %.0f  shed %.0f  "
        "expired %.0f  queue %.0f\n",
        snap.num("t_us") / 1e6,
        counters->num("boss_serve_offered_total"),
        counters->num("boss_serve_completed_total"),
        counters->num("boss_serve_shed_total"),
        counters->num("boss_serve_expired_total"),
        gauges != nullptr ? gauges->num("boss_serve_queue_depth")
                          : 0.0);
    for (const auto &[wname, w] : windows->obj) {
        const Json *lat = w.find("boss_serve_latency_us");
        std::printf("  %-4s off %8.1f/s  done %8.1f/s", wname.c_str(),
                    w.num("boss_serve_offered_qps"),
                    w.num("boss_serve_completed_qps"));
        if (lat != nullptr) {
            std::printf("  p50 %8s  p99 %8s",
                        fmtUs(lat->num("p50")).c_str(),
                        fmtUs(lat->num("p99")).c_str());
        }
        std::printf("  burn %5.2f\n",
                    w.num("boss_serve_slo_burn_rate"));
    }
}

bool
renderLine(const std::string &line)
{
    if (line.empty())
        return false;
    Json snap;
    Parser parser(line);
    if (!parser.parse(snap) || snap.kind != Json::Kind::Object) {
        std::fprintf(stderr, "unparseable snapshot line\n");
        return false;
    }
    render(snap);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    bool follow = false;
    long intervalMs = 250;
    int argi = 1;
    while (argi < argc && argv[argi][0] == '-') {
        std::string arg = argv[argi];
        if (arg == "--follow" || arg == "-f") {
            follow = true;
            ++argi;
        } else if (arg == "--once") {
            follow = false;
            ++argi;
        } else if (arg == "--interval-ms") {
            intervalMs = argi + 1 < argc
                             ? std::strtol(argv[argi + 1], nullptr, 10)
                             : 0;
            if (intervalMs <= 0) {
                std::fprintf(stderr,
                             "--interval-ms wants a positive "
                             "period\n");
                return 2;
            }
            argi += 2;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n",
                         argv[argi]);
            return 2;
        }
    }
    if (argi + 1 != argc) {
        std::fprintf(stderr,
                     "usage: %s [--follow] [--interval-ms N] "
                     "<metrics.jsonl>\n",
                     argv[0]);
        return 2;
    }
    const char *path = argv[argi];

    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cannot open '%s'\n", path);
        return 1;
    }

    std::string line;
    std::size_t rendered = 0;
    for (;;) {
        while (std::getline(in, line)) {
            if (renderLine(line))
                ++rendered;
        }
        if (!follow)
            break;
        // Tail: clear EOF and poll for appended lines.
        in.clear();
        std::this_thread::sleep_for(
            std::chrono::milliseconds(intervalMs));
    }
    if (rendered == 0) {
        std::fprintf(stderr, "no snapshots in '%s'\n", path);
        return 1;
    }
    return 0;
}
