/**
 * @file
 * boss_indexer: build a BOSS text index from a document file.
 *
 * Usage:
 *   boss_indexer [--progress] <documents.txt> <output.idx>
 *
 * The input holds one document per line. The output file contains
 * the hybrid-compressed inverted index plus the lexicon and can be
 * served with boss_search or Device::loadTextIndexFile().
 *
 * --progress reports ingest rate (docs/sec, MB read) on stderr while
 * indexing and dumps the final ingest counters.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "common/logging.h"
#include "index/text_builder.h"
#include "stats/stats.h"

namespace
{

/** Ingest counters, reported through the stats framework. */
class Progress
{
  public:
    explicit Progress(bool enabled)
        : enabled_(enabled), group_("indexer"),
          start_(std::chrono::steady_clock::now())
    {
        group_.addCounter("docs", &docs_, "documents ingested");
        group_.addCounter("bytes", &bytes_, "input bytes read");
        group_.addCounter("empty_lines", &empty_,
                          "empty input lines skipped");
    }

    void
    doc(std::size_t lineBytes)
    {
        ++docs_;
        bytes_ += lineBytes + 1; // +1 for the newline
        if (enabled_ && docs_.value() % kReportEvery == 0)
            report();
    }

    void emptyLine() { ++empty_; }

    void
    finish()
    {
        if (!enabled_)
            return;
        report();
        std::fputc('\n', stderr);
        group_.dump(std::cerr);
    }

  private:
    static constexpr std::uint64_t kReportEvery = 10000;

    void
    report() const
    {
        double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
        double rate = secs > 0
                          ? static_cast<double>(docs_.value()) / secs
                          : 0.0;
        std::fprintf(stderr,
                     "\r%llu docs, %.1f MB read, %.0f docs/sec ",
                     static_cast<unsigned long long>(docs_.value()),
                     static_cast<double>(bytes_.value()) / 1e6, rate);
    }

    bool enabled_;
    boss::stats::Group group_;
    boss::stats::Counter docs_;
    boss::stats::Counter bytes_;
    boss::stats::Counter empty_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace

int
main(int argc, char **argv)
{
    bool progress = false;
    int argi = 1;
    if (argi < argc && std::strcmp(argv[argi], "--progress") == 0) {
        progress = true;
        ++argi;
    }
    if (argc - argi != 2) {
        std::fprintf(stderr,
                     "usage: %s [--progress] <documents.txt> "
                     "<output.idx>\n"
                     "  documents.txt: one document per line\n",
                     argv[0]);
        return 2;
    }
    const char *inPath = argv[argi];
    const char *outPath = argv[argi + 1];

    std::ifstream in(inPath);
    if (!in) {
        std::fprintf(stderr, "cannot open '%s'\n", inPath);
        return 1;
    }

    boss::index::TextIndexBuilder builder;
    Progress prog(progress);
    std::string line;
    std::uint64_t skipped = 0;
    while (std::getline(in, line)) {
        if (line.empty()) {
            ++skipped;
            prog.emptyLine();
            continue;
        }
        builder.addDocument(line);
        prog.doc(line.size());
    }
    if (builder.numDocs() == 0) {
        std::fprintf(stderr, "no documents in '%s'\n", inPath);
        return 1;
    }
    prog.finish();

    auto ti = builder.build();
    boss::index::saveTextIndexFile(ti, outPath);
    std::printf("indexed %u documents (%u distinct terms, %llu empty "
                "lines skipped)\n",
                ti.index.numDocs(), ti.lexicon.size(),
                static_cast<unsigned long long>(skipped));
    std::printf("index size: %.2f MB -> %s\n",
                static_cast<double>(ti.index.sizeBytes()) / 1e6,
                outPath);
    return 0;
}
