/**
 * @file
 * boss_indexer: build a BOSS text index from a document file.
 *
 * Usage:
 *   boss_indexer [--progress] [--memory-budget MB] <documents.txt>
 *                <output.idx>
 *   boss_indexer --append [--progress] <documents.txt> <segment-dir>
 *
 * The input holds one document per line. The default mode writes a
 * monolithic index file containing the hybrid-compressed inverted
 * index plus the lexicon, servable with boss_search or
 * Device::loadTextIndexFile().
 *
 * --memory-budget MB caps the posting buffer: when it fills, sorted
 * runs are spilled to <output.idx>.spill/ and merged into the final
 * file at the end (external_build.h). The output is byte-identical
 * to the unbounded build, so the flag only trades ingest RAM for
 * scratch I/O.
 *
 * --append feeds the documents into a live segment directory
 * instead: existing segments are recovered from the directory's
 * committed manifest, the new docs are baked into fresh immutable
 * segments, and one refresh publishes the combined epoch. The
 * directory's lexicon (at <segment-dir>/lexicon) grows in place, so
 * repeated --append runs build one corpus incrementally; the result
 * is served with boss_serve <segment-dir>.
 *
 * --progress reports ingest rate (docs/sec, MB read) on stderr while
 * indexing and dumps the final ingest counters.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "common/logging.h"
#include "index/external_build.h"
#include "index/segments/live_index.h"
#include "index/text_builder.h"
#include "stats/stats.h"

namespace
{

/** Ingest counters, reported through the stats framework. */
class Progress
{
  public:
    explicit Progress(bool enabled)
        : enabled_(enabled), group_("indexer"),
          start_(std::chrono::steady_clock::now())
    {
        group_.addCounter("docs", &docs_, "documents ingested");
        group_.addCounter("bytes", &bytes_, "input bytes read");
        group_.addCounter("empty_lines", &empty_,
                          "empty input lines skipped");
    }

    void
    doc(std::size_t lineBytes)
    {
        ++docs_;
        bytes_ += lineBytes + 1; // +1 for the newline
        if (enabled_ && docs_.value() % kReportEvery == 0)
            report();
    }

    void emptyLine() { ++empty_; }

    void
    finish()
    {
        if (!enabled_)
            return;
        report();
        std::fputc('\n', stderr);
        group_.dump(std::cerr);
    }

  private:
    static constexpr std::uint64_t kReportEvery = 10000;

    void
    report() const
    {
        double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
        double rate = secs > 0
                          ? static_cast<double>(docs_.value()) / secs
                          : 0.0;
        std::fprintf(stderr,
                     "\r%llu docs, %.1f MB read, %.0f docs/sec ",
                     static_cast<unsigned long long>(docs_.value()),
                     static_cast<double>(bytes_.value()) / 1e6, rate);
    }

    bool enabled_;
    boss::stats::Group group_;
    boss::stats::Counter docs_;
    boss::stats::Counter bytes_;
    boss::stats::Counter empty_;
    std::chrono::steady_clock::time_point start_;
};

/** --append mode: grow a live segment directory. */
int
appendMode(const char *inPath, const char *dirPath, bool progress)
{
    namespace seg = boss::index::segments;

    std::ifstream in(inPath);
    if (!in) {
        std::fprintf(stderr, "cannot open '%s'\n", inPath);
        return 1;
    }

    std::filesystem::create_directories(dirPath);
    const std::filesystem::path lexPath =
        std::filesystem::path(dirPath) / "lexicon";
    boss::index::Lexicon lexicon;
    if (std::filesystem::exists(lexPath)) {
        std::ifstream ls(lexPath, std::ios::binary);
        if (!ls) {
            std::fprintf(stderr, "cannot open '%s'\n",
                         lexPath.string().c_str());
            return 1;
        }
        lexicon = boss::index::Lexicon::load(ls);
    }

    seg::LiveIndexConfig cfg;
    cfg.dir = dirPath;
    cfg.termBoundHint = lexicon.size();
    seg::LiveIndex live(cfg);
    const std::uint32_t before = live.liveDocs();

    Progress prog(progress);
    std::string line;
    std::uint64_t skipped = 0;
    while (std::getline(in, line)) {
        if (line.empty()) {
            ++skipped;
            prog.emptyLine();
            continue;
        }
        std::vector<boss::TermId> ids;
        for (const std::string &tok : boss::index::tokenize(line))
            ids.push_back(lexicon.addTerm(tok));
        live.append(ids);
        prog.doc(line.size());
    }
    prog.finish();

    // Lexicon before the publishing refresh: a crash between the
    // two leaves extra lexicon entries (harmless; ids are stable)
    // rather than committed segments referencing unknown terms.
    {
        std::ofstream ls(lexPath, std::ios::binary | std::ios::trunc);
        BOSS_ASSERT(ls.good(), "cannot write ", lexPath.string());
        lexicon.save(ls);
        ls.flush();
        BOSS_ASSERT(ls.good(), "short write ", lexPath.string());
    }
    live.refresh();
    while (live.mergeOnce()) {
    }

    std::printf("appended %u documents (%llu empty lines skipped)\n",
                live.liveDocs() - before,
                static_cast<unsigned long long>(skipped));
    std::printf("segment dir: %s -- %u docs, %u segments, epoch %llu,"
                " %u distinct terms\n",
                dirPath, live.liveDocs(), live.segmentCount(),
                static_cast<unsigned long long>(live.epoch()),
                lexicon.size());
    return 0;
}

/** --memory-budget mode: bounded-RAM external-merge build. */
int
externalMode(std::ifstream &in, const char *inPath,
             const char *outPath, double budgetMb, bool progress)
{
    boss::index::ExternalBuildConfig cfg;
    cfg.memoryBudgetBytes =
        static_cast<std::uint64_t>(budgetMb * (1 << 20));
    if (cfg.memoryBudgetBytes == 0)
        cfg.memoryBudgetBytes = 1;
    cfg.spillDir = std::string(outPath) + ".spill";
    boss::index::ExternalTextIndexer indexer(std::move(cfg));

    Progress prog(progress);
    std::string line;
    std::uint64_t skipped = 0;
    while (std::getline(in, line)) {
        if (line.empty()) {
            ++skipped;
            prog.emptyLine();
            continue;
        }
        indexer.addDocument(line);
        prog.doc(line.size());
    }
    if (indexer.numDocs() == 0) {
        std::fprintf(stderr, "no documents in '%s'\n", inPath);
        return 1;
    }
    prog.finish();

    auto stats = indexer.finish(outPath);
    std::printf("indexed %u documents (%u distinct terms, %llu empty "
                "lines skipped)\n",
                stats.numDocs, stats.numTerms,
                static_cast<unsigned long long>(skipped));
    std::printf("spill runs: %u (%llu postings, %.2f MB scratch, "
                "budget %.1f MB)\n",
                stats.spillRuns,
                static_cast<unsigned long long>(stats.postingsSpilled),
                static_cast<double>(stats.spillBytes) / 1e6, budgetMb);
    std::printf("index -> %s\n", outPath);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool progress = false;
    bool append = false;
    double budgetMb = 0.0;
    int argi = 1;
    while (argi < argc && argv[argi][0] == '-') {
        if (std::strcmp(argv[argi], "--progress") == 0) {
            progress = true;
        } else if (std::strcmp(argv[argi], "--append") == 0) {
            append = true;
        } else if (std::strcmp(argv[argi], "--memory-budget") == 0 &&
                   argi + 1 < argc) {
            budgetMb = std::atof(argv[++argi]);
            if (!(budgetMb > 0)) {
                std::fprintf(stderr,
                             "--memory-budget needs a positive MB "
                             "value\n");
                return 2;
            }
        } else {
            break;
        }
        ++argi;
    }
    if (argc - argi != 2) {
        std::fprintf(stderr,
                     "usage: %s [--progress] [--memory-budget MB] "
                     "<documents.txt> <output.idx>\n"
                     "       %s --append [--progress] "
                     "<documents.txt> <segment-dir>\n"
                     "  documents.txt: one document per line\n",
                     argv[0], argv[0]);
        return 2;
    }
    if (append) {
        if (budgetMb > 0) {
            std::fprintf(stderr, "--memory-budget does not apply to "
                                 "--append mode\n");
            return 2;
        }
        return appendMode(argv[argi], argv[argi + 1], progress);
    }
    const char *inPath = argv[argi];
    const char *outPath = argv[argi + 1];

    std::ifstream in(inPath);
    if (!in) {
        std::fprintf(stderr, "cannot open '%s'\n", inPath);
        return 1;
    }

    if (budgetMb > 0)
        return externalMode(in, inPath, outPath, budgetMb, progress);

    boss::index::TextIndexBuilder builder;
    Progress prog(progress);
    std::string line;
    std::uint64_t skipped = 0;
    while (std::getline(in, line)) {
        if (line.empty()) {
            ++skipped;
            prog.emptyLine();
            continue;
        }
        builder.addDocument(line);
        prog.doc(line.size());
    }
    if (builder.numDocs() == 0) {
        std::fprintf(stderr, "no documents in '%s'\n", inPath);
        return 1;
    }
    prog.finish();

    auto ti = builder.build();
    boss::index::saveTextIndexFile(ti, outPath);
    std::printf("indexed %u documents (%u distinct terms, %llu empty "
                "lines skipped)\n",
                ti.index.numDocs(), ti.lexicon.size(),
                static_cast<unsigned long long>(skipped));
    std::printf("index size: %.2f MB -> %s\n",
                static_cast<double>(ti.index.sizeBytes()) / 1e6,
                outPath);
    return 0;
}
