/**
 * @file
 * boss_indexer: build a BOSS text index from a document file.
 *
 * Usage:
 *   boss_indexer <documents.txt> <output.idx>
 *
 * The input holds one document per line. The output file contains
 * the hybrid-compressed inverted index plus the lexicon and can be
 * served with boss_search or Device::loadTextIndexFile().
 */

#include <cstdio>
#include <fstream>
#include <string>

#include "common/logging.h"
#include "index/text_builder.h"

int
main(int argc, char **argv)
{
    if (argc != 3) {
        std::fprintf(stderr,
                     "usage: %s <documents.txt> <output.idx>\n"
                     "  documents.txt: one document per line\n",
                     argv[0]);
        return 2;
    }

    std::ifstream in(argv[1]);
    if (!in) {
        std::fprintf(stderr, "cannot open '%s'\n", argv[1]);
        return 1;
    }

    boss::index::TextIndexBuilder builder;
    std::string line;
    std::uint64_t skipped = 0;
    while (std::getline(in, line)) {
        if (line.empty()) {
            ++skipped;
            continue;
        }
        builder.addDocument(line);
    }
    if (builder.numDocs() == 0) {
        std::fprintf(stderr, "no documents in '%s'\n", argv[1]);
        return 1;
    }

    auto ti = builder.build();
    boss::index::saveTextIndexFile(ti, argv[2]);
    std::printf("indexed %u documents (%u distinct terms, %llu empty "
                "lines skipped)\n",
                ti.index.numDocs(), ti.lexicon.size(),
                static_cast<unsigned long long>(skipped));
    std::printf("index size: %.2f MB -> %s\n",
                static_cast<double>(ti.index.sizeBytes()) / 1e6,
                argv[2]);
    return 0;
}
