#!/usr/bin/env python3
"""Schema validator for checked-in BENCH_*.json reports.

Every bench binary serializes through stats::Group::dumpJson, so all
reports share one schema: a group is {"name", "stats", "groups"},
stats maps leaf names to typed values (scalar / counter / formula /
histogram), and groups nests recursively. This checker fails CI when
a checked-in report is malformed — truncated writes, NaNs leaked
into values, histograms with inconsistent percentiles — instead of
letting a broken artifact sit in the tree until someone plots it.

Usage:
    bench_check.py [FILE...]

With no arguments, validates every BENCH_*.json in the repository
root (the directory two levels up from this script). Exits non-zero
and prints one line per violation otherwise.
"""

import glob
import json
import os
import sys

LEAF_TYPES = {"scalar", "counter", "formula", "histogram", "empty"}
HIST_FIELDS = (
    "scale",
    "lo",
    "hi",
    "samples",
    "mean",
    "min",
    "max",
    "p50",
    "p99",
    "p999",
    "buckets",
)

# Curve-style reports must carry enough points to show a shape: a
# throughput/latency sweep with fewer than MIN_SWEEP_POINTS load
# points cannot show the knee it exists to document.
MIN_SWEEP_POINTS = 5
SWEEP_RULES = {
    "BENCH_ingest.json": {
        "curves": ("merges_on", "merges_off"),
        "point_stats": (
            "ingest_rate_dps",
            "offered_qps",
            "achieved_qps",
            "p50_us",
            "p99_us",
            "appended",
            "merges",
            "segments_final",
        ),
        "required_groups": (),
    },
    "BENCH_oocore.json": {
        "curves": ("cache_sweep",),
        "point_stats": (
            "cache_mb",
            "corpus_to_cache_ratio",
            "hit_rate",
            "qps",
            "dram_bytes",
            "scm_bytes",
            "evictions",
        ),
        "required_groups": ("ablation",),
    },
    "BENCH_serving.json": {
        "curves": ("pipelined", "barrier"),
        "point_stats": (
            "offered_qps",
            "achieved_qps",
            "goodput_qps",
            "p50_us",
            "p99_us",
            "p999_us",
        ),
        "required_groups": ("ablation",),
    },
}


def is_number(v):
    """Finite JSON numbers only; dumpJson writes infinities as null."""
    return isinstance(v, (int, float)) and not isinstance(v, bool)


class Checker:
    def __init__(self, path):
        self.path = path
        self.errors = []

    def fail(self, where, message):
        self.errors.append(f"{self.path}: {where}: {message}")

    def check_histogram(self, where, leaf):
        for field in HIST_FIELDS:
            if field not in leaf:
                self.fail(where, f"histogram missing '{field}'")
                return
        if leaf["scale"] not in ("log", "linear"):
            self.fail(where, f"bad scale {leaf['scale']!r}")
        if not (is_number(leaf["lo"]) and is_number(leaf["hi"]) and
                leaf["lo"] < leaf["hi"]):
            self.fail(where, "needs numeric lo < hi")
        buckets = leaf["buckets"]
        if not (isinstance(buckets, list) and buckets and
                all(isinstance(b, int) and b >= 0 for b in buckets)):
            self.fail(where, "buckets must be non-negative ints")
            return
        samples = leaf["samples"]
        if not isinstance(samples, int) or samples < 0:
            self.fail(where, "samples must be a non-negative int")
            return
        if sum(buckets) != samples:
            self.fail(
                where,
                f"bucket counts sum to {sum(buckets)}, "
                f"samples says {samples}",
            )
        if samples > 0:
            pcts = [leaf["p50"], leaf["p99"], leaf["p999"]]
            if not all(is_number(p) for p in pcts):
                self.fail(where, "sampled histogram with null percentiles")
            elif not (pcts[0] <= pcts[1] <= pcts[2]):
                self.fail(where, f"percentiles not monotone: {pcts}")
            if not (is_number(leaf["min"]) and is_number(leaf["max"]) and
                    leaf["min"] <= leaf["max"]):
                self.fail(where, "sampled histogram needs min <= max")

    def check_leaf(self, where, leaf):
        if not isinstance(leaf, dict) or "type" not in leaf:
            self.fail(where, "leaf must be an object with a 'type'")
            return
        kind = leaf["type"]
        if kind not in LEAF_TYPES:
            self.fail(where, f"unknown leaf type {kind!r}")
        elif kind == "histogram":
            self.check_histogram(where, leaf)
        elif kind != "empty":
            if "value" not in leaf:
                self.fail(where, f"{kind} leaf missing 'value'")
            elif leaf["value"] is not None and not is_number(leaf["value"]):
                self.fail(where, f"{kind} value must be a number or null")

    def check_group(self, where, group):
        if not isinstance(group, dict):
            self.fail(where, "group must be an object")
            return
        for key in ("name", "stats", "groups"):
            if key not in group:
                self.fail(where, f"group missing '{key}'")
                return
        if not isinstance(group["name"], str) or not group["name"]:
            self.fail(where, "group name must be a non-empty string")
        if not isinstance(group["stats"], dict):
            self.fail(where, "'stats' must be an object")
        else:
            for name, leaf in group["stats"].items():
                self.check_leaf(f"{where}/{name}", leaf)
        if not isinstance(group["groups"], list):
            self.fail(where, "'groups' must be a list")
        else:
            for child in group["groups"]:
                child_name = (
                    child.get("name", "?")
                    if isinstance(child, dict)
                    else "?"
                )
                self.check_group(f"{where}/{child_name}", child)

    def check_sweep_rules(self, root):
        rules = SWEEP_RULES.get(os.path.basename(self.path))
        if rules is None:
            return
        subgroups = {
            g["name"]: g
            for g in root.get("groups", [])
            if isinstance(g, dict) and "name" in g
        }
        for required in rules["required_groups"]:
            if required not in subgroups:
                self.fail(root.get("name", "?"),
                          f"missing required group '{required}'")
        for curve in rules["curves"]:
            if curve not in subgroups:
                self.fail(root.get("name", "?"),
                          f"missing curve group '{curve}'")
                continue
            points = subgroups[curve].get("groups", [])
            if len(points) < MIN_SWEEP_POINTS:
                self.fail(
                    curve,
                    f"sweep has {len(points)} load points, "
                    f"need >= {MIN_SWEEP_POINTS}",
                )
            for point in points:
                stats = point.get("stats", {})
                for stat in rules["point_stats"]:
                    if stat not in stats:
                        self.fail(
                            f"{curve}/{point.get('name', '?')}",
                            f"missing stat '{stat}'",
                        )

    def run(self):
        try:
            with open(self.path, encoding="utf-8") as fh:
                root = json.load(fh)
        except (OSError, json.JSONDecodeError) as err:
            self.fail("<file>", f"unreadable or invalid JSON: {err}")
            return self.errors
        self.check_group(root.get("name", "?") if isinstance(root, dict)
                         else "?", root)
        self.check_sweep_rules(root)
        return self.errors


def main(argv):
    paths = argv[1:]
    if not paths:
        repo = os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))
        paths = sorted(glob.glob(os.path.join(repo, "BENCH_*.json")))
    if not paths:
        print("bench_check: no BENCH_*.json files found",
              file=sys.stderr)
        return 1
    failed = False
    for path in paths:
        errors = Checker(path).run()
        if errors:
            failed = True
            for line in errors:
                print(line, file=sys.stderr)
        else:
            print(f"bench_check: {path} OK")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
