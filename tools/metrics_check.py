#!/usr/bin/env python3
"""Schema validator for boss_serve --metrics-out JSONL time series.

Every snapshot line comes from telemetry::Registry::renderJsonLine,
so the whole file shares one schema: each line is a self-contained
object with a monotone "t_us" timestamp, a "build" identity stamp,
cumulative "counters", point-in-time "gauges", and per-window
histogram digests under "windows". This checker fails CI when a
live-metrics capture is malformed — truncated lines, non-monotone
time, negative counts, percentile digests out of order — instead of
letting a broken observability surface ship.

With --reconcile it additionally asserts that the *final* snapshot's
terminal accounting closes exactly:

    offered == completed + shed + expired

which is the acceptance bar for the live telemetry path: every
offered query reaches exactly one terminal counter, no matter how
the run interleaved its threads. When the snapshot carries the DRAM
block-cache section (boss_cache_fetches_total present, i.e. the run
served with --cache-mb), the cache ledger must close the same way:

    hits + misses == fetches

on every snapshot, not just the final one — the serve layer applies
whole deltas, so a line where the two sides disagree means a torn
poll, not timing skew.

Usage:
    metrics_check.py [--reconcile] FILE [FILE...]
"""

import json
import sys

REQUIRED_TOP = ("t_us", "build", "counters", "gauges", "windows")
REQUIRED_COUNTERS = (
    "boss_serve_offered_total",
    "boss_serve_admitted_total",
    "boss_serve_completed_total",
    "boss_serve_shed_total",
    "boss_serve_expired_total",
    "boss_serve_good_total",
)
REQUIRED_BUILD = ("git", "compiler", "kernels")
# Every windowed histogram digest carries these fields.
DIGEST_FIELDS = ("count", "mean", "p50", "p99", "p999")
REQUIRED_WINDOW_METRICS = (
    "boss_serve_latency_us",
    "boss_serve_offered_qps",
    "boss_serve_completed_qps",
    "boss_serve_slo_burn_rate",
)


def is_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


class Checker:
    def __init__(self, path, reconcile):
        self.path = path
        self.reconcile = reconcile
        self.errors = []

    def fail(self, where, message):
        self.errors.append(f"{self.path}: {where}: {message}")

    def check_digest(self, where, digest):
        if not isinstance(digest, dict):
            self.fail(where, "histogram digest must be an object")
            return
        for field in DIGEST_FIELDS:
            if field not in digest:
                self.fail(where, f"digest missing '{field}'")
                return
        count = digest["count"]
        if not isinstance(count, int) or count < 0:
            self.fail(where, "count must be a non-negative int")
            return
        if count > 0:
            pcts = [digest["p50"], digest["p99"], digest["p999"]]
            if not all(is_number(p) for p in pcts):
                self.fail(where, "non-numeric percentiles")
            elif not pcts[0] <= pcts[1] <= pcts[2]:
                self.fail(where, f"percentiles not monotone: {pcts}")

    def check_line(self, lineno, snap):
        where = f"line {lineno}"
        if not isinstance(snap, dict):
            self.fail(where, "snapshot must be an object")
            return
        for key in REQUIRED_TOP:
            if key not in snap:
                self.fail(where, f"missing '{key}'")
                return
        if not is_number(snap["t_us"]) or snap["t_us"] < 0:
            self.fail(where, "t_us must be a non-negative number")
        build = snap["build"]
        if not isinstance(build, dict):
            self.fail(where, "'build' must be an object")
        else:
            for key in REQUIRED_BUILD:
                if not isinstance(build.get(key), str) or not build[key]:
                    self.fail(where, f"build missing '{key}'")
        counters = snap["counters"]
        if not isinstance(counters, dict):
            self.fail(where, "'counters' must be an object")
            return
        for name in REQUIRED_COUNTERS:
            if name not in counters:
                self.fail(where, f"counters missing '{name}'")
            elif not isinstance(counters[name], int) or counters[name] < 0:
                self.fail(where, f"counter '{name}' must be a "
                                 "non-negative int")
        for name, value in counters.items():
            if not isinstance(value, int) or value < 0:
                self.fail(where, f"counter '{name}' must be a "
                                 "non-negative int")
        gauges = snap["gauges"]
        if not isinstance(gauges, dict):
            self.fail(where, "'gauges' must be an object")
        else:
            for name, value in gauges.items():
                if not is_number(value):
                    self.fail(where, f"gauge '{name}' must be a number")
        windows = snap["windows"]
        if not isinstance(windows, dict) or not windows:
            self.fail(where, "'windows' must be a non-empty object")
            return
        for wname, metrics in windows.items():
            wwhere = f"{where}/window {wname}"
            if not isinstance(metrics, dict):
                self.fail(wwhere, "window must be an object")
                continue
            for name in REQUIRED_WINDOW_METRICS:
                if name not in metrics:
                    self.fail(wwhere, f"missing metric '{name}'")
            for name, value in metrics.items():
                if isinstance(value, dict):
                    self.check_digest(f"{wwhere}/{name}", value)
                elif not is_number(value):
                    self.fail(wwhere,
                              f"metric '{name}' must be a number "
                              "or digest object")

    def check_cache_ledger(self, lineno, snap):
        counters = snap.get("counters", {})
        if "boss_cache_fetches_total" not in counters:
            return
        where = f"line {lineno}"
        fetches = counters["boss_cache_fetches_total"]
        hits = counters.get("boss_cache_hits_total", 0)
        misses = counters.get("boss_cache_misses_total", 0)
        if hits + misses != fetches:
            self.fail(where,
                      f"cache hits {hits} + misses {misses} != "
                      f"fetches {fetches}")

    def check_reconciliation(self, lineno, snap):
        where = f"line {lineno} (final)"
        counters = snap.get("counters", {})
        offered = counters.get("boss_serve_offered_total")
        terminal = sum(
            counters.get(name, 0)
            for name in ("boss_serve_completed_total",
                         "boss_serve_shed_total",
                         "boss_serve_expired_total")
        )
        if offered != terminal:
            self.fail(where,
                      f"offered {offered} != completed+shed+expired "
                      f"{terminal}")
        good = counters.get("boss_serve_good_total", 0)
        missed = counters.get("boss_serve_deadline_missed_total", 0)
        completed = counters.get("boss_serve_completed_total", 0)
        if good + missed != completed:
            self.fail(where,
                      f"good {good} + missed {missed} != "
                      f"completed {completed}")

    def run(self):
        try:
            with open(self.path, encoding="utf-8") as fh:
                lines = fh.read().splitlines()
        except OSError as err:
            self.fail("<file>", f"unreadable: {err}")
            return self.errors
        snaps = []
        for lineno, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                snap = json.loads(line)
            except json.JSONDecodeError as err:
                self.fail(f"line {lineno}", f"invalid JSON: {err}")
                continue
            self.check_line(lineno, snap)
            self.check_cache_ledger(lineno, snap)
            snaps.append((lineno, snap))
        if not snaps:
            self.fail("<file>", "no snapshots")
            return self.errors
        last_t = None
        for lineno, snap in snaps:
            t = snap.get("t_us")
            if is_number(t):
                if last_t is not None and t < last_t:
                    self.fail(f"line {lineno}",
                              f"t_us {t} went backwards from {last_t}")
                last_t = t
        if self.reconcile:
            self.check_reconciliation(*snaps[-1])
        return self.errors


def main(argv):
    args = argv[1:]
    reconcile = False
    if args and args[0] == "--reconcile":
        reconcile = True
        args = args[1:]
    if not args:
        print("usage: metrics_check.py [--reconcile] FILE [FILE...]",
              file=sys.stderr)
        return 2
    failed = False
    for path in args:
        errors = Checker(path, reconcile).run()
        if errors:
            failed = True
            for line in errors:
                print(line, file=sys.stderr)
        else:
            print(f"metrics_check: {path} OK")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
