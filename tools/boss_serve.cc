/**
 * @file
 * boss_serve: always-on serving harness over a BOSS text index.
 *
 * Drives the simulated accelerator with a deterministic open-loop
 * query stream (latency is measured from each query's *scheduled*
 * arrival, so overload shows up as queueing delay instead of being
 * silently absorbed by a slow generator) and reports tail latency,
 * shedding and goodput.
 *
 * Usage:
 *   boss_serve [options] <index.idx>
 *
 * Options:
 *   --qps X              offered load in queries/sec (default 2000)
 *   --queries N          offered query count (default 2000)
 *   --distinct N         distinct sampled queries cycled through
 *                        the stream (default 64)
 *   --seed N             arrival + workload seed (default 42)
 *   --arrival=PROC       poisson | bursty (MMPP-2; default poisson)
 *   --queue N            admission queue capacity (default 256)
 *   --policy=POL         block | drop-tail | drop-deadline
 *                        (default drop-tail)
 *   --mode=MODE          pipelined | barrier (default pipelined;
 *                        barrier is the no-overlap ablation)
 *   --deadline-us X      per-query SLO from scheduled arrival
 *                        (default: none; enables goodput/shedding
 *                        by deadline)
 *   --warmup N           unrecorded warmup queries (default 32)
 *   --shards N           serve from N sharded devices (default 1)
 *   --threads N          host pool size (default: all hardware)
 *   --stats-json=FILE    serve stats group as JSON (log-bucketed
 *                        latency histograms with p50/p99/p999)
 *   --trace-out=FILE     Chrome trace of per-query queue/serve
 *                        spans (load in Perfetto)
 *   --kernels=TIER       scalar|sse42|avx2|auto (bit-exact tiers)
 *
 * Results are bit-identical to batch searchBatch() for the same
 * query set — serving changes *when* work happens, never what it
 * computes.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>

#include "api/sharded_device.h"
#include "boss/device.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "kernels/kernels.h"
#include "serve/server.h"
#include "stats/stats.h"
#include "trace/chrome_trace.h"
#include "workload/queries.h"

namespace
{

struct Options
{
    double qps = 2000.0;
    std::size_t queries = 2000;
    std::size_t distinct = 64;
    std::uint64_t seed = 42;
    boss::serve::ArrivalProcess arrival =
        boss::serve::ArrivalProcess::Poisson;
    std::size_t queueCapacity = 256;
    boss::serve::ShedPolicy policy =
        boss::serve::ShedPolicy::DropTail;
    boss::serve::PipelineMode mode =
        boss::serve::PipelineMode::Pipelined;
    double deadlineUs =
        std::numeric_limits<double>::infinity();
    std::size_t warmup = 32;
    long shards = 1;
    std::string statsJson;
    std::string traceOut;
};

bool
matchValueFlag(const char *arg, const char *name, std::string &out)
{
    std::size_t len = std::strlen(name);
    if (std::strncmp(arg, name, len) != 0 || arg[len] != '=')
        return false;
    out = arg + len + 1;
    return true;
}

long
numberAfter(int &argi, int argc, char **argv, const char *flag)
{
    long n = argi + 1 < argc
                 ? std::strtol(argv[argi + 1], nullptr, 10)
                 : -1;
    if (n < 0) {
        std::fprintf(stderr, "%s wants a non-negative number\n",
                     flag);
        std::exit(2);
    }
    argi += 2;
    return n;
}

int
serveSession(boss::serve::Backend &backend, std::uint32_t vocab,
             const Options &opts)
{
    boss::workload::QueryWorkloadConfig wcfg;
    wcfg.vocabSize = vocab;
    wcfg.seed = boss::splitSeed(opts.seed, 7);
    auto queries =
        boss::workload::sampleQueries(wcfg, opts.distinct);

    boss::serve::ServeConfig scfg;
    scfg.arrivals.process = opts.arrival;
    scfg.arrivals.qps = opts.qps;
    scfg.arrivals.count = opts.queries;
    scfg.arrivals.seed = boss::splitSeed(opts.seed, 11);
    scfg.queueCapacity = opts.queueCapacity;
    scfg.policy = opts.policy;
    scfg.mode = opts.mode;
    scfg.deadlineUs = opts.deadlineUs;
    scfg.warmup = opts.warmup;

    boss::serve::Server server(backend, scfg);
    std::optional<boss::trace::Recorder> recorder;
    if (!opts.traceOut.empty()) {
        recorder.emplace();
        server.setRecorder(&*recorder);
    }

    auto report = server.run(queries);

    std::printf(
        "offered %llu queries @ %.1f qps (%s, %s, %s), elapsed "
        "%.1f ms\n",
        static_cast<unsigned long long>(report.offered),
        report.offeredQps,
        opts.arrival == boss::serve::ArrivalProcess::Poisson
            ? "poisson"
            : "bursty",
        opts.mode == boss::serve::PipelineMode::Pipelined
            ? "pipelined"
            : "barrier",
        opts.policy == boss::serve::ShedPolicy::Block ? "block"
        : opts.policy == boss::serve::ShedPolicy::DropTail
            ? "drop-tail"
            : "drop-deadline",
        report.elapsedUs / 1e3);
    std::printf("completed %llu, shed %llu, expired %llu; "
                "achieved %.1f qps\n",
                static_cast<unsigned long long>(report.completed),
                static_cast<unsigned long long>(report.shed),
                static_cast<unsigned long long>(report.expired),
                report.achievedQps);
    double goodPct =
        report.offered == 0
            ? 0.0
            : 100.0 * static_cast<double>(report.good) /
                  static_cast<double>(report.offered);
    std::printf("goodput: %.2f%% (%llu/%llu within deadline, "
                "%.1f qps)\n",
                goodPct,
                static_cast<unsigned long long>(report.good),
                static_cast<unsigned long long>(report.offered),
                report.goodputQps);
    std::printf("latency us: p50 %.1f  p99 %.1f  p999 %.1f  "
                "max %.1f  (queue wait p99 %.1f)\n",
                report.latencyP50Us, report.latencyP99Us,
                report.latencyP999Us, report.latencyMaxUs,
                report.queueWaitP99Us);

    if (!opts.statsJson.empty()) {
        std::ofstream os(opts.statsJson);
        if (!os)
            BOSS_FATAL("cannot open '", opts.statsJson,
                       "' for writing");
        boss::stats::Group group("serve");
        server.registerStats(group);
        group.dumpJson(os, 0);
        os << "\n";
    }
    if (!opts.traceOut.empty()) {
        std::ofstream os(opts.traceOut);
        if (!os)
            BOSS_FATAL("cannot open '", opts.traceOut,
                       "' for writing");
        boss::trace::writeChromeTrace(os, *recorder);
        std::printf("wrote %zu trace events to %s\n",
                    recorder->eventCount(), opts.traceOut.c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts;
    int argi = 1;
    while (argi < argc && argv[argi][0] == '-') {
        std::string arg = argv[argi];
        std::string value;
        if (arg == "--qps") {
            double q = argi + 1 < argc
                           ? std::strtod(argv[argi + 1], nullptr)
                           : 0.0;
            if (q <= 0.0) {
                std::fprintf(stderr, "--qps wants a positive rate\n");
                return 2;
            }
            opts.qps = q;
            argi += 2;
        } else if (arg == "--queries") {
            opts.queries = static_cast<std::size_t>(
                numberAfter(argi, argc, argv, "--queries"));
        } else if (arg == "--distinct") {
            opts.distinct = static_cast<std::size_t>(
                numberAfter(argi, argc, argv, "--distinct"));
        } else if (arg == "--seed") {
            opts.seed = static_cast<std::uint64_t>(
                numberAfter(argi, argc, argv, "--seed"));
        } else if (arg == "--queue") {
            opts.queueCapacity = static_cast<std::size_t>(
                numberAfter(argi, argc, argv, "--queue"));
        } else if (arg == "--warmup") {
            opts.warmup = static_cast<std::size_t>(
                numberAfter(argi, argc, argv, "--warmup"));
        } else if (arg == "--shards") {
            opts.shards = numberAfter(argi, argc, argv, "--shards");
            if (opts.shards < 1) {
                std::fprintf(stderr,
                             "--shards wants a positive count\n");
                return 2;
            }
        } else if (arg == "--threads") {
            long n = numberAfter(argi, argc, argv, "--threads");
            if (n < 1) {
                std::fprintf(stderr,
                             "--threads wants a positive count\n");
                return 2;
            }
            boss::common::ThreadPool::setGlobalThreads(
                static_cast<std::size_t>(n));
        } else if (arg == "--deadline-us") {
            double d = argi + 1 < argc
                           ? std::strtod(argv[argi + 1], nullptr)
                           : 0.0;
            if (d <= 0.0) {
                std::fprintf(stderr,
                             "--deadline-us wants a positive "
                             "deadline\n");
                return 2;
            }
            opts.deadlineUs = d;
            argi += 2;
        } else if (matchValueFlag(argv[argi], "--arrival", value)) {
            if (value == "poisson") {
                opts.arrival = boss::serve::ArrivalProcess::Poisson;
            } else if (value == "bursty") {
                opts.arrival = boss::serve::ArrivalProcess::Bursty;
            } else {
                std::fprintf(stderr,
                             "--arrival wants poisson|bursty\n");
                return 2;
            }
            ++argi;
        } else if (matchValueFlag(argv[argi], "--policy", value)) {
            if (value == "block") {
                opts.policy = boss::serve::ShedPolicy::Block;
            } else if (value == "drop-tail") {
                opts.policy = boss::serve::ShedPolicy::DropTail;
            } else if (value == "drop-deadline") {
                opts.policy = boss::serve::ShedPolicy::DropDeadline;
            } else {
                std::fprintf(stderr,
                             "--policy wants block|drop-tail|"
                             "drop-deadline\n");
                return 2;
            }
            ++argi;
        } else if (matchValueFlag(argv[argi], "--mode", value)) {
            if (value == "pipelined") {
                opts.mode = boss::serve::PipelineMode::Pipelined;
            } else if (value == "barrier") {
                opts.mode = boss::serve::PipelineMode::Barrier;
            } else {
                std::fprintf(stderr,
                             "--mode wants pipelined|barrier\n");
                return 2;
            }
            ++argi;
        } else if (matchValueFlag(argv[argi], "--stats-json",
                                  opts.statsJson) ||
                   matchValueFlag(argv[argi], "--trace-out",
                                  opts.traceOut)) {
            ++argi;
        } else if (matchValueFlag(argv[argi], "--kernels", value)) {
            if (!boss::kernels::setTierByName(value)) {
                std::fprintf(stderr,
                             "--kernels wants scalar|sse42|avx2|"
                             "auto, got '%s'\n",
                             value.c_str());
                return 2;
            }
            ++argi;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n",
                         argv[argi]);
            return 2;
        }
    }
    if (argi >= argc) {
        std::fprintf(
            stderr,
            "usage: %s [--qps X] [--queries N] [--distinct N] "
            "[--seed N] [--arrival=poisson|bursty] [--queue N] "
            "[--policy=block|drop-tail|drop-deadline] "
            "[--mode=pipelined|barrier] [--deadline-us X] "
            "[--warmup N] [--shards N] [--threads N] "
            "[--stats-json=FILE] [--trace-out=FILE] "
            "[--kernels=TIER] <index.idx>\n",
            argv[0]);
        return 2;
    }

    if (opts.shards > 1) {
        boss::api::ShardedDeviceConfig cfg;
        cfg.shards = static_cast<std::uint32_t>(opts.shards);
        boss::api::ShardedDevice device(cfg);
        device.loadTextIndexFile(argv[argi]);
        std::printf("loaded %u docs / %u terms across %u shards\n",
                    device.map().numDocs(),
                    device.shard(0).lexicon().size(),
                    device.numShards());
        boss::serve::ShardedBackend backend(device);
        return serveSession(backend,
                            device.shard(0).lexicon().size(),
                            opts);
    }
    boss::accel::Device device;
    device.loadTextIndexFile(argv[argi]);
    std::printf("loaded %u docs / %u terms\n",
                device.index().numDocs(), device.lexicon().size());
    boss::serve::DeviceBackend backend(device);
    return serveSession(backend, device.lexicon().size(), opts);
}
