/**
 * @file
 * boss_serve: always-on serving harness over a BOSS text index.
 *
 * Drives the simulated accelerator with a deterministic open-loop
 * query stream (latency is measured from each query's *scheduled*
 * arrival, so overload shows up as queueing delay instead of being
 * silently absorbed by a slow generator) and reports tail latency,
 * shedding and goodput.
 *
 * Usage:
 *   boss_serve [options] <index.idx>
 *   boss_serve [options] <segment-dir>
 *
 * Passing a segment directory (built with boss_indexer --append)
 * serves the live index inside it and enables mixed read/write
 * mode: an ingest thread appends synthetic documents at
 * --ingest-rate while the open-loop query stream runs, deleting a
 * --delete-fraction of them, refreshing every --refresh-ms, and
 * compacting with the background merger unless --no-merge. The
 * ingest counters land on the telemetry surface (boss_ingest_* on
 * /metrics and in --metrics-out snapshots) and a final "ingest:"
 * summary line reports totals.
 *
 * Options:
 *   --qps X              offered load in queries/sec (default 2000)
 *   --queries N          offered query count (default 2000)
 *   --distinct N         distinct sampled queries cycled through
 *                        the stream (default 64)
 *   --seed N             arrival + workload seed (default 42)
 *   --arrival=PROC       poisson | bursty (MMPP-2; default poisson)
 *   --queue N            admission queue capacity (default 256)
 *   --policy=POL         block | drop-tail | drop-deadline
 *                        (default drop-tail)
 *   --mode=MODE          pipelined | barrier (default pipelined;
 *                        barrier is the no-overlap ablation)
 *   --deadline-us X      per-query SLO from scheduled arrival
 *                        (default: none; enables goodput/shedding
 *                        by deadline)
 *   --warmup N           unrecorded warmup queries (default 32)
 *   --shards N           serve from N sharded devices (default 1)
 *   --threads N          host pool size (default: all hardware)
 *   --stats-json=FILE    serve stats group as JSON (log-bucketed
 *                        latency histograms with p50/p99/p999)
 *   --trace-out=FILE     Chrome trace of per-query queue/serve
 *                        spans (load in Perfetto)
 *   --trace-cap N        per-buffer trace event ring capacity
 *                        (default 65536; 0 = unbounded)
 *   --metrics-out=FILE   append one JSONL metrics snapshot per
 *                        period while serving (see boss_top)
 *   --metrics-period-ms X  snapshot period (default 500)
 *   --metrics-port N     serve Prometheus /metrics (plus /flight
 *                        and /healthz) on this port; 0 = ephemeral
 *   --flight-out=FILE    flight-recorder dump (slowest + recent
 *                        shed queries) as Chrome trace at exit
 *   --kernels=TIER       scalar|sse42|avx2|auto (bit-exact tiers)
 *   --cache-mb N         DRAM block-cache tier of N MiB in front of
 *                        the SCM device (single index-file device
 *                        only); exports boss_cache_* counters on the
 *                        telemetry surface
 *   --mmap               mmap the index file (O(metadata) startup,
 *                        lazy per-block CRC; single device only)
 *   --ingest-rate X      live mode: appended docs/sec (default 0)
 *   --delete-fraction F  live mode: deletes per append (default 0.1)
 *   --refresh-ms X       live mode: publish period (default 50)
 *   --no-merge           live mode: disable background merges
 *
 * Results are bit-identical to batch searchBatch() for the same
 * query set — serving changes *when* work happens, never what it
 * computes.
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <thread>

#include "api/live_device.h"
#include "api/sharded_device.h"
#include "boss/device.h"
#include "common/rng.h"
#include "common/buildinfo.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "kernels/kernels.h"
#include "serve/server.h"
#include "stats/stats.h"
#include "telemetry/http_exporter.h"
#include "telemetry/serve_telemetry.h"
#include "telemetry/snapshotter.h"
#include "trace/chrome_trace.h"
#include "trace/json.h"
#include "workload/queries.h"

namespace
{

struct Options
{
    double qps = 2000.0;
    std::size_t queries = 2000;
    std::size_t distinct = 64;
    std::uint64_t seed = 42;
    boss::serve::ArrivalProcess arrival =
        boss::serve::ArrivalProcess::Poisson;
    std::size_t queueCapacity = 256;
    boss::serve::ShedPolicy policy =
        boss::serve::ShedPolicy::DropTail;
    boss::serve::PipelineMode mode =
        boss::serve::PipelineMode::Pipelined;
    double deadlineUs =
        std::numeric_limits<double>::infinity();
    std::size_t warmup = 32;
    long shards = 1;
    std::string statsJson;
    std::string traceOut;
    /** Serve-mode trace memory bound; 0 = unbounded (batch-like). */
    std::size_t traceCap = 65536;
    std::string metricsOut;
    double metricsPeriodMs = 500.0;
    long metricsPort = -1; ///< -1 = no HTTP endpoint
    std::string flightOut;
    // Live (segment-dir) mode.
    double ingestRate = 0.0;
    double deleteFraction = 0.1;
    double refreshMs = 50.0;
    bool noMerge = false;
    // Out-of-core tier (single index-file device only).
    double cacheMb = 0.0;
    bool mmap = false;
};

/**
 * Bridges the device's block-cache counters onto the telemetry
 * surface: sync() polls the cache and traffic totals and applies
 * deltas to the boss_cache_* counters (same poll-and-delta shape as
 * IngestDriver::syncMetrics, keeping telemetry free of mem/ types).
 */
class CacheSync
{
  public:
    explicit CacheSync(const boss::accel::Device &device)
        : device_(device)
    {
    }

    void
    registerMetrics(boss::telemetry::Registry &registry)
    {
        metrics_.registerInto(registry);
    }

    void
    sync()
    {
        const boss::mem::BlockCache *cache = device_.blockCache();
        if (cache == nullptr)
            return;
        auto st = cache->stats();
        auto delta = [](boss::telemetry::Counter &counter,
                        std::uint64_t now, std::uint64_t &last) {
            counter.inc(now - last);
            last = now;
        };
        delta(metrics_.fetches, st.lookups, lastLookups_);
        delta(metrics_.hits, st.hits, lastHits_);
        delta(metrics_.misses, st.misses, lastMisses_);
        delta(metrics_.evictions, st.evictions, lastEvictions_);
        delta(metrics_.dramBytes, device_.totalDramBytes(),
              lastDram_);
        delta(metrics_.scmBytes, device_.totalScmBytes(), lastScm_);
    }

  private:
    const boss::accel::Device &device_;
    boss::telemetry::CacheMetrics metrics_;
    std::uint64_t lastLookups_ = 0;
    std::uint64_t lastHits_ = 0;
    std::uint64_t lastMisses_ = 0;
    std::uint64_t lastEvictions_ = 0;
    std::uint64_t lastDram_ = 0;
    std::uint64_t lastScm_ = 0;
};

/**
 * The write side of mixed read/write serving: a thread appending
 * synthetic documents (and deleting a fraction of the corpus) into
 * the LiveDevice's index at a paced rate, publishing on a refresh
 * timer, while the server hammers the read side.
 */
class IngestDriver
{
  public:
    IngestDriver(boss::api::LiveDevice &device, const Options &opts)
        : device_(device), rate_(opts.ingestRate),
          deleteFraction_(opts.deleteFraction),
          refreshMs_(opts.refreshMs), merge_(!opts.noMerge),
          rng_(boss::splitSeed(opts.seed, 13))
    {
    }

    /** Expose boss_ingest_* metrics (before rendering starts). */
    void
    registerMetrics(boss::telemetry::Registry &registry)
    {
        metrics_.registerInto(registry);
    }

    void
    start()
    {
        if (merge_)
            device_.live().startMerger();
        syncMetrics();
        thread_ = std::thread([this] { run(); });
    }

    void
    stop()
    {
        stop_.store(true, std::memory_order_relaxed);
        if (thread_.joinable())
            thread_.join();
        device_.live().refresh();
        if (merge_)
            device_.live().stopMerger();
        syncMetrics();
    }

    void
    printSummary() const
    {
        const auto &c = device_.live().counters();
        std::printf(
            "ingest: appended %llu, deleted %llu, baked %llu "
            "segments, %llu merges, %llu refreshes; final epoch "
            "%llu, %u live docs in %u segments\n",
            static_cast<unsigned long long>(c.appended.load()),
            static_cast<unsigned long long>(c.erased.load()),
            static_cast<unsigned long long>(c.segmentsBaked.load()),
            static_cast<unsigned long long>(c.merges.load()),
            static_cast<unsigned long long>(c.refreshes.load()),
            static_cast<unsigned long long>(device_.live().epoch()),
            device_.live().liveDocs(),
            device_.live().segmentCount());
    }

  private:
    void
    run()
    {
        auto &live = device_.live();
        const std::uint32_t vocab = live.termBound();
        const auto t0 = std::chrono::steady_clock::now();
        auto lastRefresh = t0;
        std::uint64_t appended = 0;
        while (!stop_.load(std::memory_order_relaxed)) {
            const auto now = std::chrono::steady_clock::now();
            const double secs =
                std::chrono::duration<double>(now - t0).count();
            const auto owed =
                static_cast<std::uint64_t>(secs * rate_);
            while (appended < owed &&
                   !stop_.load(std::memory_order_relaxed)) {
                appendOne(vocab);
                ++appended;
            }
            if (std::chrono::duration<double, std::milli>(
                    now - lastRefresh)
                    .count() >= refreshMs_) {
                live.refresh();
                lastRefresh = now;
                syncMetrics();
            }
            std::this_thread::sleep_for(
                std::chrono::microseconds(500));
        }
    }

    void
    appendOne(std::uint32_t vocab)
    {
        auto &live = device_.live();
        const auto len =
            8 + static_cast<std::uint32_t>(rng_.below(56));
        std::vector<boss::TermId> tokens(len);
        for (auto &t : tokens)
            t = static_cast<boss::TermId>(rng_.below(vocab));
        live.append(tokens);
        constexpr std::uint64_t kScale = 1u << 20;
        if (rng_.below(kScale) <
            static_cast<std::uint64_t>(deleteFraction_ * kScale)) {
            // A random victim may already be deleted or merged
            // away; a few retries keep the realized delete rate
            // close to the requested fraction.
            for (int tries = 0; tries < 4; ++tries) {
                const auto victim = static_cast<boss::DocId>(
                    rng_.below(live.nextGlobalId()));
                if (live.erase(victim))
                    break;
            }
        }
    }

    void
    syncMetrics()
    {
        const auto &c = device_.live().counters();
        auto delta = [](boss::telemetry::Counter &counter,
                        const std::atomic<std::uint64_t> &source,
                        std::uint64_t &last) {
            const std::uint64_t now = source.load();
            counter.inc(now - last);
            last = now;
        };
        delta(metrics_.docsAppended, c.appended, lastAppended_);
        delta(metrics_.docsDeleted, c.erased, lastErased_);
        delta(metrics_.segmentsBaked, c.segmentsBaked, lastBaked_);
        delta(metrics_.merges, c.merges, lastMerges_);
        delta(metrics_.refreshes, c.refreshes, lastRefreshes_);
        metrics_.liveDocs.set(
            static_cast<double>(device_.live().liveDocs()));
        metrics_.segments.set(
            static_cast<double>(device_.live().segmentCount()));
        metrics_.epoch.set(
            static_cast<double>(device_.live().epoch()));
        metrics_.bufferedDocs.set(
            static_cast<double>(device_.live().bufferedDocs()));
    }

    boss::api::LiveDevice &device_;
    double rate_;
    double deleteFraction_;
    double refreshMs_;
    bool merge_;
    boss::Rng rng_;
    boss::telemetry::IngestMetrics metrics_;
    std::uint64_t lastAppended_ = 0;
    std::uint64_t lastErased_ = 0;
    std::uint64_t lastBaked_ = 0;
    std::uint64_t lastMerges_ = 0;
    std::uint64_t lastRefreshes_ = 0;
    std::atomic<bool> stop_{false};
    std::thread thread_;
};

/** Build-identity labels every metrics surface carries. */
std::vector<boss::telemetry::Label>
buildLabels()
{
    return {{"git", std::string(boss::common::buildGitHash())},
            {"compiler", std::string(boss::common::buildCompiler())},
            {"kernels",
             std::string(boss::kernels::activeTierName())}};
}

bool
matchValueFlag(const char *arg, const char *name, std::string &out)
{
    std::size_t len = std::strlen(name);
    if (std::strncmp(arg, name, len) != 0 || arg[len] != '=')
        return false;
    out = arg + len + 1;
    return true;
}

long
numberAfter(int &argi, int argc, char **argv, const char *flag)
{
    long n = argi + 1 < argc
                 ? std::strtol(argv[argi + 1], nullptr, 10)
                 : -1;
    if (n < 0) {
        std::fprintf(stderr, "%s wants a non-negative number\n",
                     flag);
        std::exit(2);
    }
    argi += 2;
    return n;
}

int
serveSession(boss::serve::Backend &backend, std::uint32_t vocab,
             const Options &opts, IngestDriver *ingest = nullptr,
             CacheSync *cacheSync = nullptr)
{
    boss::workload::QueryWorkloadConfig wcfg;
    wcfg.vocabSize = vocab;
    wcfg.seed = boss::splitSeed(opts.seed, 7);
    auto queries =
        boss::workload::sampleQueries(wcfg, opts.distinct);

    boss::serve::ServeConfig scfg;
    scfg.arrivals.process = opts.arrival;
    scfg.arrivals.qps = opts.qps;
    scfg.arrivals.count = opts.queries;
    scfg.arrivals.seed = boss::splitSeed(opts.seed, 11);
    scfg.queueCapacity = opts.queueCapacity;
    scfg.policy = opts.policy;
    scfg.mode = opts.mode;
    scfg.deadlineUs = opts.deadlineUs;
    scfg.warmup = opts.warmup;

    boss::serve::Server server(backend, scfg);
    std::optional<boss::trace::Recorder> recorder;
    if (!opts.traceOut.empty()) {
        recorder.emplace();
        if (opts.traceCap > 0)
            recorder->setEventCapacity(opts.traceCap);
        server.setRecorder(&*recorder);
    }

    // Live telemetry: any metrics/flight surface turns it on.
    const bool wantTelemetry = !opts.metricsOut.empty() ||
                               opts.metricsPort >= 0 ||
                               !opts.flightOut.empty();
    std::optional<boss::telemetry::ServeTelemetry> telemetry;
    std::optional<boss::telemetry::Snapshotter> snapshotter;
    std::optional<boss::telemetry::HttpExporter> exporter;
    if (wantTelemetry) {
        telemetry.emplace();
        telemetry->setBuildInfo(buildLabels());
        server.setTelemetry(&*telemetry);
        if (ingest != nullptr)
            ingest->registerMetrics(telemetry->registry());
        if (cacheSync != nullptr)
            cacheSync->registerMetrics(telemetry->registry());
        auto clock = [tel = &*telemetry] { return tel->nowUs(); };
        if (!opts.metricsOut.empty()) {
            boss::telemetry::Snapshotter::Config cfg;
            cfg.jsonlPath = opts.metricsOut;
            cfg.periodMs = opts.metricsPeriodMs;
            snapshotter.emplace(telemetry->registry(), clock, cfg);
            snapshotter->start();
        }
        if (opts.metricsPort >= 0) {
            boss::telemetry::HttpExporter::Config cfg;
            cfg.port =
                static_cast<std::uint16_t>(opts.metricsPort);
            exporter.emplace(telemetry->registry(),
                             &telemetry->flight(), clock, cfg);
            std::string error;
            if (exporter->start(&error)) {
                std::printf("metrics endpoint on port %u "
                            "(/metrics /flight /healthz)\n",
                            exporter->port());
            } else {
                std::fprintf(stderr,
                             "metrics endpoint disabled: %s\n",
                             error.c_str());
                exporter.reset();
            }
        }
    }

    if (ingest != nullptr)
        ingest->start();
    auto report = server.run(queries);
    if (ingest != nullptr) {
        ingest->stop();
        ingest->printSummary();
    }
    // Final cache-counter sync before the snapshotter drains: the
    // last snapshot (the one CI reconciles) carries the totals.
    if (cacheSync != nullptr)
        cacheSync->sync();

    if (snapshotter.has_value()) {
        snapshotter->stop();
        std::printf("wrote %llu metrics snapshots to %s\n",
                    static_cast<unsigned long long>(
                        snapshotter->snapshots()),
                    opts.metricsOut.c_str());
    }
    if (exporter.has_value())
        exporter->stop();
    if (!opts.flightOut.empty()) {
        std::ofstream os(opts.flightOut);
        if (!os)
            BOSS_FATAL("cannot open '", opts.flightOut,
                       "' for writing");
        telemetry->flight().dumpChromeTrace(os);
        std::printf("wrote flight recorder (%zu slow, %zu shed) "
                    "to %s\n",
                    telemetry->flight().slowCount(),
                    telemetry->flight().shedCount(),
                    opts.flightOut.c_str());
    }

    std::printf(
        "offered %llu queries @ %.1f qps (%s, %s, %s), elapsed "
        "%.1f ms\n",
        static_cast<unsigned long long>(report.offered),
        report.offeredQps,
        opts.arrival == boss::serve::ArrivalProcess::Poisson
            ? "poisson"
            : "bursty",
        opts.mode == boss::serve::PipelineMode::Pipelined
            ? "pipelined"
            : "barrier",
        opts.policy == boss::serve::ShedPolicy::Block ? "block"
        : opts.policy == boss::serve::ShedPolicy::DropTail
            ? "drop-tail"
            : "drop-deadline",
        report.elapsedUs / 1e3);
    std::printf("completed %llu, shed %llu, expired %llu; "
                "achieved %.1f qps\n",
                static_cast<unsigned long long>(report.completed),
                static_cast<unsigned long long>(report.shed),
                static_cast<unsigned long long>(report.expired),
                report.achievedQps);
    double goodPct =
        report.offered == 0
            ? 0.0
            : 100.0 * static_cast<double>(report.good) /
                  static_cast<double>(report.offered);
    std::printf("goodput: %.2f%% (%llu/%llu within deadline, "
                "%.1f qps)\n",
                goodPct,
                static_cast<unsigned long long>(report.good),
                static_cast<unsigned long long>(report.offered),
                report.goodputQps);
    std::printf("latency us: p50 %.1f  p99 %.1f  p999 %.1f  "
                "max %.1f  (queue wait p99 %.1f)\n",
                report.latencyP50Us, report.latencyP99Us,
                report.latencyP999Us, report.latencyMaxUs,
                report.queueWaitP99Us);

    if (!opts.statsJson.empty()) {
        std::ofstream os(opts.statsJson);
        if (!os)
            BOSS_FATAL("cannot open '", opts.statsJson,
                       "' for writing");
        boss::stats::Group group("serve");
        server.registerStats(group);
        // Build stamp first, so any checked-in report names the
        // binary that produced it.
        os << "{\n  \"build\": {";
        bool first = true;
        for (const auto &label : buildLabels()) {
            if (!first)
                os << ", ";
            first = false;
            boss::trace::json::writeString(os, label.key);
            os << ": ";
            boss::trace::json::writeString(os, label.value);
        }
        os << "},\n  \"serve\":\n";
        group.dumpJson(os, 2);
        os << "\n}\n";
    }
    if (!opts.traceOut.empty()) {
        std::ofstream os(opts.traceOut);
        if (!os)
            BOSS_FATAL("cannot open '", opts.traceOut,
                       "' for writing");
        boss::trace::writeChromeTrace(os, *recorder);
        std::printf("wrote %zu trace events to %s",
                    recorder->eventCount(), opts.traceOut.c_str());
        if (recorder->droppedEvents() > 0)
            std::printf(" (%llu evicted by --trace-cap %zu)",
                        static_cast<unsigned long long>(
                            recorder->droppedEvents()),
                        opts.traceCap);
        std::printf("\n");
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts;
    int argi = 1;
    while (argi < argc && argv[argi][0] == '-') {
        std::string arg = argv[argi];
        std::string value;
        if (arg == "--qps") {
            double q = argi + 1 < argc
                           ? std::strtod(argv[argi + 1], nullptr)
                           : 0.0;
            if (q <= 0.0) {
                std::fprintf(stderr, "--qps wants a positive rate\n");
                return 2;
            }
            opts.qps = q;
            argi += 2;
        } else if (arg == "--queries") {
            opts.queries = static_cast<std::size_t>(
                numberAfter(argi, argc, argv, "--queries"));
        } else if (arg == "--distinct") {
            opts.distinct = static_cast<std::size_t>(
                numberAfter(argi, argc, argv, "--distinct"));
        } else if (arg == "--seed") {
            opts.seed = static_cast<std::uint64_t>(
                numberAfter(argi, argc, argv, "--seed"));
        } else if (arg == "--queue") {
            opts.queueCapacity = static_cast<std::size_t>(
                numberAfter(argi, argc, argv, "--queue"));
        } else if (arg == "--warmup") {
            opts.warmup = static_cast<std::size_t>(
                numberAfter(argi, argc, argv, "--warmup"));
        } else if (arg == "--shards") {
            opts.shards = numberAfter(argi, argc, argv, "--shards");
            if (opts.shards < 1) {
                std::fprintf(stderr,
                             "--shards wants a positive count\n");
                return 2;
            }
        } else if (arg == "--threads") {
            long n = numberAfter(argi, argc, argv, "--threads");
            if (n < 1) {
                std::fprintf(stderr,
                             "--threads wants a positive count\n");
                return 2;
            }
            boss::common::ThreadPool::setGlobalThreads(
                static_cast<std::size_t>(n));
        } else if (arg == "--deadline-us") {
            double d = argi + 1 < argc
                           ? std::strtod(argv[argi + 1], nullptr)
                           : 0.0;
            if (d <= 0.0) {
                std::fprintf(stderr,
                             "--deadline-us wants a positive "
                             "deadline\n");
                return 2;
            }
            opts.deadlineUs = d;
            argi += 2;
        } else if (matchValueFlag(argv[argi], "--arrival", value)) {
            if (value == "poisson") {
                opts.arrival = boss::serve::ArrivalProcess::Poisson;
            } else if (value == "bursty") {
                opts.arrival = boss::serve::ArrivalProcess::Bursty;
            } else {
                std::fprintf(stderr,
                             "--arrival wants poisson|bursty\n");
                return 2;
            }
            ++argi;
        } else if (matchValueFlag(argv[argi], "--policy", value)) {
            if (value == "block") {
                opts.policy = boss::serve::ShedPolicy::Block;
            } else if (value == "drop-tail") {
                opts.policy = boss::serve::ShedPolicy::DropTail;
            } else if (value == "drop-deadline") {
                opts.policy = boss::serve::ShedPolicy::DropDeadline;
            } else {
                std::fprintf(stderr,
                             "--policy wants block|drop-tail|"
                             "drop-deadline\n");
                return 2;
            }
            ++argi;
        } else if (matchValueFlag(argv[argi], "--mode", value)) {
            if (value == "pipelined") {
                opts.mode = boss::serve::PipelineMode::Pipelined;
            } else if (value == "barrier") {
                opts.mode = boss::serve::PipelineMode::Barrier;
            } else {
                std::fprintf(stderr,
                             "--mode wants pipelined|barrier\n");
                return 2;
            }
            ++argi;
        } else if (arg == "--trace-cap") {
            opts.traceCap = static_cast<std::size_t>(
                numberAfter(argi, argc, argv, "--trace-cap"));
        } else if (arg == "--metrics-port") {
            opts.metricsPort =
                numberAfter(argi, argc, argv, "--metrics-port");
            if (opts.metricsPort > 65535) {
                std::fprintf(stderr,
                             "--metrics-port wants 0..65535\n");
                return 2;
            }
        } else if (arg == "--metrics-period-ms") {
            double p = argi + 1 < argc
                           ? std::strtod(argv[argi + 1], nullptr)
                           : 0.0;
            if (p <= 0.0) {
                std::fprintf(stderr,
                             "--metrics-period-ms wants a positive "
                             "period\n");
                return 2;
            }
            opts.metricsPeriodMs = p;
            argi += 2;
        } else if (matchValueFlag(argv[argi], "--stats-json",
                                  opts.statsJson) ||
                   matchValueFlag(argv[argi], "--trace-out",
                                  opts.traceOut) ||
                   matchValueFlag(argv[argi], "--metrics-out",
                                  opts.metricsOut) ||
                   matchValueFlag(argv[argi], "--flight-out",
                                  opts.flightOut)) {
            ++argi;
        } else if (arg == "--ingest-rate") {
            double r = argi + 1 < argc
                           ? std::strtod(argv[argi + 1], nullptr)
                           : -1.0;
            if (r < 0.0) {
                std::fprintf(stderr,
                             "--ingest-rate wants a non-negative "
                             "rate\n");
                return 2;
            }
            opts.ingestRate = r;
            argi += 2;
        } else if (arg == "--delete-fraction") {
            double f = argi + 1 < argc
                           ? std::strtod(argv[argi + 1], nullptr)
                           : -1.0;
            if (f < 0.0 || f > 1.0) {
                std::fprintf(stderr,
                             "--delete-fraction wants 0..1\n");
                return 2;
            }
            opts.deleteFraction = f;
            argi += 2;
        } else if (arg == "--refresh-ms") {
            double p = argi + 1 < argc
                           ? std::strtod(argv[argi + 1], nullptr)
                           : 0.0;
            if (p <= 0.0) {
                std::fprintf(stderr,
                             "--refresh-ms wants a positive "
                             "period\n");
                return 2;
            }
            opts.refreshMs = p;
            argi += 2;
        } else if (arg == "--no-merge") {
            opts.noMerge = true;
            ++argi;
        } else if (arg == "--cache-mb") {
            double mb = argi + 1 < argc
                            ? std::strtod(argv[argi + 1], nullptr)
                            : 0.0;
            if (mb <= 0.0) {
                std::fprintf(stderr,
                             "--cache-mb wants a positive size\n");
                return 2;
            }
            opts.cacheMb = mb;
            argi += 2;
        } else if (arg == "--mmap") {
            opts.mmap = true;
            ++argi;
        } else if (matchValueFlag(argv[argi], "--kernels", value)) {
            if (!boss::kernels::setTierByName(value)) {
                std::fprintf(stderr,
                             "--kernels wants scalar|sse42|avx2|"
                             "auto, got '%s'\n",
                             value.c_str());
                return 2;
            }
            ++argi;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n",
                         argv[argi]);
            return 2;
        }
    }
    if (argi >= argc) {
        std::fprintf(
            stderr,
            "usage: %s [--qps X] [--queries N] [--distinct N] "
            "[--seed N] [--arrival=poisson|bursty] [--queue N] "
            "[--policy=block|drop-tail|drop-deadline] "
            "[--mode=pipelined|barrier] [--deadline-us X] "
            "[--warmup N] [--shards N] [--threads N] "
            "[--stats-json=FILE] [--trace-out=FILE] "
            "[--trace-cap N] [--metrics-out=FILE] "
            "[--metrics-period-ms X] [--metrics-port N] "
            "[--flight-out=FILE] [--kernels=TIER] "
            "[--ingest-rate X] [--delete-fraction F] "
            "[--refresh-ms X] [--no-merge] [--cache-mb N] [--mmap] "
            "<index.idx | segment-dir>\n",
            argv[0]);
        return 2;
    }
    // Startup stamp: every serve log names the binary behind it.
    std::printf("boss_serve %s, kernels %.*s\n",
                boss::common::buildStamp().c_str(),
                static_cast<int>(
                    boss::kernels::activeTierName().size()),
                boss::kernels::activeTierName().data());

    if ((opts.cacheMb > 0 || opts.mmap) &&
        (opts.shards > 1 ||
         std::filesystem::is_directory(argv[argi]))) {
        std::fprintf(stderr,
                     "--cache-mb and --mmap serve a single "
                     "index-file device (no --shards, no live "
                     "segment dir)\n");
        return 2;
    }
    if (std::filesystem::is_directory(argv[argi])) {
        // Live mode: serve the segment directory while ingesting.
        const std::filesystem::path dir = argv[argi];
        std::ifstream ls(dir / "lexicon", std::ios::binary);
        if (!ls) {
            std::fprintf(stderr,
                         "'%s' has no lexicon; build it with "
                         "boss_indexer --append\n",
                         argv[argi]);
            return 1;
        }
        boss::index::Lexicon lexicon =
            boss::index::Lexicon::load(ls);
        if (lexicon.size() == 0) {
            std::fprintf(stderr, "empty lexicon in '%s'\n",
                         argv[argi]);
            return 1;
        }
        boss::api::LiveDeviceConfig cfg;
        cfg.live.dir = dir.string();
        cfg.live.termBoundHint = lexicon.size();
        boss::api::LiveDevice device(cfg);
        const std::uint32_t vocab = lexicon.size();
        device.setLexicon(std::move(lexicon));
        std::printf("loaded live index: %u docs in %u segments, "
                    "epoch %llu, %u terms\n",
                    device.live().liveDocs(),
                    device.live().segmentCount(),
                    static_cast<unsigned long long>(
                        device.live().epoch()),
                    vocab);
        boss::serve::LiveBackend backend(device);
        IngestDriver ingest(device, opts);
        return serveSession(backend, vocab, opts, &ingest);
    }
    if (opts.shards > 1) {
        boss::api::ShardedDeviceConfig cfg;
        cfg.shards = static_cast<std::uint32_t>(opts.shards);
        boss::api::ShardedDevice device(cfg);
        device.loadTextIndexFile(argv[argi]);
        std::printf("loaded %u docs / %u terms across %u shards\n",
                    device.map().numDocs(),
                    device.shard(0).lexicon().size(),
                    device.numShards());
        boss::serve::ShardedBackend backend(device);
        return serveSession(backend,
                            device.shard(0).lexicon().size(),
                            opts);
    }
    boss::accel::DeviceConfig dcfg;
    dcfg.cacheMB = opts.cacheMb;
    boss::accel::Device device(dcfg);
    if (opts.mmap)
        device.loadMappedTextIndexFile(argv[argi]);
    else
        device.loadTextIndexFile(argv[argi]);
    std::printf("loaded %u docs / %u terms%s%s\n",
                device.index().numDocs(), device.lexicon().size(),
                opts.mmap ? " (mmap)" : "",
                opts.cacheMb > 0 ? ", DRAM block cache on" : "");
    boss::serve::DeviceBackend backend(device);
    CacheSync cacheSync(device);
    return serveSession(backend, device.lexicon().size(), opts,
                        nullptr,
                        opts.cacheMb > 0 ? &cacheSync : nullptr);
}
