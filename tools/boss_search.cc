/**
 * @file
 * boss_search: serve queries against a BOSS text index on the
 * simulated accelerator.
 *
 * Usage:
 *   boss_search [options] <index.idx> [query...]
 *
 * With query arguments, runs each and exits; otherwise reads queries
 * from stdin (one per line). Queries use the offloading-API grammar
 * with quoted terms, e.g.:  "storage" AND ("memory" OR "disk")
 * A bare list of words is treated as their OR.
 *
 * Options:
 *   --threads N            host thread pool size for batch trace
 *                          building (default: all hardware threads;
 *                          results never depend on the thread count)
 *   --shards N             partition the index across N simulated
 *                          devices with host-side top-k merging
 *                          (results are bit-identical for any N)
 *   --trace-out=FILE       write a Chrome trace_event JSON timeline
 *                          of the session (load in Perfetto or
 *                          chrome://tracing)
 *   --stats-json=FILE      write the full stats tree (host pool +
 *                          last search's simulation groups) as JSON
 *   --query-summaries=FILE write one JSON record per query (cycles,
 *                          blocks skipped/loaded, bytes per traffic
 *                          class, ...; see tools/boss_tracecat)
 *   --fault-spec=SPEC      inject SCM media faults, e.g.
 *                          "ber=1e-6,stuck=1e-4,dead-shard=2"
 *                          (see mem/fault_model.h for the grammar);
 *                          queries degrade — never crash — and the
 *                          per-query output flags partial coverage
 *   --fault-seed=N         base seed of the fault schedule (default
 *                          0xB055); same spec + seed => identical
 *                          faults at any thread or shard count
 *   --cache-mb N           DRAM block-cache tier of N MiB in front
 *                          of the SCM device (single device only):
 *                          hot posting blocks are served at DRAM
 *                          timing, misses at SCM timing; per-query
 *                          output reports the hit rate and the
 *                          DRAM/SCM traffic split
 *   --mmap                 mmap the index file instead of copying it
 *                          to the heap (single device only): startup
 *                          is O(metadata) and block CRCs are
 *                          verified lazily on first decode
 *   --kernels=TIER         host SIMD kernel tier for block decode /
 *                          scoring: scalar|sse42|avx2|auto (default:
 *                          the BOSS_KERNELS env var, else auto =
 *                          best supported). Every tier is bit-exact;
 *                          this only changes host-side speed.
 *   --warmup N             run N unrecorded warmup searches (cycling
 *                          the given queries) before the session, so
 *                          the per-worker decode arenas and caches
 *                          are hot when measurement starts
 *   --serve                serving mode: drive the given queries as
 *                          a seeded open-loop stream (see
 *                          tools/boss_serve for the full-featured
 *                          harness) and report tail latency
 *   --qps X                offered load for --serve (default 2000)
 *   --serve-queries N      offered query count for --serve
 *                          (default 1000)
 *   --deadline-us X        per-query SLO for --serve (default none)
 *   --metrics-out=FILE     --serve only: append one JSONL metrics
 *                          snapshot per period while serving
 *   --metrics-period-ms X  snapshot period (default 500)
 *   --metrics-port N       --serve only: Prometheus /metrics
 *                          endpoint (0 = ephemeral port)
 *   --flight-out=FILE      --serve only: flight-recorder Chrome
 *                          trace dump at exit
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "api/sharded_device.h"
#include "boss/device.h"
#include "common/buildinfo.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "kernels/kernels.h"
#include "index/text_builder.h"
#include "mem/fault_model.h"
#include "serve/server.h"
#include "telemetry/http_exporter.h"
#include "telemetry/serve_telemetry.h"
#include "telemetry/snapshotter.h"
#include "trace/chrome_trace.h"
#include "trace/json.h"
#include "trace/summary.h"

namespace
{

struct Options
{
    std::string traceOut;
    std::string statsJson;
    std::string querySummaries;
    boss::mem::FaultSpec faults;
    std::uint64_t faultSeed = 0xB055;
    std::size_t warmup = 0;
    bool serve = false;
    double qps = 2000.0;
    std::size_t serveQueries = 1000;
    double deadlineUs = std::numeric_limits<double>::infinity();
    std::string metricsOut;
    double metricsPeriodMs = 500.0;
    long metricsPort = -1; ///< -1 = no HTTP endpoint
    std::string flightOut;
    double cacheMb = 0.0; ///< DRAM block-cache tier (0 = off)
    bool mmap = false;    ///< mmap the index instead of heap load
};

/** Build-identity labels every metrics surface carries. */
std::vector<boss::telemetry::Label>
buildLabels()
{
    return {{"git", std::string(boss::common::buildGitHash())},
            {"compiler", std::string(boss::common::buildCompiler())},
            {"kernels",
             std::string(boss::kernels::activeTierName())}};
}

/** Words without quotes become an OR of quoted terms. */
std::string
normalizeQuery(const std::string &raw)
{
    if (raw.find('"') != std::string::npos)
        return raw;
    std::istringstream iss(raw);
    std::string word;
    std::string expr;
    while (iss >> word) {
        if (!expr.empty())
            expr += " OR ";
        expr += "\"" + word + "\"";
    }
    return expr;
}

std::vector<boss::trace::QuerySummary>
summariesOf(boss::accel::Device &device)
{
    return device.querySummaries();
}

std::vector<boss::trace::QuerySummary>
summariesOf(boss::api::ShardedDevice &device)
{
    // Host-level view: work summed over shards, latency from the
    // slowest shard.
    return device.aggregatedSummaries();
}

/** Per-query cache line for a single device (silent without one). */
void
printCache(const boss::accel::Device &device,
           const boss::accel::SearchOutcome &outcome)
{
    if (device.blockCache() == nullptr || outcome.cacheLookups == 0)
        return;
    double hitPct = 100.0 * static_cast<double>(outcome.cacheHits) /
                    static_cast<double>(outcome.cacheLookups);
    std::printf("  cache: %llu/%llu hits (%.1f%%), %.1f KB DRAM / "
                "%.1f KB SCM, %llu evictions\n",
                static_cast<unsigned long long>(outcome.cacheHits),
                static_cast<unsigned long long>(outcome.cacheLookups),
                hitPct, static_cast<double>(outcome.dramBytes) / 1e3,
                static_cast<double>(outcome.deviceBytes) / 1e3,
                static_cast<unsigned long long>(
                    outcome.cacheEvictions));
}

/** Sharded devices run without the cache tier (no-op). */
void
printCache(const boss::api::ShardedDevice &,
           const boss::api::ShardedOutcome &)
{
}

/** Per-query resilience line for a single device. */
void
printResilience(const boss::accel::Device &,
                const boss::accel::SearchOutcome &outcome)
{
    if (outcome.crcRetries == 0 && outcome.blocksDropped == 0)
        return;
    std::printf("  resilience: %llu CRC retries, %llu blocks "
                "dropped\n",
                static_cast<unsigned long long>(outcome.crcRetries),
                static_cast<unsigned long long>(
                    outcome.blocksDropped));
}

/** Per-query resilience line with shard coverage. */
void
printResilience(const boss::api::ShardedDevice &device,
                const boss::api::ShardedOutcome &outcome)
{
    if (!outcome.deadShards.empty()) {
        std::uint32_t total = device.numShards();
        std::printf("  partial coverage: %u/%u shards (dead:",
                    static_cast<std::uint32_t>(
                        total - outcome.deadShards.size()),
                    total);
        for (std::uint32_t s : outcome.deadShards)
            std::printf(" %u", s);
        std::printf(")\n");
    }
    if (outcome.crcRetries != 0 || outcome.blocksDropped != 0) {
        std::printf("  resilience: %llu CRC retries, %llu blocks "
                    "dropped\n",
                    static_cast<unsigned long long>(
                        outcome.crcRetries),
                    static_cast<unsigned long long>(
                        outcome.blocksDropped));
    }
}

template <typename Dev>
void
runQuery(Dev &device, const std::string &raw,
         std::ofstream *summariesOut)
{
    std::string expr = normalizeQuery(raw);
    if (expr.empty())
        return;

    auto outcome = device.search(expr);
    std::printf("%zu results in %.1f us (simulated; %.1f KB SCM "
                "traffic, %llu docs scored)\n",
                outcome.topk.size(), outcome.simSeconds * 1e6,
                static_cast<double>(outcome.deviceBytes) / 1e3,
                static_cast<unsigned long long>(outcome.evaluatedDocs));
    printCache(device, outcome);
    printResilience(device, outcome);
    std::size_t show = std::min<std::size_t>(10, outcome.topk.size());
    for (std::size_t i = 0; i < show; ++i) {
        std::printf("  %2zu. doc %-10u score %.4f\n", i + 1,
                    outcome.topk[i].doc, outcome.topk[i].score);
    }
    if (summariesOut != nullptr) {
        boss::trace::writeSummaries(*summariesOut,
                                    summariesOf(device));
    }
}

/** Match --name=VALUE, storing VALUE. */
bool
matchValueFlag(const char *arg, const char *name, std::string &out)
{
    std::size_t len = std::strlen(name);
    if (std::strncmp(arg, name, len) != 0 || arg[len] != '=')
        return false;
    out = arg + len + 1;
    return true;
}

std::ofstream
openOut(const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        BOSS_FATAL("cannot open '", path, "' for writing");
    return os;
}

void
printLoaded(boss::accel::Device &device)
{
    std::printf("loaded %u docs / %u terms; device: %u BOSS cores, "
                "4-channel SCM\n",
                device.index().numDocs(), device.lexicon().size(),
                device.config().cores);
}

void
printLoaded(boss::api::ShardedDevice &device)
{
    std::printf("loaded %u docs / %u terms across %u shards; "
                "per shard: %u BOSS cores, 4-channel SCM\n",
                device.map().numDocs(),
                device.shard(0).lexicon().size(), device.numShards(),
                device.shard(0).config().cores);
}

void
loadIndexFor(boss::accel::Device &device, const char *path, bool mmap)
{
    if (mmap)
        device.loadMappedTextIndexFile(path);
    else
        device.loadTextIndexFile(path);
}

void
loadIndexFor(boss::api::ShardedDevice &device, const char *path,
             bool mmap)
{
    BOSS_ASSERT(!mmap, "--mmap is single-device only");
    device.loadTextIndexFile(path);
}

std::unique_ptr<boss::serve::Backend>
makeBackend(boss::accel::Device &device)
{
    return std::make_unique<boss::serve::DeviceBackend>(device);
}

std::unique_ptr<boss::serve::Backend>
makeBackend(boss::api::ShardedDevice &device)
{
    return std::make_unique<boss::serve::ShardedBackend>(device);
}

/** Collect the session's queries as normalized expressions. */
std::vector<std::string>
collectQueries(int argc, char **argv, int argi)
{
    std::vector<std::string> exprs;
    if (argi < argc) {
        for (int i = argi; i < argc; ++i) {
            std::string expr = normalizeQuery(argv[i]);
            if (!expr.empty())
                exprs.push_back(std::move(expr));
        }
    } else {
        std::string line;
        while (std::getline(std::cin, line)) {
            std::string expr = normalizeQuery(line);
            if (!expr.empty())
                exprs.push_back(std::move(expr));
        }
    }
    return exprs;
}

/**
 * --serve: drive the given queries as an open-loop stream instead
 * of one-shot lookups. The serve stats group (not the device stats
 * tree) backs --stats-json here; --trace-out carries the per-query
 * queue/serve spans.
 */
template <typename Dev>
int
runServe(Dev &device, const Options &opts, int argc, char **argv,
         int argi)
{
    std::vector<std::string> exprs =
        collectQueries(argc, argv, argi);
    if (exprs.empty()) {
        std::fprintf(stderr, "--serve needs at least one query\n");
        return 2;
    }
    auto backend = makeBackend(device);
    boss::serve::ServeConfig scfg;
    scfg.arrivals.qps = opts.qps;
    scfg.arrivals.count = opts.serveQueries;
    scfg.arrivals.seed = boss::splitSeed(opts.faultSeed, 0x5e12e);
    scfg.deadlineUs = opts.deadlineUs;
    scfg.warmup = opts.warmup;
    boss::serve::Server server(*backend, scfg);
    std::optional<boss::trace::Recorder> recorder;
    if (!opts.traceOut.empty()) {
        recorder.emplace();
        // Serve-mode tracing is bounded: a long stream must not
        // grow the recorder without limit (boss_serve exposes the
        // knob as --trace-cap).
        recorder->setEventCapacity(65536);
        server.setRecorder(&*recorder);
    }

    const bool wantTelemetry = !opts.metricsOut.empty() ||
                               opts.metricsPort >= 0 ||
                               !opts.flightOut.empty();
    std::optional<boss::telemetry::ServeTelemetry> telemetry;
    std::optional<boss::telemetry::Snapshotter> snapshotter;
    std::optional<boss::telemetry::HttpExporter> exporter;
    if (wantTelemetry) {
        telemetry.emplace();
        telemetry->setBuildInfo(buildLabels());
        server.setTelemetry(&*telemetry);
        auto clock = [tel = &*telemetry] { return tel->nowUs(); };
        if (!opts.metricsOut.empty()) {
            boss::telemetry::Snapshotter::Config cfg;
            cfg.jsonlPath = opts.metricsOut;
            cfg.periodMs = opts.metricsPeriodMs;
            snapshotter.emplace(telemetry->registry(), clock, cfg);
            snapshotter->start();
        }
        if (opts.metricsPort >= 0) {
            boss::telemetry::HttpExporter::Config cfg;
            cfg.port =
                static_cast<std::uint16_t>(opts.metricsPort);
            exporter.emplace(telemetry->registry(),
                             &telemetry->flight(), clock, cfg);
            std::string error;
            if (exporter->start(&error)) {
                std::printf("metrics endpoint on port %u "
                            "(/metrics /flight /healthz)\n",
                            exporter->port());
            } else {
                std::fprintf(stderr,
                             "metrics endpoint disabled: %s\n",
                             error.c_str());
                exporter.reset();
            }
        }
    }

    auto report = server.run(exprs);

    if (snapshotter.has_value()) {
        snapshotter->stop();
        std::printf("wrote %llu metrics snapshots to %s\n",
                    static_cast<unsigned long long>(
                        snapshotter->snapshots()),
                    opts.metricsOut.c_str());
    }
    if (exporter.has_value())
        exporter->stop();
    if (!opts.flightOut.empty()) {
        auto os = openOut(opts.flightOut);
        telemetry->flight().dumpChromeTrace(os);
        std::printf("wrote flight recorder (%zu slow, %zu shed) "
                    "to %s\n",
                    telemetry->flight().slowCount(),
                    telemetry->flight().shedCount(),
                    opts.flightOut.c_str());
    }
    double goodPct =
        report.offered == 0
            ? 0.0
            : 100.0 * static_cast<double>(report.good) /
                  static_cast<double>(report.offered);
    std::printf("served %llu/%llu queries @ %.1f qps offered "
                "(%llu shed, %llu expired); goodput %.2f%%\n",
                static_cast<unsigned long long>(report.completed),
                static_cast<unsigned long long>(report.offered),
                report.offeredQps,
                static_cast<unsigned long long>(report.shed),
                static_cast<unsigned long long>(report.expired),
                goodPct);
    std::printf("latency us: p50 %.1f  p99 %.1f  p999 %.1f  "
                "max %.1f\n",
                report.latencyP50Us, report.latencyP99Us,
                report.latencyP999Us, report.latencyMaxUs);
    if (!opts.statsJson.empty()) {
        auto os = openOut(opts.statsJson);
        boss::stats::Group group("serve");
        server.registerStats(group);
        os << "{\n  \"build\": {";
        bool first = true;
        for (const auto &label : buildLabels()) {
            if (!first)
                os << ", ";
            first = false;
            boss::trace::json::writeString(os, label.key);
            os << ": ";
            boss::trace::json::writeString(os, label.value);
        }
        os << "},\n  \"serve\":\n";
        group.dumpJson(os, 2);
        os << "\n}\n";
    }
    if (!opts.traceOut.empty()) {
        auto os = openOut(opts.traceOut);
        boss::trace::writeChromeTrace(os, *recorder);
        std::printf("wrote %zu trace events to %s",
                    recorder->eventCount(), opts.traceOut.c_str());
        if (recorder->droppedEvents() > 0)
            std::printf(" (%llu evicted by the serve-mode ring)",
                        static_cast<unsigned long long>(
                            recorder->droppedEvents()));
        std::printf("\n");
    }
    return 0;
}

template <typename Dev>
int
runSession(Dev &device, const Options &opts, int argc, char **argv,
           int argi)
{
    loadIndexFor(device, argv[argi], opts.mmap);
    ++argi;
    printLoaded(device);

    if (opts.serve)
        return runServe(device, opts, argc, argv, argi);

    // Warmup before any observability attaches: the warmup searches
    // heat the per-worker decode arenas without polluting traces,
    // stats or summaries.
    if (opts.warmup > 0 && argi < argc) {
        int nq = argc - argi;
        for (std::size_t w = 0; w < opts.warmup; ++w) {
            std::string expr = normalizeQuery(
                argv[argi + static_cast<int>(w) % nq]);
            if (!expr.empty())
                device.search(expr);
        }
    }

    // The recorder sizes its buffers off the pool, so create it
    // after --threads took effect.
    std::optional<boss::trace::Recorder> recorder;
    if (!opts.traceOut.empty()) {
        recorder.emplace();
        device.setRecorder(&*recorder);
    }
    if (!opts.statsJson.empty())
        device.enableStatsCapture(true);
    std::optional<std::ofstream> summariesOut;
    if (!opts.querySummaries.empty()) {
        device.enableQuerySummaries(true);
        summariesOut.emplace(openOut(opts.querySummaries));
    }

    if (argi < argc) {
        for (int i = argi; i < argc; ++i) {
            std::printf("\nquery: %s\n", argv[i]);
            runQuery(device, argv[i],
                     summariesOut ? &*summariesOut : nullptr);
        }
    } else {
        std::printf("enter queries (one per line, ctrl-d to exit)\n");
        std::string line;
        while (std::getline(std::cin, line)) {
            if (!line.empty())
                runQuery(device, line,
                         summariesOut ? &*summariesOut : nullptr);
        }
    }

    if (!opts.traceOut.empty()) {
        auto os = openOut(opts.traceOut);
        boss::trace::writeChromeTrace(os, *recorder);
        std::printf("wrote %zu trace events to %s\n",
                    recorder->eventCount(), opts.traceOut.c_str());
    }
    if (!opts.statsJson.empty()) {
        auto os = openOut(opts.statsJson);
        device.writeStatsJson(os);
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts;
    long shards = 1;
    int argi = 1;
    while (argi < argc && argv[argi][0] == '-') {
        std::string arg = argv[argi];
        if (arg == "--threads") {
            long n = argi + 1 < argc
                         ? std::strtol(argv[argi + 1], nullptr, 10)
                         : 0;
            if (n < 1) {
                std::fprintf(stderr,
                             "--threads wants a positive count\n");
                return 2;
            }
            boss::common::ThreadPool::setGlobalThreads(
                static_cast<std::size_t>(n));
            argi += 2;
        } else if (arg == "--shards") {
            shards = argi + 1 < argc
                         ? std::strtol(argv[argi + 1], nullptr, 10)
                         : 0;
            if (shards < 1) {
                std::fprintf(stderr,
                             "--shards wants a positive count\n");
                return 2;
            }
            argi += 2;
        } else if (matchValueFlag(argv[argi], "--trace-out",
                                  opts.traceOut) ||
                   matchValueFlag(argv[argi], "--stats-json",
                                  opts.statsJson) ||
                   matchValueFlag(argv[argi], "--query-summaries",
                                  opts.querySummaries) ||
                   matchValueFlag(argv[argi], "--metrics-out",
                                  opts.metricsOut) ||
                   matchValueFlag(argv[argi], "--flight-out",
                                  opts.flightOut)) {
            ++argi;
        } else if (arg == "--metrics-port") {
            long n = argi + 1 < argc
                         ? std::strtol(argv[argi + 1], nullptr, 10)
                         : -1;
            if (n < 0 || n > 65535) {
                std::fprintf(stderr,
                             "--metrics-port wants 0..65535\n");
                return 2;
            }
            opts.metricsPort = n;
            argi += 2;
        } else if (arg == "--metrics-period-ms") {
            double p = argi + 1 < argc
                           ? std::strtod(argv[argi + 1], nullptr)
                           : 0.0;
            if (p <= 0.0) {
                std::fprintf(stderr,
                             "--metrics-period-ms wants a positive "
                             "period\n");
                return 2;
            }
            opts.metricsPeriodMs = p;
            argi += 2;
        } else if (std::string spec;
                   matchValueFlag(argv[argi], "--fault-spec", spec)) {
            opts.faults = boss::mem::parseFaultSpec(spec);
            ++argi;
        } else if (std::string seed;
                   matchValueFlag(argv[argi], "--fault-seed", seed)) {
            opts.faultSeed = std::strtoull(seed.c_str(), nullptr, 0);
            ++argi;
        } else if (arg == "--warmup") {
            long n = argi + 1 < argc
                         ? std::strtol(argv[argi + 1], nullptr, 10)
                         : -1;
            if (n < 0) {
                std::fprintf(stderr,
                             "--warmup wants a non-negative "
                             "count\n");
                return 2;
            }
            opts.warmup = static_cast<std::size_t>(n);
            argi += 2;
        } else if (arg == "--cache-mb") {
            double mb = argi + 1 < argc
                            ? std::strtod(argv[argi + 1], nullptr)
                            : 0.0;
            if (mb <= 0.0) {
                std::fprintf(stderr,
                             "--cache-mb wants a positive size\n");
                return 2;
            }
            opts.cacheMb = mb;
            argi += 2;
        } else if (arg == "--mmap") {
            opts.mmap = true;
            ++argi;
        } else if (arg == "--serve") {
            opts.serve = true;
            ++argi;
        } else if (arg == "--qps") {
            double q = argi + 1 < argc
                           ? std::strtod(argv[argi + 1], nullptr)
                           : 0.0;
            if (q <= 0.0) {
                std::fprintf(stderr,
                             "--qps wants a positive rate\n");
                return 2;
            }
            opts.qps = q;
            argi += 2;
        } else if (arg == "--serve-queries") {
            long n = argi + 1 < argc
                         ? std::strtol(argv[argi + 1], nullptr, 10)
                         : 0;
            if (n < 1) {
                std::fprintf(stderr,
                             "--serve-queries wants a positive "
                             "count\n");
                return 2;
            }
            opts.serveQueries = static_cast<std::size_t>(n);
            argi += 2;
        } else if (arg == "--deadline-us") {
            double d = argi + 1 < argc
                           ? std::strtod(argv[argi + 1], nullptr)
                           : 0.0;
            if (d <= 0.0) {
                std::fprintf(stderr,
                             "--deadline-us wants a positive "
                             "deadline\n");
                return 2;
            }
            opts.deadlineUs = d;
            argi += 2;
        } else if (std::string tier;
                   matchValueFlag(argv[argi], "--kernels", tier)) {
            if (!boss::kernels::setTierByName(tier)) {
                std::fprintf(stderr,
                             "--kernels wants scalar|sse42|avx2|auto, "
                             "got '%s'\n",
                             tier.c_str());
                return 2;
            }
            ++argi;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n",
                         argv[argi]);
            return 2;
        }
    }
    if (argi >= argc) {
        std::fprintf(
            stderr,
            "usage: %s [--threads N] [--shards N] [--trace-out=FILE] "
            "[--stats-json=FILE] [--query-summaries=FILE] "
            "[--fault-spec=SPEC] [--fault-seed=N] [--kernels=TIER] "
            "[--warmup N] [--serve] [--qps X] [--serve-queries N] "
            "[--deadline-us X] [--metrics-out=FILE] "
            "[--metrics-period-ms X] [--metrics-port N] "
            "[--flight-out=FILE] [--cache-mb N] [--mmap] "
            "<index.idx> [query...]\n",
            argv[0]);
        return 2;
    }

    if (shards > 1 && (opts.cacheMb > 0 || opts.mmap)) {
        std::fprintf(stderr, "--cache-mb and --mmap are single-device "
                             "options (no --shards)\n");
        return 2;
    }
    if (shards > 1) {
        boss::api::ShardedDeviceConfig cfg;
        cfg.shards = static_cast<std::uint32_t>(shards);
        cfg.device.faults = opts.faults;
        cfg.device.faultSeed = opts.faultSeed;
        boss::api::ShardedDevice device(cfg);
        return runSession(device, opts, argc, argv, argi);
    }
    boss::accel::DeviceConfig cfg;
    cfg.faults = opts.faults;
    cfg.faultSeed = opts.faultSeed;
    cfg.cacheMB = opts.cacheMb;
    boss::accel::Device device(cfg);
    return runSession(device, opts, argc, argv, argi);
}
