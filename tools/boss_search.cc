/**
 * @file
 * boss_search: serve queries against a BOSS text index on the
 * simulated accelerator.
 *
 * Usage:
 *   boss_search [options] <index.idx> [query...]
 *
 * With query arguments, runs each and exits; otherwise reads queries
 * from stdin (one per line). Queries use the offloading-API grammar
 * with quoted terms, e.g.:  "storage" AND ("memory" OR "disk")
 * A bare list of words is treated as their OR.
 *
 * Options:
 *   --threads N            host thread pool size for batch trace
 *                          building (default: all hardware threads;
 *                          results never depend on the thread count)
 *   --shards N             partition the index across N simulated
 *                          devices with host-side top-k merging
 *                          (results are bit-identical for any N)
 *   --trace-out=FILE       write a Chrome trace_event JSON timeline
 *                          of the session (load in Perfetto or
 *                          chrome://tracing)
 *   --stats-json=FILE      write the full stats tree (host pool +
 *                          last search's simulation groups) as JSON
 *   --query-summaries=FILE write one JSON record per query (cycles,
 *                          blocks skipped/loaded, bytes per traffic
 *                          class, ...; see tools/boss_tracecat)
 *   --fault-spec=SPEC      inject SCM media faults, e.g.
 *                          "ber=1e-6,stuck=1e-4,dead-shard=2"
 *                          (see mem/fault_model.h for the grammar);
 *                          queries degrade — never crash — and the
 *                          per-query output flags partial coverage
 *   --fault-seed=N         base seed of the fault schedule (default
 *                          0xB055); same spec + seed => identical
 *                          faults at any thread or shard count
 *   --kernels=TIER         host SIMD kernel tier for block decode /
 *                          scoring: scalar|sse42|avx2|auto (default:
 *                          the BOSS_KERNELS env var, else auto =
 *                          best supported). Every tier is bit-exact;
 *                          this only changes host-side speed.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "api/sharded_device.h"
#include "boss/device.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "kernels/kernels.h"
#include "index/text_builder.h"
#include "mem/fault_model.h"
#include "trace/chrome_trace.h"
#include "trace/summary.h"

namespace
{

struct Options
{
    std::string traceOut;
    std::string statsJson;
    std::string querySummaries;
    boss::mem::FaultSpec faults;
    std::uint64_t faultSeed = 0xB055;
};

/** Words without quotes become an OR of quoted terms. */
std::string
normalizeQuery(const std::string &raw)
{
    if (raw.find('"') != std::string::npos)
        return raw;
    std::istringstream iss(raw);
    std::string word;
    std::string expr;
    while (iss >> word) {
        if (!expr.empty())
            expr += " OR ";
        expr += "\"" + word + "\"";
    }
    return expr;
}

std::vector<boss::trace::QuerySummary>
summariesOf(boss::accel::Device &device)
{
    return device.querySummaries();
}

std::vector<boss::trace::QuerySummary>
summariesOf(boss::api::ShardedDevice &device)
{
    // Host-level view: work summed over shards, latency from the
    // slowest shard.
    return device.aggregatedSummaries();
}

/** Per-query resilience line for a single device. */
void
printResilience(const boss::accel::Device &,
                const boss::accel::SearchOutcome &outcome)
{
    if (outcome.crcRetries == 0 && outcome.blocksDropped == 0)
        return;
    std::printf("  resilience: %llu CRC retries, %llu blocks "
                "dropped\n",
                static_cast<unsigned long long>(outcome.crcRetries),
                static_cast<unsigned long long>(
                    outcome.blocksDropped));
}

/** Per-query resilience line with shard coverage. */
void
printResilience(const boss::api::ShardedDevice &device,
                const boss::api::ShardedOutcome &outcome)
{
    if (!outcome.deadShards.empty()) {
        std::uint32_t total = device.numShards();
        std::printf("  partial coverage: %u/%u shards (dead:",
                    static_cast<std::uint32_t>(
                        total - outcome.deadShards.size()),
                    total);
        for (std::uint32_t s : outcome.deadShards)
            std::printf(" %u", s);
        std::printf(")\n");
    }
    if (outcome.crcRetries != 0 || outcome.blocksDropped != 0) {
        std::printf("  resilience: %llu CRC retries, %llu blocks "
                    "dropped\n",
                    static_cast<unsigned long long>(
                        outcome.crcRetries),
                    static_cast<unsigned long long>(
                        outcome.blocksDropped));
    }
}

template <typename Dev>
void
runQuery(Dev &device, const std::string &raw,
         std::ofstream *summariesOut)
{
    std::string expr = normalizeQuery(raw);
    if (expr.empty())
        return;

    auto outcome = device.search(expr);
    std::printf("%zu results in %.1f us (simulated; %.1f KB SCM "
                "traffic, %llu docs scored)\n",
                outcome.topk.size(), outcome.simSeconds * 1e6,
                static_cast<double>(outcome.deviceBytes) / 1e3,
                static_cast<unsigned long long>(outcome.evaluatedDocs));
    printResilience(device, outcome);
    std::size_t show = std::min<std::size_t>(10, outcome.topk.size());
    for (std::size_t i = 0; i < show; ++i) {
        std::printf("  %2zu. doc %-10u score %.4f\n", i + 1,
                    outcome.topk[i].doc, outcome.topk[i].score);
    }
    if (summariesOut != nullptr) {
        boss::trace::writeSummaries(*summariesOut,
                                    summariesOf(device));
    }
}

/** Match --name=VALUE, storing VALUE. */
bool
matchValueFlag(const char *arg, const char *name, std::string &out)
{
    std::size_t len = std::strlen(name);
    if (std::strncmp(arg, name, len) != 0 || arg[len] != '=')
        return false;
    out = arg + len + 1;
    return true;
}

std::ofstream
openOut(const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        BOSS_FATAL("cannot open '", path, "' for writing");
    return os;
}

void
printLoaded(boss::accel::Device &device)
{
    std::printf("loaded %u docs / %u terms; device: %u BOSS cores, "
                "4-channel SCM\n",
                device.index().numDocs(), device.lexicon().size(),
                device.config().cores);
}

void
printLoaded(boss::api::ShardedDevice &device)
{
    std::printf("loaded %u docs / %u terms across %u shards; "
                "per shard: %u BOSS cores, 4-channel SCM\n",
                device.map().numDocs(),
                device.shard(0).lexicon().size(), device.numShards(),
                device.shard(0).config().cores);
}

template <typename Dev>
int
runSession(Dev &device, const Options &opts, int argc, char **argv,
           int argi)
{
    // The recorder sizes its buffers off the pool, so create it
    // after --threads took effect.
    std::optional<boss::trace::Recorder> recorder;
    if (!opts.traceOut.empty()) {
        recorder.emplace();
        device.setRecorder(&*recorder);
    }
    if (!opts.statsJson.empty())
        device.enableStatsCapture(true);
    std::optional<std::ofstream> summariesOut;
    if (!opts.querySummaries.empty()) {
        device.enableQuerySummaries(true);
        summariesOut.emplace(openOut(opts.querySummaries));
    }

    device.loadTextIndexFile(argv[argi]);
    ++argi;
    printLoaded(device);

    if (argi < argc) {
        for (int i = argi; i < argc; ++i) {
            std::printf("\nquery: %s\n", argv[i]);
            runQuery(device, argv[i],
                     summariesOut ? &*summariesOut : nullptr);
        }
    } else {
        std::printf("enter queries (one per line, ctrl-d to exit)\n");
        std::string line;
        while (std::getline(std::cin, line)) {
            if (!line.empty())
                runQuery(device, line,
                         summariesOut ? &*summariesOut : nullptr);
        }
    }

    if (!opts.traceOut.empty()) {
        auto os = openOut(opts.traceOut);
        boss::trace::writeChromeTrace(os, *recorder);
        std::printf("wrote %zu trace events to %s\n",
                    recorder->eventCount(), opts.traceOut.c_str());
    }
    if (!opts.statsJson.empty()) {
        auto os = openOut(opts.statsJson);
        device.writeStatsJson(os);
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts;
    long shards = 1;
    int argi = 1;
    while (argi < argc && argv[argi][0] == '-') {
        std::string arg = argv[argi];
        if (arg == "--threads") {
            long n = argi + 1 < argc
                         ? std::strtol(argv[argi + 1], nullptr, 10)
                         : 0;
            if (n < 1) {
                std::fprintf(stderr,
                             "--threads wants a positive count\n");
                return 2;
            }
            boss::common::ThreadPool::setGlobalThreads(
                static_cast<std::size_t>(n));
            argi += 2;
        } else if (arg == "--shards") {
            shards = argi + 1 < argc
                         ? std::strtol(argv[argi + 1], nullptr, 10)
                         : 0;
            if (shards < 1) {
                std::fprintf(stderr,
                             "--shards wants a positive count\n");
                return 2;
            }
            argi += 2;
        } else if (matchValueFlag(argv[argi], "--trace-out",
                                  opts.traceOut) ||
                   matchValueFlag(argv[argi], "--stats-json",
                                  opts.statsJson) ||
                   matchValueFlag(argv[argi], "--query-summaries",
                                  opts.querySummaries)) {
            ++argi;
        } else if (std::string spec;
                   matchValueFlag(argv[argi], "--fault-spec", spec)) {
            opts.faults = boss::mem::parseFaultSpec(spec);
            ++argi;
        } else if (std::string seed;
                   matchValueFlag(argv[argi], "--fault-seed", seed)) {
            opts.faultSeed = std::strtoull(seed.c_str(), nullptr, 0);
            ++argi;
        } else if (std::string tier;
                   matchValueFlag(argv[argi], "--kernels", tier)) {
            if (!boss::kernels::setTierByName(tier)) {
                std::fprintf(stderr,
                             "--kernels wants scalar|sse42|avx2|auto, "
                             "got '%s'\n",
                             tier.c_str());
                return 2;
            }
            ++argi;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n",
                         argv[argi]);
            return 2;
        }
    }
    if (argi >= argc) {
        std::fprintf(
            stderr,
            "usage: %s [--threads N] [--shards N] [--trace-out=FILE] "
            "[--stats-json=FILE] [--query-summaries=FILE] "
            "[--fault-spec=SPEC] [--fault-seed=N] [--kernels=TIER] "
            "<index.idx> [query...]\n",
            argv[0]);
        return 2;
    }

    if (shards > 1) {
        boss::api::ShardedDeviceConfig cfg;
        cfg.shards = static_cast<std::uint32_t>(shards);
        cfg.device.faults = opts.faults;
        cfg.device.faultSeed = opts.faultSeed;
        boss::api::ShardedDevice device(cfg);
        return runSession(device, opts, argc, argv, argi);
    }
    boss::accel::DeviceConfig cfg;
    cfg.faults = opts.faults;
    cfg.faultSeed = opts.faultSeed;
    boss::accel::Device device(cfg);
    return runSession(device, opts, argc, argv, argi);
}
