/**
 * @file
 * boss_search: serve queries against a BOSS text index on the
 * simulated accelerator.
 *
 * Usage:
 *   boss_search [--threads N] <index.idx> [query...]
 *
 * With query arguments, runs each and exits; otherwise reads queries
 * from stdin (one per line). Queries use the offloading-API grammar
 * with quoted terms, e.g.:  "storage" AND ("memory" OR "disk")
 * A bare list of words is treated as their OR.
 *
 * --threads N sizes the host thread pool used for batch trace
 * building (default: all hardware threads). Results never depend on
 * the thread count.
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#include "boss/device.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "index/text_builder.h"

namespace
{

/** Words without quotes become an OR of quoted terms. */
std::string
normalizeQuery(const std::string &raw)
{
    if (raw.find('"') != std::string::npos)
        return raw;
    std::istringstream iss(raw);
    std::string word;
    std::string expr;
    while (iss >> word) {
        if (!expr.empty())
            expr += " OR ";
        expr += "\"" + word + "\"";
    }
    return expr;
}

void
runQuery(boss::accel::Device &device, const std::string &raw)
{
    std::string expr = normalizeQuery(raw);
    if (expr.empty())
        return;

    // Drop query terms missing from the lexicon (with a warning)
    // rather than aborting the session.
    auto outcome = device.search(expr);
    std::printf("%zu results in %.1f us (simulated; %.1f KB SCM "
                "traffic, %llu docs scored)\n",
                outcome.topk.size(), outcome.simSeconds * 1e6,
                static_cast<double>(outcome.deviceBytes) / 1e3,
                static_cast<unsigned long long>(outcome.evaluatedDocs));
    std::size_t show = std::min<std::size_t>(10, outcome.topk.size());
    for (std::size_t i = 0; i < show; ++i) {
        std::printf("  %2zu. doc %-10u score %.4f\n", i + 1,
                    outcome.topk[i].doc, outcome.topk[i].score);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    int argi = 1;
    if (argi < argc && std::string(argv[argi]) == "--threads") {
        long n = argi + 1 < argc
                     ? std::strtol(argv[argi + 1], nullptr, 10)
                     : 0;
        if (n < 1) {
            std::fprintf(stderr, "--threads wants a positive count\n");
            return 2;
        }
        boss::common::ThreadPool::setGlobalThreads(
            static_cast<std::size_t>(n));
        argi += 2;
    }
    if (argi >= argc) {
        std::fprintf(stderr,
                     "usage: %s [--threads N] <index.idx> [query...]\n",
                     argv[0]);
        return 2;
    }

    boss::accel::Device device;
    device.loadTextIndexFile(argv[argi]);
    ++argi;
    std::printf("loaded %u docs / %u terms; device: %u BOSS cores, "
                "4-channel SCM\n",
                device.index().numDocs(), device.lexicon().size(),
                device.config().cores);

    if (argi < argc) {
        for (int i = argi; i < argc; ++i) {
            std::printf("\nquery: %s\n", argv[i]);
            runQuery(device, argv[i]);
        }
        return 0;
    }

    std::printf("enter queries (one per line, ctrl-d to exit)\n");
    std::string line;
    while (std::getline(std::cin, line)) {
        if (!line.empty())
            runQuery(device, line);
    }
    return 0;
}
