/**
 * @file
 * boss_tracecat: pretty-print per-query summary records produced by
 * `boss_search --query-summaries=FILE` (JSON Lines, one record per
 * query).
 *
 * Usage:
 *   boss_tracecat <summaries.jsonl>
 *   boss_tracecat -            # read stdin
 *
 * Prints one table row per query plus batch totals: replay cycles,
 * block skipping effectiveness, docs scored vs. skipped, and bytes
 * moved per traffic class (the paper's Fig. 15 categories).
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "trace/summary.h"

namespace
{

using boss::trace::QuerySummary;

void
printRow(const QuerySummary &s)
{
    std::uint64_t blocks = s.blocksLoaded + s.blocksSkipped;
    double skipPct =
        blocks > 0 ? 100.0 * static_cast<double>(s.blocksSkipped) /
                         static_cast<double>(blocks)
                   : 0.0;
    std::uint64_t bytes = 0;
    for (std::uint64_t b : s.classBytes)
        bytes += b;
    std::printf("%6llu %6llu %12llu %9llu %9llu %5.1f%% %10llu "
                "%10llu %8llu %10.1f\n",
                static_cast<unsigned long long>(s.query),
                static_cast<unsigned long long>(s.terms),
                static_cast<unsigned long long>(s.cycles),
                static_cast<unsigned long long>(s.blocksLoaded),
                static_cast<unsigned long long>(s.blocksSkipped),
                skipPct,
                static_cast<unsigned long long>(s.docsScored),
                static_cast<unsigned long long>(s.docsSkipped),
                static_cast<unsigned long long>(s.topkInserts),
                static_cast<double>(bytes) / 1e3);
}

int
run(std::istream &in)
{
    std::printf("%6s %6s %12s %9s %9s %6s %10s %10s %8s %10s\n",
                "query", "terms", "cycles", "blk_ld", "blk_skip",
                "skip", "scored", "skipped", "topk", "KB");
    QuerySummary total;
    std::size_t count = 0;
    std::string line;
    std::size_t lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        if (line.empty())
            continue;
        QuerySummary s;
        if (!boss::trace::parseJsonLine(line, s)) {
            std::fprintf(stderr,
                         "line %zu: not a query-summary record\n",
                         lineNo);
            return 1;
        }
        printRow(s);
        ++count;
        total.terms += s.terms;
        total.cycles += s.cycles;
        total.blocksLoaded += s.blocksLoaded;
        total.blocksSkipped += s.blocksSkipped;
        total.valuesDecoded += s.valuesDecoded;
        total.normsFetched += s.normsFetched;
        total.docsScored += s.docsScored;
        total.docsSkipped += s.docsSkipped;
        total.topkInserts += s.topkInserts;
        total.resultBytes += s.resultBytes;
        for (std::size_t c = 0; c < boss::trace::kNumTrafficClasses;
             ++c) {
            total.classBytes[c] += s.classBytes[c];
            total.classAccesses[c] += s.classAccesses[c];
        }
    }
    if (count == 0) {
        std::fprintf(stderr, "no records\n");
        return 1;
    }

    std::printf("\n%zu queries; totals:\n", count);
    std::printf("  cycles:         %llu\n",
                static_cast<unsigned long long>(total.cycles));
    std::printf("  values decoded: %llu\n",
                static_cast<unsigned long long>(total.valuesDecoded));
    std::printf("  norms fetched:  %llu\n",
                static_cast<unsigned long long>(total.normsFetched));
    std::printf("  result bytes:   %llu\n",
                static_cast<unsigned long long>(total.resultBytes));
    std::printf("  traffic (bytes / logical 64B accesses):\n");
    for (std::size_t c = 0; c < boss::trace::kNumTrafficClasses;
         ++c) {
        std::printf(
            "    %-10s %12llu %12llu\n",
            std::string(boss::trace::kTrafficClassNames[c]).c_str(),
            static_cast<unsigned long long>(total.classBytes[c]),
            static_cast<unsigned long long>(total.classAccesses[c]));
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 2) {
        std::fprintf(stderr, "usage: %s <summaries.jsonl | ->\n",
                     argv[0]);
        return 2;
    }
    if (std::strcmp(argv[1], "-") == 0)
        return run(std::cin);
    std::ifstream in(argv[1]);
    if (!in) {
        std::fprintf(stderr, "cannot open '%s'\n", argv[1]);
        return 1;
    }
    return run(in);
}
