/**
 * @file
 * End-to-end text search: ingest real documents, build the index +
 * lexicon, serve textual queries on the simulated accelerator, and
 * run a software second-stage re-ranker over BOSS's first-stage
 * top-k -- the full two-stage pipeline of the paper's Sec. II-B
 * (BOSS covers retrieval through first-stage top-k; re-ranking
 * stays in software).
 *
 *   ./examples/text_search
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "boss/device.h"
#include "common/logging.h"
#include "index/text_builder.h"

using namespace boss;

namespace
{

/** A tiny document collection about memory systems. */
const char *const kDocuments[] = {
    "Storage class memory bridges the gap between dram and disk in "
    "the memory hierarchy of modern data centers.",
    "Phase change memory is a storage class memory technology with "
    "byte addressable persistence and asymmetric write bandwidth.",
    "The inverted index is the standard data structure for full "
    "text search engines and is usually compressed in blocks.",
    "Near data processing places compute next to memory to avoid "
    "moving data across the shared interconnect to the host.",
    "Apache Lucene is a production grade search engine library "
    "driving many popular web services.",
    "Compute express link is a cache coherent interconnect that "
    "lets hosts attach pooled memory nodes with huge capacity.",
    "Early termination skips documents that cannot enter the top "
    "results, saving memory bandwidth during query processing.",
    "DRAM offers low latency and high bandwidth but limited "
    "capacity per channel compared to storage class memory.",
    "Query processing fetches posting lists, decompresses them, "
    "performs set operations, and ranks documents by score.",
    "A hardware top k module keeps only the best documents on the "
    "accelerator, so little data crosses the interconnect.",
    "Block max indexes store the maximum score of each block so "
    "search engines can skip blocks during retrieval.",
    "Memory pools built from storage class memory scale capacity "
    "without adding expensive processor sockets.",
};

/**
 * Second-stage re-ranker (software, as in the paper): boosts
 * documents by query-term proximity -- a stand-in for the neural
 * re-rankers the paper cites.
 */
std::vector<engine::Result>
rerank(const std::vector<std::string> &queryTerms,
       const std::vector<engine::Result> &firstStage)
{
    std::vector<engine::Result> out = firstStage;
    for (auto &r : out) {
        const std::string &text = kDocuments[r.doc];
        auto tokens = index::tokenize(text);
        // Proximity bonus: adjacent query-term pairs in the doc.
        double bonus = 0.0;
        for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
            bool a = std::find(queryTerms.begin(), queryTerms.end(),
                               tokens[i]) != queryTerms.end();
            bool b = std::find(queryTerms.begin(), queryTerms.end(),
                               tokens[i + 1]) != queryTerms.end();
            if (a && b)
                bonus += 0.5;
        }
        r.score += static_cast<Score>(bonus);
    }
    std::sort(out.begin(), out.end(), engine::ranksAbove);
    return out;
}

} // namespace

int
main()
{
    // Stage 0: offline indexing.
    index::TextIndexBuilder builder;
    for (const char *doc : kDocuments)
        builder.addDocument(doc);
    auto ti = builder.build();
    std::printf("indexed %u documents, %u distinct terms\n\n",
                ti.index.numDocs(), ti.lexicon.size());

    accel::Device device;
    device.loadTextIndex(std::move(ti));

    const struct
    {
        const char *expr;
        std::vector<std::string> terms;
    } queries[] = {
        {"\"storage\" AND \"memory\"", {"storage", "memory"}},
        {"\"bandwidth\" OR \"latency\"", {"bandwidth", "latency"}},
        {"\"memory\" AND (\"pooled\" OR \"pools\" OR \"capacity\")",
         {"memory", "pooled", "pools", "capacity"}},
    };

    for (const auto &q : queries) {
        std::printf("query: %s\n", q.expr);
        auto outcome = device.search(q.expr);
        std::printf("  first stage (BOSS, %.1f us simulated):\n",
                    outcome.simSeconds * 1e6);
        for (std::size_t i = 0;
             i < std::min<std::size_t>(3, outcome.topk.size()); ++i) {
            std::printf("    doc %-2u %.3f  \"%.60s...\"\n",
                        outcome.topk[i].doc, outcome.topk[i].score,
                        kDocuments[outcome.topk[i].doc]);
        }
        // Stage 2 in software, over the accelerator's candidates.
        auto reranked = rerank(q.terms, outcome.topk);
        std::printf("  after software re-ranking:\n");
        for (std::size_t i = 0;
             i < std::min<std::size_t>(3, reranked.size()); ++i) {
            std::printf("    doc %-2u %.3f\n", reranked[i].doc,
                        reranked[i].score);
        }
        std::printf("\n");
    }
    return 0;
}
