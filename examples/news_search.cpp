/**
 * @file
 * News-search scenario: a CC-News-like corpus served by the three
 * modeled systems side by side. Demonstrates the library's system
 * comparison workflow on a realistic mixed query stream -- the
 * workload the paper's introduction motivates (a production search
 * tier serving interactive traffic from an SCM pool).
 *
 *   ./examples/news_search
 */

#include <cstdio>

#include "common/logging.h"
#include "iiu/iiu.h"
#include "lucene/lucene.h"
#include "model/runner.h"
#include "power/power.h"
#include "workload/corpus.h"

using namespace boss;

int
main()
{
    boss::setVerbose(false);

    // A scaled-down CC-News-like shard and a mixed query stream.
    workload::CorpusConfig cfg = workload::ccNewsConfig();
    cfg.numDocs = 400'000;
    workload::Corpus corpus(cfg);

    workload::QueryWorkloadConfig qcfg;
    qcfg.vocabSize = cfg.vocabSize;
    qcfg.queriesPerBucket = 30;
    auto queries = workload::makeWorkload(qcfg);
    auto index = corpus.buildIndex(workload::collectTerms(queries));
    index::MemoryLayout layout(index, 0x10000, 256);

    std::printf("news shard: %u docs, %.1f MB index, %zu queries\n\n",
                index.numDocs(),
                static_cast<double>(index.sizeBytes()) / 1e6,
                queries.size());

    std::printf("%-10s %10s %12s %12s %12s\n", "system", "QPS",
                "p.query(us)", "SCM GB/s", "energy (J)");

    struct Row
    {
        model::SystemKind kind;
        model::WorkloadMetrics metrics;
    };
    std::vector<Row> rows;

    rows.push_back({model::SystemKind::Lucene,
                    lucene::run(index, layout, queries)});
    rows.push_back({model::SystemKind::Iiu,
                    iiu::run(index, layout, queries)});
    {
        model::SystemConfig bossCfg;
        bossCfg.kind = model::SystemKind::Boss;
        rows.push_back({model::SystemKind::Boss,
                        model::runWorkload(index, layout, queries,
                                           bossCfg)});
    }

    for (const auto &row : rows) {
        const auto &m = row.metrics.run;
        double energy = power::energyJoules(row.kind, 8, m.seconds);
        std::printf("%-10s %10.0f %12.1f %12.2f %12.4f\n",
                    model::systemName(row.kind).data(), m.qps,
                    1e6 * m.seconds * 8 /
                        static_cast<double>(m.queries),
                    m.deviceBandwidthGBs, energy);
    }

    double speedup = rows[2].metrics.run.qps / rows[0].metrics.run.qps;
    double energyRatio =
        power::energyJoules(model::SystemKind::Lucene, 8,
                            rows[0].metrics.run.seconds) /
        power::energyJoules(model::SystemKind::Boss, 8,
                            rows[2].metrics.run.seconds);
    std::printf("\nBOSS vs Lucene on this shard: %.1fx throughput, "
                "%.0fx less energy\n",
                speedup, energyRatio);
    std::printf("early termination skipped %llu of %llu candidate "
                "documents\n",
                static_cast<unsigned long long>(
                    rows[2].metrics.skippedDocs),
                static_cast<unsigned long long>(
                    rows[2].metrics.skippedDocs +
                    rows[2].metrics.evaluatedDocs));
    return 0;
}
