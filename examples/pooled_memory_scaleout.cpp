/**
 * @file
 * Pooled-memory scale-out scenario (paper Secs. II-C / III-A).
 *
 * A CXL-attached pool holds several memory nodes, each with its own
 * shard and BOSS accelerator; all nodes share one link to the host.
 * This example sweeps the number of nodes and contrasts the shared-
 * interconnect traffic of (a) BOSS's hardware top-k (only k results
 * cross the link per query) with (b) an IIU-style design whose full
 * scored lists must cross for host-side top-k -- showing why BOSS
 * "does not hinder scaling-out of the memory pool".
 *
 *   ./examples/pooled_memory_scaleout
 */

#include <cstdio>

#include "common/logging.h"
#include "model/runner.h"
#include "workload/corpus.h"

using namespace boss;

int
main()
{
    boss::setVerbose(false);

    // One shard (memory node) worth of index and queries.
    workload::CorpusConfig cfg = workload::clueWebConfig();
    cfg.numDocs = 300'000;
    workload::Corpus corpus(cfg);

    workload::QueryWorkloadConfig qcfg;
    qcfg.vocabSize = cfg.vocabSize;
    qcfg.queriesPerBucket = 20;
    auto queries = workload::makeWorkload(qcfg);
    auto index = corpus.buildIndex(workload::collectTerms(queries));
    index::MemoryLayout layout(index, 0x10000, 256);

    // Per-node runs (each node serves the query stream on its own
    // shard; nodes are independent except for the shared link).
    auto bossTraces = model::buildTraces(index, layout, queries,
                                         model::SystemKind::Boss);
    auto iiuTraces = model::buildTraces(index, layout, queries,
                                        model::SystemKind::Iiu);

    auto linkBytes = [](const std::vector<model::QueryTrace> &traces) {
        std::uint64_t bytes = 0;
        for (const auto &t : traces)
            bytes += t.resultStoreBytes;
        return bytes;
    };
    std::uint64_t bossPerNode = linkBytes(bossTraces);
    std::uint64_t iiuPerNode = linkBytes(iiuTraces);

    mem::LinkConfig link;
    std::printf("shared CXL-like link: %.0f GB/s\n", link.bandwidthGBs);
    std::printf("per-node result traffic per %zu queries: BOSS %.2f "
                "MB vs host-top-k %.2f MB (%.0fx reduction)\n\n",
                queries.size(),
                static_cast<double>(bossPerNode) / 1e6,
                static_cast<double>(iiuPerNode) / 1e6,
                static_cast<double>(iiuPerNode) /
                    static_cast<double>(bossPerNode));

    // Sweep pool size: the link saturates when aggregate result
    // traffic approaches its bandwidth. QPS per node comes from the
    // node-local simulation; the pool's aggregate QPS is capped by
    // the link.
    model::SystemConfig nodeCfg;
    nodeCfg.kind = model::SystemKind::Boss;
    auto bossNode = model::replayTraces(bossTraces, nodeCfg);
    nodeCfg.kind = model::SystemKind::Iiu;
    auto iiuNode = model::replayTraces(iiuTraces, nodeCfg);

    std::printf("%-6s %16s %16s %14s %14s\n", "nodes",
                "BOSS pool QPS", "IIU pool QPS", "BOSS link", "IIU link");
    for (std::uint32_t nodes : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
        auto poolQps = [&](double nodeQps, std::uint64_t perNode,
                           double nodeSeconds) {
            double aggregate = nodeQps * nodes;
            // Link-imposed ceiling: bytes per query over link BW.
            double bytesPerQuery = static_cast<double>(perNode) /
                                   static_cast<double>(queries.size());
            double linkQps = link.bandwidthGBs * 1e9 / bytesPerQuery;
            (void)nodeSeconds;
            return std::min(aggregate, linkQps);
        };
        double bossQps = poolQps(bossNode.run.qps, bossPerNode,
                                 bossNode.run.seconds);
        double iiuQps = poolQps(iiuNode.run.qps, iiuPerNode,
                                iiuNode.run.seconds);
        auto linkUse = [&](std::uint64_t perNode, double qps) {
            double bytesPerQuery = static_cast<double>(perNode) /
                                   static_cast<double>(queries.size());
            return qps * bytesPerQuery / (link.bandwidthGBs * 1e9);
        };
        std::printf("%-6u %16.0f %16.0f %13.1f%% %13.1f%%\n", nodes,
                    bossQps, iiuQps,
                    100.0 * linkUse(bossPerNode, bossQps),
                    100.0 * linkUse(iiuPerNode, iiuQps));
    }
    std::printf("\nBOSS's hardware top-k keeps the shared link cold, "
                "so the pool scales until the nodes themselves "
                "saturate;\nhost-side top-k designs hit the link "
                "ceiling after a handful of nodes.\n");
    return 0;
}
