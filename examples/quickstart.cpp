/**
 * @file
 * Quickstart: build a small index, load it into a simulated BOSS
 * device, and run a few queries through the paper's offloading API.
 *
 *   ./examples/quickstart
 */

#include <cstdio>
#include <fstream>

#include "api/offload.h"
#include "common/logging.h"
#include "index/serialize.h"
#include "workload/corpus.h"

using namespace boss;

int
main()
{
    // ------------------------------------------------------------
    // 1. Build an inverted index. Here we synthesize a small corpus;
    //    a real deployment would feed its own posting lists through
    //    index::IndexBuilder.
    // ------------------------------------------------------------
    workload::CorpusConfig cfg;
    cfg.name = "quickstart";
    cfg.numDocs = 100'000;
    cfg.vocabSize = 1'000;
    workload::Corpus corpus(cfg);

    std::vector<TermId> vocabulary = {0, 1, 2, 3, 5, 8, 13, 21};
    auto index = corpus.buildIndex(vocabulary);
    std::printf("built index: %u docs, %zu terms, %.2f MB "
                "(hybrid-compressed)\n",
                index.numDocs(), vocabulary.size(),
                static_cast<double>(index.sizeBytes()) / 1e6);

    // ------------------------------------------------------------
    // 2. Persist the index and a decompression-module configuration,
    //    then initialize the device with the init() intrinsic.
    // ------------------------------------------------------------
    const std::string indexFile = "/tmp/boss_quickstart_index.bin";
    const std::string configFile = "/tmp/boss_quickstart_config.txt";
    index::saveIndexFile(index, indexFile);
    {
        std::ofstream os(configFile);
        for (compress::Scheme s : compress::kAllSchemes)
            os << "[scheme " << schemeName(s) << "]\nbuiltin\n";
    }
    int schemes = api::init(indexFile, configFile);
    std::printf("init(): programmed %d decompression schemes\n",
                schemes);

    // ------------------------------------------------------------
    // 3. Offload queries with the search() intrinsic.
    // ------------------------------------------------------------
    const char *expressions[] = {
        "\"t0\"",
        "\"t1\" AND \"t2\"",
        "\"t3\" OR \"t5\"",
        "\"t1\" AND (\"t8\" OR \"t13\" OR \"t21\")",
    };
    for (const char *expr : expressions) {
        auto outcome = api::device().search(expr);
        std::printf("\nquery: %s\n", expr);
        std::printf("  simulated time: %.1f us, SCM traffic: %.1f KB, "
                    "%llu docs scored (%llu skipped by ET)\n",
                    outcome.simSeconds * 1e6,
                    static_cast<double>(outcome.deviceBytes) / 1e3,
                    static_cast<unsigned long long>(
                        outcome.evaluatedDocs),
                    static_cast<unsigned long long>(
                        outcome.skippedDocs));
        std::size_t show = std::min<std::size_t>(3, outcome.topk.size());
        for (std::size_t i = 0; i < show; ++i) {
            std::printf("  #%zu doc=%u score=%.3f\n", i + 1,
                        outcome.topk[i].doc, outcome.topk[i].score);
        }
    }

    api::shutdown();
    std::remove(indexFile.c_str());
    std::remove(configFile.c_str());
    return 0;
}
