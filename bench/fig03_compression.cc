/**
 * @file
 * Figure 3: compression ratio of BP / VB / OptPFD / S16 / S8b and
 * the hybrid best-per-list choice, on seven synthetic integer
 * streams and the two web-corpus stand-ins.
 *
 * Paper reference: the best scheme differs per stream (stars in the
 * figure); Hybrid matches or beats every single scheme everywhere.
 */

#include <cstdio>
#include <vector>

#include "benchutil.h"
#include "common/logging.h"
#include "workload/synthetic_streams.h"

using namespace boss;
using namespace boss::workload;

namespace
{

/** Compression ratio of a whole corpus index under one scheme. */
double
corpusRatio(const Corpus &corpus, const std::vector<TermId> &terms,
            const std::optional<compress::Scheme> &scheme)
{
    auto index = corpus.buildIndex(terms, scheme);
    std::uint64_t raw = 0;
    std::uint64_t compressed = 0;
    for (TermId t : terms) {
        raw += static_cast<std::uint64_t>(index.list(t).docCount) * 8;
        compressed += index.list(t).sizeBytes();
    }
    return static_cast<double>(raw) / static_cast<double>(compressed);
}

} // namespace

int
main()
{
    boss::setVerbose(false);
    std::printf("=== Fig. 3: compression ratio (raw bytes / "
                "compressed bytes; higher is better) ===\n");
    std::printf("%-16s", "dataset");
    for (compress::Scheme s : compress::kFig3Schemes)
        std::printf(" %8s", schemeName(s).data());
    std::printf(" %8s %10s\n", "Hybrid", "best");

    const std::size_t kStreamLen = 1'000'000;
    for (StreamKind kind : kAllStreams) {
        auto stream = makeStream(kind, kStreamLen, 2026);
        std::printf("%-16s", streamName(kind).data());
        double best = 0.0;
        compress::Scheme bestScheme = compress::Scheme::BP;
        for (compress::Scheme s : compress::kFig3Schemes) {
            double r = compressionRatio(stream, s);
            std::printf(" %8.2f", r);
            if (r > best) {
                best = r;
                bestScheme = s;
            }
        }
        std::printf(" %8.2f %9s*\n", hybridCompressionRatio(stream),
                    schemeName(bestScheme).data());
    }

    // Real-world stand-ins: hybrid applies the best scheme per
    // posting list across the whole dataset.
    for (const auto &cfg : {clueWebConfig(), ccNewsConfig()}) {
        Corpus corpus(cfg);
        // A representative slice of the vocabulary: popular through
        // rare terms.
        std::vector<TermId> terms;
        for (TermId t = 0; t < 400; ++t)
            terms.push_back(t * (cfg.vocabSize / 400));
        std::printf("%-16s", cfg.name.c_str());
        double best = 0.0;
        compress::Scheme bestScheme = compress::Scheme::BP;
        for (compress::Scheme s : compress::kFig3Schemes) {
            double r = corpusRatio(corpus, terms, s);
            std::printf(" %8.2f", r);
            if (r > best) {
                best = r;
                bestScheme = s;
            }
        }
        std::printf(" %8.2f %9s*\n",
                    corpusRatio(corpus, terms, std::nullopt),
                    schemeName(bestScheme).data());
    }
    return 0;
}
