/**
 * @file
 * Figure 14: normalized number of evaluated (scored) documents for
 * the single-term and union queries (Q1, Q3, Q5), comparing IIU
 * (exhaustive: every candidate scored), BOSS-block-only (skips at
 * the block fetch module only) and full BOSS (block fetch + union
 * module WAND).
 *
 * Paper reference shape: both skip points are needed; the block
 * fetch module's effectiveness decays as terms increase (more false
 * positives in overlapped block selection), while the union module
 * keeps pruning docIDs via WAND.
 */

#include <cstdio>

#include "benchutil.h"
#include "common/logging.h"

using namespace boss;
using namespace boss::bench;
using namespace boss::model;

int
main()
{
    boss::setVerbose(false);
    std::printf("=== Fig. 14: evaluated (scored) documents on union "
                "queries (normalized to IIU) ===\n");

    Dataset data = makeDataset(workload::clueWebConfig());

    const workload::QueryType types[] = {
        workload::QueryType::Q1,
        workload::QueryType::Q3,
        workload::QueryType::Q5,
    };

    // Evaluated docs are a property of the algorithm flags alone, so
    // we only need the traces (no hardware replay).
    std::printf("%-18s %8s %8s %8s\n", "system", "Q1", "Q3", "Q5");
    JsonReport report("fig14_evaluated_docs");
    std::map<workload::QueryType, double> baseline;
    for (SystemKind kind : {SystemKind::Iiu, SystemKind::BossBlockOnly,
                            SystemKind::Boss}) {
        auto &g =
            report.root().subgroup(std::string(systemName(kind)));
        std::printf("%-18s", systemName(kind).data());
        for (auto type : types) {
            std::uint64_t evaluated = 0;
            auto traces =
                buildTraces(data.index, data.layout,
                            data.byType.at(type), kind);
            for (const auto &t : traces)
                evaluated += t.evaluatedDocs;
            if (kind == SystemKind::Iiu)
                baseline[type] = static_cast<double>(evaluated);
            double normalized =
                static_cast<double>(evaluated) / baseline[type];
            std::printf(" %8.3f", normalized);
            std::string name(workload::queryTypeName(type));
            report.set(g, name, normalized,
                       "evaluated docs normalized to IIU");
            report.set(g, name + "_evaluated",
                       static_cast<double>(evaluated),
                       "absolute evaluated (scored) docs");
        }
        std::printf("\n");
    }
    report.write("BENCH_fig14.json");
    return 0;
}
