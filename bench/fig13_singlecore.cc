/**
 * @file
 * Figure 13: single-core throughput of Lucene, IIU, BOSS-exhaustive
 * (no early termination) and BOSS, normalized to Lucene with one
 * core, per query type.
 *
 * Paper reference shapes: ET gains over BOSS-exhaustive shrink with
 * term count on unions (Q1 > Q3 > Q5) and grow with term count on
 * intersections (Q4 > Q2) thanks to the pipelined overlap check;
 * BOSS-exhaustive beats IIU everywhere except Q1, where IIU's
 * intra-query parallelism (all 4 decompression/scoring units on one
 * term) wins.
 */

#include <cstdio>

#include "benchutil.h"
#include "common/logging.h"

using namespace boss;
using namespace boss::bench;
using namespace boss::model;

int
main()
{
    boss::setVerbose(false);
    std::printf("=== Fig. 13: single-core throughput, ClueWeb12-like "
                "(normalized to Lucene 1-core on SCM) ===\n");

    Dataset data = makeDataset(workload::clueWebConfig());

    const SystemKind kinds[] = {
        SystemKind::Lucene,
        SystemKind::Iiu,
        SystemKind::BossExhaustive,
        SystemKind::Boss,
    };

    std::map<workload::QueryType, double> baselineQps;
    printHeader("system", true);
    for (SystemKind kind : kinds) {
        TraceSet ts(data, kind);
        SystemConfig cfg;
        cfg.kind = kind;
        cfg.cores = 1;
        std::vector<double> row;
        for (auto type : workload::kAllQueryTypes) {
            double qps = ts.replay(type, cfg).run.qps;
            if (kind == SystemKind::Lucene)
                baselineQps[type] = qps;
            row.push_back(qps / baselineQps[type]);
        }
        printRow(std::string(systemName(kind)) + "-1", row, true);
    }
    return 0;
}
