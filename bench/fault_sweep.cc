/**
 * @file
 * Resilience sweep: recall@10 and throughput vs SCM bit-error rate.
 *
 * Runs one fixed query batch against the same corpus at increasing
 * media bit-error rates (plus a stuck-block point and a dead-shard
 * point) and reports, per fault level:
 *   - recall@10 against the fault-free run (how much result quality
 *     the CRC/retry/drop policy gives back under media faults),
 *   - simulated throughput (retries cost re-reads; degraded media
 *     costs latency),
 *   - the raw resilience counters (CRC retries, dropped blocks,
 *     dropped shards).
 *
 * Every query completes at every fault level — the degrade paths
 * never fail a query — which this bench asserts. Results go to
 * stdout and BENCH_fault_sweep.json.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "api/sharded_device.h"
#include "benchutil.h"
#include "common/logging.h"
#include "mem/fault_model.h"

namespace
{

using namespace boss;

constexpr std::size_t kRecallK = 10;

/** |topk(faulty) ∩ topk(reference)| / k, averaged over queries. */
double
recallAtK(const std::vector<std::vector<engine::Result>> &ref,
          const std::vector<std::vector<engine::Result>> &got)
{
    BOSS_ASSERT(ref.size() == got.size(), "batch size mismatch");
    double total = 0.0;
    std::size_t counted = 0;
    for (std::size_t q = 0; q < ref.size(); ++q) {
        std::size_t k = std::min(kRecallK, ref[q].size());
        if (k == 0)
            continue; // query matches nothing even fault-free
        std::size_t hit = 0;
        for (std::size_t i = 0; i < k; ++i) {
            for (std::size_t j = 0;
                 j < std::min(kRecallK, got[q].size()); ++j) {
                if (got[q][j].doc == ref[q][i].doc) {
                    ++hit;
                    break;
                }
            }
        }
        total += static_cast<double>(hit) / static_cast<double>(k);
        ++counted;
    }
    return counted > 0 ? total / static_cast<double>(counted) : 1.0;
}

struct Sample
{
    std::string label;
    std::string spec;
    double recall = 1.0;
    double simSeconds = 0.0;
    double qps = 0.0;
    std::uint64_t crcRetries = 0;
    std::uint64_t blocksDropped = 0;
    std::uint64_t shardsDropped = 0;
};

} // namespace

int
main()
{
    workload::CorpusConfig cfg;
    cfg.name = "fault-sweep";
    cfg.numDocs = 100'000;
    cfg.vocabSize = 3'000;
    cfg.seed = 42;
    workload::Corpus corpus(cfg);

    workload::QueryWorkloadConfig qcfg;
    qcfg.vocabSize = cfg.vocabSize;
    qcfg.seed = 7;
    auto queries = workload::sampleQueries(qcfg, 100);
    auto terms = workload::collectTerms(queries);
    auto shards = corpus.buildShardedIndex(terms, 4);

    // Fault levels: a clean baseline, four bit-error rates spanning
    // harmless to catastrophic, a stuck-block point and a
    // dead-shard point.
    const std::vector<std::pair<std::string, std::string>> levels = {
        {"baseline", ""},
        {"ber_1e-7", "ber=1e-7"},
        {"ber_1e-6", "ber=1e-6"},
        {"ber_1e-5", "ber=1e-5"},
        {"ber_1e-4", "ber=1e-4"},
        {"stuck_1e-3", "stuck=1e-3"},
        {"dead_shard", "dead-shard=1"},
    };

    std::printf("batch: %zu queries, %u docs, 4 shards\n",
                queries.size(), cfg.numDocs);
    std::printf("%-12s %10s %14s %12s %12s %8s\n", "level",
                "recall@10", "sim qps", "crc retries", "blk dropped",
                "dead");

    std::vector<std::vector<engine::Result>> reference;
    std::vector<Sample> samples;
    for (const auto &[label, spec] : levels) {
        api::ShardedDeviceConfig dcfg;
        dcfg.shards = 4;
        dcfg.device.faults = mem::parseFaultSpec(spec);
        api::ShardedDevice device(dcfg);
        // Rebuild per level: loadShards consumes the shard set.
        device.loadShards(corpus.buildShardedIndex(terms, 4));

        api::ShardedOutcome outcome = device.searchBatch(queries);
        BOSS_ASSERT(outcome.perQuery.size() == queries.size(),
                    "faults must never lose queries");
        if (label == "baseline")
            reference = outcome.perQuery;

        Sample s;
        s.label = label;
        s.spec = spec;
        s.recall = recallAtK(reference, outcome.perQuery);
        s.simSeconds = outcome.simSeconds;
        s.qps = static_cast<double>(queries.size()) /
                outcome.simSeconds;
        s.crcRetries = outcome.crcRetries;
        s.blocksDropped = outcome.blocksDropped;
        s.shardsDropped = outcome.shardsDropped;
        samples.push_back(s);

        std::printf(
            "%-12s %10.4f %14.1f %12llu %12llu %8llu\n",
            s.label.c_str(), s.recall, s.qps,
            static_cast<unsigned long long>(s.crcRetries),
            static_cast<unsigned long long>(s.blocksDropped),
            static_cast<unsigned long long>(s.shardsDropped));
    }

    bench::JsonReport report("fault_sweep");
    report.set(report.root(), "queries",
               static_cast<double>(queries.size()),
               "queries per batch");
    report.set(report.root(), "num_docs",
               static_cast<double>(cfg.numDocs), "corpus documents");
    report.set(report.root(), "recall_k",
               static_cast<double>(kRecallK), "recall cutoff");
    for (const Sample &s : samples) {
        auto &g = report.root().subgroup(s.label);
        report.set(g, "recall_at_10", s.recall,
                   "mean top-10 overlap with the fault-free run");
        report.set(g, "sim_seconds", s.simSeconds,
                   "simulated batch makespan");
        report.set(g, "sim_qps", s.qps,
                   "simulated batch throughput");
        report.set(g, "crc_retries",
                   static_cast<double>(s.crcRetries),
                   "payload re-reads after CRC mismatch");
        report.set(g, "blocks_dropped",
                   static_cast<double>(s.blocksDropped),
                   "blocks degraded away after retry exhaustion");
        report.set(g, "shards_dropped",
                   static_cast<double>(s.shardsDropped),
                   "whole shards lost (partial coverage)");
    }
    report.write("BENCH_fault_sweep.json");
    return 0;
}
