/**
 * @file
 * Mixed read/write serving: query tail latency vs ingest rate, with
 * and without concurrent background merges.
 *
 * One live segment index serves an open-loop query stream while an
 * ingest thread appends (and tombstone-deletes) documents at a
 * paced rate, refreshing every few milliseconds so writes become
 * visible continuously. The sweep steps the ingest rate from zero
 * to well past the refresh cadence's comfort zone, twice:
 *
 *  - merges_on: the background merger compacts segments while
 *    queries run, holding the per-query segment fan-out flat;
 *  - merges_off: segments accumulate unmerged for the whole point,
 *    so every query pays an ever-growing fan-out — the ablation
 *    that shows why concurrent merges are load-bearing.
 *
 * Each point reports achieved QPS and exact p50/p99/p999 latency
 * plus the ingest ledger (appended, deleted, segments baked,
 * merges). The headline: p99 with merges on stays near the
 * zero-ingest baseline at every rate, while merges_off drifts up
 * with the segment count.
 *
 * Output: a table per curve on stdout and BENCH_ingest.json with a
 * "merges_on" and a "merges_off" group (subgroup per rate point).
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "api/live_device.h"
#include "benchutil.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "serve/backend.h"
#include "serve/server.h"

namespace
{

using namespace boss;

constexpr std::uint32_t kVocab = 1000;
constexpr std::uint32_t kSeedDocs = 20'000;

std::vector<TermId>
syntheticDoc(Rng &rng)
{
    const auto len = 8 + static_cast<std::uint32_t>(rng.below(56));
    std::vector<TermId> tokens;
    tokens.reserve(len);
    for (std::uint32_t i = 0; i < len; ++i)
        tokens.push_back(static_cast<TermId>(rng.below(kVocab)));
    return tokens;
}

/**
 * Paced append/delete load against the live index, mirroring
 * boss_serve --ingest-rate: owed = elapsed * rate, one in ten
 * appends paired with a random delete, refresh every few ms.
 */
class IngestLoad
{
  public:
    IngestLoad(index::segments::LiveIndex &live, double docsPerSec,
               std::uint64_t seed)
        : live_(live), rate_(docsPerSec),
          rng_(splitSeed(seed, 77))
    {
    }

    void
    start()
    {
        if (rate_ <= 0.0)
            return;
        thread_ = std::thread([this] { run(); });
    }

    void
    stop()
    {
        stop_.store(true);
        if (thread_.joinable())
            thread_.join();
        live_.refresh();
    }

    std::uint64_t appended() const { return appended_; }
    std::uint64_t deleted() const { return deleted_; }

  private:
    void
    run()
    {
        const auto start = std::chrono::steady_clock::now();
        auto lastRefresh = start;
        while (!stop_.load(std::memory_order_relaxed)) {
            const auto now = std::chrono::steady_clock::now();
            const double secs =
                std::chrono::duration<double>(now - start).count();
            const auto owed =
                static_cast<std::uint64_t>(secs * rate_);
            while (appended_ < owed &&
                   !stop_.load(std::memory_order_relaxed)) {
                live_.append(syntheticDoc(rng_));
                ++appended_;
                if (rng_.below(10) == 0) {
                    const DocId watermark = live_.nextGlobalId();
                    if (watermark > 0 &&
                        live_.erase(static_cast<DocId>(
                            rng_.below(watermark))))
                        ++deleted_;
                }
            }
            if (now - lastRefresh >
                std::chrono::milliseconds(50)) {
                live_.refresh();
                lastRefresh = now;
            }
            std::this_thread::sleep_for(
                std::chrono::microseconds(500));
        }
    }

    index::segments::LiveIndex &live_;
    double rate_;
    Rng rng_;
    std::atomic<bool> stop_{false};
    std::thread thread_;
    std::uint64_t appended_ = 0;
    std::uint64_t deleted_ = 0;
};

struct Point
{
    double ingestRate = 0.0;
    bool merges = false;
    serve::ServeReport report;
    std::uint64_t appended = 0;
    std::uint64_t deleted = 0;
    std::uint64_t merged = 0;
    std::uint64_t baked = 0;
    std::uint32_t segmentsFinal = 0;
};

/** Fresh live device seeded with the same corpus every time. */
std::unique_ptr<api::LiveDevice>
makeDevice(bool merges)
{
    api::LiveDeviceConfig cfg;
    cfg.device.k = 100; // cheap queries -> many completions/point
    cfg.live.termBoundHint = kVocab;
    cfg.live.maxBufferedDocs = 512;
    cfg.live.maxSegments = 4;
    cfg.live.mergeFanIn = 4;
    cfg.live.mergerPollMs = 2;
    auto device = std::make_unique<api::LiveDevice>(cfg);
    Rng rng(0x1A6E57);
    for (std::uint32_t d = 0; d < kSeedDocs; ++d)
        device->live().append(syntheticDoc(rng));
    device->live().refresh();
    // Start from the compacted steady state either way; the ablation
    // is about merges *during* the measurement, not a worse seed.
    while (device->live().mergeOnce()) {
    }
    (void)merges;
    return device;
}

serve::ServeReport
runServer(serve::Backend &backend,
          const std::vector<workload::Query> &queries, double qps,
          std::size_t count, std::uint64_t seed)
{
    serve::ServeConfig cfg;
    cfg.arrivals.qps = qps;
    cfg.arrivals.count = count;
    cfg.arrivals.seed = seed;
    cfg.policy = serve::ShedPolicy::DropTail;
    cfg.queueCapacity = 64;
    cfg.maxInFlight = 8;
    cfg.mode = serve::PipelineMode::Pipelined;
    cfg.warmup = 64;
    serve::Server server(backend, cfg);
    return server.run(queries);
}

Point
runPoint(const std::vector<workload::Query> &queries,
         double queryQps, double ingestRate, bool merges,
         std::uint64_t seed)
{
    auto device = makeDevice(merges);
    auto &live = device->live();
    serve::LiveBackend backend(*device);
    IngestLoad ingest(live, ingestRate, seed);

    // Counter baselines: the seed bake/compaction isn't part of
    // the measurement.
    const auto merges0 = live.counters().merges.load();
    const auto baked0 = live.counters().segmentsBaked.load();

    if (merges)
        live.startMerger();
    ingest.start();
    Point p;
    p.ingestRate = ingestRate;
    p.merges = merges;
    p.report = runServer(
        backend, queries, queryQps,
        static_cast<std::size_t>(
            std::clamp(queryQps * 2.0, 2000.0, 40000.0)),
        seed);
    ingest.stop();
    if (merges)
        live.stopMerger();

    p.appended = ingest.appended();
    p.deleted = ingest.deleted();
    p.merged = live.counters().merges.load() - merges0;
    p.baked = live.counters().segmentsBaked.load() - baked0;
    p.segmentsFinal = live.segmentCount();
    return p;
}

} // namespace

int
main()
{
    // Leave two cores for the ingest thread and the merger when the
    // host has them, so the sweep measures the segment topology's
    // effect on queries, not bare CPU contention with the rebake.
    const unsigned hw =
        std::max(1u, std::thread::hardware_concurrency());
    common::ThreadPool::setGlobalThreads(hw > 3 ? hw - 2 : hw);

    workload::QueryWorkloadConfig qcfg;
    qcfg.vocabSize = kVocab;
    qcfg.seed = 7;
    auto queries = workload::sampleQueries(qcfg, 96);

    // Saturated drain rate with a quiet index, measured once; every
    // sweep point then offers a fixed fraction of it so latency
    // changes are attributable to ingest, not load.
    double capacity;
    {
        auto device = makeDevice(false);
        serve::LiveBackend backend(*device);
        serve::ServeConfig cfg;
        cfg.arrivals.qps = 5e6;
        cfg.arrivals.count = 1500;
        cfg.arrivals.seed = 11;
        cfg.policy = serve::ShedPolicy::Block;
        cfg.queueCapacity = 512;
        cfg.mode = serve::PipelineMode::Pipelined;
        cfg.warmup = 64;
        serve::Server server(backend, cfg);
        auto report = server.run(queries);
        BOSS_ASSERT(report.completed == report.offered,
                    "capacity run shed or expired queries");
        capacity = report.achievedQps;
    }
    const double queryQps = 0.5 * capacity;
    std::printf("seed corpus: %u docs, vocab %u; capacity %.0f qps, "
                "serving at %.0f qps\n",
                kSeedDocs, kVocab, capacity, queryQps);

    const std::vector<double> rates = {0.0, 500.0, 1000.0, 2000.0,
                                       4000.0};
    std::vector<std::vector<Point>> curves(2);
    for (std::size_t i = 0; i < rates.size(); ++i) {
        curves[0].push_back(
            runPoint(queries, queryQps, rates[i], true, 100 + i));
        curves[1].push_back(
            runPoint(queries, queryQps, rates[i], false, 100 + i));
    }

    for (std::size_t c = 0; c < 2; ++c) {
        std::printf("\n%s:\n",
                    c == 0 ? "merges_on" : "merges_off");
        std::printf("%-10s %10s %10s %10s %10s %8s %8s %8s %6s\n",
                    "ingest/s", "achieved", "p50 us", "p99 us",
                    "p999 us", "appended", "deleted", "merges",
                    "segs");
        for (const Point &p : curves[c]) {
            const serve::ServeReport &r = p.report;
            std::printf("%-10.0f %10.0f %10.1f %10.1f %10.1f %8llu "
                        "%8llu %8llu %6u\n",
                        p.ingestRate, r.achievedQps, r.latencyP50Us,
                        r.latencyP99Us, r.latencyP999Us,
                        static_cast<unsigned long long>(p.appended),
                        static_cast<unsigned long long>(p.deleted),
                        static_cast<unsigned long long>(p.merged),
                        p.segmentsFinal);
        }
    }

    // Headline ratios: the merged curve's worst p99 across all
    // ingest rates, relative to its own zero-ingest baseline.
    double p99Base = curves[0][0].report.latencyP99Us;
    double p99WorstOn = 0.0, p99WorstOff = 0.0;
    for (const Point &p : curves[0])
        p99WorstOn = std::max(p99WorstOn, p.report.latencyP99Us);
    for (const Point &p : curves[1])
        p99WorstOff = std::max(p99WorstOff, p.report.latencyP99Us);
    std::printf("\np99: baseline %.1f us, worst with merges %.1f us "
                "(%.2fx), worst without %.1f us (%.2fx)\n",
                p99Base, p99WorstOn, p99WorstOn / p99Base,
                p99WorstOff, p99WorstOff / p99Base);
    for (const Point &p : curves[0]) {
        BOSS_ASSERT(p.report.completed > 0,
                    "a merges_on point completed no queries");
        BOSS_ASSERT(
            p.ingestRate == 0.0 || p.merged > 0,
            "merger idle at ingest rate ", p.ingestRate);
    }

    bench::JsonReport report("ingest_while_serving");
    report.set(report.root(), "seed_docs",
               static_cast<double>(kSeedDocs),
               "documents in the pre-built live index");
    report.set(report.root(), "capacity_qps", capacity,
               "saturated drain rate with a quiet index");
    report.set(report.root(), "query_qps", queryQps,
               "fixed offered query rate for every point");
    report.set(report.root(), "p99_baseline_us", p99Base,
               "zero-ingest p99 (merges_on curve)");
    report.set(report.root(), "p99_worst_merges_on_us", p99WorstOn,
               "worst p99 across ingest rates, merger running");
    report.set(report.root(), "p99_worst_merges_off_us",
               p99WorstOff,
               "worst p99 across ingest rates, merger disabled");

    for (std::size_t c = 0; c < 2; ++c) {
        auto &curveGroup = report.root().subgroup(
            c == 0 ? "merges_on" : "merges_off");
        for (std::size_t i = 0; i < curves[c].size(); ++i) {
            const Point &p = curves[c][i];
            const serve::ServeReport &r = p.report;
            auto &g =
                curveGroup.subgroup("point" + std::to_string(i));
            report.set(g, "ingest_rate_dps", p.ingestRate,
                       "offered ingest rate (docs/sec)");
            report.set(g, "offered_qps", r.offeredQps,
                       "open-loop offered query rate");
            report.set(g, "achieved_qps", r.achievedQps,
                       "completions per second");
            report.set(g, "p50_us", r.latencyP50Us,
                       "median latency from scheduled arrival");
            report.set(g, "p99_us", r.latencyP99Us, "p99 latency");
            report.set(g, "p999_us", r.latencyP999Us,
                       "p999 latency");
            report.set(g, "completed",
                       static_cast<double>(r.completed),
                       "queries executed to completion");
            report.set(g, "shed", static_cast<double>(r.shed),
                       "queries refused at admission");
            report.set(g, "appended",
                       static_cast<double>(p.appended),
                       "documents appended during the point");
            report.set(g, "deleted",
                       static_cast<double>(p.deleted),
                       "documents tombstone-deleted");
            report.set(g, "segments_baked",
                       static_cast<double>(p.baked),
                       "segments baked from the append buffer");
            report.set(g, "merges",
                       static_cast<double>(p.merged),
                       "background merges completed");
            report.set(g, "segments_final",
                       static_cast<double>(p.segmentsFinal),
                       "segment count when the point ended");
        }
    }
    report.write("BENCH_ingest.json");
    return 0;
}
