/**
 * @file
 * Google-benchmark microbenchmarks of the compression codecs and
 * the programmable decompression datapath: encode/decode throughput
 * in values/second per scheme. Not a paper figure; used to sanity-
 * check that software decode rates are in the range the CPU cost
 * model assumes.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "common/bitops.h"
#include "common/types.h"
#include "common/rng.h"
#include "compress/codec.h"
#include "compress/datapath.h"

using namespace boss;
using namespace boss::compress;

namespace
{

std::vector<std::uint32_t>
gapValues(std::size_t n, std::uint32_t maxBits, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint32_t> v(n);
    for (auto &x : v)
        x = 1 + (static_cast<std::uint32_t>(rng.next()) &
                 maskLow(maxBits));
    return v;
}

void
BM_Encode(benchmark::State &state)
{
    auto scheme = static_cast<Scheme>(state.range(0));
    const Codec &codec = codecFor(scheme);
    auto values = gapValues(kBlockSize, 10, 42);
    BlockEncoding enc;
    for (auto _ : state) {
        bool ok = codec.encode(values, enc);
        benchmark::DoNotOptimize(ok);
        benchmark::DoNotOptimize(enc.bytes.data());
    }
    state.SetItemsProcessed(state.iterations() * kBlockSize);
    state.SetLabel(std::string(schemeName(scheme)));
}

void
BM_Decode(benchmark::State &state)
{
    auto scheme = static_cast<Scheme>(state.range(0));
    const Codec &codec = codecFor(scheme);
    auto values = gapValues(kBlockSize, 10, 42);
    BlockEncoding enc;
    codec.encode(values, enc);
    std::vector<std::uint32_t> out(values.size());
    for (auto _ : state) {
        codec.decode(enc.bytes, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * kBlockSize);
    state.SetLabel(std::string(schemeName(scheme)));
}

void
BM_DatapathDecode(benchmark::State &state)
{
    auto scheme = static_cast<Scheme>(state.range(0));
    const Codec &codec = codecFor(scheme);
    ProgrammableDecompressor dp =
        ProgrammableDecompressor::forScheme(scheme);
    auto values = gapValues(kBlockSize, 10, 42);
    BlockEncoding enc;
    codec.encode(values, enc);
    std::vector<std::uint32_t> out(values.size());
    for (auto _ : state) {
        dp.decodeValues(enc.bytes, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * kBlockSize);
    state.SetLabel(std::string(schemeName(scheme)));
}

void
SchemeArgs(benchmark::internal::Benchmark *b)
{
    for (Scheme s : kAllSchemes)
        b->Arg(static_cast<int>(s));
}

BENCHMARK(BM_Encode)->Apply(SchemeArgs);
BENCHMARK(BM_Decode)->Apply(SchemeArgs);
BENCHMARK(BM_DatapathDecode)->Apply(SchemeArgs);

} // namespace

BENCHMARK_MAIN();
