/**
 * @file
 * Google-benchmark microbenchmarks of the compression codecs and
 * the programmable decompression datapath: encode/decode throughput
 * in values/second per scheme. Not a paper figure; used to sanity-
 * check that software decode rates are in the range the CPU cost
 * model assumes.
 *
 * Beyond the google-benchmark suite (which now carries per-kernel-
 * tier variants of the decode benchmarks), `--kernels-json[=PATH]`
 * runs a self-timed sweep of the SIMD kernel tiers — raw BitPacking
 * unpack at every interesting width plus full codec decode per
 * scheme — against the seed BitReader loop, and writes the M ints/s
 * numbers as BENCH_kernels.json (default PATH) in the shared
 * stats-tree schema.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <deque>
#include <fstream>
#include <string>
#include <vector>

#include "common/bitops.h"
#include "common/types.h"
#include "common/rng.h"
#include "compress/codec.h"
#include "compress/datapath.h"
#include "kernels/kernels.h"
#include "stats/stats.h"

using namespace boss;
using namespace boss::compress;

namespace
{

std::vector<std::uint32_t>
gapValues(std::size_t n, std::uint32_t maxBits, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint32_t> v(n);
    for (auto &x : v)
        x = 1 + (static_cast<std::uint32_t>(rng.next()) &
                 maskLow(maxBits));
    return v;
}

void
BM_Encode(benchmark::State &state)
{
    auto scheme = static_cast<Scheme>(state.range(0));
    const Codec &codec = codecFor(scheme);
    auto values = gapValues(kBlockSize, 10, 42);
    BlockEncoding enc;
    for (auto _ : state) {
        bool ok = codec.encode(values, enc);
        benchmark::DoNotOptimize(ok);
        benchmark::DoNotOptimize(enc.bytes.data());
    }
    state.SetItemsProcessed(state.iterations() * kBlockSize);
    state.SetLabel(std::string(schemeName(scheme)));
}

void
BM_Decode(benchmark::State &state)
{
    auto scheme = static_cast<Scheme>(state.range(0));
    const Codec &codec = codecFor(scheme);
    auto values = gapValues(kBlockSize, 10, 42);
    BlockEncoding enc;
    codec.encode(values, enc);
    std::vector<std::uint32_t> out(values.size());
    for (auto _ : state) {
        codec.decode(enc.bytes, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * kBlockSize);
    state.SetLabel(std::string(schemeName(scheme)));
}

void
BM_DatapathDecode(benchmark::State &state)
{
    auto scheme = static_cast<Scheme>(state.range(0));
    const Codec &codec = codecFor(scheme);
    ProgrammableDecompressor dp =
        ProgrammableDecompressor::forScheme(scheme);
    auto values = gapValues(kBlockSize, 10, 42);
    BlockEncoding enc;
    codec.encode(values, enc);
    std::vector<std::uint32_t> out(values.size());
    for (auto _ : state) {
        dp.decodeValues(enc.bytes, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * kBlockSize);
    state.SetLabel(std::string(schemeName(scheme)));
}

void
SchemeArgs(benchmark::internal::Benchmark *b)
{
    for (Scheme s : kAllSchemes)
        b->Arg(static_cast<int>(s));
}

BENCHMARK(BM_Encode)->Apply(SchemeArgs);
BENCHMARK(BM_Decode)->Apply(SchemeArgs);
BENCHMARK(BM_DatapathDecode)->Apply(SchemeArgs);

// ---------------------------------------------------------------
// Kernel-tier benchmarks.
// ---------------------------------------------------------------

namespace k = boss::kernels;

/** Bit widths the tier sweep covers (incl. every SIMD path). */
constexpr std::uint32_t kSweepWidths[] = {1, 2, 4, 8, 12,
                                          16, 20, 25, 32};

/** Values per unpack call: a full stream of 128-entry blocks. */
constexpr std::size_t kSweepValues = kBlockSize * 2048;

std::vector<std::uint32_t>
widthValues(std::size_t n, std::uint32_t width, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint32_t> v(n);
    for (auto &x : v)
        x = static_cast<std::uint32_t>(rng.next()) & maskLow(width);
    return v;
}

std::vector<std::uint8_t>
packValues(const std::vector<std::uint32_t> &values,
           std::uint32_t width)
{
    std::vector<std::uint8_t> bytes;
    BitWriter writer(bytes);
    for (auto v : values)
        writer.put(v, width);
    writer.flush();
    return bytes;
}

/**
 * Raw per-tier BitPacking unpack at one width. Arg0 is the tier,
 * Arg1 the bit width; registered at runtime for available tiers.
 */
void
BM_UnpackBitsTier(benchmark::State &state)
{
    auto tier = static_cast<k::Tier>(state.range(0));
    auto width = static_cast<std::uint32_t>(state.range(1));
    auto values = widthValues(kSweepValues, width, 42);
    auto bytes = packValues(values, width);
    std::vector<std::uint32_t> out(values.size());
    const k::Ops &ops = k::opsFor(tier);
    for (auto _ : state) {
        ops.unpackBits(bytes.data(), bytes.size(), out.data(),
                       out.size(), width);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * values.size());
    state.SetLabel(std::string(k::tierName(tier)) + " w" +
                   std::to_string(width));
}

/** Full codec decode under one kernel tier (Arg0 scheme, Arg1 tier). */
void
BM_DecodeTier(benchmark::State &state)
{
    auto scheme = static_cast<Scheme>(state.range(0));
    auto tier = static_cast<k::Tier>(state.range(1));
    const Codec &codec = codecFor(scheme);
    auto values = gapValues(kBlockSize, 10, 42);
    BlockEncoding enc;
    codec.encode(values, enc);
    std::vector<std::uint32_t> out(values.size());
    k::Tier saved = k::activeTier();
    k::setTier(tier);
    for (auto _ : state) {
        codec.decode(enc.bytes, out);
        benchmark::DoNotOptimize(out.data());
    }
    k::setTier(saved);
    state.SetItemsProcessed(state.iterations() * kBlockSize);
    state.SetLabel(std::string(schemeName(scheme)) + " " +
                   std::string(k::tierName(tier)));
}

/** Tier availability is runtime, so these register dynamically. */
void
registerTierBenchmarks()
{
    for (k::Tier t : k::availableTiers()) {
        auto *unpack = benchmark::RegisterBenchmark(
            "BM_UnpackBitsTier", &BM_UnpackBitsTier);
        for (std::uint32_t w : kSweepWidths)
            unpack->Args({static_cast<int>(t), static_cast<int>(w)});
        auto *decode = benchmark::RegisterBenchmark("BM_DecodeTier",
                                                    &BM_DecodeTier);
        for (Scheme s : kAllSchemes)
            decode->Args(
                {static_cast<int>(s), static_cast<int>(t)});
    }
}

// ---------------------------------------------------------------
// Self-timed tier sweep -> BENCH_kernels.json.
// ---------------------------------------------------------------

/** Best-of-trials throughput of @p fn in M values per second. */
template <typename Fn>
double
measureMintsPerSec(std::size_t valuesPerCall, Fn &&fn)
{
    using Clock = std::chrono::steady_clock;
    constexpr int kTrials = 5;
    constexpr double kMinTrialSec = 0.02;
    // Calibrate repetitions so one trial runs long enough to time.
    std::size_t reps = 1;
    for (;;) {
        auto t0 = Clock::now();
        for (std::size_t r = 0; r < reps; ++r)
            fn();
        double sec = std::chrono::duration<double>(Clock::now() - t0)
                         .count();
        if (sec >= kMinTrialSec)
            break;
        reps *= 2;
    }
    double best = 0.0;
    for (int trial = 0; trial < kTrials; ++trial) {
        auto t0 = Clock::now();
        for (std::size_t r = 0; r < reps; ++r)
            fn();
        double sec = std::chrono::duration<double>(Clock::now() - t0)
                         .count();
        double mints = static_cast<double>(valuesPerCall) *
                       static_cast<double>(reps) / sec / 1e6;
        if (mints > best)
            best = mints;
    }
    return best;
}

/**
 * Time every tier (and the seed BitReader loop) on raw BitPacking
 * unpack per width and on full codec decode per scheme, and write
 * the tree through the shared stats-JSON exporter.
 */
int
writeKernelsJson(const std::string &path)
{
    boss::stats::Group root("kernels_bench");
    std::deque<boss::stats::Scalar> scalars; // stable leaf addresses
    auto set = [&](boss::stats::Group &g, const std::string &key,
                   double v, const std::string &desc) {
        scalars.emplace_back();
        scalars.back().set(v);
        g.addScalar(key, &scalars.back(), desc);
    };

    set(root, "values_per_call",
        static_cast<double>(kSweepValues),
        "BitPacking values unpacked per timed call");

    // Seed baseline: the BitReader::get loop the codecs ran before
    // the kernel layer existed.
    auto &unpackGroup = root.subgroup("unpack_mints");
    auto &seedGroup = unpackGroup.subgroup("seed_bitreader");
    for (std::uint32_t w : kSweepWidths) {
        auto values = widthValues(kSweepValues, w, 42);
        auto bytes = packValues(values, w);
        std::vector<std::uint32_t> out(values.size());
        double mints = measureMintsPerSec(kSweepValues, [&] {
            BitReader reader(bytes.data(), bytes.size());
            for (auto &v : out)
                v = reader.get(w);
            benchmark::DoNotOptimize(out.data());
        });
        set(seedGroup, "w" + std::to_string(w), mints,
            "seed scalar loop, M ints/s");
        std::printf("unpack w%-2u %-14s %10.1f M ints/s\n", w,
                    "seed", mints);
        for (k::Tier t : k::availableTiers()) {
            const k::Ops &ops = k::opsFor(t);
            double tierMints = measureMintsPerSec(kSweepValues, [&] {
                ops.unpackBits(bytes.data(), bytes.size(), out.data(),
                               out.size(), w);
                benchmark::DoNotOptimize(out.data());
            });
            set(unpackGroup.subgroup(std::string(k::tierName(t))),
                "w" + std::to_string(w), tierMints,
                "kernel unpack, M ints/s");
            std::printf("unpack w%-2u %-14s %10.1f M ints/s\n", w,
                        std::string(k::tierName(t)).c_str(),
                        tierMints);
        }
    }

    // Whole-codec decode per tier (128-entry block, 10-bit gaps).
    auto &codecGroup = root.subgroup("codec_decode_mints");
    for (Scheme s : kAllSchemes) {
        const Codec &codec = codecFor(s);
        auto values = gapValues(kBlockSize, 10, 42);
        BlockEncoding enc;
        codec.encode(values, enc);
        std::vector<std::uint32_t> out(values.size());
        auto &schemeGroup =
            codecGroup.subgroup(std::string(schemeName(s)));
        k::Tier saved = k::activeTier();
        for (k::Tier t : k::availableTiers()) {
            k::setTier(t);
            double mints = measureMintsPerSec(kBlockSize, [&] {
                codec.decode(enc.bytes, out);
                benchmark::DoNotOptimize(out.data());
            });
            set(schemeGroup, std::string(k::tierName(t)), mints,
                "codec decode, M ints/s");
            std::printf("decode %-10s %-8s %10.1f M ints/s\n",
                        std::string(schemeName(s)).c_str(),
                        std::string(k::tierName(t)).c_str(), mints);
        }
        k::setTier(saved);
    }

    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr, "cannot write '%s'\n", path.c_str());
        return 1;
    }
    root.dumpJson(os);
    os << '\n';
    std::printf("wrote %s\n", path.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // Self-timed tier sweep mode: skip the google-benchmark suite.
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--kernels-json") == 0)
            return writeKernelsJson("BENCH_kernels.json");
        if (std::strncmp(argv[i], "--kernels-json=", 15) == 0)
            return writeKernelsJson(argv[i] + 15);
    }
    registerTierBenchmarks();
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
