/**
 * @file
 * Figure 17: energy consumption of BOSS (8 cores) normalized to
 * Lucene (8 cores) on SCM, per query type. Energy = average power x
 * simulated runtime; the paper's headline is a 189x reduction
 * (23.3x lower power compounding with ~8.1x higher throughput).
 */

#include <cstdio>

#include "benchutil.h"
#include "common/logging.h"
#include "power/power.h"

using namespace boss;
using namespace boss::bench;
using namespace boss::model;

int
main()
{
    boss::setVerbose(false);
    std::printf("=== Fig. 17: energy consumption, ClueWeb12-like "
                "(normalized to Lucene 8-core on SCM; lower is "
                "better) ===\n");

    Dataset data = makeDataset(workload::clueWebConfig());

    TraceSet lucene(data, SystemKind::Lucene);
    TraceSet boss(data, SystemKind::Boss);

    printHeader("system", true);

    std::map<workload::QueryType, double> baselineJoules;
    std::vector<double> luceneRow;
    std::vector<double> bossRow;
    std::vector<double> savings;
    for (auto type : workload::kAllQueryTypes) {
        SystemConfig cfg;
        cfg.kind = SystemKind::Lucene;
        cfg.cores = 8;
        double lsec = lucene.replay(type, cfg).run.seconds;
        baselineJoules[type] =
            power::energyJoules(SystemKind::Lucene, 8, lsec);
        luceneRow.push_back(1.0);

        cfg.kind = SystemKind::Boss;
        double bsec = boss.replay(type, cfg).run.seconds;
        double joules = power::energyJoules(SystemKind::Boss, 8, bsec);
        bossRow.push_back(joules / baselineJoules[type]);
        savings.push_back(baselineJoules[type] / joules);
    }
    printRow("lucene-8", luceneRow, true, 4);
    printRow("boss-8", bossRow, true, 4);
    std::printf("\nenergy savings (x): ");
    for (std::size_t i = 0; i < savings.size(); ++i)
        std::printf("%s=%.0f ",
                    workload::queryTypeName(
                        workload::kAllQueryTypes[i])
                        .data(),
                    savings[i]);
    std::printf(" geomean=%.0fx\n", geomean(savings));
    return 0;
}
