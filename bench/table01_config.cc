/**
 * @file
 * Tables I and II: the hardware methodology summary and the query
 * type definitions, printed from the model's actual configuration
 * constants so drift between code and documentation is impossible.
 */

#include <cstdio>

#include "benchutil.h"
#include "lucene/lucene.h"
#include "mem/config.h"
#include "model/cost.h"

using namespace boss;

int
main()
{
    std::printf("=== Table I: hardware methodology ===\n\n");

    lucene::HostConfig host;
    std::printf("[Host processor]\n");
    std::printf("  cores                 %u (Xeon-class)\n", host.cores);
    std::printf("  frequency             %.1f GHz\n", host.frequencyGHz);
    std::printf("  package power         %.1f W\n", host.packagePowerW);

    mem::LinkConfig link;
    std::printf("[Shared interconnect]\n");
    std::printf("  bandwidth             %.0f GB/s (CXL-like)\n",
                link.bandwidthGBs);
    std::printf("  latency               %.0f ns\n", link.latency / 1e3);

    model::BossCostModel boss;
    std::printf("[BOSS configuration]\n");
    std::printf("  cores                 8 BOSS cores @ %.1f GHz\n",
                boss.frequencyHz() / 1e9);
    std::printf("  per core              1 block fetch, 4 decompression,"
                " 1 intersection,\n");
    std::printf("                        1 union, 4 scoring, 1 top-k "
                "module\n");
    std::printf("  request window        %u outstanding\n",
                boss.requestWindow());

    for (const auto &cfg : {mem::scmConfig(), mem::dramConfig()}) {
        std::printf("[%s memory system]\n",
                    cfg.name == "scm" ? "BOSS (SCM)" : "DRAM");
        std::printf("  channels              %u\n", cfg.channels);
        std::printf("  seq read bandwidth    %.1f GB/s (%.2f per "
                    "channel)\n",
                    cfg.timing.seqReadGBs * cfg.channels,
                    cfg.timing.seqReadGBs);
        std::printf("  rand read bandwidth   %.1f GB/s\n",
                    cfg.timing.randReadGBs * cfg.channels);
        std::printf("  write bandwidth       %.1f GB/s\n",
                    cfg.timing.writeGBs * cfg.channels);
        std::printf("  read latency          %.0f ns seq / %.0f ns "
                    "rand\n",
                    cfg.timing.seqReadLatency / 1e3,
                    cfg.timing.randReadLatency / 1e3);
    }

    std::printf("\n=== Table II: query types ===\n\n");
    std::printf("  %-5s %-6s %s\n", "Type", "Terms", "Operation");
    std::printf("  %-5s %-6u %s\n", "Q1", 1u, "A");
    std::printf("  %-5s %-6u %s\n", "Q2", 2u, "A AND B");
    std::printf("  %-5s %-6u %s\n", "Q3", 2u, "A OR B");
    std::printf("  %-5s %-6u %s\n", "Q4", 4u, "A AND B AND C AND D");
    std::printf("  %-5s %-6u %s\n", "Q5", 4u, "A OR B OR C OR D");
    std::printf("  %-5s %-6u %s\n", "Q6", 4u, "A AND (B OR C OR D)");

    // Confirm the workload sampler matches Table II.
    workload::QueryWorkloadConfig qcfg;
    auto queries = workload::makeWorkload(qcfg);
    std::printf("\nworkload: %zu queries (100 per term-count bucket, "
                "types randomly assigned)\n",
                queries.size());
    for (auto type : workload::kAllQueryTypes) {
        std::printf("  %s: %zu queries\n",
                    workload::queryTypeName(type).data(),
                    workload::filterByType(queries, type).size());
    }
    return 0;
}
