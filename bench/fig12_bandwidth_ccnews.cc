/**
 * @file
 * Figure 12: SCM device bandwidth utilization on the CC-News-like
 * dataset, IIU vs BOSS with 1/2/4/8 cores, per query type.
 */

#include "benchutil.h"
#include "common/logging.h"

int
main()
{
    boss::setVerbose(false);
    boss::bench::runBandwidthBench(
        boss::workload::ccNewsConfig(),
        "=== Fig. 12: bandwidth utilization, CC-News-like (GB/s) ===");
    return 0;
}
