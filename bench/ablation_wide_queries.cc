/**
 * @file
 * Ablation: queries beyond 4 terms (paper Sec. IV-D). A single BOSS
 * core natively handles 4 terms; 5-16-term queries gang
 * ceil(terms/4) cores whose set-operation mergers chain. This bench
 * sweeps union width and reports throughput and the gang's speedup
 * over a single core, exercising the multi-core merger path the
 * Table II workload never reaches.
 */

#include <cstdio>

#include "benchutil.h"
#include "common/logging.h"
#include "engine/plan.h"

using namespace boss;
using namespace boss::bench;
using namespace boss::model;

int
main()
{
    boss::setVerbose(false);
    std::printf("=== Ablation: wide unions and core gangs "
                "(ClueWeb12-like, BOSS) ===\n");

    Dataset data = makeDataset(workload::clueWebConfig());
    // Reuse the workload's materialized terms, most selective first
    // so added terms grow the union gradually.
    auto terms = workload::collectTerms(data.queries);
    std::sort(terms.begin(), terms.end(), [&](TermId a, TermId b) {
        return data.index.list(a).docCount >
               data.index.list(b).docCount;
    });

    std::printf("%-8s %-6s %14s %14s %10s\n", "terms", "gang",
                "1-core QPS", "8-core QPS", "gangup");
    for (std::uint32_t width : {2u, 4u, 8u, 12u, 16u}) {
        engine::QueryPlan plan;
        for (std::uint32_t i = 0; i < width; ++i) {
            plan.groups.push_back({terms[i]});
            plan.allTerms.push_back(terms[i]);
        }
        std::sort(plan.allTerms.begin(), plan.allTerms.end());
        auto trace = buildTrace(data.index, data.layout, plan,
                                traceOptionsFor(SystemKind::Boss));
        std::vector<QueryTrace> batch;
        for (int i = 0; i < 16; ++i)
            batch.push_back(trace);

        SystemConfig one;
        one.cores = 1;
        SystemConfig eight;
        eight.cores = 8;
        double qps1 = replayTraces(batch, one).run.qps;
        double qps8 = replayTraces(batch, eight).run.qps;
        std::printf("%-8u %-6u %14.0f %14.0f %9.2fx\n", width,
                    (width + 3) / 4, qps1, qps8, qps8 / qps1);
    }
    std::printf("\nganged cores pool their decompression/scoring "
                "units and request windows, so wide unions keep "
                "scaling past one core's 4-term limit.\n");
    return 0;
}
