/**
 * @file
 * Ablation: early-termination effectiveness vs the result-set size
 * k. The paper fixes k = 1000; this sweep shows how the block fetch
 * module and the union module's WAND pruning strengthen as k shrinks
 * (the cutoff score climbs to a higher percentile of the candidate
 * distribution). At the paper's corpus scale (lists 100x longer than
 * ours relative to k), the k = 10..100 rows approximate the skipping
 * regime the paper reports at k = 1000.
 */

#include <cstdio>

#include "benchutil.h"
#include "common/logging.h"

using namespace boss;
using namespace boss::bench;
using namespace boss::model;

int
main()
{
    boss::setVerbose(false);
    std::printf("=== Ablation: ET effectiveness vs k (ClueWeb12-like, "
                "1 BOSS core) ===\n");

    Dataset data = makeDataset(workload::clueWebConfig());

    const workload::QueryType types[] = {
        workload::QueryType::Q1,
        workload::QueryType::Q3,
        workload::QueryType::Q5,
    };

    std::printf("%-8s %-10s %14s %14s %12s\n", "k", "type",
                "evaluated", "blocksLoaded", "speedup");
    for (std::size_t k : {10u, 100u, 1000u}) {
        for (auto type : types) {
            auto et = buildTraces(data.index, data.layout,
                                  data.byType.at(type),
                                  SystemKind::Boss, k);
            auto ex = buildTraces(data.index, data.layout,
                                  data.byType.at(type),
                                  SystemKind::BossExhaustive, k);
            std::uint64_t etDocs = 0, exDocs = 0;
            std::uint64_t etBlocks = 0, exBlocks = 0;
            for (const auto &t : et) {
                etDocs += t.evaluatedDocs;
                etBlocks += t.blocksLoaded;
            }
            for (const auto &t : ex) {
                exDocs += t.evaluatedDocs;
                exBlocks += t.blocksLoaded;
            }
            SystemConfig cfg;
            cfg.cores = 1;
            double etSec = replayTraces(et, cfg).run.seconds;
            double exSec = replayTraces(ex, cfg).run.seconds;
            std::printf("%-8zu %-10s %13.1f%% %13.1f%% %11.2fx\n", k,
                        workload::queryTypeName(type).data(),
                        100.0 * static_cast<double>(etDocs) /
                            static_cast<double>(exDocs),
                        100.0 * static_cast<double>(etBlocks) /
                            static_cast<double>(exBlocks),
                        exSec / etSec);
        }
    }
    return 0;
}
