#include "benchutil.h"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/logging.h"

namespace boss::bench
{

void
JsonReport::set(stats::Group &g, const std::string &key, double v,
                const std::string &desc)
{
    scalars_.emplace_back();
    scalars_.back().set(v);
    g.addScalar(key, &scalars_.back(), desc);
}

void
JsonReport::write(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        BOSS_FATAL("cannot write '", path, "'");
    root_.dumpJson(os);
    os << '\n';
    std::printf("wrote %s\n", path.c_str());
}

Dataset
makeDataset(const workload::CorpusConfig &corpusCfg,
            std::uint32_t queriesPerBucket, std::uint64_t querySeed)
{
    workload::Corpus corpus(corpusCfg);
    workload::QueryWorkloadConfig qcfg;
    qcfg.vocabSize = corpusCfg.vocabSize;
    qcfg.queriesPerBucket = queriesPerBucket;
    qcfg.seed = querySeed;
    auto queries = workload::makeWorkload(qcfg);
    auto terms = workload::collectTerms(queries);

    auto index = corpus.buildIndex(terms);
    // The layout snapshots placements; it holds no reference to the
    // index, so moving the index afterwards is safe.
    index::MemoryLayout layout(index, 0x10000, 256);

    Dataset data{corpusCfg, std::move(queries), std::move(index),
                 std::move(layout), {}};
    for (const auto &q : data.queries)
        data.byType[q.type].push_back(q);
    return data;
}

TraceSet::TraceSet(const Dataset &data, model::SystemKind kind,
                   std::size_t k)
    : kind_(kind)
{
    for (const auto &[type, queries] : data.byType) {
        traces_[type] = model::buildTraces(data.index, data.layout,
                                           queries, kind, k);
    }
}

model::WorkloadMetrics
TraceSet::replay(workload::QueryType type,
                 const model::SystemConfig &config) const
{
    auto it = traces_.find(type);
    BOSS_ASSERT(it != traces_.end(), "no traces for query type");
    BOSS_ASSERT(config.kind == kind_, "system kind mismatch");
    return model::replayTraces(it->second, config);
}

double
geomean(const std::vector<double> &values)
{
    BOSS_ASSERT(!values.empty(), "geomean of empty set");
    double logSum = 0.0;
    for (double v : values) {
        BOSS_ASSERT(v > 0.0, "geomean needs positive values");
        logSum += std::log(v);
    }
    return std::exp(logSum / static_cast<double>(values.size()));
}

void
printRow(const std::string &label, const std::vector<double> &perType,
         bool withGeomean, int precision)
{
    std::printf("%-18s", label.c_str());
    for (double v : perType)
        std::printf(" %8.*f", precision, v);
    if (withGeomean)
        std::printf(" %8.*f", precision, geomean(perType));
    std::printf("\n");
}

void
printHeader(const std::string &firstColumn, bool withGeomean)
{
    std::printf("%-18s", firstColumn.c_str());
    for (auto type : workload::kAllQueryTypes)
        std::printf(" %8s", workload::queryTypeName(type).data());
    if (withGeomean)
        std::printf(" %8s", "GMean");
    std::printf("\n");
}

} // namespace boss::bench

namespace boss::bench
{

void
runMulticoreBench(const workload::CorpusConfig &corpusCfg,
                  const char *title)
{
    std::printf("%s\n", title);
    Dataset data = makeDataset(corpusCfg);

    TraceSet lucene(data, model::SystemKind::Lucene);
    TraceSet iiu(data, model::SystemKind::Iiu);
    TraceSet boss(data, model::SystemKind::Boss);

    model::SystemConfig luceneCfg;
    luceneCfg.kind = model::SystemKind::Lucene;
    luceneCfg.cores = 8;
    std::map<workload::QueryType, double> baselineQps;
    for (auto type : workload::kAllQueryTypes)
        baselineQps[type] = lucene.replay(type, luceneCfg).run.qps;

    printHeader("system", true);
    printRow("lucene-8", std::vector<double>(6, 1.0), true);

    for (const auto *ts : {&iiu, &boss}) {
        for (std::uint32_t cores : {1u, 2u, 4u, 8u}) {
            model::SystemConfig cfg;
            cfg.kind = ts->kind();
            cfg.cores = cores;
            std::vector<double> row;
            for (auto type : workload::kAllQueryTypes)
                row.push_back(ts->replay(type, cfg).run.qps /
                              baselineQps[type]);
            char label[64];
            std::snprintf(label, sizeof(label), "%s-%u",
                          model::systemName(ts->kind()).data(), cores);
            printRow(label, row, true);
        }
    }
}

void
runBandwidthBench(const workload::CorpusConfig &corpusCfg,
                  const char *title)
{
    std::printf("%s\n", title);
    Dataset data = makeDataset(corpusCfg);

    TraceSet iiu(data, model::SystemKind::Iiu);
    TraceSet boss(data, model::SystemKind::Boss);

    printHeader("system (GB/s)", false);
    for (std::uint32_t cores : {1u, 2u, 4u, 8u}) {
        for (const auto *ts : {&iiu, &boss}) {
            model::SystemConfig cfg;
            cfg.kind = ts->kind();
            cfg.cores = cores;
            std::vector<double> row;
            for (auto type : workload::kAllQueryTypes)
                row.push_back(
                    ts->replay(type, cfg).run.deviceBandwidthGBs);
            char label[64];
            std::snprintf(label, sizeof(label), "%s-%u",
                          model::systemName(ts->kind()).data(), cores);
            printRow(label, row, false);
        }
    }
}

} // namespace boss::bench
