/**
 * @file
 * Figure 11: SCM device bandwidth utilization on the ClueWeb12-like
 * dataset, IIU vs BOSS with 1/2/4/8 cores, per query type.
 *
 * Paper reference: BOSS consumes substantially less bandwidth than
 * IIU on every query type except Q2, while sustaining ~4.7x higher
 * throughput; both saturate as cores scale.
 */

#include "benchutil.h"
#include "common/logging.h"

int
main()
{
    boss::setVerbose(false);
    boss::bench::runBandwidthBench(
        boss::workload::clueWebConfig(),
        "=== Fig. 11: bandwidth utilization, ClueWeb12-like (GB/s) "
        "===");
    return 0;
}
