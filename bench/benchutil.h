/**
 * @file
 * Shared harness for the reproduction benches: dataset assembly,
 * per-query-type runs with trace caching, and paper-style table
 * printing.
 */

#ifndef BOSS_BENCH_BENCHUTIL_H
#define BOSS_BENCH_BENCHUTIL_H

#include <deque>
#include <map>
#include <string>
#include <vector>

#include "model/runner.h"
#include "stats/stats.h"
#include "workload/corpus.h"
#include "workload/queries.h"

namespace boss::bench
{

/** A fully prepared experiment input. */
struct Dataset
{
    workload::CorpusConfig corpusCfg;
    std::vector<workload::Query> queries;
    index::InvertedIndex index;
    index::MemoryLayout layout;

    /** The workload split per query type (Table II). */
    std::map<workload::QueryType, std::vector<workload::Query>> byType;
};

/**
 * Build a dataset: corpus, the 300-query TREC-like workload (paper
 * Sec. V-A) and the hybrid-compressed index over its terms.
 */
Dataset makeDataset(const workload::CorpusConfig &corpusCfg,
                    std::uint32_t queriesPerBucket = 100,
                    std::uint64_t querySeed = 7);

/**
 * Traces for every query type under one system, built once and
 * reused across core-count / memory-device sweeps.
 */
class TraceSet
{
  public:
    TraceSet(const Dataset &data, model::SystemKind kind,
             std::size_t k = engine::kDefaultTopK);

    /** Replay one query type under a hardware configuration. */
    model::WorkloadMetrics
    replay(workload::QueryType type,
           const model::SystemConfig &config) const;

    model::SystemKind kind() const { return kind_; }

  private:
    model::SystemKind kind_;
    std::map<workload::QueryType, std::vector<model::QueryTrace>>
        traces_;
};

/**
 * Machine-readable bench output through the stats framework: build
 * a stats::Group tree of named values, then write() serializes it
 * with Group::dumpJson (the same exporter boss_search --stats-json
 * uses), so every BENCH_*.json shares one schema. The report owns
 * the scalar storage its leaves point at.
 */
class JsonReport
{
  public:
    explicit JsonReport(const std::string &name) : root_(name) {}

    stats::Group &root() { return root_; }

    /** Add value @p v as a scalar leaf named @p key under @p g. */
    void set(stats::Group &g, const std::string &key, double v,
             const std::string &desc = "");

    /** Serialize the tree to @p path and log the write to stdout. */
    void write(const std::string &path) const;

  private:
    stats::Group root_;
    std::deque<stats::Scalar> scalars_; ///< stable leaf addresses
};

/** Geometric mean (values must be positive). */
double geomean(const std::vector<double> &values);

/**
 * Print one table row: label then one value per query type plus the
 * geometric mean, matching the figures' Q1..Q6 x-axis.
 */
void printRow(const std::string &label,
              const std::vector<double> &perType, bool withGeomean,
              int precision = 2);

/** Print the Q1..Q6 header line. */
void printHeader(const std::string &firstColumn, bool withGeomean);

} // namespace boss::bench

namespace boss::bench
{

/** Shared body of Figs. 9/10: multi-core throughput vs Lucene-8. */
void runMulticoreBench(const workload::CorpusConfig &corpusCfg,
                       const char *title);

/** Shared body of Figs. 11/12: device bandwidth utilization. */
void runBandwidthBench(const workload::CorpusConfig &corpusCfg,
                       const char *title);

} // namespace boss::bench

#endif // BOSS_BENCH_BENCHUTIL_H
