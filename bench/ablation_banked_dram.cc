/**
 * @file
 * Model validation: rate-based vs bank-level DRAM timing. The
 * evaluation's Fig. 16 uses the calibrated rate-based device model;
 * this ablation re-runs the DRAM configurations with the bank/row
 * model (the DRAMSim2 role in the paper's methodology) and checks
 * that the abstraction does not distort the comparison.
 */

#include <cstdio>

#include "benchutil.h"
#include "common/logging.h"

using namespace boss;
using namespace boss::bench;
using namespace boss::model;

int
main()
{
    boss::setVerbose(false);
    std::printf("=== Model validation: rate-based vs bank-level DRAM "
                "(ClueWeb12-like, 8 cores; QPS ratio banked/rate) "
                "===\n");

    Dataset data = makeDataset(workload::clueWebConfig());

    printHeader("system", true);
    for (SystemKind kind : {SystemKind::Iiu, SystemKind::Boss}) {
        TraceSet traces(data, kind);
        std::vector<double> row;
        for (auto type : workload::kAllQueryTypes) {
            SystemConfig rate;
            rate.kind = kind;
            rate.mem = mem::dramConfig();
            SystemConfig banked = rate;
            banked.mem = mem::dramBankedConfig();
            double qpsRate = traces.replay(type, rate).run.qps;
            double qpsBanked = traces.replay(type, banked).run.qps;
            row.push_back(qpsBanked / qpsRate);
        }
        printRow(std::string(systemName(kind)) + "-dram", row, true);
    }
    std::printf("\nratios near 1.0 confirm the rate-based DRAM "
                "abstraction used by Fig. 16.\n");
    return 0;
}
