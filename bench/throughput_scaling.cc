/**
 * @file
 * Host-side batch throughput vs thread-pool size.
 *
 * Sweeps the thread pool over {1, 2, 4, 8} workers, runs the same
 * query batch through parallel trace building at each size, and
 * reports wall-clock time and queries/second to stdout and to
 * BENCH_throughput.json. The batch results are checked identical to
 * the single-thread run at every size (the pool's determinism
 * contract), so the sweep doubles as a stress test.
 *
 * Speedup is bounded by the machine: the JSON records
 * hardware_concurrency so a reader can tell a 1-core container's
 * flat curve from a real scaling regression.
 */

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "benchutil.h"
#include "common/logging.h"
#include "common/thread_pool.h"

namespace
{

using namespace boss;
using Clock = std::chrono::steady_clock;

struct Sample
{
    std::size_t threads;
    double seconds;
    double qps;
};

double
timeBatch(const bench::Dataset &data, std::size_t repeats,
          std::vector<model::QueryTrace> *out)
{
    auto start = Clock::now();
    for (std::size_t r = 0; r < repeats; ++r) {
        auto traces = model::buildTraces(data.index, data.layout,
                                         data.queries,
                                         model::SystemKind::Boss);
        if (out != nullptr && r == 0)
            *out = std::move(traces);
    }
    return std::chrono::duration<double>(Clock::now() - start).count() /
           static_cast<double>(repeats);
}

} // namespace

int
main()
{
    workload::CorpusConfig cfg;
    cfg.name = "scaling";
    cfg.numDocs = 200'000;
    cfg.vocabSize = 5'000;
    cfg.seed = 42;
    auto data = bench::makeDataset(cfg, 50, 7);
    const std::size_t repeats = 3;
    const unsigned hw = std::thread::hardware_concurrency();

    std::printf("batch: %zu queries, %u docs, hardware threads: %u\n",
                data.queries.size(), cfg.numDocs, hw);
    std::printf("%-8s %12s %12s %9s\n", "threads", "seconds", "qps",
                "speedup");

    std::vector<model::QueryTrace> reference;
    std::vector<Sample> samples;
    for (std::size_t threads : {1u, 2u, 4u, 8u}) {
        common::ThreadPool::setGlobalThreads(threads);
        std::vector<model::QueryTrace> traces;
        double seconds = timeBatch(data, repeats, &traces);

        // Determinism check against the single-thread run.
        if (threads == 1) {
            reference = std::move(traces);
        } else {
            BOSS_ASSERT(traces.size() == reference.size(),
                        "trace count changed with thread count");
            for (std::size_t i = 0; i < traces.size(); ++i) {
                BOSS_ASSERT(traces[i].segments.size() ==
                                    reference[i].segments.size() &&
                                traces[i].evaluatedDocs ==
                                    reference[i].evaluatedDocs &&
                                traces[i].catAccesses ==
                                    reference[i].catAccesses,
                            "parallel trace diverged from serial");
            }
        }

        double qps = static_cast<double>(data.queries.size()) / seconds;
        samples.push_back({threads, seconds, qps});
        std::printf("%-8zu %12.4f %12.1f %8.2fx\n", threads, seconds,
                    qps, samples.front().seconds / seconds);
    }

    bench::JsonReport report("throughput_scaling");
    report.set(report.root(), "queries",
               static_cast<double>(data.queries.size()),
               "queries per batch");
    report.set(report.root(), "repeats", static_cast<double>(repeats),
               "timed repeats per sweep point");
    report.set(report.root(), "hardware_concurrency",
               static_cast<double>(hw),
               "std::thread::hardware_concurrency()");
    for (const Sample &s : samples) {
        auto &g = report.root().subgroup("threads" +
                                         std::to_string(s.threads));
        report.set(g, "wall_seconds", s.seconds,
                   "mean wall time per batch");
        report.set(g, "queries_per_second", s.qps, "batch throughput");
        report.set(g, "speedup_vs_1",
                   samples.front().seconds / s.seconds,
                   "throughput relative to one worker");
    }
    report.write("BENCH_throughput.json");
    return 0;
}
